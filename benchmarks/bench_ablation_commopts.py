"""Ablation — the communication optimizations Chameleon does not perform.

§V-C: "the current Chameleon implementation does not make use of complex
collective communication schemes ... without additional optimizations (no
detection of collective communications or message aggregation)".  This
bench quantifies what those optimizations would buy (or cost) on top of
the paper's point-to-point setup, for both distributions:

* binomial broadcast trees spread each fan-out across forwarders;
* naive message aggregation coalesces same-destination messages.

Byte counts are invariant by construction (asserted); only schedules move.
"""

from conftest import print_header

from repro.comm import count_communications
from repro.config import bora
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
from repro.graph import build_cholesky_graph
from repro.runtime import simulate

B, N = 500, 48


def sweep():
    out = {}
    for dist in (SymmetricBlockCyclic(8), BlockCyclic2D(7, 4)):
        g = build_cholesky_graph(N, B, dist)
        machine = bora(dist.num_nodes)
        expected = count_communications(g)
        rows = {}
        for label, kwargs in (
            ("point-to-point", {}),
            ("broadcast tree", {"broadcast": "tree"}),
            ("aggregation", {"aggregate": True}),
        ):
            rep = simulate(g, machine, **kwargs)
            assert rep.comm_bytes == expected.total_bytes
            rows[label] = (rep.makespan, rep.comm_messages)
        out[dist.name] = rows
    return out


def test_ablation_comm_optimizations(run_once):
    results = run_once(sweep)
    print_header(
        f"Ablation: communication optimizations (POTRF, n={N * B}, P=28)",
        f"{'distribution':>20} {'mode':>16} {'makespan':>10} {'messages':>9}",
    )
    for name, rows in results.items():
        for label, (makespan, messages) in rows.items():
            print(f"{name:>20} {label:>16} {makespan:>9.3f}s {messages:>9}")

    for name, rows in results.items():
        p2p = rows["point-to-point"]
        tree = rows["broadcast tree"]
        aggr = rows["aggregation"]
        # Trees spread the fan-out: never slower, same message count.
        assert tree[0] <= p2p[0] * 1.01
        assert tree[1] == p2p[1]
        # Naive aggregation trades message count against delivery
        # granularity; it must cut messages substantially.
        assert aggr[1] < 0.7 * p2p[1]
