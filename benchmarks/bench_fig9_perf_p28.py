"""Figure 9 — Cholesky performance with 2D/2.5D BC and SBC at P ~ 28.

The paper's central performance figure: per-node GFlop/s versus matrix
size for the r = 8 case (P = 28), comparing 2DBC (7x4 and 6x5), 2D SBC,
the 2.5D variants (c = 3 slices), and the COnfCHOX baseline (P = 32,
which we model as a synchronized block-cyclic execution — its static
fork-join schedule is what the paper identifies as its handicap).

Matrix sizes are scaled to keep the Python DES tractable (the paper goes
to n = 300000 = 36M tasks); REPRO_FULL extends the sweep.  The figure's
qualitative content is asserted: 2.5D SBC > 2.5D BC and 2D SBC > 2DBC,
with COnfCHOX far below, and everyone climbing towards the StarPU peak
as n grows.
"""

from conftest import FULL, print_header, sizes

from repro.config import bora
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic, TwoDotFiveD
from repro.graph import build_cholesky_graph, build_cholesky_graph_25d
from repro.runtime import simulate

B = 500
NS = sizes([30, 60, 100], [30, 60, 100, 140, 180])


def configs():
    return [
        ("2D SBC r=8", 28, lambda N: build_cholesky_graph(N, B, SymmetricBlockCyclic(8)), {}),
        ("2DBC 7x4", 28, lambda N: build_cholesky_graph(N, B, BlockCyclic2D(7, 4)), {}),
        ("2DBC 6x5", 30, lambda N: build_cholesky_graph(N, B, BlockCyclic2D(6, 5)), {}),
        ("2.5D SBC c=3", 24,
         lambda N: build_cholesky_graph_25d(
             N, B, TwoDotFiveD(SymmetricBlockCyclic(4, variant="basic"), 3)), {}),
        ("2.5D BC c=3", 27,
         lambda N: build_cholesky_graph_25d(N, B, TwoDotFiveD(BlockCyclic2D(3, 3), 3)), {}),
        ("COnfCHOX 8x4", 32, lambda N: build_cholesky_graph(N, B, BlockCyclic2D(8, 4)),
         {"synchronized": True}),
    ]


def sweep():
    out = {}
    for name, P, builder, kw in configs():
        machine = bora(P)
        out[name] = [simulate(builder(N), machine, **kw).gflops_per_node for N in NS]
    return out


def test_fig9_perf(run_once):
    series = run_once(sweep)
    names = [c[0] for c in configs()]
    print_header(
        "Figure 9: POTRF GFlop/s per node, P ~ 28 (b=500)",
        f"{'n':>8} " + " ".join(f"{n:>13}" for n in names),
    )
    for i, N in enumerate(NS):
        print(f"{N * B:>8} " + " ".join(f"{series[n][i]:>13.1f}" for n in names))

    for i in range(len(NS)):
        # SBC beats the equal-P 2DBC at every size.
        assert series["2D SBC r=8"][i] > series["2DBC 7x4"][i]
        # The 2.5D variants improve on their 2D counterparts.
        assert series["2.5D SBC c=3"][i] > series["2D SBC r=8"][i]
        assert series["2.5D SBC c=3"][i] > series["2.5D BC c=3"][i]
        # The static synchronized baseline trails everything.
        assert series["COnfCHOX 8x4"][i] < series["2DBC 7x4"][i]
    # Per-node performance grows with n towards the peak (right side of
    # the paper's figure).
    for name in names:
        assert series[name][-1] > series[name][0]
