"""Fault-sensitivity sweep: SBC vs 2DBC makespan inflation under faults.

The paper's headline is that the symmetric block-cyclic distribution
moves fewer bytes than 2D block-cyclic; this bench asks how that
advantage holds up when the platform misbehaves.  It sweeps a straggler
slowdown factor crossed with a transient message-loss rate (seeded
:class:`repro.runtime.faults.FaultPlan`, so every cell is deterministic
and reproducible) over both distributions on the same node count, and
reports each cell's makespan inflation relative to its own fault-free
baseline plus the retransmitted-message overhead.

Run with ``REPRO_BENCH_OUT=resilience.json`` to dump the rows as JSON;
``REPRO_FULL=1`` sweeps a paper-scale tile count.
"""

from __future__ import annotations

import json
import os
import platform

from conftest import print_header, sizes

from repro.config import bora
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
from repro.graph import compile_cholesky
from repro.runtime.faults import FaultPlan, SlowdownWindow
from repro.runtime.simulator import simulate_compiled

B = 512
N = sizes(small=[20], full=[96])[0]
SLOWDOWNS = [1.0, 2.0, 4.0]
LOSS_RATES = [0.0, 0.02, 0.1]
SEED = 2024

#: Same node count for both layouts: SBC r=8 occupies 8*7/2 + 8/2 = 28
#: nodes in the paper's symmetric scheme; 2DBC gets the 4 x 7 grid.
SBC_R = 8
BC_GRID = (4, 7)


def _plan(slowdown: float, loss: float) -> FaultPlan | None:
    if slowdown == 1.0 and loss == 0.0:
        return None
    slowdowns = ()
    if slowdown > 1.0:
        # One persistent straggler: node 0 owns the top-left panel work
        # in both layouts, so the hit lands on the critical path.
        slowdowns = (SlowdownWindow(node=0, factor=slowdown),)
    return FaultPlan(seed=SEED, slowdowns=slowdowns, loss_rate=loss)


def sweep():
    sbc = SymmetricBlockCyclic(SBC_R)
    bc = BlockCyclic2D(*BC_GRID)
    assert sbc.num_nodes == bc.num_nodes, "layouts must use equal node counts"
    machine = bora(nodes=sbc.num_nodes)
    rows = []
    for dist in (sbc, bc):
        cg = compile_cholesky(N, B, dist)
        clean = simulate_compiled(cg, machine)
        for slowdown in SLOWDOWNS:
            for loss in LOSS_RATES:
                plan = _plan(slowdown, loss)
                rep = (clean if plan is None
                       else simulate_compiled(cg, machine, faults=plan))
                rows.append({
                    "dist": dist.name,
                    "nodes": dist.num_nodes,
                    "N": N,
                    "slowdown": slowdown,
                    "loss_rate": loss,
                    "makespan_seconds": rep.makespan,
                    "inflation": rep.makespan / clean.makespan,
                    "comm_bytes": rep.comm_bytes,
                    "comm_messages": rep.comm_messages,
                    "retransmit_messages":
                        rep.comm_messages - clean.comm_messages,
                })
    return rows


def test_resilience_sweep(run_once):
    rows = run_once(sweep)
    print_header(
        f"Makespan inflation under faults, POTRF N={N}, b={B}, "
        f"P={SymmetricBlockCyclic(SBC_R).num_nodes}",
        f"{'dist':>22} {'slow':>5} {'loss':>5} {'inflation':>10} "
        f"{'retransmits':>12}",
    )
    for r in rows:
        print(f"{r['dist']:>22} {r['slowdown']:>5.1f} {r['loss_rate']:>5.2f} "
              f"{r['inflation']:>10.3f} {r['retransmit_messages']:>12}")

    by_cell = {(r["dist"], r["slowdown"], r["loss_rate"]): r for r in rows}
    for r in rows:
        # Faults can only hurt: inflation is 1 exactly on the clean cell,
        # and every added fault keeps the same first-transmission volume.
        assert r["inflation"] >= 1.0 - 1e-12
        assert r["retransmit_messages"] >= 0
        clean = by_cell[(r["dist"], 1.0, 0.0)]
        assert r["comm_bytes"] >= clean["comm_bytes"]
    # Loss produces retransmissions once the rate is non-zero.
    assert all(
        by_cell[(d, 1.0, LOSS_RATES[-1])]["retransmit_messages"] > 0
        for d in {r["dist"] for r in rows}
    )
    # The determinism contract: rerunning a cell reproduces it exactly.
    again = sweep()
    assert again == rows

    out = os.environ.get("REPRO_BENCH_OUT")
    if out:
        doc = {
            "bench": "resilience",
            "config": {"b": B, "N": N, "sbc_r": SBC_R, "bc_grid": BC_GRID,
                       "seed": SEED, "slowdowns": SLOWDOWNS,
                       "loss_rates": LOSS_RATES, "machine": "bora"},
            "host": {"python": platform.python_version(),
                     "machine": platform.machine()},
            "rows": rows,
        }
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out}")
