"""Platform-sensitivity sweeps: SBC vs 2DBC inflation off the happy path.

The paper's headline is that the symmetric block-cyclic distribution
moves fewer bytes than 2D block-cyclic; this bench asks how that
advantage holds up when the platform misbehaves.  Two sweeps:

* **faults** — a straggler slowdown factor crossed with a transient
  message-loss rate (seeded :class:`repro.runtime.faults.FaultPlan`, so
  every cell is deterministic and reproducible) over both distributions
  on the same node count, reporting each cell's makespan inflation
  relative to its own fault-free baseline plus the retransmitted-message
  overhead;
* **topology x heterogeneity** — the same two layouts over routed
  interconnects (clique / 2D mesh / oversubscribed fat tree, see
  :mod:`repro.topology`) crossed with per-node speed heterogeneity,
  reporting inflation relative to the homogeneous clique.  Fewer bytes
  on the wire should mean less exposure to constrained fabrics — this
  sweep measures exactly how much.

Since the sweep-service PR this bench is a *thin client*: every cell is
a :class:`repro.service.JobSpec` submitted through a
:class:`repro.service.SweepClient`, so identical cells are simulated
exactly once and memoized in a content-addressed store.  Point
``REPRO_SWEEP_STORE`` at a directory to keep the cache warm across
invocations — a warm re-run performs **zero** new simulations (the test
asserts this via the service's obs counters).  See ``docs/service.md``.

Run with ``REPRO_BENCH_OUT=resilience.json`` to dump the rows as JSON;
``REPRO_FULL=1`` sweeps a paper-scale tile count.
"""

from __future__ import annotations

import json
import os
import platform

from conftest import print_header, sizes

from repro.config import bora
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
from repro.runtime.faults import FaultPlan, SlowdownWindow
from repro.service import JobSpec, SweepClient

B = 512
N = sizes(small=[20], full=[96])[0]
SLOWDOWNS = [1.0, 2.0, 4.0]
LOSS_RATES = [0.0, 0.02, 0.1]
SEED = 2024

#: Same node count for both layouts: SBC r=8 occupies 8*7/2 + 8/2 = 28
#: nodes in the paper's symmetric scheme; 2DBC gets the 4 x 7 grid.
SBC_R = 8
BC_GRID = (4, 7)


def _plan(slowdown: float, loss: float) -> FaultPlan | None:
    if slowdown == 1.0 and loss == 0.0:
        return None
    slowdowns = ()
    if slowdown > 1.0:
        # One persistent straggler: node 0 owns the top-left panel work
        # in both layouts, so the hit lands on the critical path.
        slowdowns = (SlowdownWindow(node=0, factor=slowdown),)
    return FaultPlan(seed=SEED, slowdowns=slowdowns, loss_rate=loss)


def _cells():
    """(dist, slowdown, loss, JobSpec) for every sweep cell, in order."""
    sbc = SymmetricBlockCyclic(SBC_R)
    bc = BlockCyclic2D(*BC_GRID)
    assert sbc.num_nodes == bc.num_nodes, "layouts must use equal node counts"
    machine = bora(nodes=sbc.num_nodes)
    out = []
    for dist in (sbc, bc):
        for slowdown in SLOWDOWNS:
            for loss in LOSS_RATES:
                spec = JobSpec.make(
                    "cholesky", N, B, dist, machine,
                    engine="compiled", faults=_plan(slowdown, loss),
                )
                out.append((dist, slowdown, loss, spec))
    return out


def sweep(client: SweepClient):
    """Submit every cell through the service; rows in sweep order."""
    cells = _cells()
    results = client.sweep([spec for _, _, _, spec in cells])
    clean_makespan = {}
    for (dist, slowdown, loss, _), res in zip(cells, results):
        if slowdown == 1.0 and loss == 0.0:
            clean_makespan[dist.name] = res.report.makespan
    rows = []
    for (dist, slowdown, loss, _), res in zip(cells, results):
        rep = res.report
        clean = clean_makespan[dist.name]
        rows.append({
            "dist": dist.name,
            "nodes": dist.num_nodes,
            "N": N,
            "slowdown": slowdown,
            "loss_rate": loss,
            "makespan_seconds": rep.makespan,
            "inflation": rep.makespan / clean,
            "comm_bytes": rep.comm_bytes,
            "comm_messages": rep.comm_messages,
        })
    clean_messages = {
        r["dist"]: r["comm_messages"]
        for r in rows if r["slowdown"] == 1.0 and r["loss_rate"] == 0.0
    }
    for r in rows:
        r["retransmit_messages"] = r["comm_messages"] - clean_messages[r["dist"]]
    return rows


def test_resilience_sweep(run_once, tmp_path):
    store = os.environ.get("REPRO_SWEEP_STORE") or str(tmp_path / "sweep-store")
    client = SweepClient(store=store)
    try:
        rows = run_once(sweep, client)
        sims_first = client.simulations_run()
        print_header(
            f"Makespan inflation under faults, POTRF N={N}, b={B}, "
            f"P={SymmetricBlockCyclic(SBC_R).num_nodes}",
            f"{'dist':>22} {'slow':>5} {'loss':>5} {'inflation':>10} "
            f"{'retransmits':>12}",
        )
        for r in rows:
            print(f"{r['dist']:>22} {r['slowdown']:>5.1f} {r['loss_rate']:>5.2f} "
                  f"{r['inflation']:>10.3f} {r['retransmit_messages']:>12}")
        print(f"(sweep service: {sims_first} simulations, store {store})")

        by_cell = {(r["dist"], r["slowdown"], r["loss_rate"]): r for r in rows}
        for r in rows:
            # Faults can only hurt: inflation is 1 exactly on the clean cell,
            # and every added fault keeps the same first-transmission volume.
            assert r["inflation"] >= 1.0 - 1e-12
            assert r["retransmit_messages"] >= 0
            clean = by_cell[(r["dist"], 1.0, 0.0)]
            assert r["comm_bytes"] >= clean["comm_bytes"]
        # Loss produces retransmissions once the rate is non-zero.
        assert all(
            by_cell[(d, 1.0, LOSS_RATES[-1])]["retransmit_messages"] > 0
            for d in {r["dist"] for r in rows}
        )
        # The determinism + memoization contract: a warm-cache re-run
        # reproduces every row exactly and simulates NOTHING new.
        again = sweep(client)
        assert again == rows
        assert client.simulations_run() == sims_first, \
            "warm-cache re-run must perform zero new simulations"
    finally:
        client.close()

    out = os.environ.get("REPRO_BENCH_OUT")
    if out:
        doc = {
            "bench": "resilience",
            "config": {"b": B, "N": N, "sbc_r": SBC_R, "bc_grid": BC_GRID,
                       "seed": SEED, "slowdowns": SLOWDOWNS,
                       "loss_rates": LOSS_RATES, "machine": "bora"},
            "host": {"python": platform.python_version(),
                     "machine": platform.machine()},
            "rows": rows,
        }
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out}")


# --------------------------------------------------------------------------
# topology x heterogeneity sweep
# --------------------------------------------------------------------------

#: Interconnect shapes at the bench's node count, built with the bora
#: effective link constants so the uniform clique reproduces the scalar
#: network model bit-exactly (the sweep's natural baseline).
def _topologies(P: int):
    from repro import topology as tp
    from repro.config import BORA_EFFECTIVE_NETWORK as net

    bw, lat = net.bandwidth, net.latency
    return [
        ("clique", tp.clique(P, bw, lat)),
        ("mesh-4x7", tp.grid(4, 7, bw, lat)),
        ("fat-tree-2:1", tp.fat_tree(P, arity=7, bandwidth=bw, latency=lat,
                                     uplink_bandwidth=3.5 * bw)),
    ]


#: Heterogeneity levels: homogeneous, and every 4th node at half speed.
def _hetero_levels(P: int):
    from repro.topology import Heterogeneity

    return [
        ("homog", None),
        ("mixed", Heterogeneity.alternating(P, slow_speed=0.5, period=4)),
    ]


def _topo_cells():
    """(dist, topo_name, hetero_name, JobSpec) in sweep order."""
    from dataclasses import replace

    sbc = SymmetricBlockCyclic(SBC_R)
    bc = BlockCyclic2D(*BC_GRID)
    P = sbc.num_nodes
    machine = bora(nodes=P)
    out = []
    for dist in (sbc, bc):
        for tname, topo in _topologies(P):
            for hname, het in _hetero_levels(P):
                routed = topo if het is None else topo.with_heterogeneity(het)
                spec = JobSpec.make(
                    "cholesky", N, B, dist,
                    replace(machine, topology=routed), engine="compiled",
                )
                out.append((dist, tname, hname, spec))
    return out


def topo_sweep(client: SweepClient):
    """Submit every topology cell; rows with inflation vs clique/homog."""
    cells = _topo_cells()
    results = client.sweep([spec for _, _, _, spec in cells])
    rows = []
    for (dist, tname, hname, _), res in zip(cells, results):
        rep = res.raise_for_status().report
        rows.append({
            "dist": dist.name,
            "topology": tname,
            "hetero": hname,
            "N": N,
            "makespan_seconds": rep.makespan,
            "comm_bytes": rep.comm_bytes,
            "comm_messages": rep.comm_messages,
        })
    base = {r["dist"]: r["makespan_seconds"] for r in rows
            if r["topology"] == "clique" and r["hetero"] == "homog"}
    for r in rows:
        r["inflation"] = r["makespan_seconds"] / base[r["dist"]]
    return rows


def test_topology_heterogeneity_sweep(run_once, tmp_path):
    store = os.environ.get("REPRO_SWEEP_STORE") or str(tmp_path / "sweep-store")
    client = SweepClient(store=store)
    try:
        rows = run_once(topo_sweep, client)
        sims_first = client.simulations_run()
        print_header(
            f"Makespan inflation across interconnects, POTRF N={N}, b={B}, "
            f"P={SymmetricBlockCyclic(SBC_R).num_nodes}",
            f"{'dist':>22} {'topology':>14} {'hetero':>7} {'inflation':>10}",
        )
        for r in rows:
            print(f"{r['dist']:>22} {r['topology']:>14} {r['hetero']:>7} "
                  f"{r['inflation']:>10.3f}")
        print(f"(sweep service: {sims_first} simulations, store {store})")

        by_cell = {(r["dist"], r["topology"], r["hetero"]): r for r in rows}
        dists = sorted({r["dist"] for r in rows})
        sbc_name = SymmetricBlockCyclic(SBC_R).name
        bc_name = BlockCyclic2D(*BC_GRID).name
        for r in rows:
            # Routing and slow nodes can only add time over the clique
            # baseline; owner-computes traffic is topology-independent.
            assert r["inflation"] >= 1.0 - 1e-12
            clean = by_cell[(r["dist"], "clique", "homog")]
            assert r["comm_bytes"] == clean["comm_bytes"]
            assert r["comm_messages"] == clean["comm_messages"]
        for d in dists:
            # Multi-hop fabrics and stragglers must actually bite.
            assert by_cell[(d, "mesh-4x7", "homog")]["inflation"] > 1.0
            assert by_cell[(d, "clique", "mixed")]["inflation"] > 1.0
        # The paper's volume advantage is preserved verbatim: SBC moves
        # fewer bytes than 2DBC in every cell of the matrix.
        for (_, tname, hname), r in by_cell.items():
            if r["dist"] == sbc_name:
                assert r["comm_bytes"] < by_cell[(bc_name, tname,
                                                  hname)]["comm_bytes"]
        # Warm-cache re-run: identical rows, zero new simulations.
        again = topo_sweep(client)
        assert again == rows
        assert client.simulations_run() == sims_first, \
            "warm-cache re-run must perform zero new simulations"
    finally:
        client.close()

    out = os.environ.get("REPRO_BENCH_OUT")
    if out:
        out = f"{out}.topology.json"  # don't clobber the faults sweep's dump
        doc = {
            "bench": "resilience-topology",
            "config": {"b": B, "N": N, "sbc_r": SBC_R, "bc_grid": BC_GRID,
                       "machine": "bora",
                       "topologies": [t for t, _ in _topologies(
                           SymmetricBlockCyclic(SBC_R).num_nodes)],
                       "hetero_levels": ["homog", "mixed"]},
            "host": {"python": platform.python_version(),
                     "machine": platform.machine()},
            "rows": rows,
        }
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out}")
