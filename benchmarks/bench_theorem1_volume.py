"""Theorem 1 / §III-D — counted volumes vs the proven closed forms.

Regenerates the paper's analytical claims numerically: the exact counted
POTRF volume is bounded by (and converges to) S*(r-1) for basic SBC and
S*(r-2) for extended SBC, and the normalized SBC/2DBC ratio approaches
sqrt(2) as the platform grows.
"""

import math

from conftest import print_header

from repro.comm import (
    bc2d_cholesky_volume,
    cholesky_message_count,
    sbc_cholesky_volume,
    storage_tiles,
)
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic

N = 240


def compute():
    rows = []
    for r in (6, 7, 8, 9):
        ext = SymmetricBlockCyclic(r)
        counted = cholesky_message_count(ext, N)
        predicted = sbc_cholesky_volume(N, r)
        rows.append((ext.name, ext.num_nodes, counted, int(predicted)))
    for r in (6, 8):
        bas = SymmetricBlockCyclic(r, variant="basic")
        counted = cholesky_message_count(bas, N)
        predicted = sbc_cholesky_volume(N, r, variant="basic")
        rows.append((bas.name, bas.num_nodes, counted, int(predicted)))
    for p, q in ((5, 4), (7, 4), (6, 6)):
        bc = BlockCyclic2D(p, q)
        counted = cholesky_message_count(bc, N)
        predicted = bc2d_cholesky_volume(N, p, q)
        rows.append((bc.name, bc.num_nodes, counted, int(predicted)))
    return rows


def test_theorem1(run_once):
    rows = run_once(compute)
    print_header(
        f"Theorem 1: counted vs predicted POTRF volume (tiles, N={N})",
        f"{'distribution':>20} {'P':>4} {'counted':>9} {'formula':>9} {'ratio':>6}",
    )
    for name, P, counted, predicted in rows:
        print(f"{name:>20} {P:>4} {counted:>9} {predicted:>9} {counted / predicted:>6.3f}")
        assert counted <= predicted
        assert counted > 0.88 * predicted  # converged to within boundary terms


def test_sqrt2_ratio(run_once):
    """Normalized volume ratio 2DBC/SBC approaches sqrt(2) as r grows."""

    def ratios():
        out = []
        for r, (p, q) in ((7, (5, 4)), (9, (6, 6)), (11, (8, 7))):
            sbc = SymmetricBlockCyclic(r)
            bc = BlockCyclic2D(p, q)
            v_sbc = cholesky_message_count(sbc, N) / math.sqrt(sbc.num_nodes)
            v_bc = cholesky_message_count(bc, N) / math.sqrt(bc.num_nodes)
            out.append((r, v_bc / v_sbc))
        return out

    rows = run_once(ratios)
    print_header("sqrt(2) convergence", f"{'r':>4} {'normalized ratio':>17}")
    for r, ratio in rows:
        print(f"{r:>4} {ratio:>17.3f}")
    # Monotone approach towards sqrt(2) ~ 1.414.
    assert rows[-1][1] > rows[0][1] - 0.02
    assert abs(rows[-1][1] - math.sqrt(2)) < 0.12
