"""Perf-regression trajectory for the compiled simulator core.

Sweeps POTRF on the paper's P = 36 extended-SBC layout (r = 9) over
growing tile counts and records, per N: direct graph-compile time,
communication-plan build time, event-loop wall time, and the process
peak RSS — the numbers that tell future PRs whether the hot path
regressed.  Everything is also registered in a
:class:`repro.obs.MetricsRegistry` and, when ``REPRO_BENCH_OUT`` is set,
dumped as a JSON trajectory (the checked-in ``BENCH_engine.json`` at the
repo root holds the reference run; regenerate it with
``REPRO_FULL=1 REPRO_BENCH_OUT=BENCH_engine.json pytest
benchmarks/bench_engine_scale.py``).

Since the sweep-service PR each point is submitted through
:class:`repro.service.SweepClient` (in-process mode): the build / plan /
sim timings are measured inside :func:`repro.service.run_point` and
memoized alongside the :class:`SimReport`.  With ``REPRO_SWEEP_STORE``
pointing at a warm store a re-run simulates nothing and replays the
stored timings (the ``cached`` column says which rows were replayed);
regenerate the reference trajectory against a *cold* store.

The acceptance point of the array-engine PR is the last full-mode row:
N = 400 (10.7M tasks) must simulate in under 60 s wall.
"""

from __future__ import annotations

import json
import os
import platform
import resource

from conftest import print_header, sizes

from repro.config import bora
from repro.distributions import SymmetricBlockCyclic
from repro.obs import MetricsRegistry
from repro.service import JobSpec, SweepClient

B = 512
R = 9  # extended SBC on P = 36 nodes, the paper's largest square layout
NS = sizes(small=[18, 36, 54], full=[100, 200, 400])


def _peak_rss_mb(res=None) -> float:
    """Peak RSS (MiB) of whatever actually ran the simulation.

    Since the sweep-service PR the simulation may run in a
    ``ProcessPoolExecutor`` worker, whose memory never shows up in this
    process's ``RUSAGE_SELF`` — the worker records its own high-water
    mark into the result (``JobResult.peak_rss_mb``).  When that field is
    absent (old stores), fall back to the max of ``RUSAGE_SELF`` (covers
    in-process/thread execution) and ``RUSAGE_CHILDREN`` (covers exited
    pool workers).  All values are monotone high-water marks, so per-N
    values are cumulative peaks (Ns run ascending).
    """
    if res is not None and res.peak_rss_mb is not None:
        return float(res.peak_rss_mb)
    return max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    ) / 1024.0


def trajectory(ns, client: SweepClient):
    dist = SymmetricBlockCyclic(R)
    machine = bora(nodes=dist.num_nodes)
    metrics = MetricsRegistry()
    rows = []
    for N in ns:
        res = client.submit(
            JobSpec.make("cholesky", N, B, dist, machine, engine="compiled")
        ).raise_for_status()
        rep = res.report
        row = {
            "N": N,
            "n": N * B,
            "n_tasks": rep.num_tasks,
            "build_seconds": round(res.timings["build_seconds"], 3),
            "plan_seconds": round(res.timings["plan_seconds"], 3),
            "sim_seconds": round(res.timings["sim_seconds"], 3),
            "peak_rss_mb": round(_peak_rss_mb(res), 1),
            "graph_reused": res.graph_reused,
            "makespan_seconds": rep.makespan,
            "comm_messages": rep.comm_messages,
            "comm_bytes": rep.comm_bytes,
            "cached": res.cached,
        }
        rows.append(row)
        for key in ("build_seconds", "plan_seconds", "sim_seconds",
                    "peak_rss_mb"):
            metrics.gauge(f"bench.engine.{key}",
                          "engine-scale trajectory").set(row[key], labels=(N,))
    return rows, metrics


def test_engine_scale(run_once, tmp_path):
    store = os.environ.get("REPRO_SWEEP_STORE") or str(tmp_path / "sweep-store")
    client = SweepClient(store=store)
    try:
        rows, metrics = run_once(trajectory, NS, client)
    finally:
        client.close()
    print_header(
        f"Compiled-engine scaling, POTRF on SBC-extended(r={R}), b={B}",
        f"{'N':>5} {'tasks':>10} {'build(s)':>9} {'plan(s)':>9} "
        f"{'sim(s)':>9} {'peakRSS(MB)':>12} {'cached':>7}",
    )
    for r in rows:
        print(f"{r['N']:>5} {r['n_tasks']:>10} {r['build_seconds']:>9.2f} "
              f"{r['plan_seconds']:>9.2f} {r['sim_seconds']:>9.2f} "
              f"{r['peak_rss_mb']:>12.1f} {str(r['cached']):>7}")

    # Structural sanity: work grows ~N^3, so per-task sim cost must stay
    # roughly flat (the array engine's whole point).  Allow generous
    # headroom for noisy shared boxes.
    for r in rows:
        assert r["n_tasks"] > 0 and r["sim_seconds"] >= 0.0
        per_task_us = 1e6 * r["sim_seconds"] / r["n_tasks"]
        assert per_task_us < 60.0, f"sim cost {per_task_us:.1f}us/task at N={r['N']}"
    # The acceptance bound of the array-engine PR, checked in full mode.
    if NS[-1] == 400:
        assert rows[-1]["sim_seconds"] < 60.0

    out = os.environ.get("REPRO_BENCH_OUT")
    if out:
        doc = {
            "bench": "engine_scale",
            "config": {"b": B, "r": R, "distribution": f"SBC-extended(r={R})",
                       "machine": "bora", "nodes": SymmetricBlockCyclic(R).num_nodes},
            "host": {"python": platform.python_version(),
                     "machine": platform.machine()},
            "trajectory": rows,
            "metrics": metrics.as_dict(),
        }
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out}")
