"""Full-paper-scale analysis via analytic bounds (n up to 300000).

The DES cannot execute the paper's 36M-task graphs, but the closed-form
bounds of :mod:`repro.runtime.bounds` evaluate any size in milliseconds:
total work over platform rate, busiest-port traffic over link bandwidth,
and the POTRF-TRSM-SYRK spine.  This bench sweeps the paper's true sizes
and asserts the structural facts behind Figures 9-11:

* at small n the spine binds (both distributions equally: latency-land);
* in the mid range the network port binds, and there SBC's bound is
  ~sqrt(2) better than 2DBC's — the regime of the paper's 23% gains;
* at the largest n the work bound takes over and the curves converge —
  exactly the large-n behaviour of the paper's plots.
"""

from conftest import print_header

from repro.config import MachineSpec, NetworkSpec, bora
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
from repro.runtime import cholesky_bounds

B = 500
NS = [25, 50, 100, 200, 400, 600]  # n = 12500 .. 300000, the paper's sweep


def sweep():
    # A slightly tighter network than the calibrated default exposes the
    # port-bound band within the paper's size range.
    machine = MachineSpec(nodes=28, cores=34,
                          network=NetworkSpec(bandwidth=2e9, latency=30e-6))
    out = {}
    for dist in (SymmetricBlockCyclic(8), BlockCyclic2D(7, 4)):
        rows = []
        for N in NS:
            bd = cholesky_bounds(dist, N, B, machine)
            rows.append((N, bd))
        out[dist.name] = rows
    return out


def test_full_scale_bounds(run_once):
    results = run_once(sweep)
    print_header(
        "Analytic bounds at the paper's full sizes (P=28, b=500)",
        f"{'n':>8} " + " ".join(
            f"{name + ' ' + col:>26}"
            for name in results
            for col in ("lb(s)/binding",)
        ),
    )
    for idx, N in enumerate(NS):
        cells = []
        for name, rows in results.items():
            bd = rows[idx][1]
            cells.append(f"{bd.makespan_lower_bound:>16.2f} {bd.binding:>9}")
        print(f"{N * B:>8} " + " ".join(cells))

    sbc_rows = results["SBC-extended(r=8)"]
    bc_rows = results["2DBC(7x4)"]
    bindings_sbc = [bd.binding for _N, bd in sbc_rows]
    bindings_bc = [bd.binding for _N, bd in bc_rows]
    # The three regimes appear in order for 2DBC: spine -> port -> work.
    assert bindings_bc[0] == "spine"
    assert "port" in bindings_bc
    assert bindings_bc[-1] == "work"
    # Wherever 2DBC is port-bound, SBC's bound is strictly better.
    for (N, s), (_N2, b) in zip(sbc_rows, bc_rows):
        if b.binding == "port":
            assert s.makespan_lower_bound < b.makespan_lower_bound
            assert 1.2 < b.port_bound / s.port_bound < 1.6
    # At the largest size both are work-bound with identical bounds: the
    # large-n convergence of the paper's curves.
    assert bindings_sbc[-1] == bindings_bc[-1] == "work"
    assert sbc_rows[-1][1].makespan_lower_bound == bc_rows[-1][1].makespan_lower_bound
