"""Figure 13 — POSV (solve) performance with 2DBC and SBC, P = 28.

POSV chains POTRF with forward and backward triangular solves against a
one-tile-wide right-hand side held 1D row-cyclically (the paper's setup).
The solve phases communicate the same volume under both layouts, so SBC's
relative improvement is smaller than for POTRF alone — both the gain and
its dilution are asserted.
"""

from conftest import FULL, print_header, sizes

from repro.config import bora
from repro.distributions import BlockCyclic2D, RowCyclic1D, SymmetricBlockCyclic
from repro.graph import build_cholesky_graph, build_posv_graph
from repro.kernels.flops import posv_flops
from repro.runtime import simulate

B = 500
NS = sizes([30, 60, 100], [30, 60, 100, 140])


def sweep():
    out = {"posv": {}, "potrf": {}}
    for dist in (SymmetricBlockCyclic(8), BlockCyclic2D(7, 4)):
        machine = bora(dist.num_nodes)
        rhs = RowCyclic1D(dist.num_nodes)
        out["posv"][dist.name] = [
            simulate(build_posv_graph(N, B, dist, rhs), machine).gflops_per_node
            for N in NS
        ]
        out["potrf"][dist.name] = [
            simulate(build_cholesky_graph(N, B, dist), machine).gflops_per_node
            for N in NS
        ]
    return out


def test_fig13_posv(run_once):
    series = run_once(sweep)
    sbc, bc = "SBC-extended(r=8)", "2DBC(7x4)"
    print_header(
        "Figure 13: POSV GFlop/s per node, P=28 (b=500, RHS one tile wide)",
        f"{'n':>8} {'SBC':>10} {'2DBC':>10} {'gain':>7}",
    )
    for i, N in enumerate(NS):
        s, b = series["posv"][sbc][i], series["posv"][bc][i]
        print(f"{N * B:>8} {s:>10.1f} {b:>10.1f} {(s / b - 1) * 100:>6.1f}%")

    for i in range(len(NS)):
        # SBC still wins on POSV...
        assert series["posv"][sbc][i] > 0.995 * series["posv"][bc][i]
    # ...but the average relative gain is smaller than for POTRF alone
    # (the solve phases are distribution-independent, §V-F.1).
    gain = lambda tab: sum(
        tab[sbc][i] / tab[bc][i] - 1 for i in range(len(NS))
    ) / len(NS)
    assert gain(series["posv"]) < gain(series["potrf"]) + 0.005
