"""Ablations of the design choices DESIGN.md calls out.

Three sweeps isolating what makes SBC work in the simulated system:

* diagonal allocation — extended vs basic vs a deliberately *invalid*
  diagonal policy (diagonal tiles assigned outside the row's pair clique),
  showing the clique property is what keeps the broadcast fan-out at r-2;
* scheduling policy — critical-path vs iteration-rank priorities vs fully
  synchronized iterations (the static-MPI regime);
* network sensitivity — the SBC/2DBC gap as a function of the effective
  per-node bandwidth (where communication stops mattering, the curves
  merge).
"""

import pytest
from conftest import print_header

from repro.comm import cholesky_message_count, count_communications, storage_tiles
from repro.config import MachineSpec, NetworkSpec, bora
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
from repro.distributions.base import Distribution
from repro.distributions.sbc import pair_index
from repro.graph import (
    build_cholesky_graph,
    set_critical_path_priorities,
    set_iteration_priorities,
)
from repro.runtime import simulate

B = 500


class NaiveDiagonalSBC(Distribution):
    """SBC with diagonal pattern positions assigned round-robin to ALL
    nodes, ignoring the pair-clique constraint — the ablation showing why
    §III-C insists the diagonal entry at position d must contain d."""

    def __init__(self, r: int):
        self.r = r
        self._P = r * (r - 1) // 2

    @property
    def num_nodes(self):
        return self._P

    @property
    def name(self):
        return f"SBC-naive-diag(r={self.r})"

    def owner(self, i, j):
        if i < j:
            i, j = j, i
        x, y = i % self.r, j % self.r
        if x != y:
            return pair_index(x, y)
        return (i // self.r + j) % self._P  # arbitrary node: breaks the clique

    def validate(self):
        pass


def test_ablation_diagonal_allocation(run_once):
    """The clique-respecting diagonal is what delivers Theorem 1."""

    def volumes():
        N = 120
        out = {}
        for dist in (
            SymmetricBlockCyclic(8),
            SymmetricBlockCyclic(8, variant="basic"),
            NaiveDiagonalSBC(8),
        ):
            g = build_cholesky_graph(N, B, dist)
            out[dist.name] = count_communications(g).num_messages
        out["S(r-2)"] = int(storage_tiles(N) * 6)
        out["S(r-1)"] = int(storage_tiles(N) * 7)
        return out

    vols = run_once(volumes)
    print_header("Ablation: diagonal allocation policy (messages, N=120)", "")
    for k, v in vols.items():
        print(f"  {k:>24}: {v}")
    ext = vols["SBC-extended(r=8)"]
    basic = vols["SBC-basic(r=8)"]
    naive = vols["SBC-naive-diag(r=8)"]
    # Extended <= basic (r-2 vs r-1 fan-out); naive breaks the bound.
    assert ext < basic
    assert naive > ext
    # The naive diagonal pays roughly one extra transfer per diagonal-
    # position tile, pushing it above the extended bound.
    assert naive > vols["S(r-2)"] * 0.95


def test_ablation_scheduling(run_once):
    """Dynamic priorities matter: CP > iteration-rank >> synchronized."""

    def runs():
        N = 60
        dist = SymmetricBlockCyclic(8)
        machine = bora(28)
        g = build_cholesky_graph(N, B, dist)
        set_critical_path_priorities(
            g, lambda t: machine.kernel.duration(t.flops, B)
        )
        cp = simulate(g, machine, auto_priorities=False).makespan
        g2 = build_cholesky_graph(N, B, dist)
        set_iteration_priorities(g2)
        it = simulate(g2, machine, auto_priorities=False).makespan
        g3 = build_cholesky_graph(N, B, dist)
        sync = simulate(g3, machine, synchronized=True).makespan
        return cp, it, sync

    cp, it, sync = run_once(runs)
    print_header(
        "Ablation: scheduling policy (makespan, SBC r=8, N=60)",
        f"critical-path {cp:.3f}s | iteration-rank {it:.3f}s | synchronized {sync:.3f}s",
    )
    assert cp <= it * 1.02
    assert sync > cp * 1.15  # fork-join loses the inter-iteration overlap


def test_ablation_bandwidth(run_once):
    """The SBC advantage lives in the communication-bound regime."""

    def gaps():
        N = 60
        out = []
        for bw in (1e15, 4e9, 2.5e9):
            res = {}
            for dist in (SymmetricBlockCyclic(8), BlockCyclic2D(7, 4)):
                m = MachineSpec(
                    nodes=28, cores=34, network=NetworkSpec(bandwidth=bw, latency=30e-6)
                )
                g = build_cholesky_graph(N, B, dist)
                res[dist.name] = simulate(g, m).gflops_per_node
            out.append((bw, res["SBC-extended(r=8)"] / res["2DBC(7x4)"] - 1))
        return out

    rows = run_once(gaps)
    print_header("Ablation: bandwidth sensitivity (SBC gain over 2DBC, N=60)", "")
    for bw, gain in rows:
        label = "infinite" if bw > 1e12 else f"{bw / 1e9:.1f} GB/s"
        print(f"  {label:>10}: {gain * 100:+.1f}%")
    # With free communication the distributions tie; the gain appears as
    # bandwidth tightens.
    assert abs(rows[0][1]) < 0.02
    assert rows[1][1] > rows[0][1]
    assert max(g for _, g in rows) > 0.02
