"""§IV — 2.5D volumes: S(r+c-2), the optimum r = 2c, and the cbrt(2) gain.

Counts the communication of actual 2.5D task graphs against the paper's
formula D = S(r+c-2), sweeps the slice count to locate the volume-optimal
c, and checks the asymptotic claims of §IV-A/B: the factor-2 improvement
over COnfCHOX's n^3/sqrt(M), and the cbrt(2) advantage (in volume and in
memory) over the 2.5D block-cyclic optimum.
"""

import pytest
from conftest import print_header

from repro.comm import (
    confchox_volume,
    count_communications,
    optimal_bc25d_parameters,
    optimal_sbc25d_parameters,
    sbc25d_cholesky_volume,
    sbc25d_volume_elements,
    storage_tiles,
)
from repro.distributions import SymmetricBlockCyclic, TwoDotFiveD
from repro.graph import build_cholesky_graph_25d

N, B = 48, 8


def counted_volumes():
    rows = []
    for c in (1, 2, 3, 4):
        d = TwoDotFiveD(SymmetricBlockCyclic(4, variant="basic"), c)
        g = build_cholesky_graph_25d(N, B, d)
        counted = count_communications(g).num_messages
        predicted = sbc25d_cholesky_volume(N, 4, c, variant="basic")
        rows.append((c, d.num_nodes, counted, int(predicted)))
    return rows


def test_25d_formula(run_once):
    rows = run_once(counted_volumes)
    print_header(
        f"2.5D SBC volume vs S(r+c-2), r=4 basic, N={N}",
        f"{'c':>3} {'P':>4} {'counted':>9} {'formula':>9}",
    )
    for c, P, counted, predicted in rows:
        print(f"{c:>3} {P:>4} {counted:>9} {predicted:>9}")
        assert counted <= predicted
        assert counted > 0.80 * predicted
    # Replication trades broadcast traffic for reduction traffic: the
    # counted volume grows with c at fixed r (the win comes from using a
    # SMALLER r at equal total P, not from c itself).
    assert rows[0][2] < rows[-1][2]


def test_optimal_c(run_once):
    """At fixed P, the volume-minimizing (r, c) satisfies r ~ 2c (§IV-B)."""

    def scan():
        P = 1024
        best = None
        for c in range(1, 33):
            r2 = 2 * P / c
            r = r2**0.5
            if abs(r - round(r)) > 1e-9:
                continue
            vol = storage_tiles(100) * (int(round(r)) + c - 2)
            if best is None or vol < best[2]:
                best = (int(round(r)), c, vol)
        return best

    r, c, _vol = run_once(scan)
    print_header("volume-optimal integer (r, c) at P=1024", f"r={r}, c={c}")
    r_opt, c_opt = optimal_sbc25d_parameters(1024)
    assert abs(r - r_opt) <= 2.0
    assert abs(c - c_opt) <= 2.0
    assert abs(r - 2 * c) <= 2  # the KKT relation, up to integrality


def test_factor2_vs_confchox(run_once):
    def ratio():
        n, M = 1e5, 1e7
        return confchox_volume(n, M) / sbc25d_volume_elements(n, M)

    assert run_once(ratio) == pytest.approx(2.0)


def test_cbrt2_vs_bc25d(run_once):
    def ratios():
        P = 10**7
        r, c = optimal_sbc25d_parameters(P)
        p, q, cb = optimal_bc25d_parameters(P)
        return (p + q + cb - 3) / (r + c - 2), cb / c

    vol_ratio, mem_ratio = run_once(ratios)
    assert vol_ratio == pytest.approx(2 ** (1 / 3), rel=1e-2)
    assert mem_ratio == pytest.approx(2 ** (1 / 3), rel=1e-2)  # memory advantage
