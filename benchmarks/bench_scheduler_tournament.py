"""Scheduler-policy tournament: the zoo × distributions × fault plans.

The scheduler-framework PR turned the engines' single hard-wired policy
(critical-path priorities + owner-computes placement) into one entry of
a pluggable zoo (:mod:`repro.schedulers`).  This bench races the whole
zoo over the paper's distribution families — SBC extended, SBC basic,
2D block-cyclic and 2.5D, all on the same node count — crossed with a
clean platform and a persistent-straggler fault plan, and reports two
rankings per cell group: **makespan** (what the paper optimizes) and
**communication volume** (what the paper argues explains it).

Every cell is a :class:`repro.service.JobSpec` — the policy is a spec
field, so the content-addressed store memoizes each (policy, dist,
faults) point individually — submitted through one
:class:`repro.service.SweepClient`.  Point ``REPRO_SWEEP_STORE`` at a
directory to keep the cache warm across invocations; a warm re-run
performs **zero** new simulations (asserted below).

Run with ``REPRO_BENCH_OUT=tournament.json`` to dump the rows as JSON;
``REPRO_FULL=1`` sweeps a paper-scale tile count.
"""

from __future__ import annotations

import json
import os
import platform

from conftest import print_header, sizes

from repro.config import bora
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic, TwoDotFiveD
from repro.runtime.faults import FaultPlan, SlowdownWindow
from repro.schedulers import POLICIES
from repro.service import JobSpec, SweepClient

B = 512
N = sizes(small=[20], full=[64])[0]
SEED = 2025

#: Every family on the same 8 nodes, so makespans are comparable across
#: columns as well as rows.
DISTS = [
    SymmetricBlockCyclic(4),             # extended, 8 nodes
    SymmetricBlockCyclic(4, "basic"),    # basic, 8 nodes
    BlockCyclic2D(2, 4),                 # 8 nodes
    TwoDotFiveD(BlockCyclic2D(2, 2), 2),  # 8 nodes
]

#: (label, FaultPlan or None).  Slowdown-only plans keep transfer volume
#: a pure function of (dist, policy) — no loss, so no retransmissions —
#: which the volume-invariance assertion below relies on.
FAULT_PLANS = [
    ("clean", None),
    ("straggler-x4", FaultPlan(
        seed=SEED, slowdowns=(SlowdownWindow(node=0, factor=4.0),))),
]


def _cells():
    """(dist, fault label, policy, JobSpec) for every cell, in order."""
    out = []
    for dist in DISTS:
        machine = bora(nodes=dist.num_nodes)
        for flabel, plan in FAULT_PLANS:
            for policy in sorted(POLICIES):
                spec = JobSpec.make(
                    "cholesky", N, B, dist, machine,
                    engine="compiled", faults=plan, policy=policy,
                )
                out.append((dist, flabel, policy, spec))
    return out


def sweep(client: SweepClient):
    """Submit every cell through the service; rows in sweep order."""
    cells = _cells()
    results = client.sweep([spec for _, _, _, spec in cells])
    rows = []
    for (dist, flabel, policy, _), res in zip(cells, results):
        rep = res.report
        rows.append({
            "dist": dist.name,
            "nodes": dist.num_nodes,
            "N": N,
            "faults": flabel,
            "policy": policy,
            "makespan_seconds": rep.makespan,
            "comm_bytes": rep.comm_bytes,
            "comm_messages": rep.comm_messages,
        })
    return rows


#: Cached model-checking certificates (one small-scope sweep per process).
_CERTS = None


def _certified():
    """Deadlock/starvation-freedom certificates for the whole zoo.

    The tournament refuses to rank policies the small-scope model
    checker (``repro.analyze.mc``) has not certified: a policy that can
    deadlock or starve a ready task would win rankings vacuously.
    Raises RuntimeError when any certificate fails verification.
    """
    global _CERTS
    if _CERTS is None:
        from repro.analyze import require_certificates

        _CERTS = require_certificates(sorted(POLICIES))
    return _CERTS


def _rankings(rows):
    """Per (dist, faults) group: policies ordered by makespan and volume.

    Ranking is gated on :func:`_certified` — every participating policy
    must hold a valid model-checking certificate first.
    """
    certs = _certified()
    missing = sorted({r["policy"] for r in rows} - set(certs))
    if missing:
        raise RuntimeError(
            f"policies without model-check certificates: {missing}")
    groups = {}
    for r in rows:
        groups.setdefault((r["dist"], r["faults"]), []).append(r)
    out = {}
    for key, cells in groups.items():
        out[key] = {
            "makespan": [c["policy"] for c in
                         sorted(cells, key=lambda c: c["makespan_seconds"])],
            "volume": [c["policy"] for c in
                       sorted(cells, key=lambda c: (c["comm_bytes"],
                                                    c["policy"]))],
        }
    return out


def test_scheduler_tournament(run_once, tmp_path):
    store = os.environ.get("REPRO_SWEEP_STORE") or str(tmp_path / "sweep-store")
    client = SweepClient(store=store)
    try:
        rows = run_once(sweep, client)
        sims_first = client.simulations_run()
        print_header(
            f"Scheduler tournament, POTRF N={N}, b={B}, "
            f"P={DISTS[0].num_nodes}, {len(POLICIES)} policies",
            f"{'dist':>22} {'faults':>13} {'policy':>20} "
            f"{'makespan':>11} {'MB':>8} {'msgs':>6}",
        )
        for r in rows:
            print(f"{r['dist']:>22} {r['faults']:>13} {r['policy']:>20} "
                  f"{r['makespan_seconds']:>11.6f} "
                  f"{r['comm_bytes'] / 1e6:>8.2f} {r['comm_messages']:>6}")
        ranks = _rankings(rows)
        print_header(
            "Rankings (best first)",
            f"{'dist':>22} {'faults':>13}  makespan order | volume order",
        )
        for (dist, flabel), rk in sorted(ranks.items()):
            print(f"{dist:>22} {flabel:>13}  "
                  f"{' > '.join(rk['makespan'])} | "
                  f"{' > '.join(rk['volume'])}")
        print(f"(sweep service: {sims_first} simulations, store {store})")

        # The tournament must actually cover the advertised matrix.
        assert len({r["policy"] for r in rows}) >= 5
        assert len({r["dist"] for r in rows}) >= 3
        by_cell = {(r["dist"], r["faults"], r["policy"]): r for r in rows}
        for dist in DISTS:
            for flabel, _ in FAULT_PLANS:
                # Fork-join barriers can never beat the asynchronous
                # default — the per-policy restatement of the paper's
                # synchronized-vs-asynchronous claim.
                cp = by_cell[(dist.name, flabel, "critical-path")]
                fj = by_cell[(dist.name, flabel, "fork-join")]
                assert fj["makespan_seconds"] >= cp["makespan_seconds"]
                # Volume is placement-determined: every non-migrating
                # policy moves exactly the owner-computes bytes.
                volumes = {
                    r["comm_bytes"] for r in rows
                    if r["dist"] == dist.name and r["faults"] == flabel
                    and not POLICIES[r["policy"]].migrates
                }
                assert len(volumes) == 1, (dist.name, flabel, volumes)
        # The paper's headline survives the policy sweep: SBC-extended
        # moves less than 2DBC under every policy that keeps placement.
        for flabel, _ in FAULT_PLANS:
            for policy in sorted(POLICIES):
                if POLICIES[policy].migrates:
                    continue
                sbc = by_cell[(DISTS[0].name, flabel, policy)]
                bc = by_cell[(DISTS[2].name, flabel, policy)]
                assert sbc["comm_bytes"] < bc["comm_bytes"], policy

        # The determinism + memoization contract: a warm-cache re-run
        # reproduces every row exactly and simulates NOTHING new.
        again = sweep(client)
        assert again == rows
        assert client.simulations_run() == sims_first, \
            "warm-cache re-run must perform zero new simulations"
    finally:
        client.close()

    out = os.environ.get("REPRO_BENCH_OUT")
    if out:
        doc = {
            "bench": "scheduler-tournament",
            "config": {"b": B, "N": N, "seed": SEED,
                       "dists": [d.name for d in DISTS],
                       "fault_plans": [f for f, _ in FAULT_PLANS],
                       "policies": sorted(POLICIES), "machine": "bora"},
            "host": {"python": platform.python_version(),
                     "machine": platform.machine()},
            "rows": rows,
            "rankings": [
                {"dist": d, "faults": f, **rk}
                for (d, f), rk in sorted(_rankings(rows).items())
            ],
        }
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out}")
