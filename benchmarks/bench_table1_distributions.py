"""Table I — sizes of the considered distributions.

Regenerates the paper's Table I: for each SBC parameter r in 6..9, the
node count P = r(r-1)/2 and the two fairest 2D block-cyclic competitors
(p, q), together with the broadcast fan-outs that drive the communication
volumes (r-2 for extended SBC vs p+q-2 for 2DBC).
"""

from conftest import print_header

from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic, best_rectangle

#: The paper's Table I: SBC r -> [(p, q) options for 2DBC].
TABLE1 = {
    6: [(5, 3), (4, 4)],
    7: [(5, 4), (7, 3)],
    8: [(7, 4), (6, 5)],
    9: [(7, 5), (6, 6)],
}


def build_table():
    rows = []
    for r, bc_options in TABLE1.items():
        sbc = SymmetricBlockCyclic(r)
        for i, (p, q) in enumerate(bc_options):
            bc = BlockCyclic2D(p, q)
            rows.append(
                {
                    "r": r if i == 0 else "",
                    "P_sbc": sbc.num_nodes if i == 0 else "",
                    "fanout_sbc": sbc.broadcast_fanout() if i == 0 else "",
                    "p": p,
                    "q": q,
                    "P_bc": bc.num_nodes,
                    "fanout_bc": bc.broadcast_fanout(),
                }
            )
    return rows


def test_table1(run_once):
    rows = run_once(build_table)
    print_header(
        "Table I: sizes of the considered distributions",
        f"{'r':>3} {'P':>4} {'sends':>6} | {'p':>3} {'q':>3} {'P':>4} {'sends':>6}",
    )
    for row in rows:
        print(
            f"{row['r']!s:>3} {row['P_sbc']!s:>4} {row['fanout_sbc']!s:>6} | "
            f"{row['p']:>3} {row['q']:>3} {row['P_bc']:>4} {row['fanout_bc']:>6}"
        )
    # Paper's exact numbers.
    assert SymmetricBlockCyclic(6).num_nodes == 15
    assert SymmetricBlockCyclic(7).num_nodes == 21
    assert SymmetricBlockCyclic(8).num_nodes == 28
    assert SymmetricBlockCyclic(9).num_nodes == 36


def test_best_rectangle_selects_table_options(run_once):
    """The automatic (p, q) chooser picks options listed in Table I."""

    def check():
        picks = {}
        for P in (16, 20, 21, 28, 30, 35, 36):
            d = best_rectangle(P)
            picks[P] = (d.p, d.q)
        return picks

    picks = run_once(check)
    listed = {pq for opts in TABLE1.values() for pq in opts} | {(4, 4), (6, 6)}
    for P, pq in picks.items():
        assert pq in listed, f"best_rectangle({P}) = {pq} not in Table I"
