"""Figure 10 — SBC vs 2DBC performance for every r in 6..9.

The paper shows that the SBC improvement observed for r = 8 holds across
node counts: for each r in 6..9 it plots per-node GFlop/s of SBC against
the two fairest 2DBC configurations of Table I.  We reproduce each panel
at simulation scale and assert SBC's curve sits on top in the
communication-sensitive range.
"""

from conftest import FULL, print_header, sizes

from repro.config import bora
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
from repro.graph import build_cholesky_graph
from repro.runtime import simulate

B = 500
NS = sizes([40, 80], [40, 80, 120, 160])

#: Table I pairings: r -> 2DBC options.
PANELS = {
    6: [(5, 3), (4, 4)],
    7: [(5, 4), (7, 3)],
    8: [(7, 4), (6, 5)],
    9: [(7, 5), (6, 6)],
}


def sweep():
    out = {}
    for r, bc_opts in PANELS.items():
        dists = [SymmetricBlockCyclic(r)] + [BlockCyclic2D(p, q) for p, q in bc_opts]
        panel = {}
        for dist in dists:
            machine = bora(dist.num_nodes)
            panel[dist.name] = (
                dist.num_nodes,
                [
                    simulate(build_cholesky_graph(N, B, dist), machine).gflops_per_node
                    for N in NS
                ],
            )
        out[r] = panel
    return out


def test_fig10_all_r(run_once):
    results = run_once(sweep)
    for r, panel in results.items():
        names = list(panel)
        print_header(
            f"Figure 10 panel r={r}",
            f"{'n':>8} " + " ".join(f"{n:>16}" for n in names),
        )
        for i, N in enumerate(NS):
            print(
                f"{N * B:>8} "
                + " ".join(f"{panel[n][1][i]:>16.1f}" for n in names)
            )
        sbc_name = names[0]
        P_sbc, sbc = panel[sbc_name]
        for bc_name in names[1:]:
            P_bc, bc = panel[bc_name]
            # The per-node figure inherently favours smaller node counts
            # (fixed work over fewer nodes), so allow a wider tolerance
            # when the 2DBC option uses fewer nodes than SBC.
            tol = 0.97 if P_sbc <= P_bc else 0.955
            for i in range(len(NS)):
                assert sbc[i] > tol * bc[i]
            # When SBC does not use more nodes than the 2DBC option, it
            # must strictly win somewhere in the sweep.
            if P_sbc <= P_bc:
                assert any(sbc[i] > bc[i] for i in range(len(NS)))
