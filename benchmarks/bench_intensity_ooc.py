"""§III-E — arithmetic intensity and the out-of-core connection.

Reproduces the analytical table of §III-E with *measured* quantities:

* parallel: whole-run arithmetic intensity (flops per transferred element)
  of SBC and square-ish 2DBC, which approach (2/3) sqrt(M) and
  (2/3) sqrt(M) / sqrt(2) respectively;
* sequential: exact transfer counts of the blocked left-looking
  out-of-core Cholesky (Béreux) against its n^3/(3 sqrt(M)) leading term,
  the naive panel algorithm, the tight lower bound n^3/(3 sqrt(2) sqrt(M)),
  and the COnfCHOX / 2.5D-SBC parallel volumes.
"""

import math

import pytest
from conftest import print_header

from repro.comm import (
    beaumont_lower_bound,
    measured_lu_intensity,
    bereux_volume,
    confchox_volume,
    measured_cholesky_intensity,
    memory_per_node_2d,
    sbc25d_volume_elements,
)
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
from repro.ooc import (
    block_left_looking_volume,
    panel_left_looking_volume,
    simulate_tiled_right_looking,
)

B, N = 8, 192


def parallel_intensities():
    rows = []
    for dist in (SymmetricBlockCyclic(8, variant="basic"), BlockCyclic2D(6, 5)):
        M = memory_per_node_2d(N * B, dist.num_nodes)
        rho = measured_cholesky_intensity(dist, N, B)
        rows.append((f"Cholesky {dist.name}", M, rho, rho / math.sqrt(M)))
    # The LU reference point of §III-E (full matrix stored: M = n^2/P).
    bc = BlockCyclic2D(6, 5)
    M_lu = (N * B) ** 2 / bc.num_nodes
    rho_lu = measured_lu_intensity(bc, N, B)
    rows.append((f"LU {bc.name}", M_lu, rho_lu, rho_lu / math.sqrt(M_lu)))
    return rows


def test_parallel_intensity(run_once):
    rows = run_once(parallel_intensities)
    print_header(
        "Arithmetic intensity (measured, whole factorization)",
        f"{'distribution':>18} {'M':>9} {'rho':>9} {'rho/sqrt(M)':>12}",
    )
    for name, M, rho, norm in rows:
        print(f"{name:>18} {M:>9.0f} {rho:>9.1f} {norm:>12.3f}")
    sbc_norm = rows[0][3]
    bc_norm = rows[1][3]
    lu_norm = rows[2][3]
    # SBC reaches the sequential (2/3) sqrt(M); 2DBC is sqrt(2) below.
    assert sbc_norm == pytest.approx(2 / 3, rel=0.15)
    assert sbc_norm / bc_norm == pytest.approx(math.sqrt(2), rel=0.12)
    # The paper's headline restated: Cholesky+SBC matches LU+2DBC.
    assert sbc_norm == pytest.approx(lu_norm, rel=0.10)


def ooc_table():
    n, M = 16000, 100_000
    return n, M, [
        ("lower bound (Beaumont et al.)", beaumont_lower_bound(n, M)),
        ("Béreux leading term", bereux_volume(n, M)),
        ("blocked left-looking (simulated)", float(block_left_looking_volume(n, M))),
        ("panel left-looking (simulated)", float(panel_left_looking_volume(n, M))),
        ("LRU right-looking (cache-simulated)",
         float(simulate_tiled_right_looking(120, 100, M))),
        ("COnfCHOX n^3/sqrt(M)", confchox_volume(n, M)),
        ("2.5D SBC n^3/(2 sqrt(M))", sbc25d_volume_elements(n, M)),
    ]


def test_ooc_volumes(run_once):
    n, M, rows = run_once(ooc_table)
    print_header(
        f"Out-of-core transfer volumes, n={n}, M={M} elements",
        f"{'algorithm':>38} {'G elements':>11}",
    )
    vals = dict(rows)
    for name, v in rows:
        print(f"{name:>38} {v / 1e9:>11.3f}")
    # Ordering of §II/§III-E.
    assert vals["lower bound (Beaumont et al.)"] < vals["Béreux leading term"]
    assert vals["Béreux leading term"] < vals["blocked left-looking (simulated)"]
    assert (
        vals["blocked left-looking (simulated)"]
        < vals["panel left-looking (simulated)"]
    )
    # The simulated blocked algorithm stays within 30% of its leading term
    # at this n/sqrt(M) ratio, and the naive panel variant is far worse.
    assert vals["blocked left-looking (simulated)"] < 1.5 * vals["Béreux leading term"]
    assert vals["panel left-looking (simulated)"] > 5 * vals["Béreux leading term"]
    # §IV-A: this paper's 2.5D volume halves COnfCHOX's.
    assert vals["COnfCHOX n^3/sqrt(M)"] / vals["2.5D SBC n^3/(2 sqrt(M))"] == pytest.approx(2.0)
