"""Figure 8 — measured inter-node communication volume during POTRF.

The paper measures the bytes moved by Chameleon/StarPU for P = 20 and 21
(2DBC 5x4, 2DBC 7x3, SBC r=7) as the matrix grows, with b = 500 (2 MB
tiles).  Our exact counter reproduces the measurement analytically (the
distributed executor confirms the counter equals really-measured IPC
bytes; see tests/test_distributed.py), so this bench regenerates the
figure at the paper's true scale, up to n = 300000 (N = 600 tiles).
"""

from conftest import FULL, print_header, sizes

from repro.comm import cholesky_volume_exact
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic

B = 500
SERIES = [
    ("SBC r=7 (P=21)", SymmetricBlockCyclic(7)),
    ("2DBC 5x4 (P=20)", BlockCyclic2D(5, 4)),
    ("2DBC 7x3 (P=21)", BlockCyclic2D(7, 3)),
]
#: Tile counts: the paper sweeps n = 12500..300000, i.e. N = 25..600.
NS = sizes([25, 50, 100, 200, 400, 600], [25, 50, 100, 150, 200, 300, 400, 500, 600])


def compute_series():
    out = {}
    for name, dist in SERIES:
        out[name] = [cholesky_volume_exact(dist, N, B) / 1e9 for N in NS]
    return out


def test_fig8_comm_volume(run_once):
    series = run_once(compute_series)
    print_header(
        "Figure 8: POTRF communication volume (GB), b=500",
        f"{'n':>8} " + " ".join(f"{name:>16}" for name, _ in SERIES),
    )
    for i, N in enumerate(NS):
        row = " ".join(f"{series[name][i]:>16.1f}" for name, _ in SERIES)
        print(f"{N * B:>8} {row}")

    sbc = series["SBC r=7 (P=21)"]
    bc54 = series["2DBC 5x4 (P=20)"]
    bc73 = series["2DBC 7x3 (P=21)"]
    for i in range(len(NS)):
        # The paper's Figure 8 ordering: SBC below both 2DBC curves, and
        # the squarer 5x4 below the elongated 7x3.
        assert sbc[i] < bc54[i] < bc73[i]
    # The relative gap approaches the theoretical ratios for large n:
    # (p+q-2)/(r-2) = 7/5 vs 5x4 and 8/5 vs 7x3.
    big = len(NS) - 1
    assert abs(bc54[big] / sbc[big] - 7 / 5) < 0.08
    assert abs(bc73[big] / sbc[big] - 8 / 5) < 0.08
