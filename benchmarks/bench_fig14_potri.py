"""Figure 14 — POTRI (inversion) with 2DBC, SBC, and SBC-remap-2DBC, P=28.

POTRI = POTRF + TRTRI + LAUUM.  TRTRI's nonsymmetric reads favour 2DBC,
so the paper's mixed strategy remaps the matrix to 2DBC for TRTRI and back
to SBC for LAUUM.  At P = 28 the paper finds the three variants performing
comparably (the volume reduction, 27/23, is too small to show), with the
remapped strategy reducing communication without degrading performance —
we assert exactly that, plus the underlying volume ordering.
"""

from conftest import FULL, print_header, sizes

from repro.comm import count_communications
from repro.config import bora
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
from repro.graph import build_potri_graph
from repro.runtime import simulate

B = 500
NS = sizes([24, 48], [24, 48, 72])


def build(N, variant):
    sbc, bc = SymmetricBlockCyclic(8), BlockCyclic2D(7, 4)
    if variant == "2dbc":
        return build_potri_graph(N, B, bc), 28
    if variant == "sbc":
        return build_potri_graph(N, B, sbc), 28
    return build_potri_graph(N, B, sbc, trtri_dist=bc), 28


def sweep():
    out = {}
    for variant in ("2dbc", "sbc", "remap"):
        perfs, vols = [], []
        for N in NS:
            g, P = build(N, variant)
            rep = simulate(g, bora(P))
            perfs.append(rep.gflops_per_node)
            vols.append(count_communications(g).total_bytes / 1e9)
        out[variant] = {"perf": perfs, "vol": vols}
    return out


def test_fig14_potri(run_once):
    series = run_once(sweep)
    print_header(
        "Figure 14: POTRI GFlop/s per node and volume (GB), P=28",
        f"{'n':>8} {'2DBC':>9} {'SBC':>9} {'remap':>9} | "
        f"{'vol 2DBC':>9} {'vol SBC':>9} {'vol remap':>9}",
    )
    for i, N in enumerate(NS):
        print(
            f"{N * B:>8} {series['2dbc']['perf'][i]:>9.1f} "
            f"{series['sbc']['perf'][i]:>9.1f} {series['remap']['perf'][i]:>9.1f} | "
            f"{series['2dbc']['vol'][i]:>9.1f} {series['sbc']['vol'][i]:>9.1f} "
            f"{series['remap']['vol'][i]:>9.1f}"
        )

    for i in range(len(NS)):
        # The remap strategy never loses to pure 2DBC on communication.
        assert series["remap"]["vol"][i] < series["2dbc"]["vol"][i]
        # §V-F.2's conclusion at P=28: performance is comparable across
        # the three strategies (no variant collapses) — within 12%.
        perfs = [series[v]["perf"][i] for v in ("2dbc", "sbc", "remap")]
        assert max(perfs) / min(perfs) < 1.12
