"""Figure 12 — total running time of Cholesky vs matrix size.

Same data as Figure 10 but in absolute seconds (the paper truncates at
n <= 200000 where the differences are visible).  We print the simulated
makespans for each r of Table I and assert SBC's total time is below the
matched 2DBC's for every size.
"""

from conftest import FULL, print_header, sizes

from repro.config import bora
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
from repro.graph import build_cholesky_graph
from repro.runtime import simulate

B = 500
NS = sizes([40, 80], [40, 80, 120, 160])
PAIRS = [(6, (5, 3)), (7, (7, 3)), (8, (7, 4)), (9, (6, 6))]


def sweep():
    out = {}
    for r, (p, q) in PAIRS:
        sbc = SymmetricBlockCyclic(r)
        bc = BlockCyclic2D(p, q)
        out[r] = {
            "sbc": [
                simulate(build_cholesky_graph(N, B, sbc), bora(sbc.num_nodes)).makespan
                for N in NS
            ],
            "bc": [
                simulate(build_cholesky_graph(N, B, bc), bora(bc.num_nodes)).makespan
                for N in NS
            ],
            "names": (sbc.name, bc.name),
        }
    return out


def test_fig12_runtime(run_once):
    results = run_once(sweep)
    for r, data in results.items():
        sbc_name, bc_name = data["names"]
        print_header(
            f"Figure 12 panel r={r}: total running time (s)",
            f"{'n':>8} {sbc_name:>18} {bc_name:>14}",
        )
        for i, N in enumerate(NS):
            print(f"{N * B:>8} {data['sbc'][i]:>18.3f} {data['bc'][i]:>14.3f}")
        for i in range(len(NS)):
            assert data["sbc"][i] <= data["bc"][i] * 1.02
        # Running time grows with n (the growth is milder than the O(n^3)
        # work because bigger matrices use the nodes better).
        assert data["sbc"][-1] > 1.5 * data["sbc"][0]
