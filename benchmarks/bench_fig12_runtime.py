"""Figure 12 — total running time of Cholesky vs matrix size.

Same data as Figure 10 but in absolute seconds (the paper truncates at
n <= 200000 where the differences are visible).  We print the simulated
makespans for each r of Table I and assert SBC's total time is below the
matched 2DBC's for every size.  The largest SBC run is traced through
``repro.obs`` and its metrics summary is attached to the output.
"""

from conftest import FULL, print_header, sizes

from repro.comm import count_communications
from repro.config import bora
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
from repro.graph import build_cholesky_graph
from repro.runtime import simulate

B = 500
NS = sizes([40, 80], [40, 80, 120, 160])
PAIRS = [(6, (5, 3)), (7, (7, 3)), (8, (7, 4)), (9, (6, 6))]


def sweep():
    out = {}
    for r, (p, q) in PAIRS:
        sbc = SymmetricBlockCyclic(r)
        bc = BlockCyclic2D(p, q)
        out[r] = {
            "sbc": [
                simulate(build_cholesky_graph(N, B, sbc), bora(sbc.num_nodes)).makespan
                for N in NS
            ],
            "bc": [
                simulate(build_cholesky_graph(N, B, bc), bora(bc.num_nodes)).makespan
                for N in NS
            ],
            "names": (sbc.name, bc.name),
        }
    # Trace the largest SBC configuration to attach the observability
    # metrics (wire bytes per pair, utilization, queue depths) to the
    # benchmark's output.
    r, _pq = PAIRS[-1]
    sbc = SymmetricBlockCyclic(r)
    g = build_cholesky_graph(NS[-1], B, sbc)
    rep = simulate(g, bora(sbc.num_nodes), trace=True)
    assert rep.obs.metrics.counter("net.bytes").total() == (
        count_communications(g).total_bytes
    )
    out["metrics"] = {"r": r, "N": NS[-1], "summary": rep.obs.metrics.summary()}
    return out


def test_fig12_runtime(run_once):
    results = run_once(sweep)
    for r, data in results.items():
        if r == "metrics":
            continue
        sbc_name, bc_name = data["names"]
        print_header(
            f"Figure 12 panel r={r}: total running time (s)",
            f"{'n':>8} {sbc_name:>18} {bc_name:>14}",
        )
        for i, N in enumerate(NS):
            print(f"{N * B:>8} {data['sbc'][i]:>18.3f} {data['bc'][i]:>14.3f}")
        for i in range(len(NS)):
            assert data["sbc"][i] <= data["bc"][i] * 1.02
        # Running time grows with n (the growth is milder than the O(n^3)
        # work because bigger matrices use the nodes better).
        assert data["sbc"][-1] > 1.5 * data["sbc"][0]
    m = results["metrics"]
    print_header(
        f"Figure 12 traced run (SBC r={m['r']}, N={m['N']}): metrics summary",
        m["summary"],
    )
