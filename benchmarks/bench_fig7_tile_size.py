"""Figure 7 — single-node Cholesky performance vs tile size.

The paper factors a 50000x50000 matrix on one 36-core node with tile sizes
100..1000 and finds near-maximum performance from b = 500 on; b = 500 is
then used everywhere.  We reproduce the tradeoff with the simulator: small
tiles lose kernel efficiency and pay per-task overhead, huge tiles starve
the 34 workers of parallelism.  The default matrix is scaled to n = 10000
(a 50000-tile sweep at b = 100 means 21M simulated tasks); REPRO_FULL uses
n = 25000.
"""

from conftest import FULL, print_header, sizes

from repro.config import bora
from repro.distributions import BlockCyclic2D
from repro.graph import build_cholesky_graph
from repro.runtime import simulate

N_ELEMENTS = 25000 if FULL else 10000
TILE_SIZES = [100, 125, 200, 250, 500, 1000]


def sweep():
    machine = bora(1)
    out = []
    for b in TILE_SIZES:
        ntiles = N_ELEMENTS // b
        graph = build_cholesky_graph(ntiles, b, BlockCyclic2D(1, 1))
        rep = simulate(graph, machine)
        out.append((b, rep.gflops_per_node, rep.avg_utilization))
    return out


def test_fig7_tile_size(run_once):
    rows = run_once(sweep)
    print_header(
        f"Figure 7: single-node POTRF vs tile size (n={N_ELEMENTS})",
        f"{'b':>6} {'GFlop/s':>10} {'utilization':>12}",
    )
    for b, gf, util in rows:
        print(f"{b:>6} {gf:>10.1f} {util:>12.2f}")

    perf = dict((b, gf) for b, gf, _ in rows)
    best = max(perf.values())
    # The paper's tradeoff: small tiles lose kernel efficiency, huge tiles
    # starve the workers of parallelism.  At the scaled-down n the
    # parallelism cliff moves left, so the optimum sits in 200..500
    # (it is at ~500 for the paper's n = 50000).
    assert perf[100] < perf[125] < perf[200]  # efficiency-limited regime
    assert best > 1.2 * perf[100]
    assert max(perf, key=perf.get) in (200, 250, 500)
    assert perf[1000] < 0.6 * best  # parallelism-starved regime
    # The optimum approaches the achievable node rate (34 busy workers).
    node_rate = 34 * bora(1).kernel.rate(250) / 1e9
    assert best > 0.85 * node_rate
