"""Shared configuration for the benchmark suite.

Every bench regenerates one table or figure of the paper: it prints the
same rows/series the paper reports (scaled to simulation-tractable sizes
unless ``REPRO_FULL=1``) and registers one representative timing with
pytest-benchmark.

The simulated platform is the paper's *bora* cluster; see
``repro.config.bora`` for the constants and DESIGN.md for the calibration
discussion (effective per-node MPI bandwidth below wire speed).
"""

from __future__ import annotations

import os

import pytest

#: Full-scale mode reproduces the paper's matrix sizes where tractable.
FULL = os.environ.get("REPRO_FULL", "0") == "1"


def sizes(small, full):
    """Pick the N-tile sweep depending on REPRO_FULL."""
    return full if FULL else small


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark.

    The benches are deterministic simulations/counters — statistical
    repetition would only waste the suite's time budget.
    """

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


def print_header(title: str, columns: str) -> None:
    print(f"\n=== {title} ===")
    print(columns)
