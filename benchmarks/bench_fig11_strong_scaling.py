"""Figure 11 — strong scaling of 2DBC and SBC at fixed matrix size.

The paper fixes n = 200000 and grows the node count (P = 15..36,
r = 6..9): SBC holds its per-node throughput much better — at n = 200000
SBC with P = 36 matches 2DBC with P = 16 per node.  We reproduce the
strong-scaling sweep at a fixed simulated size and assert both that SBC
degrades more slowly and that the headline crossover (SBC at the largest
P at least matching 2DBC at a much smaller P) appears.
"""

from conftest import FULL, print_header

from repro.config import bora
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
from repro.graph import build_cholesky_graph
from repro.runtime import simulate

B = 500
N = 120 if FULL else 72  # fixed matrix: n = 36000 (60000 with REPRO_FULL)

SBC_RS = [6, 7, 8, 9]
BC_GRIDS = [(4, 4), (5, 4), (7, 4), (6, 6)]  # P = 16, 20, 28, 36


def sweep():
    rows = []
    for r in SBC_RS:
        d = SymmetricBlockCyclic(r)
        rep = simulate(build_cholesky_graph(N, B, d), bora(d.num_nodes))
        rows.append((d.name, d.num_nodes, rep.gflops_per_node))
    for p, q in BC_GRIDS:
        d = BlockCyclic2D(p, q)
        rep = simulate(build_cholesky_graph(N, B, d), bora(d.num_nodes))
        rows.append((d.name, d.num_nodes, rep.gflops_per_node))
    return rows


def test_fig11_strong_scaling(run_once):
    rows = run_once(sweep)
    print_header(
        f"Figure 11: strong scaling at n={N * B}",
        f"{'config':>18} {'P':>4} {'GF/s/node':>10} {'total GF/s':>11}",
    )
    for name, P, gf in rows:
        print(f"{name:>18} {P:>4} {gf:>10.1f} {gf * P:>11.0f}")

    perf = {name: (P, gf) for name, P, gf in rows}
    # SBC matches or beats 2DBC at matched scale (P=28 vs 28, P=36 vs 36);
    # simulated margins are small, so allow 2% on the first and require a
    # strict win at the largest scale where communication dominates.
    assert perf["SBC-extended(r=8)"][1] > 0.98 * perf["2DBC(7x4)"][1]
    assert perf["SBC-extended(r=9)"][1] > perf["2DBC(6x6)"][1]
    # The paper's headline is that SBC at P=36 holds per-node throughput
    # close to 2DBC at P=16 at n=200000; at the scaled-down default size
    # the strong-scaling penalty is steeper, so we assert the qualitative
    # version: r=9 keeps a meaningful fraction of the P=16 rate.
    assert perf["SBC-extended(r=9)"][1] > 0.45 * perf["2DBC(4x4)"][1]
    # Total throughput still increases with P for SBC (useful scaling).
    assert perf["SBC-extended(r=9)"][0] * perf["SBC-extended(r=9)"][1] > (
        perf["SBC-extended(r=6)"][0] * perf["SBC-extended(r=6)"][1]
    )
