"""Builders for the common interconnect shapes.

Each builder returns an immutable :class:`~repro.topology.model.Topology`
over ``P`` compute nodes; all links share one ``bandwidth``/``latency``
unless noted.  Pass a :class:`~repro.topology.model.Heterogeneity` as
``hetero=`` to overlay per-node speed/core differences on any shape.

The shapes follow the esds exemplar (clique/chain/ring/grid/star
adjacency) plus a two-level fat tree:

* :func:`clique` — every pair directly linked (the paper's platform; a
  *uniform* clique reproduces the engines' scalar network model
  bit-exactly);
* :func:`chain` — a line ``0 - 1 - ... - P-1``;
* :func:`ring` — the chain closed into a cycle;
* :func:`grid` — a ``rows x cols`` 2D mesh;
* :func:`star` — every node hangs off one central switch (optionally
  with a finite shared backplane);
* :func:`fat_tree` — leaf switches of ``arity`` nodes each under one
  core switch, with configurable (oversubscribable) uplinks.

Remember the transport is store-and-forward per quantum: a two-hop
route (e.g. through a star's hub) pays each hop's wire time, so its
effective end-to-end bandwidth is half a direct link's even before any
contention — matching how shared fabrics actually degrade the paper's
"fewer communications" advantage.  See ``docs/topology.md``.
"""

from __future__ import annotations

import math
from typing import Optional

from .model import (
    DEFAULT_BANDWIDTH,
    DEFAULT_LATENCY,
    Heterogeneity,
    Link,
    Topology,
)

__all__ = ["clique", "chain", "ring", "grid", "star", "fat_tree"]


def _finish(topo: Topology, hetero: Optional[Heterogeneity]) -> Topology:
    return topo if hetero is None else topo.with_heterogeneity(hetero)


def clique(num_nodes: int, bandwidth: float = DEFAULT_BANDWIDTH,
           latency: float = DEFAULT_LATENCY,
           hetero: Optional[Heterogeneity] = None) -> Topology:
    """Every node pair directly linked (the paper's switched fabric)."""
    links = tuple(
        Link(u, v, bandwidth, latency)
        for u in range(num_nodes) for v in range(u + 1, num_nodes)
    )
    return _finish(Topology(num_nodes, links, kind="clique"), hetero)


def chain(num_nodes: int, bandwidth: float = DEFAULT_BANDWIDTH,
          latency: float = DEFAULT_LATENCY,
          hetero: Optional[Heterogeneity] = None) -> Topology:
    """A line ``0 - 1 - ... - P-1``; traffic funnels through the middle."""
    links = tuple(
        Link(i, i + 1, bandwidth, latency) for i in range(num_nodes - 1)
    )
    return _finish(Topology(num_nodes, links, kind="chain"), hetero)


def ring(num_nodes: int, bandwidth: float = DEFAULT_BANDWIDTH,
         latency: float = DEFAULT_LATENCY,
         hetero: Optional[Heterogeneity] = None) -> Topology:
    """The chain closed into a cycle (needs at least 3 nodes)."""
    if num_nodes < 3:
        raise ValueError(f"a ring needs at least 3 nodes, got {num_nodes}")
    links = tuple(
        Link(i, (i + 1) % num_nodes, bandwidth, latency)
        for i in range(num_nodes)
    )
    return _finish(Topology(num_nodes, links, kind="ring"), hetero)


def grid(rows: int, cols: int, bandwidth: float = DEFAULT_BANDWIDTH,
         latency: float = DEFAULT_LATENCY,
         hetero: Optional[Heterogeneity] = None) -> Topology:
    """A ``rows x cols`` 2D mesh; node ``(r, c)`` is vertex ``r*cols + c``."""
    if rows < 1 or cols < 1:
        raise ValueError(f"grid dimensions must be positive, got {rows}x{cols}")
    links: list[Link] = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                links.append(Link(u, u + 1, bandwidth, latency))
            if r + 1 < rows:
                links.append(Link(u, u + cols, bandwidth, latency))
    return _finish(Topology(rows * cols, tuple(links), kind="grid"), hetero)


def star(num_nodes: int, bandwidth: float = DEFAULT_BANDWIDTH,
         latency: float = DEFAULT_LATENCY,
         switch_bandwidth: float = math.inf,
         hetero: Optional[Heterogeneity] = None) -> Topology:
    """Every node hangs off one central switch (vertex ``P``).

    Each message crosses two links (in, out), so end-to-end bandwidth is
    half a link's; a finite ``switch_bandwidth`` additionally serializes
    *all* traffic on the hub's backplane — the harshest contention model.
    """
    links = tuple(
        Link(i, num_nodes, bandwidth, latency) for i in range(num_nodes)
    )
    return _finish(
        Topology(num_nodes, links, num_switches=1,
                 switch_bandwidth=(switch_bandwidth,), kind="star"),
        hetero,
    )


def fat_tree(num_nodes: int, arity: int = 4,
             bandwidth: float = DEFAULT_BANDWIDTH,
             latency: float = DEFAULT_LATENCY,
             uplink_bandwidth: Optional[float] = None,
             switch_bandwidth: float = math.inf,
             hetero: Optional[Heterogeneity] = None) -> Topology:
    """A two-level tree: leaf switches of ``arity`` nodes under one core.

    Nodes ``0..P-1`` attach to leaf switch ``P + i // arity``; every leaf
    uplinks to the core switch (the last vertex).  ``uplink_bandwidth``
    defaults to ``arity * bandwidth`` (non-blocking); pass less to model
    oversubscription.  With ``P <= arity`` there is a single switch and
    the shape degenerates to a :func:`star`.
    """
    if arity < 1:
        raise ValueError(f"arity must be >= 1, got {arity}")
    n_leaves = (num_nodes + arity - 1) // arity
    if n_leaves <= 1:
        return _finish(
            star(num_nodes, bandwidth, latency, switch_bandwidth), hetero)
    if uplink_bandwidth is None:
        uplink_bandwidth = arity * bandwidth
    core = num_nodes + n_leaves
    links: list[Link] = [
        Link(i, num_nodes + i // arity, bandwidth, latency)
        for i in range(num_nodes)
    ]
    links.extend(
        Link(num_nodes + s, core, uplink_bandwidth, latency)
        for s in range(n_leaves)
    )
    return _finish(
        Topology(num_nodes, tuple(links), num_switches=n_leaves + 1,
                 switch_bandwidth=(switch_bandwidth,) * (n_leaves + 1),
                 kind="fat_tree"),
        hetero,
    )
