"""Pluggable interconnect topologies and node heterogeneity.

The machine model's network used to be a hard-coded uniform clique; this
package lifts it into data.  :class:`Topology` describes an arbitrary
weighted interconnect (per-link bandwidth/latency, internal switches
with optional shared-backplane contention) plus per-node speed/core
heterogeneity, the builders provide the common shapes, and
:meth:`Topology.compiled` produces the flat routing tables both
simulator engines consume.  Attach one via
``MachineSpec(..., topology=...)``; the default ``None`` keeps the
scalar clique model bit-exactly.  See ``docs/topology.md``.
"""

from .builders import chain, clique, fat_tree, grid, ring, star
from .model import (
    CompiledTopology,
    Heterogeneity,
    Link,
    Topology,
    topology_from_spec,
    topology_to_spec,
)

__all__ = [
    "Topology",
    "CompiledTopology",
    "Link",
    "Heterogeneity",
    "topology_to_spec",
    "topology_from_spec",
    "clique",
    "chain",
    "ring",
    "grid",
    "star",
    "fat_tree",
]
