"""Topology and heterogeneity model for the simulated platform.

The paper's experiments run on a switched clique — every node pair
enjoys a private full-bandwidth channel — and until this layer existed
both simulator engines hard-coded that assumption (one scalar bandwidth,
one scalar latency).  A :class:`Topology` generalizes the machine's
interconnect to an arbitrary weighted graph:

* **vertices** are the ``num_nodes`` compute nodes (ids ``0..P-1``)
  plus optional internal **switches** (ids ``P..P+S-1``) that route
  traffic but run no tasks;
* **links** are undirected and carry their own ``bandwidth`` (bytes/s)
  and ``latency`` (seconds); each link provides one independent channel
  per direction (full duplex), shared by every message whose route
  crosses it;
* **switches** may declare a finite backplane bandwidth
  (:attr:`Topology.switch_bandwidth`), a shared-contention group: every
  quantum forwarded through the switch serializes on it.  ``inf`` (the
  default) models an ideal non-blocking switch;
* **heterogeneity** lives on the compute nodes: per-node ``speed``
  multipliers divide task durations, per-node ``cores`` override the
  machine's uniform worker count.

Routing is static and deterministic: messages follow the unique
minimum-hop path selected by a breadth-first search that visits
neighbors in ascending vertex id (ties break toward the lowest id), so
the same topology always produces the same routes — a prerequisite for
the engines' bit-equality contract and for content-addressed caching.

Transport is store-and-forward per service quantum: the first hop
occupies the source's egress port (plus the path's total latency on a
message's first quantum), every further hop serializes on that link's
per-direction channel, every switch with a finite backplane serializes
its group, and the final hop additionally serializes on the
destination's ingress port.  On a uniform single-hop topology (the
default clique) this degenerates *exactly* — float op for float op —
to the scalar model the engines always used, which is how existing runs
stay bit-identical.  See ``docs/topology.md`` for worked examples.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, replace
from collections.abc import Mapping, Sequence
from typing import Any, Optional

__all__ = [
    "Link",
    "Heterogeneity",
    "Topology",
    "CompiledTopology",
    "topology_to_spec",
    "topology_from_spec",
]

#: Default link parameters, mirroring :class:`repro.config.NetworkSpec`
#: (100 Gb/s OmniPath wire figures).  The topology package must not
#: import ``repro.config`` — config imports *us* for the
#: ``MachineSpec.topology`` field.
DEFAULT_BANDWIDTH = 12.5e9
DEFAULT_LATENCY = 1.5e-6


@dataclass(frozen=True)
class Link:
    """One undirected link: a full-duplex channel pair between vertices.

    ``u``/``v`` index vertices (compute nodes first, then switches);
    normalization in :class:`Topology` guarantees ``u < v``.
    """

    u: int
    v: int
    bandwidth: float = DEFAULT_BANDWIDTH
    latency: float = DEFAULT_LATENCY

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"self-loop link on vertex {self.u}")
        if self.bandwidth <= 0:
            raise ValueError(f"link bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"link latency must be >= 0, got {self.latency}")


@dataclass(frozen=True)
class Heterogeneity:
    """Per-node compute heterogeneity applied on top of a topology.

    ``speed`` multiplies each node's compute rate (task durations are
    divided by it: 0.5 = half speed, 2.0 = twice as fast); ``cores``
    overrides the machine's per-node worker count.  Either tuple may be
    empty, meaning "keep the machine's homogeneous value".
    """

    speed: tuple[float, ...] = ()
    cores: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "speed", tuple(float(s) for s in self.speed))
        object.__setattr__(self, "cores", tuple(int(c) for c in self.cores))
        for s in self.speed:
            if not s > 0:
                raise ValueError(f"node speed must be positive, got {s}")
        for c in self.cores:
            if c < 1:
                raise ValueError(f"node core count must be >= 1, got {c}")

    @classmethod
    def alternating(cls, num_nodes: int, slow_speed: float = 0.5,
                    period: int = 2) -> "Heterogeneity":
        """Every ``period``-th node (0, period, 2*period, ...) runs at
        ``slow_speed``; the rest at full speed.  A simple two-class mix
        for heterogeneity sweeps."""
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        return cls(speed=tuple(
            slow_speed if i % period == 0 else 1.0 for i in range(num_nodes)
        ))


@dataclass(frozen=True)
class Topology:
    """An interconnect graph plus optional per-node heterogeneity.

    Instances are immutable, hashable and comparable by value — they sit
    inside the frozen :class:`repro.config.MachineSpec` and participate
    in the sweep service's content hash via :func:`topology_to_spec`.
    Use the builders in :mod:`repro.topology.builders` for the common
    shapes; the routing/occupancy tables the engines consume come from
    :meth:`compiled` (memoized per instance).
    """

    num_nodes: int
    links: tuple[Link, ...]
    num_switches: int = 0
    #: per-switch backplane bandwidth (bytes/s); ``inf`` = non-blocking.
    switch_bandwidth: tuple[float, ...] = ()
    #: per-node compute-speed multipliers; empty = homogeneous.
    speed: tuple[float, ...] = ()
    #: per-node core counts; empty = the machine's uniform ``cores``.
    cores: tuple[int, ...] = ()
    #: builder provenance label (``"clique"``, ``"chain"``, ... or
    #: ``"custom"``); cosmetic only — equality and hashing use the graph.
    kind: str = "custom"

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"need at least one node, got {self.num_nodes}")
        if self.num_switches < 0:
            raise ValueError(f"num_switches must be >= 0, got {self.num_switches}")
        n_vertices = self.num_nodes + self.num_switches
        canon: list[Link] = []
        seen: set[tuple[int, int]] = set()
        for ln in self.links:
            if not (0 <= ln.u < n_vertices and 0 <= ln.v < n_vertices):
                raise ValueError(
                    f"link ({ln.u}, {ln.v}) outside vertices [0, {n_vertices})")
            if ln.u > ln.v:
                ln = replace(ln, u=ln.v, v=ln.u)
            if (ln.u, ln.v) in seen:
                raise ValueError(f"duplicate link ({ln.u}, {ln.v})")
            seen.add((ln.u, ln.v))
            canon.append(ln)
        canon.sort(key=lambda ln: (ln.u, ln.v))
        object.__setattr__(self, "links", tuple(canon))
        sw_bw = tuple(float(b) for b in self.switch_bandwidth)
        if not sw_bw:
            sw_bw = (math.inf,) * self.num_switches
        if len(sw_bw) != self.num_switches:
            raise ValueError(
                f"switch_bandwidth has {len(sw_bw)} entries for "
                f"{self.num_switches} switches")
        for b in sw_bw:
            if not b > 0:
                raise ValueError(f"switch bandwidth must be positive, got {b}")
        object.__setattr__(self, "switch_bandwidth", sw_bw)
        speed = tuple(float(s) for s in self.speed)
        if speed and len(speed) != self.num_nodes:
            raise ValueError(
                f"speed has {len(speed)} entries for {self.num_nodes} nodes")
        for s in speed:
            if not s > 0:
                raise ValueError(f"node speed must be positive, got {s}")
        object.__setattr__(self, "speed", speed)
        cores = tuple(int(c) for c in self.cores)
        if cores and len(cores) != self.num_nodes:
            raise ValueError(
                f"cores has {len(cores)} entries for {self.num_nodes} nodes")
        for c in cores:
            if c < 1:
                raise ValueError(f"node core count must be >= 1, got {c}")
        object.__setattr__(self, "cores", cores)

    # -- derived views -------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        return self.num_nodes + self.num_switches

    @property
    def heterogeneous(self) -> bool:
        """True when any node deviates in speed or core count."""
        return (any(s != 1.0 for s in self.speed)
                or (bool(self.cores) and len(set(self.cores)) > 1))

    def with_heterogeneity(self, hetero: Heterogeneity) -> "Topology":
        """Copy of this topology with the spec's speed/cores applied."""
        changes: dict[str, Any] = {}
        if hetero.speed:
            if len(hetero.speed) != self.num_nodes:
                raise ValueError(
                    f"heterogeneity speed has {len(hetero.speed)} entries "
                    f"for {self.num_nodes} nodes")
            changes["speed"] = hetero.speed
        if hetero.cores:
            if len(hetero.cores) != self.num_nodes:
                raise ValueError(
                    f"heterogeneity cores has {len(hetero.cores)} entries "
                    f"for {self.num_nodes} nodes")
            changes["cores"] = hetero.cores
        return replace(self, **changes) if changes else self

    def compiled(self) -> "CompiledTopology":
        """Routing/occupancy tables (memoized; instances are immutable)."""
        cached: Optional[CompiledTopology] = \
            self.__dict__.get("_compiled")
        if cached is None:
            cached = CompiledTopology(self)
            object.__setattr__(self, "_compiled", cached)
        return cached

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        het = " hetero" if self.heterogeneous else ""
        return (f"Topology({self.kind} P={self.num_nodes} "
                f"links={len(self.links)} switches={self.num_switches}{het})")


class CompiledTopology:
    """Flat routing and occupancy tables derived from a :class:`Topology`.

    Static, shareable across runs (per-run occupancy state — link and
    switch free times — lives on the consumer: :class:`NetworkSim`
    allocates python lists, the serve-loop kernel numpy arrays).  The
    columns are plain python lists — the hot consumers index scalars,
    and the compute-node count is small — with :meth:`as_arrays`
    providing the numpy form the jit kernel lowers.

    * ``edge_u/edge_v/edge_bw`` — one entry per *directed* edge (two per
      link, ids interleaved ``2*i``/``2*i+1``);
    * ``edge_sw`` — the switch a message traverses *before* this edge
      (the edge's source vertex when it is a switch), or -1;
    * ``path_ptr/path_eid`` — CSR of directed-edge routes per ordered
      compute-node pair, indexed ``src * num_nodes + dst``;
    * ``pair_lat`` — per-pair summed link latency, charged once on a
      message's first quantum;
    * ``switch_bw`` — per-switch backplane bandwidth (``inf`` =
      non-blocking, skipped by the walk).
    """

    __slots__ = ("num_nodes", "n_vertices", "n_edges", "n_switches",
                 "edge_u", "edge_v", "edge_bw", "edge_sw", "switch_bw",
                 "path_ptr", "path_eid", "pair_lat", "max_hops", "_arrays")

    def __init__(self, topo: Topology) -> None:
        P = topo.num_nodes
        V = topo.n_vertices
        self.num_nodes = P
        self.n_vertices = V
        self.n_switches = topo.num_switches
        self.switch_bw = list(topo.switch_bandwidth)
        edge_u: list[int] = []
        edge_v: list[int] = []
        edge_bw: list[float] = []
        edge_lat: list[float] = []
        adj: list[list[tuple[int, int]]] = [[] for _ in range(V)]
        for ln in topo.links:
            for a, b in ((ln.u, ln.v), (ln.v, ln.u)):
                eid = len(edge_u)
                edge_u.append(a)
                edge_v.append(b)
                edge_bw.append(ln.bandwidth)
                edge_lat.append(ln.latency)
                adj[a].append((b, eid))
        for rows in adj:
            rows.sort()  # ascending neighbor id => deterministic routes
        self.edge_u = edge_u
        self.edge_v = edge_v
        self.edge_bw = edge_bw
        self.edge_sw = [u - P if u >= P else -1 for u in edge_u]
        self.n_edges = len(edge_u)

        path_ptr = [0] * (P * P + 1)
        path_eid: list[int] = []
        pair_lat = [0.0] * (P * P)
        max_hops = 0
        for src in range(P):
            # BFS with ascending-id neighbor order: minimum-hop routes,
            # ties broken toward the lowest vertex id, deterministically.
            parent_edge = [-1] * V
            visited = [False] * V
            visited[src] = True
            q = deque((src,))
            while q:
                u = q.popleft()
                for v, eid in adj[u]:
                    if not visited[v]:
                        visited[v] = True
                        parent_edge[v] = eid
                        q.append(v)
            for dst in range(P):
                pi = src * P + dst
                if dst != src:
                    if not visited[dst]:
                        raise ValueError(
                            f"topology is disconnected: no route from node "
                            f"{src} to node {dst}")
                    hops: list[int] = []
                    v = dst
                    while v != src:
                        eid = parent_edge[v]
                        hops.append(eid)
                        v = edge_u[eid]
                    hops.reverse()
                    path_eid.extend(hops)
                    pair_lat[pi] = sum(edge_lat[e] for e in hops)
                    if len(hops) > max_hops:
                        max_hops = len(hops)
                path_ptr[pi + 1] = len(path_eid)
        self.path_ptr = path_ptr
        self.path_eid = path_eid
        self.pair_lat = pair_lat
        self.max_hops = max_hops
        self._arrays: Optional[dict[str, Any]] = None

    def pair_edges(self, src: int, dst: int) -> list[int]:
        """Directed-edge ids of the route from ``src`` to ``dst``."""
        pi = src * self.num_nodes + dst
        return self.path_eid[self.path_ptr[pi]:self.path_ptr[pi + 1]]

    def roll_loss(self, loss: Any, src: int, dst: int) -> bool:
        """Decide the fate of one delivery attempt on the (src, dst) route.

        Rolls every edge's per-link attempt counter (in path order) so
        the loss stream depends only on the deterministic route, never
        on which engine asks; the message is lost when any hop drops it.
        On a single-hop route this is exactly ``loss.lost(src, dst)``.
        """
        lost = False
        pi = src * self.num_nodes + dst
        eu = self.edge_u
        ev = self.edge_v
        for k in range(self.path_ptr[pi], self.path_ptr[pi + 1]):
            e = self.path_eid[k]
            if loss.lost(eu[e], ev[e]):
                lost = True
        return lost

    def as_arrays(self) -> dict[str, Any]:
        """Numpy form of the static tables (cached), for kernel lowering."""
        if self._arrays is None:
            import numpy as np

            self._arrays = {
                "edge_bw": np.asarray(self.edge_bw, dtype=np.float64),
                "edge_sw": np.asarray(self.edge_sw, dtype=np.int64),
                "switch_bw": np.asarray(self.switch_bw, dtype=np.float64),
                "path_ptr": np.asarray(self.path_ptr, dtype=np.int64),
                "path_eid": np.asarray(self.path_eid, dtype=np.int64),
                "pair_lat": np.asarray(self.pair_lat, dtype=np.float64),
            }
        return self._arrays


# --------------------------------------------------------------------------
# spec serialization (sweep-service content hashing; see docs/service.md)
# --------------------------------------------------------------------------

def _num(x: float) -> Optional[float]:
    """JSON-safe float: ``inf`` (non-blocking switch) travels as null."""
    return None if math.isinf(x) else x


def topology_to_spec(topo: Optional[Topology]) -> Optional[dict[str, Any]]:
    """Canonical plain-JSON form of a topology (None stays None).

    Every field that changes routing or heterogeneity is present, so two
    topologies serialize equal iff the engines would treat them equally;
    the sweep service hashes this dict into the config digest.
    """
    if topo is None:
        return None
    return {
        "kind": topo.kind,
        "num_nodes": topo.num_nodes,
        "num_switches": topo.num_switches,
        "links": [[ln.u, ln.v, ln.bandwidth, ln.latency]
                  for ln in topo.links],
        "switch_bandwidth": [_num(b) for b in topo.switch_bandwidth],
        "speed": list(topo.speed),
        "cores": list(topo.cores),
    }


def topology_from_spec(spec: Optional[Mapping[str, Any]]) -> Optional[Topology]:
    """Rebuild a :class:`Topology` from :func:`topology_to_spec` output."""
    if spec is None:
        return None
    links = tuple(
        Link(int(u), int(v), float(bw), float(lat))
        for u, v, bw, lat in spec.get("links", ())
    )
    sw_bw: Sequence[Any] = spec.get("switch_bandwidth", ())
    return Topology(
        num_nodes=int(spec["num_nodes"]),
        links=links,
        num_switches=int(spec.get("num_switches", 0)),
        switch_bandwidth=tuple(
            math.inf if b is None else float(b) for b in sw_bw
        ),
        speed=tuple(float(s) for s in spec.get("speed", ())),
        cores=tuple(int(c) for c in spec.get("cores", ())),
        kind=str(spec.get("kind", "custom")),
    )
