"""Pluggable scheduling policies for the simulator engines.

``simulate(..., scheduler="heft-lookahead")`` /
``simulate_compiled(..., scheduler=...)`` accept a policy name from
:data:`POLICIES` (or a :class:`SchedulerInterface` instance); the
default ``"critical-path"`` policy reproduces the engines' historical
behaviour bit-exactly.  The sweep service exposes the same knob as the
``policy`` field of :class:`repro.service.JobSpec`.

See ``docs/schedulers.md`` for the interface contract and the policy
catalogue, and ``benchmarks/bench_scheduler_tournament.py`` for the
policy x distribution tournament.
"""

from __future__ import annotations

from typing import Union

from .base import GraphView, ReadyQueue, SchedulePlan, SchedulerInterface
from .policies import (
    BytesWeightedCriticalPath,
    CommAvoidingReorder,
    CriticalPathOwnerComputes,
    LookaheadHEFT,
    SynchronizedForkJoin,
    WorkStealing,
)
from .queues import WorkStealingQueues
from .views import CompiledGraphView, ObjectGraphView

__all__ = [
    "DEFAULT_POLICY",
    "POLICIES",
    "GraphView",
    "ObjectGraphView",
    "CompiledGraphView",
    "ReadyQueue",
    "SchedulePlan",
    "SchedulerInterface",
    "WorkStealingQueues",
    "CriticalPathOwnerComputes",
    "BytesWeightedCriticalPath",
    "WorkStealing",
    "LookaheadHEFT",
    "CommAvoidingReorder",
    "SynchronizedForkJoin",
    "get_policy",
]

#: Registry of every policy, keyed by its ``name`` (= ``JobSpec.policy``).
POLICIES: dict[str, type[SchedulerInterface]] = {
    cls.name: cls
    for cls in (
        CriticalPathOwnerComputes,
        BytesWeightedCriticalPath,
        WorkStealing,
        LookaheadHEFT,
        CommAvoidingReorder,
        SynchronizedForkJoin,
    )
}

DEFAULT_POLICY = CriticalPathOwnerComputes.name


def get_policy(
    policy: Union[str, SchedulerInterface, None]
) -> SchedulerInterface:
    """Resolve a policy name (or pass an instance through).

    ``None`` resolves to the default policy.
    """
    if policy is None:
        return POLICIES[DEFAULT_POLICY]()
    if isinstance(policy, SchedulerInterface):
        return policy
    cls = POLICIES.get(policy)
    if cls is None:
        raise ValueError(
            f"unknown scheduler policy {policy!r}; "
            f"known: {', '.join(sorted(POLICIES))}"
        )
    return cls()
