"""Scheduler interface: how a policy talks to the simulator engines.

Scheduling used to be baked into both engines as fixed critical-path
priorities + owner-computes placement.  This module extracts the policy
surface, estee-style: the scheduler observes the task graph and the
machine (through an engine-neutral :class:`GraphView`) and returns its
decisions as a :class:`SchedulePlan` — priorities, placement overrides,
barrier mode, and optionally a dynamic ready-queue discipline that then
receives the runtime's task-ready / worker-free updates.

The contract both engines honour (see ``docs/schedulers.md``):

* ``plan()`` is called once per simulation, before any event runs, with
  a view whose numbers are **bit-identical** across the object and the
  compiled plane (same floats, same orderings) — so one policy
  implementation yields the same plan on both engines and the two-engine
  equality suite extends to every policy;
* every field of the returned plan defaults to "keep the engine's
  native behaviour", so the default policy
  (:class:`repro.schedulers.policies.CriticalPathOwnerComputes`) returns
  an empty plan and the engines run their pre-existing code paths
  unchanged, bit-exactly;
* a policy that returns a placement ``assignment`` must declare
  ``migrates = True`` — ``repro.analyze`` enforces that non-migrating
  policies respect the graph's owner-computes placement (rule
  SCHED-PLACE).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import ClassVar, Optional

__all__ = [
    "GraphView",
    "ReadyQueue",
    "SchedulePlan",
    "SchedulerInterface",
]


class GraphView(abc.ABC):
    """Engine-neutral, read-only view of one task graph on one machine.

    Concrete adapters (:mod:`repro.schedulers.views`) lower either a
    :class:`repro.graph.task.TaskGraph` or a
    :class:`repro.graph.compiled.CompiledGraph` to the same plain-Python
    columns.  Every column is **lazy** (built on first access), so a
    policy that ignores the view — the default policy, the fork-join
    policy — costs nothing beyond constructing the adapter object.

    Column contract (all per-task lists are indexed by task id; task ids
    are a topological order, a builder invariant the engines already
    rely on):

    * ``durations[t]`` — simulated seconds of task ``t``, bit-identical
      to what the engine will charge;
    * ``node[t]`` — the graph's owner-computes placement;
    * ``kinds[t]`` / ``iterations[t]`` — kernel name and iteration;
    * ``out_bytes[t]`` — bytes of the version ``t`` writes (0 if none);
    * ``consumers[t]`` — ids of tasks reading ``t``'s output, in edge
      order (ascending consumer id, duplicates kept);
    * ``inputs[t]`` — ``(producer_id, nbytes, source_node)`` per read,
      in the task's read order; ``producer_id`` is -1 for initial data.
    """

    num_nodes: int
    cores: int
    bandwidth: float
    latency: float

    @property
    @abc.abstractmethod
    def n_tasks(self) -> int: ...

    @property
    @abc.abstractmethod
    def durations(self) -> Sequence[float]: ...

    @property
    @abc.abstractmethod
    def node(self) -> Sequence[int]: ...

    @property
    @abc.abstractmethod
    def kinds(self) -> Sequence[str]: ...

    @property
    @abc.abstractmethod
    def iterations(self) -> Sequence[int]: ...

    @property
    @abc.abstractmethod
    def out_bytes(self) -> Sequence[int]: ...

    @property
    @abc.abstractmethod
    def consumers(self) -> list[list[int]]: ...

    @property
    @abc.abstractmethod
    def inputs(self) -> list[list[tuple[int, int, int]]]: ...

    def comm_cost(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` over one link (latency + wire)."""
        return self.latency + nbytes / self.bandwidth


class ReadyQueue(abc.ABC):
    """A pluggable per-node ready-queue discipline.

    This is the *dynamic* half of the scheduler interface: the engines
    feed it runtime updates — :meth:`push` when a task becomes ready on
    a node with no free worker, :meth:`pop` when a worker frees — and it
    answers with the next assignment.  Both engines drive one instance
    with the identical update sequence, so a deterministic discipline
    preserves the two-engine equality contract.

    A task that is ready while a worker is free never enters the queue
    (the engines start it immediately); the discipline only arbitrates
    backlog.
    """

    @abc.abstractmethod
    def push(self, node: int, task: int, priority: float) -> None:
        """Task ``task`` became ready on ``node`` (no worker free)."""

    @abc.abstractmethod
    def pop(self, node: int) -> Optional[int]:
        """A worker on ``node`` freed; next task id, or None to idle."""

    @abc.abstractmethod
    def depth(self, node: int) -> int:
        """Queued tasks currently runnable from ``node``."""

    @abc.abstractmethod
    def total(self) -> int:
        """Queued tasks across all nodes (deadlock accounting)."""


@dataclass
class SchedulePlan:
    """A policy's decisions for one run; every default means "native".

    ``priorities`` — per-task ready-queue/network priorities; ``None``
    keeps the engine's own bottom-level critical-path computation.
    ``assignment`` — per-task execution node, overriding the graph's
    owner-computes placement (the producing node still *sends* from
    wherever the data now lives; the engines re-derive the communication
    pattern from the assignment).  Only policies with
    ``migrates = True`` may return one.
    ``synchronized`` — force fork-join iteration barriers.
    ``queue_factory`` — ``(num_nodes, cores) -> ReadyQueue`` for a
    custom dynamic discipline; ``None`` keeps the native per-node
    priority queues.
    """

    priorities: Optional[Sequence[float]] = None
    assignment: Optional[Sequence[int]] = None
    synchronized: bool = False
    queue_factory: Optional[Callable[[int, int], ReadyQueue]] = None

    def is_native(self) -> bool:
        """True when the plan changes nothing (the default policy)."""
        return (self.priorities is None and self.assignment is None
                and not self.synchronized and self.queue_factory is None)


class SchedulerInterface(abc.ABC):
    """One scheduling policy, usable by both simulator engines.

    Subclasses set ``name`` (the registry / ``JobSpec.policy`` string)
    and implement :meth:`plan`.  Policies must be deterministic, pure
    functions of the view: the sweep service memoizes results by spec,
    and the equality suite runs every policy on both engines.
    """

    #: registry key; also the ``JobSpec.policy`` value.
    name: ClassVar[str] = ""
    #: one-line description for catalogues and ``docs/schedulers.md``.
    description: ClassVar[str] = ""
    #: True when plan() may return a placement ``assignment`` that
    #: deviates from the graph's owner-computes placement
    #: (``repro.analyze`` rule SCHED-PLACE enforces this declaration).
    migrates: ClassVar[bool] = False

    @abc.abstractmethod
    def plan(self, view: GraphView) -> SchedulePlan:
        """Decide priorities/placement/discipline for this run."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
