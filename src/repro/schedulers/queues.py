"""Dynamic ready-queue disciplines (the runtime half of a policy).

The engines drive a :class:`~repro.schedulers.base.ReadyQueue` with the
same update sequence on both planes, so any deterministic discipline
keeps the two-engine equality contract for free.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .base import ReadyQueue

__all__ = ["WorkStealingQueues"]


class WorkStealingQueues(ReadyQueue):
    """Intra-node work stealing over per-core deques.

    Each node keeps ``cores`` deques; a ready task lands on the deque
    ``task_id % cores`` (a cheap deterministic spread that keeps sibling
    tasks — consecutive ids in the builders — on different cores).  A
    freed worker is modelled by a rotating per-node pointer: it pops
    **LIFO** from its own deque (hot caches, newest work), and when that
    deque is empty it steals **FIFO** from the longest sibling deque
    (oldest work first, the classic Cilk/StarPU ``ws`` discipline).
    Priorities are deliberately ignored — locality over urgency is
    exactly the trade-off this policy exists to measure against the
    critical-path family.

    Stealing is intra-node only: tasks never change nodes, so the
    communication pattern (and the analyze placement rule) is untouched.
    """

    def __init__(self, num_nodes: int, cores: int) -> None:
        self.cores = max(1, cores)
        self._deques: list[list[deque[int]]] = [
            [deque() for _ in range(self.cores)]
            for _ in range(num_nodes)
        ]
        self._next_core = [0] * num_nodes
        self._depth = [0] * num_nodes
        self._total = 0

    def push(self, node: int, task: int, priority: float) -> None:
        self._deques[node][task % self.cores].append(task)
        self._depth[node] += 1
        self._total += 1

    def pop(self, node: int) -> Optional[int]:
        if self._depth[node] == 0:
            return None
        deques = self._deques[node]
        core = self._next_core[node]
        self._next_core[node] = (core + 1) % self.cores
        own = deques[core]
        if own:
            task = own.pop()  # LIFO: newest local work
        else:
            # Steal from the longest sibling deque, FIFO end; ties break
            # to the lowest core index (determinism across engines).
            victim = max(range(self.cores), key=lambda c: len(deques[c]))
            task = deques[victim].popleft()
        self._depth[node] -= 1
        self._total -= 1
        return task

    def depth(self, node: int) -> int:
        return self._depth[node]

    def total(self) -> int:
        return self._total
