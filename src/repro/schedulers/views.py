"""Graph-view adapters: one per simulation plane.

Both adapters expose the identical :class:`~repro.schedulers.base
.GraphView` columns, with the identical floats and orderings, so a
policy computes the identical plan whichever engine invokes it:

* durations — the object plane calls ``kernel.duration(flops, b)`` per
  task, the compiled plane evaluates ``overhead + flops / rate(b)``
  vectorized; both are the same IEEE expression on the same doubles;
* consumers — the object plane appends per read while scanning tasks in
  id order; the compiled plane's ``consumers_csr()`` stably sorts the
  (consumer, read) edge list by producer.  Both yield each producer's
  consumers in ascending consumer id with duplicates kept;
* inputs — task read order is preserved by ``compile_graph`` and the
  direct compilers, so the per-read tuples line up slot for slot.

Every column is built lazily on first access (a per-column backing
field, the plain-property spelling of ``cached_property`` that
``mypy --strict`` can check against the abstract base): the default
policy never touches the view, so the hot service path pays only the
adapter construction (a few attribute stores).
"""

from __future__ import annotations

from array import array
from collections.abc import Callable, Sequence
from typing import Optional

import numpy as np

from ..config import MachineSpec
from ..graph.compiled import CompiledGraph
from ..graph.task import Task, TaskGraph
from .base import GraphView

__all__ = ["ObjectGraphView", "CompiledGraphView"]


class ObjectGraphView(GraphView):
    """View over a :class:`TaskGraph` (the object engine's plane)."""

    def __init__(self, graph: TaskGraph, machine: MachineSpec,
                 duration_fn: Callable[[Task], float]) -> None:
        self._graph = graph
        self._duration_fn = duration_fn
        self.num_nodes = machine.nodes
        self.cores = machine.cores
        self.bandwidth = machine.network.bandwidth
        self.latency = machine.network.latency
        #: Optional repro.topology.Topology — policies may inspect the
        #: routed interconnect / heterogeneity (None = uniform clique).
        self.topology = machine.topology
        self._durations: Optional[list[float]] = None
        self._node: Optional[list[int]] = None
        self._kinds: Optional[list[str]] = None
        self._iterations: Optional[list[int]] = None
        self._out_bytes: Optional[list[int]] = None
        self._consumers: Optional[list[list[int]]] = None
        self._inputs: Optional[list[list[tuple[int, int, int]]]] = None

    @property
    def n_tasks(self) -> int:
        return len(self._graph.tasks)

    @property
    def durations(self) -> Sequence[float]:
        if self._durations is None:
            fn = self._duration_fn
            self._durations = [fn(t) for t in self._graph.tasks]
        return self._durations

    @property
    def node(self) -> Sequence[int]:
        if self._node is None:
            self._node = [t.node for t in self._graph.tasks]
        return self._node

    @property
    def kinds(self) -> Sequence[str]:
        if self._kinds is None:
            self._kinds = [t.kind for t in self._graph.tasks]
        return self._kinds

    @property
    def iterations(self) -> Sequence[int]:
        if self._iterations is None:
            self._iterations = [t.iteration for t in self._graph.tasks]
        return self._iterations

    @property
    def out_bytes(self) -> Sequence[int]:
        if self._out_bytes is None:
            g = self._graph
            self._out_bytes = [
                g.data_bytes(t.write) if t.write is not None else 0
                for t in g.tasks]
        return self._out_bytes

    @property
    def consumers(self) -> list[list[int]]:
        if self._consumers is None:
            g = self._graph
            cons: list[list[int]] = [[] for _ in range(len(g.tasks))]
            for t in g.tasks:
                for k in t.reads:
                    pid = g.producer.get(k)
                    if pid is not None:
                        cons[pid].append(t.id)
            self._consumers = cons
        return self._consumers

    @property
    def inputs(self) -> list[list[tuple[int, int, int]]]:
        if self._inputs is None:
            g = self._graph
            out: list[list[tuple[int, int, int]]] = []
            for t in g.tasks:
                rows: list[tuple[int, int, int]] = []
                for k in t.reads:
                    pid = g.producer.get(k)
                    if pid is not None:
                        rows.append((pid, g.data_bytes(k),
                                     g.tasks[pid].node))
                    else:
                        rows.append((-1, g.data_bytes(k), g.initial[k][0]))
                out.append(rows)
            self._inputs = out
        return self._inputs


class CompiledGraphView(GraphView):
    """View over a :class:`CompiledGraph` (the compiled engine's plane)."""

    def __init__(self, cg: CompiledGraph, machine: MachineSpec,
                 durations: np.ndarray) -> None:
        self._cg = cg
        self._raw_durations = durations
        self.num_nodes = machine.nodes
        self.cores = machine.cores
        self.bandwidth = machine.network.bandwidth
        self.latency = machine.network.latency
        #: Optional repro.topology.Topology — policies may inspect the
        #: routed interconnect / heterogeneity (None = uniform clique).
        self.topology = machine.topology
        self._durations: Optional[Sequence[float]] = None
        self._node: Optional[Sequence[int]] = None
        self._kinds: Optional[list[str]] = None
        self._iterations: Optional[Sequence[int]] = None
        self._out_bytes: Optional[Sequence[int]] = None
        self._consumers: Optional[list[list[int]]] = None
        self._inputs: Optional[list[list[tuple[int, int, int]]]] = None

    @property
    def n_tasks(self) -> int:
        return self._cg.n_tasks

    # The scalar columns are ``array.array`` buffers rather than lists of
    # boxed numbers: indexing and iteration behave identically (policies
    # see the same ints/floats in the same order as the object plane's
    # lists), but a paper-scale graph's view costs 8 bytes per entry
    # instead of ~32 — policy sweeps at N = 400 keep ~1 GB of boxed
    # numbers off the worker heap.

    @property
    def durations(self) -> Sequence[float]:
        if self._durations is None:
            self._durations = array("d", np.ascontiguousarray(
                self._raw_durations, dtype=np.float64).tobytes())
        return self._durations

    @property
    def node(self) -> Sequence[int]:
        if self._node is None:
            self._node = array("i", np.ascontiguousarray(
                self._cg.node, dtype=np.int32).tobytes())
        return self._node

    @property
    def kinds(self) -> Sequence[str]:
        if self._kinds is None:
            names = self._cg.kind_names
            self._kinds = [names[c] for c in self._cg.kind_codes.tolist()]
        return self._kinds

    @property
    def iterations(self) -> Sequence[int]:
        if self._iterations is None:
            self._iterations = array("i", np.ascontiguousarray(
                self._cg.iteration, dtype=np.int32).tobytes())
        return self._iterations

    @property
    def out_bytes(self) -> Sequence[int]:
        if self._out_bytes is None:
            cg = self._cg
            out = np.zeros(cg.n_tasks, dtype=np.int64)
            has = cg.write_id >= 0
            out[has] = cg.data_nbytes[cg.write_id[has]]
            self._out_bytes = array("q", out.tobytes())
        return self._out_bytes

    @property
    def consumers(self) -> list[list[int]]:
        if self._consumers is None:
            ptr, ids = self._cg.consumers_csr()
            ptr_l = ptr.tolist()
            ids_l = ids.tolist()
            self._consumers = [ids_l[ptr_l[t]:ptr_l[t + 1]]
                               for t in range(self._cg.n_tasks)]
        return self._consumers

    @property
    def inputs(self) -> list[list[tuple[int, int, int]]]:
        if self._inputs is None:
            cg = self._cg
            ptr = cg.read_ptr.tolist()
            rids = cg.read_ids.tolist()
            prod = cg.data_producer.tolist()
            src = cg.data_source_node.tolist()
            nbytes = cg.data_nbytes.tolist()
            out: list[list[tuple[int, int, int]]] = []
            for t in range(cg.n_tasks):
                out.append([(prod[d], nbytes[d], src[d])
                            for d in rids[ptr[t]:ptr[t + 1]]])
            self._inputs = out
        return self._inputs
