"""Graph-view adapters: one per simulation plane.

Both adapters expose the identical :class:`~repro.schedulers.base
.GraphView` columns, with the identical floats and orderings, so a
policy computes the identical plan whichever engine invokes it:

* durations — the object plane calls ``kernel.duration(flops, b)`` per
  task, the compiled plane evaluates ``overhead + flops / rate(b)``
  vectorized; both are the same IEEE expression on the same doubles;
* consumers — the object plane appends per read while scanning tasks in
  id order; the compiled plane's ``consumers_csr()`` stably sorts the
  (consumer, read) edge list by producer.  Both yield each producer's
  consumers in ascending consumer id with duplicates kept;
* inputs — task read order is preserved by ``compile_graph`` and the
  direct compilers, so the per-read tuples line up slot for slot.

Every column is built lazily on first access (``cached_property``): the
default policy never touches the view, so the hot service path pays only
the adapter construction (a few attribute stores).
"""

from __future__ import annotations

from array import array
from functools import cached_property
from typing import List, Sequence, Tuple

import numpy as np

from ..config import MachineSpec
from ..graph.compiled import CompiledGraph
from ..graph.task import TaskGraph
from .base import GraphView

__all__ = ["ObjectGraphView", "CompiledGraphView"]


class ObjectGraphView(GraphView):
    """View over a :class:`TaskGraph` (the object engine's plane)."""

    def __init__(self, graph: TaskGraph, machine: MachineSpec, duration_fn):
        self._graph = graph
        self._duration_fn = duration_fn
        self.num_nodes = machine.nodes
        self.cores = machine.cores
        self.bandwidth = machine.network.bandwidth
        self.latency = machine.network.latency
        #: Optional repro.topology.Topology — policies may inspect the
        #: routed interconnect / heterogeneity (None = uniform clique).
        self.topology = machine.topology

    @property
    def n_tasks(self) -> int:
        return len(self._graph.tasks)

    @cached_property
    def durations(self) -> List[float]:
        fn = self._duration_fn
        return [fn(t) for t in self._graph.tasks]

    @cached_property
    def node(self) -> List[int]:
        return [t.node for t in self._graph.tasks]

    @cached_property
    def kinds(self) -> List[str]:
        return [t.kind for t in self._graph.tasks]

    @cached_property
    def iterations(self) -> List[int]:
        return [t.iteration for t in self._graph.tasks]

    @cached_property
    def out_bytes(self) -> List[int]:
        g = self._graph
        return [g.data_bytes(t.write) if t.write is not None else 0
                for t in g.tasks]

    @cached_property
    def consumers(self) -> List[List[int]]:
        g = self._graph
        cons: List[List[int]] = [[] for _ in range(len(g.tasks))]
        for t in g.tasks:
            for k in t.reads:
                pid = g.producer.get(k)
                if pid is not None:
                    cons[pid].append(t.id)
        return cons

    @cached_property
    def inputs(self) -> List[List[Tuple[int, int, int]]]:
        g = self._graph
        out: List[List[Tuple[int, int, int]]] = []
        for t in g.tasks:
            rows = []
            for k in t.reads:
                pid = g.producer.get(k)
                if pid is not None:
                    rows.append((pid, g.data_bytes(k), g.tasks[pid].node))
                else:
                    rows.append((-1, g.data_bytes(k), g.initial[k][0]))
            out.append(rows)
        return out


class CompiledGraphView(GraphView):
    """View over a :class:`CompiledGraph` (the compiled engine's plane)."""

    def __init__(self, cg: CompiledGraph, machine: MachineSpec,
                 durations: np.ndarray):
        self._cg = cg
        self._durations = durations
        self.num_nodes = machine.nodes
        self.cores = machine.cores
        self.bandwidth = machine.network.bandwidth
        self.latency = machine.network.latency
        #: Optional repro.topology.Topology — policies may inspect the
        #: routed interconnect / heterogeneity (None = uniform clique).
        self.topology = machine.topology

    @property
    def n_tasks(self) -> int:
        return self._cg.n_tasks

    # The scalar columns are ``array.array`` buffers rather than lists of
    # boxed numbers: indexing and iteration behave identically (policies
    # see the same ints/floats in the same order as the object plane's
    # lists), but a paper-scale graph's view costs 8 bytes per entry
    # instead of ~32 — policy sweeps at N = 400 keep ~1 GB of boxed
    # numbers off the worker heap.

    @cached_property
    def durations(self) -> Sequence[float]:
        return array("d", np.ascontiguousarray(
            self._durations, dtype=np.float64).tobytes())

    @cached_property
    def node(self) -> Sequence[int]:
        return array("i", np.ascontiguousarray(
            self._cg.node, dtype=np.int32).tobytes())

    @cached_property
    def kinds(self) -> List[str]:
        names = self._cg.kind_names
        return [names[c] for c in self._cg.kind_codes.tolist()]

    @cached_property
    def iterations(self) -> Sequence[int]:
        return array("i", np.ascontiguousarray(
            self._cg.iteration, dtype=np.int32).tobytes())

    @cached_property
    def out_bytes(self) -> Sequence[int]:
        cg = self._cg
        out = np.zeros(cg.n_tasks, dtype=np.int64)
        has = cg.write_id >= 0
        out[has] = cg.data_nbytes[cg.write_id[has]]
        return array("q", out.tobytes())

    @cached_property
    def consumers(self) -> List[List[int]]:
        ptr, ids = self._cg.consumers_csr()
        ptr_l = ptr.tolist()
        ids_l = ids.tolist()
        return [ids_l[ptr_l[t]:ptr_l[t + 1]] for t in range(self._cg.n_tasks)]

    @cached_property
    def inputs(self) -> List[List[Tuple[int, int, int]]]:
        cg = self._cg
        ptr = cg.read_ptr.tolist()
        rids = cg.read_ids.tolist()
        prod = cg.data_producer.tolist()
        src = cg.data_source_node.tolist()
        nbytes = cg.data_nbytes.tolist()
        out: List[List[Tuple[int, int, int]]] = []
        for t in range(cg.n_tasks):
            out.append([(prod[d], nbytes[d], src[d])
                        for d in rids[ptr[t]:ptr[t + 1]]])
        return out
