"""The scheduler zoo (see ``docs/schedulers.md`` for the catalogue).

Every policy is a pure, deterministic function of the
:class:`~repro.schedulers.base.GraphView`; the float arithmetic below is
careful to evaluate in the same order on both simulation planes (the
view columns are bit-identical, and sequential ``max``/``+`` over the
same lists reproduces the same doubles), so each policy passes the
object-vs-compiled equality suite.
"""

from __future__ import annotations

from .base import GraphView, SchedulePlan, SchedulerInterface
from .queues import WorkStealingQueues

__all__ = [
    "CriticalPathOwnerComputes",
    "BytesWeightedCriticalPath",
    "WorkStealing",
    "LookaheadHEFT",
    "CommAvoidingReorder",
    "SynchronizedForkJoin",
]


def _bottom_levels(view: GraphView, comm_weighted: bool) -> list[float]:
    """Duration-weighted longest path to a sink, per task.

    With ``comm_weighted`` the edge to a consumer on another node also
    pays one link traversal of the produced tile — the classical HEFT
    upward rank with actual (not averaged) placement.

    Task ids are a topological order (builder invariant), so one reverse
    sweep suffices; ``max`` runs over each consumer list sequentially,
    which is the same float reduction on both planes.
    """
    dur = view.durations
    cons = view.consumers
    bl = [0.0] * view.n_tasks
    if comm_weighted:
        node = view.node
        out_bytes = view.out_bytes
    for t in range(view.n_tasks - 1, -1, -1):
        best = 0.0
        if comm_weighted:
            edge = view.comm_cost(out_bytes[t])
            home = node[t]
            for c in cons[t]:
                cost = bl[c] + (edge if node[c] != home else 0.0)
                if cost > best:
                    best = cost
        else:
            for c in cons[t]:
                if bl[c] > best:
                    best = bl[c]
        bl[t] = dur[t] + best
    return bl


class CriticalPathOwnerComputes(SchedulerInterface):
    """The default: what both engines have always done, untouched.

    Returns an empty plan, so the engines compute their native
    bottom-level critical-path priorities, keep owner-computes
    placement, and use their native per-node priority queues.  Runs
    under this policy are bit-exactly the pre-framework behaviour (the
    golden-makespan tests pin this).
    """

    name = "critical-path"
    description = "native bottom-level priorities + owner-computes (default)"

    def plan(self, view: GraphView) -> SchedulePlan:
        return SchedulePlan()


class BytesWeightedCriticalPath(SchedulerInterface):
    """Bottom levels that also charge cross-node edges one link traversal.

    The native rank treats a GEMM feeding a remote consumer and a local
    one identically; weighting edges by tile bytes/bandwidth (+latency)
    pulls tasks whose outputs must travel forward in time, giving the
    network a head start on the critical path.
    """

    name = "bytes-critical-path"
    description = "critical path weighted by tile bytes on cross-node edges"

    def plan(self, view: GraphView) -> SchedulePlan:
        return SchedulePlan(priorities=_bottom_levels(view, comm_weighted=True))


class WorkStealing(SchedulerInterface):
    """Native priorities for the network; per-core deques + stealing
    inside each node (see :class:`WorkStealingQueues`) instead of the
    shared per-node priority queue."""

    name = "work-stealing"
    description = "intra-node LIFO deques with FIFO stealing"

    def plan(self, view: GraphView) -> SchedulePlan:
        return SchedulePlan(queue_factory=WorkStealingQueues)


class LookaheadHEFT(SchedulerInterface):
    """Static HEFT: rank tasks, then greedily map each to the node with
    the earliest finish time — a placement that may *migrate* tasks off
    their owner-computes node (``migrates = True``), trading extra input
    transfers for load balance.

    The estimator is deliberately simple (no insertion scheduling, one
    free-time slot per core, a link-cost model identical to
    :meth:`GraphView.comm_cost`); it is a lookahead heuristic feeding
    the dynamic engines, not an exact simulator of them.
    """

    name = "heft-lookahead"
    description = "HEFT upward rank + earliest-finish-time placement"
    migrates = True

    def plan(self, view: GraphView) -> SchedulePlan:
        n = view.n_tasks
        rank = _bottom_levels(view, comm_weighted=True)
        dur = view.durations
        inputs = view.inputs
        num_nodes = view.num_nodes
        # Descending rank is a topological order (rank strictly exceeds
        # any consumer's); ties break on task id for determinism.
        order = sorted(range(n), key=lambda t: (-rank[t], t))
        core_free = [[0.0] * view.cores for _ in range(num_nodes)]
        finish = [0.0] * n
        placed = [0] * n
        for t in order:
            best_node = 0
            best_eft = float("inf")
            for cand in range(num_nodes):
                est = 0.0
                for pid, nbytes, src in inputs[t]:
                    if pid >= 0:
                        avail = finish[pid]
                        here = placed[pid]
                    else:
                        avail = 0.0
                        here = src
                    if here != cand:
                        avail += view.comm_cost(nbytes)
                    if avail > est:
                        est = avail
                free = min(core_free[cand])
                if free > est:
                    est = free
                eft = est + dur[t]
                if eft < best_eft:
                    best_eft = eft
                    best_node = cand
            placed[t] = best_node
            finish[t] = best_eft
            slots = core_free[best_node]
            slots[slots.index(min(slots))] = best_eft
        return SchedulePlan(priorities=rank, assignment=placed)


class CommAvoidingReorder(SchedulerInterface):
    """Delay cross-node GEMMs: same critical-path order, but trailing
    updates whose inputs crossed the network are demoted below every
    locally-fed task.  Local work then drains first, widening the window
    in which those transfers overlap with computation — the
    communication-avoiding reordering of Ballard et al. (arXiv
    0902.2537) applied as a priority transform rather than a loop
    restructuring.  Placement is untouched (``migrates`` stays False).
    """

    name = "comm-avoiding"
    description = "demote cross-node-input GEMMs below local work"

    def plan(self, view: GraphView) -> SchedulePlan:
        bl = _bottom_levels(view, comm_weighted=False)
        span = max(bl)
        kinds = view.kinds
        node = view.node
        inputs = view.inputs
        prio = list(bl)
        for t in range(view.n_tasks):
            if not kinds[t].startswith("GEMM"):
                continue
            home = node[t]
            if any(src != home for _pid, _nb, src in inputs[t]):
                # Subtracting the span keeps the demoted tasks' relative
                # order while ranking them under every undemoted task.
                prio[t] = bl[t] - span
        return SchedulePlan(priorities=prio)


class SynchronizedForkJoin(SchedulerInterface):
    """The classical fork-join MPI baseline, demoted to one policy among
    many: iteration ``k`` starts only after every task of ``k-1``
    finished (the engines' ``synchronized`` mode), with native
    priorities inside each phase."""

    name = "fork-join"
    description = "iteration barriers (synchronized MPI baseline)"

    def plan(self, view: GraphView) -> SchedulePlan:
        return SchedulePlan(synchronized=True)
