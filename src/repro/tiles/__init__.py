"""Tile layout and tiled matrix storage."""

from .layout import TileGrid
from .tiled_matrix import SymmetricTiledMatrix, TiledMatrix
from .io import load_tiled, save_tiled
from .generation import (
    generate_rhs_tile,
    generate_spd_tile,
    random_rhs_dense,
    random_rhs_tiled,
    random_spd_dense,
    random_spd_tiled,
)

__all__ = [
    "TileGrid",
    "TiledMatrix",
    "SymmetricTiledMatrix",
    "random_spd_dense",
    "random_spd_tiled",
    "random_rhs_dense",
    "random_rhs_tiled",
    "generate_spd_tile",
    "generate_rhs_tile",
    "save_tiled",
    "load_tiled",
]
