"""Tile grid geometry for tiled matrix algorithms.

A ``TileGrid`` describes how an ``n x n`` matrix is cut into ``N x N``
square tiles of size ``b`` (the last row/column of tiles may be smaller
when ``b`` does not divide ``n``).  For the symmetric operations of the
paper only the lower triangle ``i >= j`` is stored; the grid provides
iteration helpers and tile-count formulas used throughout the library.
"""

from __future__ import annotations

import math
from collections.abc import Iterator
from dataclasses import dataclass

__all__ = ["TileGrid"]


@dataclass(frozen=True)
class TileGrid:
    """Geometry of the tiling of an ``n x n`` matrix into ``b x b`` tiles."""

    n: int
    b: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"matrix dimension must be positive, got {self.n}")
        if self.b < 1:
            raise ValueError(f"tile size must be positive, got {self.b}")

    @property
    def ntiles(self) -> int:
        """Number of tile rows/columns N = ceil(n / b)."""
        return -(-self.n // self.b)

    @classmethod
    def from_ntiles(cls, ntiles: int, b: int) -> "TileGrid":
        """Grid with exactly ``ntiles`` full tiles of size ``b``."""
        return cls(n=ntiles * b, b=b)

    def tile_rows(self, i: int) -> int:
        """Number of matrix rows covered by tile row ``i``."""
        self._check_index(i)
        return min(self.b, self.n - i * self.b)

    def tile_shape(self, i: int, j: int) -> tuple[int, int]:
        """Shape of tile (i, j)."""
        return (self.tile_rows(i), self.tile_rows(j))

    def row_span(self, i: int) -> slice:
        """Slice of matrix rows covered by tile row ``i``."""
        self._check_index(i)
        return slice(i * self.b, min((i + 1) * self.b, self.n))

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self.ntiles:
            raise IndexError(f"tile index {i} out of range [0, {self.ntiles})")

    def check_tile(self, i: int, j: int) -> None:
        """Validate a (row, column) tile index pair."""
        self._check_index(i)
        self._check_index(j)

    def lower_tiles(self) -> Iterator[tuple[int, int]]:
        """All (i, j) with i >= j — the stored tiles of a symmetric matrix."""
        for j in range(self.ntiles):
            for i in range(j, self.ntiles):
                yield (i, j)

    def all_tiles(self) -> Iterator[tuple[int, int]]:
        """All (i, j) tile coordinates of the full square grid."""
        for i in range(self.ntiles):
            for j in range(self.ntiles):
                yield (i, j)

    @property
    def num_lower_tiles(self) -> int:
        """N(N+1)/2 — tiles in the lower triangle, diagonal included."""
        N = self.ntiles
        return N * (N + 1) // 2

    @property
    def storage_bytes(self) -> int:
        """Bytes to store the lower triangle, counted tile-wise (doubles).

        This is the quantity the paper calls ``S`` (times the element size):
        the total size required to store the symmetric matrix A.
        """
        return self.num_lower_tiles * self.b * self.b * 8

    def is_uniform(self) -> bool:
        """True when b divides n, i.e. every tile is exactly b x b."""
        return self.n % self.b == 0
