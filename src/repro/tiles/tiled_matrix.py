"""Tiled matrix containers.

``TiledMatrix`` stores a dense matrix as a dictionary of NumPy tiles keyed
by (tile-row, tile-column).  ``SymmetricTiledMatrix`` stores only the lower
triangle (``i >= j``), mirroring the storage scheme assumed by the paper:
the upper triangle is implicit by symmetry and never materialized.

Tiles are owned copies (C-contiguous ``float64``), so kernels can update
them in place without aliasing surprises.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from .layout import TileGrid

__all__ = ["TiledMatrix", "SymmetricTiledMatrix"]

TileKey = tuple[int, int]


class TiledMatrix:
    """A general (square) matrix stored as a grid of tiles."""

    symmetric = False

    def __init__(self, grid: TileGrid):
        self.grid = grid
        self._tiles: dict[TileKey, np.ndarray] = {}

    @classmethod
    def from_dense(cls, a: np.ndarray, b: int) -> "TiledMatrix":
        """Cut a dense square array into tiles of size ``b``."""
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"expected a square matrix, got shape {a.shape}")
        grid = TileGrid(n=a.shape[0], b=b)
        m = cls(grid)
        for i, j in m._stored_keys():
            m[i, j] = a[grid.row_span(i), grid.row_span(j)]
        return m

    def _stored_keys(self) -> Iterator[TileKey]:
        return self.grid.all_tiles()

    def _canonical(self, key: TileKey) -> TileKey:
        self.grid.check_tile(*key)
        return key

    def __getitem__(self, key: TileKey) -> np.ndarray:
        return self._tiles[self._canonical(key)]

    def __setitem__(self, key: TileKey, value: np.ndarray) -> None:
        key = self._canonical(key)
        value = np.ascontiguousarray(value, dtype=np.float64)
        if value.shape != self.grid.tile_shape(*key):
            raise ValueError(
                f"tile {key} expects shape {self.grid.tile_shape(*key)}, "
                f"got {value.shape}"
            )
        self._tiles[key] = value

    def __contains__(self, key: TileKey) -> bool:
        return self._canonical(key) in self._tiles

    def keys(self) -> Iterator[TileKey]:
        return iter(self._tiles)

    def to_dense(self) -> np.ndarray:
        """Assemble the stored tiles back into a dense array.

        Missing tiles are treated as zero.  The symmetric subclass fills
        the upper triangle by mirroring.
        """
        out = np.zeros((self.grid.n, self.grid.n))
        for (i, j), tile in self._tiles.items():
            out[self.grid.row_span(i), self.grid.row_span(j)] = tile
        return out

    def copy(self) -> "TiledMatrix":
        dup = type(self)(self.grid)
        for key, tile in self._tiles.items():
            dup._tiles[key] = tile.copy()
        return dup


class SymmetricTiledMatrix(TiledMatrix):
    """A symmetric matrix storing only tiles with ``i >= j``.

    Reading tile (i, j) with i < j returns the transpose of the stored
    tile (j, i); writing above the diagonal is rejected, matching the
    owner-computes discipline of the tiled Cholesky algorithms where only
    lower-triangular tiles are ever produced.
    """

    symmetric = True

    @classmethod
    def from_dense(cls, a: np.ndarray, b: int) -> "SymmetricTiledMatrix":
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"expected a square matrix, got shape {a.shape}")
        if not np.allclose(a, a.T, atol=1e-10 * max(1.0, np.abs(a).max())):
            raise ValueError("matrix is not symmetric")
        m = super().from_dense(a, b)
        return m  # type: ignore[return-value]

    def _stored_keys(self) -> Iterator[TileKey]:
        return self.grid.lower_tiles()

    def _canonical(self, key: TileKey) -> TileKey:
        self.grid.check_tile(*key)
        return key

    def __getitem__(self, key: TileKey) -> np.ndarray:
        i, j = self._canonical(key)
        if i >= j:
            return self._tiles[(i, j)]
        return self._tiles[(j, i)].T

    def __setitem__(self, key: TileKey, value: np.ndarray) -> None:
        i, j = key
        if i < j:
            raise KeyError(
                f"cannot write upper-triangle tile ({i}, {j}) of a symmetric matrix"
            )
        super().__setitem__(key, value)

    def to_dense(self) -> np.ndarray:
        # Mirror strictly-lower tiles into the upper triangle; diagonal
        # tiles are stored with their full (symmetric) content.
        out = np.zeros((self.grid.n, self.grid.n))
        for (i, j), tile in self._tiles.items():
            out[self.grid.row_span(i), self.grid.row_span(j)] = tile
            if i > j:
                out[self.grid.row_span(j), self.grid.row_span(i)] = tile.T
        return out
