"""Seeded generation of test matrices.

The paper generates random symmetric positive definite matrices for every
experiment.  We reproduce that with a diagonally-dominant construction:
``A = (G + G^T)/2 + n * I`` for a standard normal ``G`` is symmetric and,
by Gershgorin's theorem, positive definite with overwhelming margin.  The
generator is deterministic given a seed so distributed runtimes can build
identical tiles independently on every node without communication -- the
same trick Chameleon uses for its test harness.
"""

from __future__ import annotations


import numpy as np

from .layout import TileGrid
from .tiled_matrix import SymmetricTiledMatrix, TiledMatrix

__all__ = [
    "random_spd_dense",
    "random_spd_tiled",
    "random_rhs_dense",
    "random_rhs_tiled",
    "generate_spd_tile",
    "generate_rhs_tile",
]


def _tile_rng(seed: int, i: int, j: int) -> np.random.Generator:
    """Independent, reproducible stream for tile (i, j)."""
    return np.random.default_rng(np.random.SeedSequence((seed, i, j)))


def generate_spd_tile(grid: TileGrid, seed: int, i: int, j: int) -> np.ndarray:
    """Tile (i, j), i >= j, of the seeded SPD matrix — computable anywhere.

    Off-diagonal tiles are plain Gaussian blocks; diagonal tiles are
    symmetrized and shifted by ``n`` to guarantee positive definiteness of
    the assembled matrix.
    """
    grid.check_tile(i, j)
    if i < j:
        raise ValueError(f"only lower-triangle tiles are generated, got ({i}, {j})")
    shape = grid.tile_shape(i, j)
    g = _tile_rng(seed, i, j).standard_normal(shape)
    if i == j:
        g = (g + g.T) / 2.0 + grid.n * np.eye(shape[0])
    return g


def generate_rhs_tile(grid: TileGrid, seed: int, i: int, width: int) -> np.ndarray:
    """Tile row ``i`` of the seeded right-hand-side matrix B (n x width)."""
    grid.check_tile(i, 0)
    return _tile_rng(seed ^ 0x5B5B5B, i, 0).standard_normal((grid.tile_rows(i), width))


def random_spd_tiled(grid: TileGrid, seed: int = 0) -> SymmetricTiledMatrix:
    """Seeded SPD matrix in symmetric tiled storage."""
    m = SymmetricTiledMatrix(grid)
    for i, j in grid.lower_tiles():
        m[i, j] = generate_spd_tile(grid, seed, i, j)
    return m


def random_spd_dense(n: int, seed: int = 0, b: int = 0) -> np.ndarray:
    """Seeded dense SPD matrix; tile-consistent with ``random_spd_tiled``.

    When ``b`` is given, the dense matrix equals the assembly of the tiled
    generator with that tile size, so dense references and tiled runs
    factorize literally the same matrix.
    """
    if b <= 0:
        b = n
    return random_spd_tiled(TileGrid(n=n, b=b), seed).to_dense()


def random_rhs_tiled(grid: TileGrid, width: int, seed: int = 0) -> TiledMatrix:
    """Seeded right-hand side B of shape (n, width), stored as a tile column."""
    rhs_grid = TileGrid(n=grid.n, b=grid.b)
    m = TiledMatrix(rhs_grid)
    # Stored as tiles (i, 0) of shape (tile_rows(i), width); bypass the
    # square-tile shape check by writing into the dict directly.
    for i in range(grid.ntiles):
        m._tiles[(i, 0)] = generate_rhs_tile(grid, seed, i, width)
    return m


def random_rhs_dense(n: int, width: int, seed: int = 0, b: int = 0) -> np.ndarray:
    if b <= 0:
        b = n
    grid = TileGrid(n=n, b=b)
    return np.vstack([generate_rhs_tile(grid, seed, i, width) for i in range(grid.ntiles)])
