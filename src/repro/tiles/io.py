"""Saving and loading tiled matrices (checkpointing factors).

A factorization of the paper's largest matrices is hours of work; a
production library must be able to persist the tiled result and reload it
for subsequent solves.  Tiles are stored in NumPy's ``.npz`` container
with self-describing keys (``A_<i>_<j>``) plus grid metadata, so a file
written by one process layout can be read back under any distribution.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from .layout import TileGrid
from .tiled_matrix import SymmetricTiledMatrix, TiledMatrix

__all__ = ["save_tiled", "load_tiled"]

_FORMAT_VERSION = 1


def save_tiled(path: Union[str, os.PathLike], matrix: TiledMatrix) -> None:
    """Write a tiled matrix (and its geometry) to an ``.npz`` file."""
    payload = {
        "__meta__": np.array(
            [_FORMAT_VERSION, matrix.grid.n, matrix.grid.b,
             1 if matrix.symmetric else 0],
            dtype=np.int64,
        )
    }
    for (i, j) in list(matrix.keys()):
        payload[f"A_{i}_{j}"] = matrix[i, j]
    np.savez_compressed(path, **payload)


def load_tiled(path: Union[str, os.PathLike]) -> TiledMatrix:
    """Read a tiled matrix written by :func:`save_tiled`."""
    with np.load(path) as data:
        if "__meta__" not in data:
            raise ValueError(f"{path} is not a repro tiled-matrix file")
        version, n, b, symmetric = (int(x) for x in data["__meta__"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported tiled-matrix format version {version} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        grid = TileGrid(n=n, b=b)
        matrix = SymmetricTiledMatrix(grid) if symmetric else TiledMatrix(grid)
        for key in data.files:
            if key == "__meta__":
                continue
            _, i, j = key.split("_")
            matrix[int(i), int(j)] = data[key]
    return matrix
