"""Metrics registry: labelled counters, gauges and histograms.

A deliberately small, dependency-free subset of the Prometheus data
model.  Each metric holds a map from a label tuple to a value, so one
``Counter`` named ``net.bytes`` can carry every ``(src, dst)`` pair of a
run; the un-labelled value uses the empty tuple.  ``MetricsRegistry``
is the namespace runtimes write into (usually through a
:class:`repro.obs.Recorder`) and exposes ``as_dict()`` for machine
consumption and ``summary()`` for humans.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Sequence
from typing import Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Labels = tuple


def _labels(labels) -> Labels:
    if labels is None:
        return ()
    if isinstance(labels, tuple):
        return labels
    return (labels,)


class Counter:
    """Monotonically increasing sum, one value per label tuple."""

    kind = "counter"
    __slots__ = ("name", "help", "values")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.values: dict[Labels, float] = {}

    def inc(self, amount: float = 1.0, labels=None) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        key = _labels(labels)
        self.values[key] = self.values.get(key, 0.0) + amount

    def value(self, labels=None) -> float:
        return self.values.get(_labels(labels), 0.0)

    def total(self) -> float:
        return sum(self.values.values())


class Gauge:
    """Point-in-time value, one per label tuple (with a max helper)."""

    kind = "gauge"
    __slots__ = ("name", "help", "values")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.values: dict[Labels, float] = {}

    def set(self, value: float, labels=None) -> None:
        self.values[_labels(labels)] = value

    def set_max(self, value: float, labels=None) -> None:
        """Keep the running maximum (handy for queue depths, peak memory)."""
        key = _labels(labels)
        if value > self.values.get(key, float("-inf")):
            self.values[key] = value

    def value(self, labels=None) -> float:
        return self.values.get(_labels(labels), 0.0)


#: Default histogram buckets: powers of four spanning nanoseconds to
#: gigaunits — wide enough for byte sizes and sub-second latencies alike.
DEFAULT_BUCKETS = tuple(4.0 ** k for k in range(-15, 16))


class Histogram:
    """Cumulative-bucket histogram of observed samples (un-labelled)."""

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.buckets: tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket boundary")
        # counts[i] = samples <= buckets[i]; one overflow slot at the end.
        self.counts: list[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[self._slot(value)] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def _slot(self, value: float) -> int:
        # First bucket boundary >= value; the overflow slot past the end.
        return bisect_left(self.buckets, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bucket boundary containing the q-quantile (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        acc = 0
        for i, c in enumerate(self.counts):
            acc += c
            if acc >= target:
                return self.buckets[i] if i < len(self.buckets) else self.max
        return self.max


class MetricsRegistry:
    """Named metrics namespace with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, cls, **kwargs):
        m = self._metrics.get(name)
        if m is None:
            m = cls(name, **kwargs)
            self._metrics[name] = m
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(m).__name__}"
            )
        return m

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help=help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, help=help, buckets=buckets)

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable:
        return iter(self._metrics.values())

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly dump: label tuples become '|'-joined strings."""
        out: dict[str, object] = {}
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Histogram):
                out[name] = {
                    "kind": m.kind,
                    "count": m.count,
                    "sum": m.sum,
                    "mean": m.mean,
                    "min": m.min if m.count else None,
                    "max": m.max if m.count else None,
                }
            else:
                out[name] = {
                    "kind": m.kind,
                    "values": {
                        "|".join(str(p) for p in k) if k else "": v
                        for k, v in sorted(m.values.items(), key=lambda kv: str(kv[0]))
                    },
                }
        return out

    def summary(self) -> str:
        """Human-readable table, one line per metric (totals + extremes)."""
        lines = [f"{'metric':<28} {'kind':<9} {'value':>14}  detail"]
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Counter):
                detail = ""
                if len(m.values) > 1:
                    top = max(m.values.items(), key=lambda kv: kv[1])
                    detail = f"{len(m.values)} series, max {top[0]}={top[1]:g}"
                lines.append(f"{name:<28} {m.kind:<9} {m.total():>14g}  {detail}")
            elif isinstance(m, Gauge):
                detail = f"{len(m.values)} series" if len(m.values) > 1 else ""
                peak = max(m.values.values()) if m.values else 0.0
                lines.append(f"{name:<28} {m.kind:<9} {peak:>14g}  {detail}")
            else:  # Histogram
                detail = (f"n={m.count} mean={m.mean:g} "
                          f"p90<={m.quantile(0.9):g} max={m.max:g}"
                          if m.count else "empty")
                lines.append(f"{name:<28} {m.kind:<9} {m.sum:>14g}  {detail}")
        return "\n".join(lines)
