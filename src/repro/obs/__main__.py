"""Command-line smoke tests for the observability layer.

    python -m repro.obs --selfcheck            # trace a run end-to-end
    python -m repro.obs --check-docs [ROOT]    # dead-link lint over docs

``--selfcheck`` simulates a small traced Cholesky, exports the trace to
Chrome-JSON and JSONL in a temp directory, reloads the JSONL and
verifies (1) the reloaded events equal the originals and (2) the traced
wire bytes equal :func:`repro.comm.count_communications` on the same
graph — the invariant the test suite also enforces.  Exit status 0 on
success, 1 on failure; both checks print one summary line.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from collections.abc import Sequence
from pathlib import Path
from typing import Optional

from . import Recorder, read_jsonl, write_chrome_trace, write_jsonl
from .doclint import default_doc_paths, find_dead_links


def selfcheck(ntiles: int = 10, b: int = 64, r: int = 4) -> int:
    """Trace, export, reload, verify; returns a process exit code."""
    from ..comm import count_communications
    from ..config import laptop
    from ..distributions import SymmetricBlockCyclic
    from ..graph import build_cholesky_graph
    from ..runtime.simulator import simulate

    dist = SymmetricBlockCyclic(r)
    graph = build_cholesky_graph(ntiles, b, dist)
    rec = Recorder(source="simulator")
    report = simulate(graph, laptop(nodes=dist.num_nodes, cores=2), recorder=rec)

    stats = count_communications(graph)
    traced_bytes = sum(e.nbytes for e in rec.transfer_events)
    if traced_bytes != stats.total_bytes or report.comm_bytes != stats.total_bytes:
        print(f"obs selfcheck FAILED: traced bytes {traced_bytes} != "
              f"counted {stats.total_bytes}")
        return 1
    if len(rec.task_events) != len(graph.tasks):
        print(f"obs selfcheck FAILED: {len(rec.task_events)} task events "
              f"for {len(graph.tasks)} tasks")
        return 1

    with tempfile.TemporaryDirectory() as tmp:
        chrome = write_chrome_trace(rec, Path(tmp) / "trace.json")
        with open(chrome) as fh:
            doc = json.load(fh)
        if not doc.get("traceEvents"):
            print("obs selfcheck FAILED: empty Chrome trace")
            return 1
        jsonl = write_jsonl(rec, Path(tmp) / "trace.jsonl")
        back = read_jsonl(jsonl)
        if (back.task_events != rec.task_events
                or back.transfer_events != rec.transfer_events):
            print("obs selfcheck FAILED: JSONL round-trip mismatch")
            return 1
    print(f"obs selfcheck OK: {len(rec.task_events)} tasks, "
          f"{len(rec.transfer_events)} transfers, "
          f"{traced_bytes / 1e6:.1f} MB wire == counted volume; "
          f"exports round-trip")
    return 0


def check_docs(root: str = ".") -> int:
    """Lint README.md + docs/*.md for dead links; exit code 0 when clean."""
    paths = default_doc_paths(root)
    if not paths:
        print(f"doc check: no markdown files under {root!r}")
        return 1
    dead = find_dead_links(paths)
    for link in dead:
        print(f"{link.file}:{link.lineno}: dead link -> {link.target}")
    if dead:
        print(f"doc check FAILED: {len(dead)} dead link(s) in {len(paths)} files")
        return 1
    print(f"doc check OK: {len(paths)} files, no dead intra-repo links")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability-layer smoke tests.",
    )
    parser.add_argument("--selfcheck", action="store_true",
                        help="trace a small simulated run and verify exports")
    parser.add_argument("--check-docs", nargs="?", const=".", default=None,
                        metavar="ROOT",
                        help="dead-link lint over ROOT/README.md + ROOT/docs/*.md")
    args = parser.parse_args(argv)
    if not args.selfcheck and args.check_docs is None:
        parser.print_help()
        return 2
    code = 0
    if args.selfcheck:
        code = max(code, selfcheck())
    if args.check_docs is not None:
        code = max(code, check_docs(args.check_docs))
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
