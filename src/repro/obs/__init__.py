"""Unified observability layer: event traces, exporters, metrics.

Every runtime in the library — the discrete-event simulator, the numeric
local executor, the multiprocessing distributed executor, and the
out-of-core engine — can emit into one :class:`Recorder`:

* **events** (:mod:`repro.obs.events`) — typed task / transfer / io /
  cache records with a shared time axis;
* **exporters** (:mod:`repro.obs.export`) — Chrome trace-event JSON
  (loadable in Perfetto or ``chrome://tracing``, one track per
  node/worker/NIC) and a compact JSONL schema with round-trip loading;
* **metrics** (:mod:`repro.obs.metrics`) — counters / gauges /
  histograms (bytes on the wire per (src, dst), worker utilization,
  queue depths, cache hit rates) with a ``summary()`` table.

Recording is opt-in: pass a :class:`Recorder`, or use the module-level
:data:`NULL_RECORDER` whose methods are no-ops, so un-traced hot paths
pay nothing.  ``python -m repro.obs --selfcheck`` smoke-tests the whole
layer; see ``docs/observability.md`` for the schema and a worked
Perfetto walkthrough.
"""

from .events import (
    NULL_RECORDER,
    CacheEvent,
    FaultEvent,
    IOEvent,
    NullRecorder,
    Recorder,
    TaskEvent,
    TransferEvent,
)
from .export import (
    chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "TaskEvent",
    "TransferEvent",
    "IOEvent",
    "CacheEvent",
    "FaultEvent",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
