"""Exporters for recorded traces: Chrome/Perfetto JSON and JSONL.

Two formats, two audiences:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format, loadable in `Perfetto <https://ui.perfetto.dev>`_
  or ``chrome://tracing``.  Each simulated/real node becomes one
  *process* track; its workers and its NIC become *thread* lanes inside
  it (concurrent slices are spread over lanes so nothing overlaps).
  Timestamps are microseconds, as the format requires.
* :func:`write_jsonl` / :func:`read_jsonl` — a compact one-event-per-line
  schema that round-trips losslessly: reading a file replays every event
  through a fresh :class:`~repro.obs.events.Recorder`, so the reloaded
  event lists *and* derived metrics equal the originals.

The field-by-field schema of both formats is documented in
``docs/observability.md``.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import asdict

from ..graph.task import DataKey
from .events import Recorder

__all__ = ["chrome_trace", "write_chrome_trace", "write_jsonl", "read_jsonl"]

#: JSONL schema version; bump on incompatible field changes.
JSONL_VERSION = 1

#: Thread-id bases inside each node's process track.
_TID_NIC = 1000
_TID_IO = 2000
_TID_CACHE = 2001
_TID_FAULT = 3000


# -- key (de)serialization ----------------------------------------------------


def _encode_key(key) -> object:
    """JSON-encode an event key, preserving DataKey/tuple structure."""
    if isinstance(key, DataKey):
        return {"tile": [key.name, key.i, key.j, key.ver, key.part]}
    if isinstance(key, tuple):
        return {"t": [_encode_key(k) for k in key]}
    if isinstance(key, (str, int, float, bool)) or key is None:
        return key
    return str(key)


def _decode_key(obj) -> object:
    if isinstance(obj, dict):
        if "tile" in obj:
            name, i, j, ver, part = obj["tile"]
            return DataKey(name, i, j, ver, part)
        if "t" in obj:
            return tuple(_decode_key(k) for k in obj["t"])
    return obj


def _key_label(key) -> str:
    if isinstance(key, DataKey):
        return f"{key.name}[{key.i},{key.j}]v{key.ver}" + (
            f".{key.part}" if key.part else ""
        )
    return str(key)


# -- Chrome trace-event / Perfetto export -------------------------------------


def _assign_lanes(spans: Sequence[tuple[float, float]]) -> list[int]:
    """Greedy interval-graph colouring: first free lane per span.

    ``spans`` are (start, end) pairs; the result maps each span to a lane
    such that spans sharing a lane never overlap — what the trace viewer
    needs to render concurrent slices side by side.
    """
    order = sorted(range(len(spans)), key=lambda i: (spans[i][0], spans[i][1]))
    lanes_end: list[float] = []
    out = [0] * len(spans)
    for i in order:
        start, end = spans[i]
        for lane, busy_until in enumerate(lanes_end):
            if busy_until <= start + 1e-15:
                lanes_end[lane] = end
                out[i] = lane
                break
        else:
            out[i] = len(lanes_end)
            lanes_end.append(end)
    return out


def _fault_node(e) -> int:
    """Track a fault event lands on: the affected node, else the source."""
    if e.node >= 0:
        return e.node
    if e.src >= 0:
        return e.src
    return 0


def chrome_trace(recorder: Recorder) -> dict:
    """Render a recorder as a Chrome trace-event JSON document (a dict)."""
    events: list[dict] = []
    nodes = sorted(
        {e.node for e in recorder.task_events}
        | {e.src for e in recorder.transfer_events}
        | {e.dst for e in recorder.transfer_events}
        | {_fault_node(e) for e in recorder.fault_events}
    )
    for node in nodes:
        events.append({"ph": "M", "pid": node, "name": "process_name",
                       "args": {"name": f"node {node}"}})
        events.append({"ph": "M", "pid": node, "name": "process_sort_index",
                       "args": {"sort_index": node}})

    # Task slices: one worker lane per concurrently-running task.
    by_node: dict[int, list] = {}
    for e in recorder.task_events:
        by_node.setdefault(e.node, []).append(e)
    for node, evs in by_node.items():
        lanes = _assign_lanes([(e.start, e.end) for e in evs])
        for lane in range(max(lanes) + 1 if lanes else 0):
            events.append({"ph": "M", "pid": node, "tid": lane,
                           "name": "thread_name",
                           "args": {"name": f"worker {lane}"}})
        for e, lane in zip(evs, lanes):
            events.append({
                "ph": "X", "pid": node, "tid": lane, "cat": "task",
                "name": e.kind, "ts": e.start * 1e6,
                "dur": (e.end - e.start) * 1e6,
                "args": {"task_id": e.task_id, "flops": e.flops,
                         "wait_us": (e.start - e.ready) * 1e6},
            })

    # Transfer slices live on the *source* node's NIC lanes, spanning
    # first-push to delivery.
    by_src: dict[int, list] = {}
    for e in recorder.transfer_events:
        by_src.setdefault(e.src, []).append(e)
    for src, evs in by_src.items():
        lanes = _assign_lanes([(e.started, max(e.delivered, e.started)) for e in evs])
        for lane in range(max(lanes) + 1 if lanes else 0):
            events.append({"ph": "M", "pid": src, "tid": _TID_NIC + lane,
                           "name": "thread_name",
                           "args": {"name": f"nic-out {lane}"}})
        for e, lane in zip(evs, lanes):
            events.append({
                "ph": "X", "pid": src, "tid": _TID_NIC + lane, "cat": "transfer",
                "name": f"send {_key_label(e.key)} -> n{e.dst}",
                "ts": e.started * 1e6,
                "dur": (e.delivered - e.started) * 1e6,
                "args": {"src": e.src, "dst": e.dst, "nbytes": e.nbytes,
                         "queue_wait_us": (e.started - e.submitted) * 1e6},
            })

    # IO / cache events are instants on node 0 (the out-of-core engine is
    # single-node).
    if recorder.io_events or recorder.cache_events:
        events.append({"ph": "M", "pid": 0, "tid": _TID_IO,
                       "name": "thread_name", "args": {"name": "io"}})
        events.append({"ph": "M", "pid": 0, "tid": _TID_CACHE,
                       "name": "thread_name", "args": {"name": "cache"}})
    for e in recorder.io_events:
        events.append({
            "ph": "i", "pid": 0, "tid": _TID_IO, "s": "t", "cat": "io",
            "name": f"{e.op} {_key_label(e.key)}", "ts": e.time * 1e6,
            "args": {"op": e.op, "nbytes": e.nbytes},
        })
    for e in recorder.cache_events:
        events.append({
            "ph": "i", "pid": 0, "tid": _TID_CACHE, "s": "t", "cat": "cache",
            "name": f"{e.op} {_key_label(e.key)}", "ts": e.time * 1e6,
            "args": {"op": e.op, "nbytes": e.nbytes, "dirty": e.dirty},
        })

    # Fault instants land on the affected node's track, one shared lane.
    fault_pids = {_fault_node(e) for e in recorder.fault_events}
    for pid in sorted(fault_pids):
        events.append({"ph": "M", "pid": pid, "tid": _TID_FAULT,
                       "name": "thread_name", "args": {"name": "faults"}})
    for e in recorder.fault_events:
        label = e.op if e.key is None else f"{e.op} {_key_label(e.key)}"
        events.append({
            "ph": "i", "pid": _fault_node(e), "tid": _TID_FAULT, "s": "t",
            "cat": "fault", "name": label, "ts": e.time * 1e6,
            "args": {"op": e.op, "node": e.node, "src": e.src, "dst": e.dst,
                     "detail": e.detail},
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "source": recorder.source},
    }


def write_chrome_trace(recorder: Recorder, path) -> str:
    """Write the Perfetto-loadable JSON; returns the path written."""
    doc = chrome_trace(recorder)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return str(path)


# -- JSONL round-trip ---------------------------------------------------------


def write_jsonl(recorder: Recorder, path) -> str:
    """Write one JSON object per line: a header, then every event."""
    with open(path, "w") as fh:
        fh.write(json.dumps({"type": "header", "version": JSONL_VERSION,
                             "source": recorder.source}) + "\n")
        for e in recorder.task_events:
            rec = {"type": "task"}
            rec.update(asdict(e))
            fh.write(json.dumps(rec) + "\n")
        for e in recorder.transfer_events:
            rec = {"type": "transfer"}
            rec.update(asdict(e))
            rec["key"] = _encode_key(e.key)
            fh.write(json.dumps(rec) + "\n")
        for e in recorder.io_events:
            rec = {"type": "io"}
            rec.update(asdict(e))
            rec["key"] = _encode_key(e.key)
            fh.write(json.dumps(rec) + "\n")
        for e in recorder.cache_events:
            rec = {"type": "cache"}
            rec.update(asdict(e))
            rec["key"] = _encode_key(e.key)
            fh.write(json.dumps(rec) + "\n")
        for e in recorder.fault_events:
            rec = {"type": "fault"}
            rec.update(asdict(e))
            rec["key"] = _encode_key(e.key)
            fh.write(json.dumps(rec) + "\n")
    return str(path)


def read_jsonl(path) -> Recorder:
    """Load a JSONL trace, replaying events so metrics are rebuilt too."""
    rec = Recorder()
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.pop("type", None)
            if kind == "header":
                if obj.get("version") != JSONL_VERSION:
                    raise ValueError(
                        f"{path}: unsupported trace version {obj.get('version')}"
                    )
                rec.source = obj.get("source", "")
            elif kind == "task":
                rec.record_task(**obj)
            elif kind == "transfer":
                obj["key"] = _decode_key(obj["key"])
                rec.record_transfer(**obj)
            elif kind == "io":
                obj["key"] = _decode_key(obj["key"])
                rec.record_io(**obj)
            elif kind == "cache":
                obj["key"] = _decode_key(obj["key"])
                rec.record_cache(**obj)
            elif kind == "fault":
                obj["key"] = _decode_key(obj["key"])
                rec.record_fault(**obj)
            else:
                raise ValueError(f"{path}:{lineno}: unknown record type {kind!r}")
    return rec
