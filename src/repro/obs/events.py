"""Structured event-trace core shared by every runtime.

Five typed events cover the execution paths of the library:

* :class:`TaskEvent` — one kernel invocation (simulator, local executor,
  distributed worker);
* :class:`TransferEvent` — one wire message between nodes (simulator's
  network model, distributed executor's queue sends);
* :class:`IOEvent` — one slow-memory load/store of the out-of-core
  engine;
* :class:`CacheEvent` — one fast-memory cache decision (hit / miss /
  create / eviction writeback);
* :class:`FaultEvent` — one injected or observed fault (straggler window,
  link degradation, message loss, retransmission, worker crash, ack or
  gather timeout); see :mod:`repro.runtime.faults`.

All times are seconds on the recorder's time axis: simulated time for
the simulator, wall-clock seconds since the run started for the real
runtimes.  A :class:`Recorder` collects events *and* feeds the
derived metrics (:mod:`repro.obs.metrics`) as they arrive, so
``recorder.metrics`` is consistent with the event lists at any point.

The disabled path is :class:`NullRecorder` (singleton
:data:`NULL_RECORDER`): ``enabled`` is False and every ``record_*``
method is a no-op, so instrumented code can either branch on
``recorder.enabled`` (hot loops) or call unconditionally (cold paths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .metrics import MetricsRegistry

__all__ = [
    "TaskEvent",
    "TransferEvent",
    "IOEvent",
    "CacheEvent",
    "FaultEvent",
    "FAULT_OPS",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
]


@dataclass(frozen=True)
class TaskEvent:
    """Timing of one executed task."""

    task_id: int
    kind: str
    node: int
    ready: float  # all inputs present at the node
    start: float  # worker began executing
    end: float    # kernel finished
    flops: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def wait(self) -> float:
        """Ready-to-start delay (worker contention / barrier holds)."""
        return self.start - self.ready


@dataclass(frozen=True)
class TransferEvent:
    """Timing of one delivered wire message."""

    key: object  # DataKey transferred (head key when aggregated)
    src: int
    dst: int
    nbytes: int
    submitted: float  # producer finished / transfer requested
    started: float  # first quantum pushed through the egress port
    delivered: float  # last quantum landed at the destination

    @property
    def queue_wait(self) -> float:
        """Time spent waiting for the source's egress port."""
        return self.started - self.submitted

    @property
    def wire(self) -> float:
        """Time in flight (first push to last landing)."""
        return self.delivered - self.started

    @property
    def total(self) -> float:
        """Submission-to-delivery latency."""
        return self.delivered - self.submitted


@dataclass(frozen=True)
class IOEvent:
    """One slow-memory transfer of an out-of-core execution."""

    op: str  # "load" | "store"
    key: object
    nbytes: int
    time: float


@dataclass(frozen=True)
class CacheEvent:
    """One fast-memory cache decision."""

    op: str  # "hit" | "miss" | "create" | "evict"
    key: object
    nbytes: int
    time: float
    dirty: bool = False  # for "evict": whether a writeback was paid


#: Fault-event operations; see :class:`FaultEvent`.
FAULT_OPS = ("slowdown", "degraded", "loss", "retry", "crash", "timeout")


@dataclass(frozen=True)
class FaultEvent:
    """One injected or observed fault (see :mod:`repro.runtime.faults`).

    ``op`` is one of :data:`FAULT_OPS`:

    * ``"slowdown"`` — a straggler window opened on ``node``;
    * ``"degraded"`` — a link-degradation window opened on (src, dst);
    * ``"loss"`` — a message on (src, dst) was dropped in flight;
    * ``"retry"`` — a lost/unacked message was retransmitted;
    * ``"crash"`` — ``node`` fail-stopped;
    * ``"timeout"`` — a wait (ack or result gather) expired.

    Fields that do not apply to an op are -1 / None.
    """

    op: str
    time: float
    node: int = -1
    src: int = -1
    dst: int = -1
    key: object = None
    detail: str = ""


class Recorder:
    """Collects typed events and keeps derived metrics in step.

    ``source`` labels where the trace came from ("simulator", "local",
    "distributed", "ooc", or anything a caller chooses); exporters carry
    it into the output.
    """

    enabled = True

    def __init__(self, source: str = ""):
        self.source = source
        self.task_events: list[TaskEvent] = []
        self.transfer_events: list[TransferEvent] = []
        self.io_events: list[IOEvent] = []
        self.cache_events: list[CacheEvent] = []
        self.fault_events: list[FaultEvent] = []
        self.metrics = MetricsRegistry()

    # -- recording ----------------------------------------------------------

    def record_task(
        self,
        task_id: int,
        kind: str,
        node: int,
        ready: float,
        start: float,
        end: float,
        flops: float = 0.0,
    ) -> None:
        self.task_events.append(
            TaskEvent(task_id, kind, node, ready, start, end, flops)
        )
        m = self.metrics
        m.counter("tasks", "executed tasks per kernel kind").inc(labels=(kind,))
        m.counter("task.seconds", "busy seconds per kernel kind").inc(
            end - start, labels=(kind,)
        )
        m.histogram("task.wait.seconds",
                    "ready-to-start delay per task").observe(start - ready)

    def record_transfer(
        self,
        key: object,
        src: int,
        dst: int,
        nbytes: int,
        submitted: float,
        started: float,
        delivered: float,
    ) -> None:
        self.transfer_events.append(
            TransferEvent(key, src, dst, nbytes, submitted, started, delivered)
        )
        m = self.metrics
        m.counter("net.bytes", "bytes on the wire per (src, dst)").inc(
            nbytes, labels=(src, dst)
        )
        m.counter("net.messages", "messages per (src, dst)").inc(labels=(src, dst))
        m.histogram("net.queue.seconds",
                    "egress-port queueing delay per message").observe(
            started - submitted
        )

    def record_io(self, op: str, key: object, nbytes: int, time: float) -> None:
        if op not in ("load", "store"):
            raise ValueError(f"unknown io op {op!r}")
        self.io_events.append(IOEvent(op, key, nbytes, time))
        self.metrics.counter("io.bytes", "slow-memory traffic per op").inc(
            nbytes, labels=(op,)
        )

    def record_cache(
        self, op: str, key: object, nbytes: int, time: float, dirty: bool = False
    ) -> None:
        if op not in ("hit", "miss", "create", "evict"):
            raise ValueError(f"unknown cache op {op!r}")
        self.cache_events.append(CacheEvent(op, key, nbytes, time, dirty))
        self.metrics.counter("cache.ops", "cache decisions per op").inc(labels=(op,))
        if op == "evict" and dirty:
            self.metrics.counter(
                "cache.writeback.bytes", "bytes written back on eviction"
            ).inc(nbytes)

    def record_fault(
        self,
        op: str,
        time: float,
        node: int = -1,
        src: int = -1,
        dst: int = -1,
        key: object = None,
        detail: str = "",
    ) -> None:
        if op not in FAULT_OPS:
            raise ValueError(f"unknown fault op {op!r}")
        self.fault_events.append(FaultEvent(op, time, node, src, dst, key, detail))
        self.metrics.counter("faults", "fault events per op").inc(labels=(op,))

    # -- derived views ------------------------------------------------------

    def finalize_utilization(self, busy_time, makespan: float,
                             cores_per_node: int = 1) -> None:
        """Record per-node busy seconds + utilization gauges from a run."""
        g_busy = self.metrics.gauge("worker.busy.seconds",
                                    "compute seconds per node")
        g_util = self.metrics.gauge("worker.utilization",
                                    "busy fraction per node")
        for node, busy in enumerate(busy_time):
            g_busy.set(busy, labels=(node,))
            if makespan > 0:
                g_util.set(busy / (makespan * cores_per_node), labels=(node,))

    def bytes_by_pair(self) -> dict[tuple[int, int], int]:
        """Wire bytes per (src, dst) pair, from the ``net.bytes`` counter."""
        counter = self.metrics.get("net.bytes")
        if counter is None:
            return {}
        return {k: int(v) for k, v in counter.values.items()}

    def cache_hit_rate(self) -> Optional[float]:
        """Hits / (hits + misses), or None when no cache events exist."""
        ops = self.metrics.get("cache.ops")
        if ops is None:
            return None
        hits = ops.value(("hit",))
        misses = ops.value(("miss",))
        if hits + misses == 0:
            return None
        return hits / (hits + misses)

    def num_events(self) -> int:
        return (len(self.task_events) + len(self.transfer_events)
                + len(self.io_events) + len(self.cache_events)
                + len(self.fault_events))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Recorder {self.source or 'unlabelled'}: "
                f"{len(self.task_events)} tasks, "
                f"{len(self.transfer_events)} transfers, "
                f"{len(self.io_events)} io, "
                f"{len(self.cache_events)} cache, "
                f"{len(self.fault_events)} faults>")


class NullRecorder(Recorder):
    """Disabled recorder: ``enabled`` is False, recording is a no-op.

    Shares the :class:`Recorder` interface so call sites need no
    branching; hot loops should still skip the call via ``enabled``.
    """

    enabled = False

    def record_task(self, *args, **kwargs) -> None:  # noqa: D102
        pass

    def record_transfer(self, *args, **kwargs) -> None:  # noqa: D102
        pass

    def record_io(self, *args, **kwargs) -> None:  # noqa: D102
        pass

    def record_cache(self, *args, **kwargs) -> None:  # noqa: D102
        pass

    def record_fault(self, *args, **kwargs) -> None:  # noqa: D102
        pass

    def finalize_utilization(self, *args, **kwargs) -> None:  # noqa: D102
        pass


#: Shared no-op recorder for un-traced runs.
NULL_RECORDER = NullRecorder()
