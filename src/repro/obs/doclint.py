"""Dead-link lint for the repository's markdown documentation.

Checks every inline markdown link ``[text](target)`` whose target is
*intra-repo* (not ``http(s)://`` or ``mailto:``) and reports:

* targets that do not exist on disk, resolving relative to the file
  containing the link;
* anchors that do not resolve to a heading — both same-file
  (``#section``) and cross-file (``other.md#section``) anchors, using
  GitHub's heading-slug rules (lowercase, punctuation stripped, spaces
  to hyphens, duplicate slugs numbered ``-1``, ``-2``, ...).

Wired into the test suite (``tests/test_docs.py``) and exposed as
``python -m repro.obs --check-docs``.
"""

from __future__ import annotations

import re
from collections.abc import Iterable
from pathlib import Path
from typing import NamedTuple

__all__ = ["DeadLink", "find_dead_links", "default_doc_paths", "heading_anchors"]

#: Inline markdown links; deliberately simple (no nested brackets) —
#: the repository's docs do not use reference-style links.
_LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")

_HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
#: Markdown decoration stripped from heading text before slugification.
_INLINE_LINK_RE = re.compile(r"\[([^\]]*)\]\([^)]*\)")
_SLUG_DROP_RE = re.compile(r"[^\w\- ]")


class DeadLink(NamedTuple):
    """One broken intra-repo link (missing file or unresolvable anchor)."""

    file: str
    lineno: int
    target: str


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug of one heading's text."""
    text = _INLINE_LINK_RE.sub(r"\1", heading)  # keep link text only
    text = text.replace("`", "")
    text = _SLUG_DROP_RE.sub("", text.lower())
    return text.strip().replace(" ", "-")


def heading_anchors(path: Path) -> set[str]:
    """Every anchor the markdown file at ``path`` defines.

    Follows GitHub rendering: ATX headings outside fenced code blocks;
    a repeated slug gets ``-1``, ``-2``, ... suffixes.
    """
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in Path(path).read_text().splitlines():
        if line.lstrip().startswith(("```", "~~~")):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING_RE.match(line)
        if not m:
            continue
        slug = _slugify(m.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def default_doc_paths(root) -> list[Path]:
    """The documentation set the repo lints: README.md + docs/*.md."""
    root = Path(root)
    out = []
    readme = root / "README.md"
    if readme.exists():
        out.append(readme)
    out.extend(sorted((root / "docs").glob("*.md")))
    return out


def find_dead_links(paths: Iterable) -> list[DeadLink]:
    """Scan markdown files; returns every intra-repo link that does not
    resolve — to a file on disk, and (for markdown targets carrying an
    anchor) to a heading inside that file."""
    dead: list[DeadLink] = []
    anchor_cache: dict[Path, set[str]] = {}

    def anchors_of(p: Path) -> set[str]:
        p = p.resolve()
        if p not in anchor_cache:
            anchor_cache[p] = heading_anchors(p)
        return anchor_cache[p]

    for path in paths:
        path = Path(path)
        text = path.read_text()
        for lineno, line in enumerate(text.splitlines(), start=1):
            for m in _LINK_RE.finditer(line):
                target = m.group(1)
                if target.startswith(_EXTERNAL):
                    continue
                rel, _, anchor = target.partition("#")
                if rel:
                    resolved = path.parent / rel
                    if not resolved.exists():
                        dead.append(DeadLink(str(path), lineno, target))
                        continue
                else:
                    if not anchor:
                        continue
                    resolved = path  # pure "#anchor": same file
                if anchor and resolved.suffix == ".md" \
                        and anchor not in anchors_of(resolved):
                    dead.append(DeadLink(str(path), lineno, target))
    return dead
