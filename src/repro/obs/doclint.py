"""Dead-link lint for the repository's markdown documentation.

Checks every inline markdown link ``[text](target)`` whose target is
*intra-repo* (not ``http(s)://``, ``mailto:`` or a pure ``#anchor``) and
reports targets that do not exist on disk, resolving relative to the
file containing the link.  Wired into the test suite
(``tests/test_docs.py``) and exposed as
``python -m repro.obs --check-docs``.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, List, NamedTuple

__all__ = ["DeadLink", "find_dead_links", "default_doc_paths"]

#: Inline markdown links; deliberately simple (no nested brackets) —
#: the repository's docs do not use reference-style links.
_LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")


class DeadLink(NamedTuple):
    """One broken intra-repo link."""

    file: str
    lineno: int
    target: str


def default_doc_paths(root) -> List[Path]:
    """The documentation set the repo lints: README.md + docs/*.md."""
    root = Path(root)
    out = []
    readme = root / "README.md"
    if readme.exists():
        out.append(readme)
    out.extend(sorted((root / "docs").glob("*.md")))
    return out


def find_dead_links(paths: Iterable) -> List[DeadLink]:
    """Scan markdown files; returns every intra-repo link with no target."""
    dead: List[DeadLink] = []
    for path in paths:
        path = Path(path)
        text = path.read_text()
        for lineno, line in enumerate(text.splitlines(), start=1):
            for m in _LINK_RE.finditer(line):
                target = m.group(1)
                if target.startswith(_EXTERNAL) or target.startswith("#"):
                    continue
                rel = target.split("#", 1)[0]  # drop any anchor
                if not rel:
                    continue
                if not (path.parent / rel).exists():
                    dead.append(DeadLink(str(path), lineno, target))
    return dead
