"""Task graph representation (sequential task flow, StarPU style).

A :class:`TaskGraph` is a list of :class:`Task` objects referencing
*versioned* data: each tile version is a :class:`DataKey` with a unique
producer task (or an initial descriptor when the version pre-exists the
computation).  Dependencies are therefore implicit — a task depends on the
producers of the versions it reads — exactly how StarPU infers dependencies
from the access modes Chameleon declares.

Builders emit tasks in algorithm order, which is a valid topological order
(every read references an already-emitted version); runtimes rely on this
and the validators check it.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import NamedTuple, Optional

__all__ = ["DataKey", "Task", "TaskGraph", "GraphBuilder"]


class DataKey(NamedTuple):
    """One immutable version of one tile.

    ``name`` distinguishes matrices ("A" for the symmetric operand, "B" for
    right-hand sides); ``part`` identifies the replica/partial-sum stream in
    2.5D graphs (the slice index; always 0 in 2D graphs).
    """

    name: str
    i: int
    j: int
    ver: int
    part: int = 0


class Task:
    """One tile kernel invocation placed on one node."""

    __slots__ = (
        "id",
        "kind",
        "node",
        "coords",
        "reads",
        "write",
        "flops",
        "iteration",
        "priority",
    )

    def __init__(
        self,
        id: int,
        kind: str,
        node: int,
        coords: tuple[int, ...],
        reads: tuple[DataKey, ...],
        write: Optional[DataKey],
        flops: float,
        iteration: int,
    ):
        self.id = id
        self.kind = kind
        self.node = node
        self.coords = coords
        self.reads = reads
        self.write = write
        self.flops = flops
        self.iteration = iteration
        self.priority = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Task {self.id} {self.kind}{self.coords} @n{self.node}>"


class TaskGraph:
    """A complete tiled operation: tasks + data versioning metadata."""

    def __init__(self, b: int, width: int = 0, element_size: int = 8):
        self.b = b  # tile size
        self.width = width  # right-hand-side width (0 when unused)
        self.element_size = element_size
        self.tasks: list[Task] = []
        #: DataKey -> producing task id
        self.producer: dict[DataKey, int] = {}
        #: initial DataKey -> (home node, descriptor) where descriptor tells
        #: runtimes how to materialize the data ("spd", "rhs", "zero", ...)
        self.initial: dict[DataKey, tuple[int, str]] = {}

    # -- construction -------------------------------------------------------

    def add_initial(self, key: DataKey, home: int, descriptor: str) -> DataKey:
        """Declare a version that exists before the computation starts."""
        if key in self.initial or key in self.producer:
            raise ValueError(f"data {key} already declared")
        self.initial[key] = (home, descriptor)
        return key

    def add_task(
        self,
        kind: str,
        node: int,
        coords: tuple[int, ...],
        reads: tuple[DataKey, ...],
        write: Optional[DataKey],
        flops: float,
        iteration: int,
    ) -> Task:
        for k in reads:
            if k not in self.producer and k not in self.initial:
                raise ValueError(f"task {kind}{coords} reads undeclared data {k}")
        if write is not None and (write in self.producer or write in self.initial):
            raise ValueError(f"data {write} already has a producer")
        t = Task(len(self.tasks), kind, node, coords, tuple(reads), write, flops, iteration)
        self.tasks.append(t)
        if write is not None:
            self.producer[write] = t.id
        return t

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def data_bytes(self, key: DataKey) -> int:
        """Size in bytes of one version of this datum."""
        cols = self.width if (key.name == "B" and self.width) else self.b
        return self.b * cols * self.element_size

    def source_of(self, key: DataKey) -> int:
        """Node where a version is produced (or initially resides)."""
        tid = self.producer.get(key)
        if tid is not None:
            return self.tasks[tid].node
        try:
            return self.initial[key][0]
        except KeyError:
            raise KeyError(f"unknown data {key}") from None

    def consumers(self) -> dict[DataKey, list[int]]:
        """Map version -> ids of tasks reading it (insertion order)."""
        out: dict[DataKey, list[int]] = {}
        for t in self.tasks:
            for k in t.reads:
                out.setdefault(k, []).append(t.id)
        return out

    def dependency_edges(self) -> Iterator[tuple[int, int]]:
        """(producer id, consumer id) pairs — initial data yields no edge."""
        for t in self.tasks:
            for k in t.reads:
                tid = self.producer.get(k)
                if tid is not None:
                    yield (tid, t.id)

    def total_flops(self) -> float:
        return sum(t.flops for t in self.tasks)

    def nodes_used(self) -> int:
        return 1 + max(t.node for t in self.tasks) if self.tasks else 0


class GraphBuilder:
    """Stateful helper tracking the current version of every tile.

    Lets several operation builders (POTRF, then TRSM solves, then TRTRI,
    LAUUM, remaps...) compose into a single graph, exactly like Chameleon
    merges the task graphs of chained operations without synchronization.
    """

    def __init__(self, graph: TaskGraph):
        self.graph = graph
        # (name, i, j, part) -> current version number
        self._ver: dict[tuple[str, int, int, int], int] = {}

    def declare(
        self, name: str, i: int, j: int, home: int, descriptor: str, part: int = 0
    ) -> DataKey:
        """Declare the initial version of a tile, resident at ``home``."""
        key = DataKey(name, i, j, 0, part)
        self.graph.add_initial(key, home, descriptor)
        self._ver[(name, i, j, part)] = 0
        return key

    def exists(self, name: str, i: int, j: int, part: int = 0) -> bool:
        return (name, i, j, part) in self._ver

    def current(self, name: str, i: int, j: int, part: int = 0) -> DataKey:
        """Latest version of a tile (raises if the tile was never declared)."""
        ver = self._ver[(name, i, j, part)]
        return DataKey(name, i, j, ver, part)

    def bump(self, name: str, i: int, j: int, part: int = 0) -> DataKey:
        """Next version of a tile — the key a mutating task will write."""
        slot = (name, i, j, part)
        self._ver[slot] = self._ver.get(slot, -1) + 1
        return DataKey(name, i, j, self._ver[slot], part)

    def task(
        self,
        kind: str,
        node: int,
        coords: tuple[int, ...],
        reads: tuple[DataKey, ...],
        write: Optional[DataKey],
        flops: float,
        iteration: int,
    ) -> Task:
        return self.graph.add_task(kind, node, coords, reads, write, flops, iteration)
