"""Task graphs for the tiled Cholesky family of operations."""

from .task import DataKey, GraphBuilder, Task, TaskGraph
from .cholesky import (
    build_cholesky_graph,
    build_cholesky_graph_25d,
    cholesky_phase,
    declare_spd_tiles,
)
from .solve import backward_solve_phase, build_posv_graph, forward_solve_phase
from .inversion import (
    build_lauum_graph,
    build_potri_graph,
    build_trtri_graph,
    lauum_phase,
    trtri_phase,
)
from .lu import build_lu_graph, build_lu_graph_25d
from .compiled import (
    CommPlan,
    CompiledGraph,
    compile_cholesky,
    compile_graph,
    compile_lu,
    compiled_critical_path_priorities,
)
from .redistribution import remap_phase
from .priorities import (
    KIND_RANK,
    set_critical_path_priorities,
    set_iteration_priorities,
)
from .properties import (
    GraphStats,
    expected_cholesky_counts,
    expected_lauum_counts,
    expected_trtri_counts,
    graph_stats,
    kind_counts,
    node_task_counts,
    validate_graph,
)

__all__ = [
    "DataKey",
    "Task",
    "TaskGraph",
    "GraphBuilder",
    "build_cholesky_graph",
    "build_cholesky_graph_25d",
    "cholesky_phase",
    "declare_spd_tiles",
    "build_posv_graph",
    "forward_solve_phase",
    "backward_solve_phase",
    "build_trtri_graph",
    "build_lauum_graph",
    "build_potri_graph",
    "build_lu_graph",
    "build_lu_graph_25d",
    "CommPlan",
    "CompiledGraph",
    "compile_graph",
    "compile_cholesky",
    "compile_lu",
    "compiled_critical_path_priorities",
    "trtri_phase",
    "lauum_phase",
    "remap_phase",
    "KIND_RANK",
    "set_iteration_priorities",
    "set_critical_path_priorities",
    "validate_graph",
    "kind_counts",
    "node_task_counts",
    "expected_cholesky_counts",
    "expected_trtri_counts",
    "expected_lauum_counts",
    "GraphStats",
    "graph_stats",
]
