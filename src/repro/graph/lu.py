"""Tiled LU factorization without pivoting (the paper's §III-E foil).

The paper repeatedly contrasts Cholesky with the nonsymmetric LU
factorization: 2DBC is communication-optimal for LU (each tile is used
along its row *or* its column, never both ways), and SBC's achievement is
to bring Cholesky's arithmetic intensity up to LU-with-2DBC's.  This
module provides the tiled right-looking LU (no pivoting — the variant all
the communication-avoiding literature analyses) so those claims can be
measured rather than asserted:

    for i:  A[i,i] <- GETRF(A[i,i])
            A[j,i] <- A[j,i] U[i,i]^{-1}          (TRSM_L, column panel)
            A[i,k] <- L[i,i]^{-1} A[i,k]          (TRSM_U, row panel)
            A[j,k] <- A[j,k] - A[j,i] A[i,k]      (GEMM_LU)

Every tile of the square matrix is stored (no symmetry), distributed by
``dist.owner`` without canonicalization.
"""

from __future__ import annotations

from ..distributions.base import Distribution
from ..distributions.twod5 import TwoDotFiveD
from ..kernels.flops import kernel_flops, lu_total_flops
from .task import GraphBuilder, TaskGraph

__all__ = ["build_lu_graph", "build_lu_graph_25d", "lu_total_flops"]


def build_lu_graph(N: int, b: int, dist: Distribution) -> TaskGraph:
    """Tiled LU (no pivoting) task graph on the full N x N tile grid."""
    if N < 1:
        raise ValueError(f"need at least one tile, got N={N}")
    graph = TaskGraph(b)
    bld = GraphBuilder(graph)
    for i in range(N):
        for j in range(N):
            bld.declare("A", i, j, dist.owner(i, j), "lu")

    for i in range(N):
        prev = bld.current("A", i, i)
        diag = bld.bump("A", i, i)
        bld.task("GETRF", dist.owner(i, i), (i,), (prev,), diag,
                 kernel_flops("GETRF", b), i)
        for j in range(i + 1, N):
            prevc = bld.current("A", j, i)
            out = bld.bump("A", j, i)
            bld.task("TRSM_L", dist.owner(j, i), (j, i), (prevc, diag), out,
                     kernel_flops("TRSM_L", b), i)
        for k in range(i + 1, N):
            prevr = bld.current("A", i, k)
            out = bld.bump("A", i, k)
            bld.task("TRSM_U", dist.owner(i, k), (i, k), (prevr, diag), out,
                     kernel_flops("TRSM_U", b), i)
        for j in range(i + 1, N):
            a_ji = bld.current("A", j, i)
            for k in range(i + 1, N):
                a_ik = bld.current("A", i, k)
                prevt = bld.current("A", j, k)
                out = bld.bump("A", j, k)
                bld.task("GEMM_LU", dist.owner(j, k), (j, k, i),
                         (prevt, a_ji, a_ik), out, kernel_flops("GEMM_LU", b), i)
    return graph


def _ensure_partial(bld: GraphBuilder, d25: TwoDotFiveD, i: int, j: int, s: int) -> None:
    if not bld.exists("A", i, j, part=s):
        bld.declare("A", i, j, d25.owner(s, i, j), "zero", part=s)


def _reduce_partials(
    bld: GraphBuilder, d25: TwoDotFiveD, i: int, j: int, target: int, iteration: int
):
    reads = [bld.current("A", i, j, part=target)]
    for s in range(d25.c):
        if s != target and bld.exists("A", i, j, part=s):
            reads.append(bld.current("A", i, j, part=s))
    if len(reads) == 1:
        return reads[0]
    out = bld.bump("A", i, j, part=target)
    flops = (len(reads) - 1) * kernel_flops("REDUCE", bld.graph.b)
    bld.task("REDUCE", d25.owner(target, i, j), (i, j), tuple(reads), out,
             flops, iteration)
    return out


def build_lu_graph_25d(N: int, b: int, d25: TwoDotFiveD) -> TaskGraph:
    """2.5D tiled LU without pivoting: replication over ``c`` slices.

    The COnfLUX-style organisation the paper compares against [9]:
    iteration ``i`` runs on slice ``i mod c``, each slice accumulates its
    share of the trailing updates in its own copy of the matrix, and
    REDUCE tasks aggregate the partials right before a tile's final panel
    operation.  Same data-streaming scheme as
    :func:`repro.graph.cholesky.build_cholesky_graph_25d`.
    """
    if N < 1:
        raise ValueError(f"need at least one tile, got N={N}")
    graph = TaskGraph(b)
    bld = GraphBuilder(graph)
    for i in range(N):
        for j in range(N):
            t = d25.slice_of_iteration(min(i, j))
            bld.declare("A", i, j, d25.owner(t, i, j), "lu", part=t)

    for i in range(N):
        s = d25.slice_of_iteration(i)
        acc = _reduce_partials(bld, d25, i, i, s, i)
        diag = bld.bump("A", i, i, part=s)
        bld.task("GETRF", d25.owner(s, i, i), (i,), (acc,), diag,
                 kernel_flops("GETRF", b), i)
        for j in range(i + 1, N):
            accc = _reduce_partials(bld, d25, j, i, s, i)
            out = bld.bump("A", j, i, part=s)
            bld.task("TRSM_L", d25.owner(s, j, i), (j, i), (accc, diag), out,
                     kernel_flops("TRSM_L", b), i)
        for k in range(i + 1, N):
            accr = _reduce_partials(bld, d25, i, k, s, i)
            out = bld.bump("A", i, k, part=s)
            bld.task("TRSM_U", d25.owner(s, i, k), (i, k), (accr, diag), out,
                     kernel_flops("TRSM_U", b), i)
        for j in range(i + 1, N):
            a_ji = bld.current("A", j, i, part=s)
            for k in range(i + 1, N):
                a_ik = bld.current("A", i, k, part=s)
                _ensure_partial(bld, d25, j, k, s)
                prev = bld.current("A", j, k, part=s)
                out = bld.bump("A", j, k, part=s)
                bld.task("GEMM_LU", d25.owner(s, j, k), (j, k, i),
                         (prev, a_ji, a_ik), out, kernel_flops("GEMM_LU", b), i)
    return graph
