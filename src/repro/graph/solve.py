"""Task-graph builders for triangular solves and POSV (§V-F.1).

POSV solves ``A x = B`` for SPD ``A``: a Cholesky factorization followed by
a forward solve ``L y = B`` and a backward solve ``L^T x = y``.  As in the
paper, the right-hand side is a panel of ``N x 1`` tiles (width ``w``,
customarily ``w = b``) distributed 1D row-cyclically regardless of the
distribution of A, and the three operations share one task graph with no
synchronization in between.
"""

from __future__ import annotations

from ..distributions.base import Distribution
from ..kernels.flops import kernel_flops
from .cholesky import cholesky_phase, declare_spd_tiles
from .task import GraphBuilder, TaskGraph

__all__ = ["build_posv_graph", "forward_solve_phase", "backward_solve_phase"]


def forward_solve_phase(
    bld: GraphBuilder, N: int, rhs_dist: Distribution, iteration_offset: int
) -> None:
    """Append ``B <- L^{-1} B`` tasks; A tiles must hold the factor."""
    b, w = bld.graph.b, bld.graph.width
    for i in range(N):
        it = iteration_offset + i
        diag = bld.current("A", i, i)
        prev = bld.current("B", i, 0)
        out = bld.bump("B", i, 0)
        bld.task("TRSM_SOLVE", rhs_dist.owner(i, 0), (i,), (prev, diag), out,
                 kernel_flops("TRSM_SOLVE", b, w), it)
        for j in range(i + 1, N):
            a_ji = bld.current("A", j, i)
            prevj = bld.current("B", j, 0)
            outj = bld.bump("B", j, 0)
            bld.task("GEMM_RHS", rhs_dist.owner(j, 0), (j, i),
                     (prevj, a_ji, out), outj, kernel_flops("GEMM_RHS", b, w), it)


def backward_solve_phase(
    bld: GraphBuilder, N: int, rhs_dist: Distribution, iteration_offset: int
) -> None:
    """Append ``B <- L^{-T} B`` tasks; A tiles must hold the factor."""
    b, w = bld.graph.b, bld.graph.width
    for step, i in enumerate(range(N - 1, -1, -1)):
        it = iteration_offset + step
        diag = bld.current("A", i, i)
        prev = bld.current("B", i, 0)
        out = bld.bump("B", i, 0)
        bld.task("TRSM_SOLVE_T", rhs_dist.owner(i, 0), (i,), (prev, diag), out,
                 kernel_flops("TRSM_SOLVE_T", b, w), it)
        for j in range(i):
            # B_j -= L_{i,j}^T B_i : uses the sub-diagonal tile (i, j).
            a_ij = bld.current("A", i, j)
            prevj = bld.current("B", j, 0)
            outj = bld.bump("B", j, 0)
            bld.task("GEMM_RHS_T", rhs_dist.owner(j, 0), (j, i),
                     (prevj, a_ij, out), outj, kernel_flops("GEMM_RHS_T", b, w), it)


def build_posv_graph(
    N: int,
    b: int,
    dist: Distribution,
    rhs_dist: Distribution,
    width: int = 0,
) -> TaskGraph:
    """POSV = POTRF + forward + backward solve, as one merged task graph.

    ``width`` is the number of right-hand-side columns (defaults to ``b``,
    i.e. a one-tile-wide B like in the paper's experiments).
    """
    if N < 1:
        raise ValueError(f"need at least one tile, got N={N}")
    width = width if width > 0 else b
    graph = TaskGraph(b, width=width)
    bld = GraphBuilder(graph)
    declare_spd_tiles(bld, N, dist)
    for i in range(N):
        bld.declare("B", i, 0, rhs_dist.owner(i, 0), "rhs")
    cholesky_phase(bld, N, dist)
    forward_solve_phase(bld, N, rhs_dist, iteration_offset=N)
    backward_solve_phase(bld, N, rhs_dist, iteration_offset=2 * N)
    return graph
