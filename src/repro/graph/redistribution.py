"""Explicit data redistribution between operations.

The paper's POTRI experiment (§V-F.2) remaps the matrix from SBC to 2DBC
before TRTRI (whose nonsymmetric dependencies favour 2DBC) and back after,
with the redistribution handled asynchronously by the runtime and
overlapped with computation.  A remap is expressed as one zero-flop REMAP
task per tile whose owner changes: it runs on the *new* owner, reads the
current version (one transfer), and produces the next version there.
"""

from __future__ import annotations

from ..distributions.base import Distribution
from .task import GraphBuilder

__all__ = ["remap_phase"]


def remap_phase(
    bld: GraphBuilder,
    N: int,
    to_dist: Distribution,
    iteration: int,
    name: str = "A",
) -> int:
    """Move every lower-triangle tile of ``name`` to ``to_dist``'s owner.

    Returns the number of tiles actually moved (tiles whose current source
    node already matches the new owner are left untouched — no task, no
    communication)."""
    moved = 0
    for j in range(N):
        for i in range(j, N):
            new_node = to_dist.owner(i, j)
            cur = bld.current(name, i, j)
            if bld.graph.source_of(cur) == new_node:
                continue
            out = bld.bump(name, i, j)
            bld.task("REMAP", new_node, (i, j), (cur,), out, 0.0, iteration)
            moved += 1
    return moved
