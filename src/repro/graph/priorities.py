"""Task priorities for the dynamic runtime scheduler.

StarPU schedules ready tasks by priority inside each node; Chameleon
assigns higher priorities to tasks that unlock the critical path (the
POTRF-TRSM spine).  Two policies are provided:

* :func:`set_iteration_priorities` — the static heuristic Chameleon uses:
  earlier iterations first, and within an iteration POTRF > TRSM > REDUCE >
  SYRK > GEMM, so panel tasks overtake trailing updates.
* :func:`set_critical_path_priorities` — exact bottom-level (longest path
  to any sink, weighted by task durations), the classical HEFT upward rank.
"""

from __future__ import annotations

from collections.abc import Callable

from .task import Task, TaskGraph

__all__ = ["set_iteration_priorities", "set_critical_path_priorities", "KIND_RANK"]

#: Intra-iteration urgency; larger runs earlier among equal iterations.
KIND_RANK = {
    "POTRF": 7,
    "GETRF": 7,
    "TRTRI": 7,
    "LAUUM": 7,
    "TRSM": 6,
    "TRSM_L": 6,
    "TRSM_U": 6,
    "TRSM_RINV": 6,
    "TRSM_LINV": 6,
    "TRMM": 6,
    "TRSM_SOLVE": 6,
    "TRSM_SOLVE_T": 6,
    "REDUCE": 5,
    "REMAP": 4,
    "SYRK": 2,
    "SYRK_T": 2,
    "GEMM_RHS": 1,
    "GEMM_RHS_T": 1,
    "GEMM": 0,
    "GEMM_LU": 0,
    "GEMM_INV": 0,
    "GEMM_T": 0,
}


def set_iteration_priorities(graph: TaskGraph) -> None:
    """Priority = earlier iteration first, panel kernels before updates."""
    for t in graph.tasks:
        t.priority = -t.iteration * 16 + KIND_RANK.get(t.kind, 0)


def set_critical_path_priorities(
    graph: TaskGraph, duration_fn: Callable[[Task], float]
) -> None:
    """Priority = bottom level: duration-weighted longest path to a sink.

    Relies on the builder invariant that the task list is topologically
    ordered, so one reverse sweep suffices.
    """
    n = len(graph.tasks)
    bottom = [0.0] * n
    # consumers[tid] is filled before tid is processed in the reverse sweep.
    consumers: list = [[] for _ in range(n)]
    for t in graph.tasks:
        for k in t.reads:
            pid = graph.producer.get(k)
            if pid is not None:
                consumers[pid].append(t.id)
    for t in reversed(graph.tasks):
        succ = max((bottom[c] for c in consumers[t.id]), default=0.0)
        bottom[t.id] = duration_fn(t) + succ
        t.priority = bottom[t.id]
