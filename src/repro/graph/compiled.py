"""Array-based lowering of task graphs (the simulator's fast data plane).

The object representation (:class:`repro.graph.task.Task`, dict-of-list
dependency maps) is convenient to build and validate but tops out around
N = 100 tiles: the paper's headline runs reach N = 600 (~36M tasks), where
per-task Python objects dominate both memory and event-dispatch time.
This module lowers a graph into a :class:`CompiledGraph` of flat numpy
columns — task kind/node/flops/iteration/priority, CSR read adjacency,
per-version producer and byte-size tables — plus a :class:`CommPlan` of
precomputed communication structures (missing-input counts, local-consumer
and remote-needer lists, per-version remote destination lists in
first-need order) that the fast engine
(:func:`repro.runtime.simulator.fast_engine.simulate_compiled`) walks with
integer ids only.

Two entry points:

* :func:`compile_graph` lowers any existing :class:`TaskGraph` — the
  reference path, property-tested to drive the fast engine to *exactly*
  the object engine's makespan/bytes/messages;
* :func:`compile_cholesky` / :func:`compile_lu` generate the arrays of
  the 2D Cholesky/LU graphs directly from the distribution, never
  materializing a ``Task`` — O(N) vectorized batches instead of O(N^3)
  Python object constructions, which is what makes paper-scale N
  tractable.  They produce bit-identical arrays to lowering the
  object-built graph (also property-tested).

Priorities use the same bottom-level recurrence as
:func:`repro.graph.priorities.set_critical_path_priorities`; the direct
compilers carry ``level_ranges`` (contiguous batches of mutually
independent tasks) so the reverse sweep runs as ~3N vectorized
segment-max reductions instead of an O(tasks) Python loop.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field, replace
from typing import Any, Optional

import numpy as np
import numpy.typing as npt

from ..distributions.base import Distribution
from ..kernels.flops import kernel_flops
from .task import DataKey, TaskGraph

__all__ = [
    "CompiledGraph",
    "CommPlan",
    "compile_graph",
    "compile_cholesky",
    "compile_lu",
    "compiled_critical_path_priorities",
]

#: Canonical kind -> code table shared by the generic lowering and the
#: direct compilers, so both produce identical ``kind_codes`` arrays.
#: Unknown kinds are appended dynamically by :func:`compile_graph`.
CANONICAL_KINDS = (
    "POTRF", "TRSM", "SYRK", "GEMM",
    "GETRF", "TRSM_L", "TRSM_U", "GEMM_LU",
    "REDUCE", "REMAP",
    "TRSM_SOLVE", "TRSM_SOLVE_T", "GEMM_RHS", "GEMM_RHS_T",
    "TRTRI", "TRSM_RINV", "TRSM_LINV", "GEMM_INV",
    "TRMM", "LAUUM", "SYRK_T", "GEMM_T",
)


@dataclass
class CommPlan:
    """Precomputed communication bookkeeping for one compiled graph.

    All consumer lists are in task-id order and all destination lists in
    first-need order — the exact orders the object engine discovers them
    in, which is what makes the two engines tie-break identically.
    """

    #: per-task count of inputs not initially present at the task's node
    missing: npt.NDArray[np.int32]
    #: CSR over data ids: consumer tasks co-located with the producer
    lc_ptr: npt.NDArray[np.int64]
    lc_ids: npt.NDArray[np.int32]
    #: remote (data, destination) pairs, one row per eventual wire message
    #: (before any broadcast-tree re-routing): grouped by data id in
    #: first-need order of the destinations.
    pair_data: npt.NDArray[np.int64]
    pair_dst: npt.NDArray[np.int32]
    #: per-pair [start, start + count) slice into ``rn_ids``: the consumer
    #: tasks waiting at that destination, in task-id order
    pair_rn_start: npt.NDArray[np.int64]
    pair_rn_count: npt.NDArray[np.int64]
    rn_ids: npt.NDArray[np.int32]
    #: per data id, the [start, end) slice of its pairs (empty when the
    #: version never leaves its producer)
    kd_ptr: npt.NDArray[np.int64]
    #: (data id, home node) of misplaced initial versions, in the order
    #: the object engine kicks their eager transfers off at t = 0
    initial_sources: tuple[tuple[int, int], ...]


@dataclass
class CompiledGraph:
    """A task graph lowered to flat arrays (see module docstring)."""

    b: int
    width: int
    element_size: int
    kind_names: list[str]
    kind_codes: npt.NDArray[np.int16]  # per task
    node: npt.NDArray[np.int32]  # per task
    flops: npt.NDArray[np.float64]  # per task
    iteration: npt.NDArray[np.int32]  # per task
    priority: npt.NDArray[np.float64]  # per task (0 until assigned)
    write_id: npt.NDArray[np.int32]  # per task, -1 when the task writes nothing
    read_ptr: npt.NDArray[np.int64]  # len n_tasks + 1
    read_ids: npt.NDArray[np.int32]  # data ids
    n_init: int  # versions that pre-exist the computation (ids 0..n_init-1)
    data_producer: npt.NDArray[np.int32]  # producing task id, -1 for initial
    data_source_node: npt.NDArray[np.int32]  # producer's node / initial home
    data_nbytes: npt.NDArray[np.int64]  # per data id
    #: DataKey per data id — kept by :func:`compile_graph` for tracing;
    #: the direct compilers skip it (keys are synthesized on demand).
    data_keys: Optional[list[DataKey]] = None
    #: contiguous [lo, hi) task-id batches, in forward topological order,
    #: whose tasks are mutually independent (enables the vectorized
    #: priority sweep); None -> generic Python sweep.
    level_ranges: Optional[list[tuple[int, int]]] = None
    _plan: Optional[CommPlan] = field(default=None, repr=False)
    _cons_csr: Optional[
        tuple[npt.NDArray[np.int64], npt.NDArray[np.int32]]
    ] = field(default=None, repr=False)
    #: memoized :func:`repro.service.hashing.structure_hash` — the hash
    #: covers only structural arrays, so it stays exact across reuse.
    _structure_hash: Optional[str] = field(default=None, repr=False)

    @property
    def n_tasks(self) -> int:
        return len(self.kind_codes)

    @property
    def n_data(self) -> int:
        return len(self.data_producer)

    def nodes_used(self) -> int:
        return int(self.node.max()) + 1 if self.n_tasks else 0

    def total_flops(self) -> float:
        return float(self.flops.sum())

    def comm_plan(self) -> CommPlan:
        """The precomputed communication structures (built once, cached)."""
        if self._plan is None:
            self._plan = _build_comm_plan(self)
        return self._plan

    def reassigned(self, node: npt.NDArray[np.int32]) -> "CompiledGraph":
        """A copy of this graph with tasks placed on ``node`` instead.

        Used by migrating scheduler policies (:mod:`repro.schedulers`):
        the structural arrays are shared, the placement-derived columns
        (``node``, ``data_source_node``) are replaced, and the cached
        communication plan is dropped so it is rebuilt against the new
        placement.  Initial data keeps its home; a produced version's
        source follows its producer.  ``priority`` is copied so runs on
        the reassigned graph never pollute the original's priorities.
        """
        node = np.ascontiguousarray(node, dtype=self.node.dtype)
        if node.shape != self.node.shape:
            raise ValueError(
                f"assignment has shape {node.shape}, expected {self.node.shape}"
            )
        source = self.data_source_node.copy()
        produced = self.data_producer >= 0
        source[produced] = node[self.data_producer[produced]]
        return replace(self, node=node, data_source_node=source,
                       priority=self.priority.copy(), _plan=None,
                       _cons_csr=self._cons_csr)

    def consumers_csr(
        self,
    ) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int32]]:
        """CSR over *tasks*: ids of tasks reading each task's output,
        in task-id order (the priority sweep's adjacency).  Built once
        and cached (the arrays are treated as read-only)."""
        if self._cons_csr is not None:
            return self._cons_csr
        # A chunked stable counting sort instead of a global argsort: the
        # result is bit-identical (groups in producer order, edge order
        # within each group), but transient memory is bounded by the
        # chunk size instead of several full-edge-list temporaries —
        # at N = 400 this keeps ~400 MB off the peak RSS.  Bucket 0
        # collects initial-data reads (producer -1 shifted to 0) so no
        # boolean-mask copies are needed; it is sliced off at the end.
        n, E = self.n_tasks, len(self.read_ids)
        prod1 = self.data_producer[self.read_ids].astype(np.int32)
        np.add(prod1, 1, out=prod1)
        counts = np.bincount(prod1, minlength=n + 1)
        ptr0 = np.zeros(n + 2, dtype=np.int64)
        np.cumsum(counts, out=ptr0[1:])
        n_invalid = int(counts[0])
        del counts
        out = np.empty(E, dtype=np.int32)
        pos = ptr0[:-1].astype(np.int64)  # next write slot per bucket
        read_ptr = self.read_ptr
        CH = 1 << 22
        for lo in range(0, E, CH):
            p = prod1[lo:lo + CH]
            m = len(p)
            # consumer of edge e: the task whose read slice contains e.
            cons = (np.searchsorted(read_ptr, np.arange(lo, lo + m),
                                    side="right") - 1).astype(np.int32)
            o = np.argsort(p, kind="stable")
            sp = p[o]
            # stable within-chunk offset of each edge inside its bucket
            starts = np.flatnonzero(
                np.r_[True, sp[1:] != sp[:-1]]) if m else np.empty(
                    0, dtype=np.int64)
            runs = np.diff(np.r_[starts, m])
            cumcount = np.arange(m, dtype=np.int64) - np.repeat(starts, runs)
            out[pos[sp] + cumcount] = cons[o]
            pos[sp[starts]] += runs
        del prod1, pos
        ids = out[n_invalid:]  # a view: bucket 0 excluded
        ptr = ptr0[1:] - n_invalid
        self._cons_csr = (ptr, ids)
        return self._cons_csr


def _build_comm_plan(cg: CompiledGraph) -> CommPlan:
    n_tasks, n_data = cg.n_tasks, cg.n_data
    edge_cons = np.repeat(
        np.arange(n_tasks, dtype=np.int32), np.diff(cg.read_ptr)
    )
    edge_data = cg.read_ids
    src = cg.data_source_node[edge_data]
    dst = cg.node[edge_cons]
    produced = cg.data_producer[edge_data] >= 0
    remote = src != dst

    missing = np.bincount(
        edge_cons[produced | remote], minlength=n_tasks
    ).astype(np.int32)

    # Local consumers of produced versions, grouped by data id.
    lmask = produced & ~remote
    ldata = edge_data[lmask]
    lorder = np.argsort(ldata, kind="stable")
    lc_ptr = np.zeros(n_data + 1, dtype=np.int64)
    np.cumsum(np.bincount(ldata, minlength=n_data), out=lc_ptr[1:])
    lc_ids = edge_cons[lmask][lorder]

    # Remote needers, grouped by (data, destination) pair.
    rdata = edge_data[remote].astype(np.int64)
    rdst = dst[remote]
    rcons = edge_cons[remote]
    num_nodes = int(cg.node.max()) + 1 if n_tasks else 1
    pair_key = rdata * num_nodes + rdst
    porder = np.argsort(pair_key, kind="stable")
    sorted_pairs = pair_key[porder]
    # Group boundaries on the already-sorted keys (np.unique would sort
    # again — measurable at tens of millions of edges).
    if len(sorted_pairs):
        head = np.empty(len(sorted_pairs), dtype=bool)
        head[0] = True
        np.not_equal(sorted_pairs[1:], sorted_pairs[:-1], out=head[1:])
        starts = np.flatnonzero(head)
        uniq = sorted_pairs[starts]
        counts = np.diff(np.append(starts, len(sorted_pairs)))
    else:
        uniq = sorted_pairs
        starts = np.empty(0, dtype=np.int64)
        counts = starts
    # rn_ids holds all remote-needer tasks grouped by pair (task order
    # within each group, since the argsort is stable).
    rn_ids = rcons[porder]
    # First edge (in task order) of each pair: the stable sort puts each
    # group's smallest original index first, which drives first-need order.
    first_edge = porder[starts] if len(uniq) else starts
    pdata = (uniq // num_nodes).astype(np.int64)
    # Within each data id, order destinations by first need (pairs of one
    # data id stay contiguous): sort by (data, first_edge).
    kd_order = np.lexsort((first_edge, pdata))
    pair_data = pdata[kd_order]
    pair_dst = (uniq % num_nodes).astype(np.int32)[kd_order]
    pair_rn_start = starts[kd_order].astype(np.int64)
    pair_rn_count = counts[kd_order].astype(np.int64)

    kd_ptr = np.zeros(n_data + 1, dtype=np.int64)
    np.cumsum(np.bincount(pair_data, minlength=n_data), out=kd_ptr[1:])

    # Misplaced initial versions, ordered by their first remote read.
    init_mask = cg.data_producer[pair_data] < 0
    if init_mask.any():
        idata = pair_data[init_mask]
        ifirst = first_edge[kd_order][init_mask]
        seen_first = np.full(n_data, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(seen_first, idata, ifirst)
        init_ids = np.unique(idata)
        init_ids = init_ids[np.argsort(seen_first[init_ids], kind="stable")]
        initial_sources = tuple(
            (int(d), int(cg.data_source_node[d])) for d in init_ids
        )
    else:
        initial_sources = ()

    return CommPlan(
        missing=missing,
        lc_ptr=lc_ptr,
        lc_ids=lc_ids,
        pair_data=pair_data,
        pair_dst=pair_dst,
        pair_rn_start=pair_rn_start,
        pair_rn_count=pair_rn_count,
        rn_ids=rn_ids,
        kd_ptr=kd_ptr,
        initial_sources=initial_sources,
    )


def compiled_critical_path_priorities(
    cg: CompiledGraph, durations: npt.NDArray[np.float64]
) -> npt.NDArray[np.float64]:
    """Bottom-level priorities, bit-identical to the object-path sweep.

    ``priority[t] = durations[t] + max(priority of consumers, default 0)``
    — the recurrence of
    :func:`repro.graph.priorities.set_critical_path_priorities`.  With
    ``level_ranges`` available the reverse sweep is a handful of
    ``maximum.reduceat`` calls per level; otherwise it falls back to a
    Python loop over the (topologically ordered) task list.
    """
    n = cg.n_tasks
    cons_ptr, cons_ids = cg.consumers_csr()
    bottom = np.zeros(n, dtype=np.float64)
    if cg.level_ranges is not None:
        for lo, hi in reversed(cg.level_ranges):
            flat_lo, flat_hi = cons_ptr[lo], cons_ptr[hi]
            vals = bottom[cons_ids[flat_lo:flat_hi]]
            starts = (cons_ptr[lo:hi] - flat_lo).astype(np.int64)
            deg = np.diff(cons_ptr[lo : hi + 1])
            if len(vals):
                red = np.maximum.reduceat(
                    vals, np.minimum(starts, len(vals) - 1)
                )
                succ = np.where(deg > 0, red, 0.0)
            else:
                succ = np.zeros(hi - lo, dtype=np.float64)
            bottom[lo:hi] = durations[lo:hi] + succ
        return bottom
    # Generic reverse sweep (tasks are topologically ordered by id).
    ptr = cons_ptr.tolist()
    ids = cons_ids.tolist()
    dur = durations.tolist()
    out = bottom.tolist()
    for t in range(n - 1, -1, -1):
        succ = 0.0
        for c in ids[ptr[t] : ptr[t + 1]]:
            v = out[c]
            if v > succ:
                succ = v
        out[t] = dur[t] + succ
    return np.asarray(out, dtype=np.float64)


# ---------------------------------------------------------------------------
# Generic lowering of an object graph
# ---------------------------------------------------------------------------


def compile_graph(graph: TaskGraph) -> CompiledGraph:
    """Lower an object :class:`TaskGraph` into a :class:`CompiledGraph`.

    Data ids number the initial versions first (declaration order), then
    one id per writing task in task order — the same numbering the direct
    compilers use, so ``compile_graph(build_cholesky_graph(...))`` equals
    ``compile_cholesky(...)`` array for array.
    """
    kind_names = list(CANONICAL_KINDS)
    kind_code: dict[str, int] = {k: i for i, k in enumerate(kind_names)}

    data_id: dict[DataKey, int] = {}
    data_keys: list[DataKey] = []
    homes: list[int] = []
    for key, (home, _desc) in graph.initial.items():
        data_id[key] = len(data_keys)
        data_keys.append(key)
        homes.append(home)
    n_init = len(data_keys)

    n = len(graph.tasks)
    kinds = np.empty(n, dtype=np.int16)
    node = np.empty(n, dtype=np.int32)
    flops = np.empty(n, dtype=np.float64)
    iteration = np.empty(n, dtype=np.int32)
    priority = np.empty(n, dtype=np.float64)
    write_id = np.full(n, -1, dtype=np.int32)
    read_counts = np.empty(n, dtype=np.int64)
    reads_flat: list[int] = []

    producer: list[int] = [-1] * n_init
    source_node: list[int] = list(homes)

    for t in graph.tasks:
        code = kind_code.get(t.kind)
        if code is None:
            code = len(kind_names)
            kind_code[t.kind] = code
            kind_names.append(t.kind)
        kinds[t.id] = code
        node[t.id] = t.node
        flops[t.id] = t.flops
        iteration[t.id] = t.iteration
        priority[t.id] = t.priority
        read_counts[t.id] = len(t.reads)
        for k in t.reads:
            reads_flat.append(data_id[k])
        if t.write is not None:
            d = len(data_keys)
            data_id[t.write] = d
            data_keys.append(t.write)
            producer.append(t.id)
            source_node.append(t.node)
            write_id[t.id] = d

    read_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(read_counts, out=read_ptr[1:])
    nbytes = np.asarray(
        [graph.data_bytes(k) for k in data_keys], dtype=np.int64
    )
    return CompiledGraph(
        b=graph.b,
        width=graph.width,
        element_size=graph.element_size,
        kind_names=kind_names,
        kind_codes=kinds,
        node=node,
        flops=flops,
        iteration=iteration,
        priority=priority,
        write_id=write_id,
        read_ptr=read_ptr,
        read_ids=np.asarray(reads_flat, dtype=np.int32),
        n_init=n_init,
        data_producer=np.asarray(producer, dtype=np.int32),
        data_source_node=np.asarray(source_node, dtype=np.int32),
        data_nbytes=nbytes,
        data_keys=data_keys,
    )


# ---------------------------------------------------------------------------
# Direct compilers: Cholesky and LU without object materialization
# ---------------------------------------------------------------------------


def _concat(
    parts: Sequence[npt.NDArray[Any]], dtype: npt.DTypeLike
) -> npt.NDArray[Any]:
    if not parts:
        return np.empty(0, dtype=dtype)
    return np.concatenate([np.asarray(p, dtype=dtype) for p in parts])


class _StreamedPlanState:
    """Per-iteration accumulator producing the same :class:`CommPlan` as
    :func:`_build_comm_plan`, without the global edge list.

    The direct compilers know the consumer structure of every version in
    closed form: each version's readers all live in a single iteration,
    versions are created in ascending-id order, and within one iteration
    readers are enumerated in task order.  Feeding those per-iteration
    groups here (in ascending data-id order) therefore reproduces the
    generic builder's output bit for bit — grouped-by-data local
    consumers, ``rn_ids`` laid out by (data, destination-ascending) with
    pair rows re-ordered to first-need — while every temporary stays
    O(iteration) and the only sorts are radix-friendly ``int16`` keys.
    The equality is pinned by the comm-plan property tests in
    ``tests/test_compiled_engine.py``.
    """

    def __init__(self, n_tasks: int, n_data: int, num_nodes: int,
                 n_reads: int = 0) -> None:
        self.num_nodes = num_nodes
        self.missing = np.zeros(n_tasks, dtype=np.int32)
        # Per-version consumer counts are O(iteration width), far below
        # 2**31: int32 halves the first-touch cost of these two n_data
        # arrays; cumsum below widens into the int64 ptr rows (safe cast).
        self._lc_counts = np.zeros(n_data, dtype=np.int32)
        self._kd_counts = np.zeros(n_data, dtype=np.int32)
        # Local-consumer and remote-needer ids partition the produced
        # read edges, so ``n_reads`` bounds both: writing into
        # preallocated buffers and slicing views at the end replaces the
        # per-column concatenation copies of a chunk-list design (the
        # finish()-time copies were a measurable slice of paper-scale
        # build time).  Pair rows stay chunked — there are few of them.
        self._lc = np.empty(n_reads, dtype=np.int32)
        self._rn = np.empty(n_reads, dtype=np.int32)
        self._pd_chunks: list[np.ndarray] = []
        self._pdst_chunks: list[np.ndarray] = []
        self._pstart_chunks: list[np.ndarray] = []
        self._pcount_chunks: list[np.ndarray] = []
        self._lc_len = 0
        self._rn_len = 0

    def _lc_append(self, ids: npt.NDArray[np.int32]) -> None:
        n = len(ids)
        if self._lc_len + n > len(self._lc):  # pragma: no cover - resize
            grow = max(len(self._lc) * 2, self._lc_len + n, 1024)
            nbuf = np.empty(grow, dtype=np.int32)
            nbuf[: self._lc_len] = self._lc[: self._lc_len]
            self._lc = nbuf
        self._lc[self._lc_len : self._lc_len + n] = ids
        self._lc_len += n

    def add_single_local(
        self, d0: int, readers: npt.NDArray[np.int32]
    ) -> None:
        """Versions ``d0 .. d0+len(readers)`` each read once, locally.

        (The "previous version" reads of the direct algorithms: the next
        op on a tile runs on the tile's owner, so the edge never crosses
        nodes and each version has exactly one consumer.)
        """
        n = len(readers)
        self._lc_counts[d0 : d0 + n] = 1
        self._lc_append(readers)

    def add_fanout(
        self,
        d0: int,
        src_of_rel: npt.NDArray[np.int32],
        rel: npt.NDArray[np.int64],
        readers: npt.NDArray[np.int32],
        nodes: npt.NDArray[np.int32],
    ) -> None:
        """Produced versions ``d0 + rel`` read by ``readers`` at ``nodes``.

        Edges must arrive grouped by ``rel`` ascending with readers in
        task order within each group — the global edge order restricted
        to this iteration, which is what makes first-need positions
        comparable without global indices.
        """
        nd = len(src_of_rel)
        local = nodes == src_of_rel[rel]
        self._lc_counts[d0 : d0 + nd] = np.bincount(rel[local], minlength=nd)
        self._lc_append(readers[local])
        remote = ~local
        n_remote = int(remote.sum())
        if n_remote == 0:
            return
        rrel = rel[remote]
        rdst = nodes[remote]
        rrd = readers[remote]
        pos = np.flatnonzero(remote)
        nn = self.num_nodes
        key64 = rrel * nn + rdst
        max_key = nd * nn
        key = key64.astype(np.int16) if max_key <= 32767 else key64
        order = np.argsort(key, kind="stable")
        skey = key[order]
        head = np.empty(n_remote, dtype=bool)
        head[0] = True
        np.not_equal(skey[1:], skey[:-1], out=head[1:])
        starts = np.flatnonzero(head)
        counts = np.diff(np.append(starts, n_remote))
        if self._rn_len + n_remote > len(self._rn):  # pragma: no cover
            grow = max(len(self._rn) * 2, self._rn_len + n_remote, 1024)
            nbuf = np.empty(grow, dtype=np.int32)
            nbuf[: self._rn_len] = self._rn[: self._rn_len]
            self._rn = nbuf
        self._rn[self._rn_len : self._rn_len + n_remote] = rrd[order]
        firsts = order[starts]
        prel = rrel[firsts]
        pdst = rdst[firsts]
        first_pos = pos[firsts]
        kd = np.lexsort((first_pos, prel))
        self._pd_chunks.append(d0 + prel[kd])
        self._pdst_chunks.append(pdst[kd].astype(np.int32))
        self._pstart_chunks.append(self._rn_len + starts[kd].astype(np.int64))
        self._pcount_chunks.append(counts[kd].astype(np.int64))
        self._kd_counts[d0 : d0 + nd] = np.bincount(prel, minlength=nd)
        self._rn_len += n_remote

    def finish(self) -> CommPlan:
        n_data = len(self._lc_counts)
        lc_ptr = np.zeros(n_data + 1, dtype=np.int64)
        np.cumsum(self._lc_counts, out=lc_ptr[1:])
        kd_ptr = np.zeros(n_data + 1, dtype=np.int64)
        np.cumsum(self._kd_counts, out=kd_ptr[1:])
        return CommPlan(
            missing=self.missing,
            lc_ptr=lc_ptr,
            lc_ids=self._lc[: self._lc_len],
            pair_data=_concat(self._pd_chunks, np.int64),
            pair_dst=_concat(self._pdst_chunks, np.int32),
            pair_rn_start=_concat(self._pstart_chunks, np.int64),
            pair_rn_count=_concat(self._pcount_chunks, np.int64),
            rn_ids=self._rn[: self._rn_len],
            kd_ptr=kd_ptr,
            # The direct algorithms never read an initial version off its
            # home node (iteration-0 readers run on the tile's owner).
            initial_sources=(),
        )


def compile_cholesky(N: int, b: int, dist: Distribution) -> CompiledGraph:
    """Arrays of ``build_cholesky_graph(N, b, dist)``, built streamed.

    Emits the exact task/version numbering of
    :func:`repro.graph.cholesky.cholesky_phase` — POTRF, the TRSM panel,
    then per-column SYRK + GEMMs, iteration by iteration — writing each
    iteration's batch straight into preallocated output buffers (the
    totals are closed-form), so no per-iteration Python lists or CSR
    intermediates are ever materialized.  Version bookkeeping exploits
    the closed form of Algorithm 1: the update of iteration ``i`` reads
    version ``i`` of every trailing tile and writes version ``i + 1``.
    The communication plan is accumulated in the same pass (see
    :class:`_StreamedPlanState`): every version's consumers are known
    analytically, which removes the global edge sorts entirely.
    """
    if N < 1:
        raise ValueError(f"need at least one tile, got N={N}")
    owners = dist.owner_map(N).astype(np.int32)

    # Initial versions: declare order is column-major over the lower
    # triangle (j outer, i from j to N-1): id(i, j) = off[j] + i - j.
    n_init = N * (N + 1) // 2
    jj = np.arange(N, dtype=np.int64)
    col_off = jj * N - jj * (jj - 1) // 2

    def tri_id(
        i: npt.NDArray[np.int64], j: npt.NDArray[np.int64]
    ) -> npt.NDArray[np.int64]:
        return col_off[j] + i - j

    # Current version id of every lower-triangle tile (packed tri index).
    cur = np.arange(n_init, dtype=np.int64)

    POTRF, TRSM, SYRK, GEMM = (
        CANONICAL_KINDS.index("POTRF"),
        CANONICAL_KINDS.index("TRSM"),
        CANONICAL_KINDS.index("SYRK"),
        CANONICAL_KINDS.index("GEMM"),
    )
    f_potrf = kernel_flops("POTRF", b)
    f_trsm = kernel_flops("TRSM", b)
    f_syrk = kernel_flops("SYRK", b)
    f_gemm = kernel_flops("GEMM", b)

    # Exact output sizes: iteration i has m(m+1)/2 tasks (m = N - i) and
    # 1 + 2(m-1) + [2 + 3(m-2)](m-1)/2 reads... summed in exact ints.
    n_tasks = N * (N + 1) * (N + 2) // 6
    n_reads = sum(
        1 + 2 * (m - 1) + 2 * (m - 1) + 3 * ((m - 1) * (m - 2) // 2)
        for m in range(1, N + 1)
    )
    kinds = np.empty(n_tasks, dtype=np.int16)
    node = np.empty(n_tasks, dtype=np.int32)
    flops = np.empty(n_tasks, dtype=np.float64)
    iteration = np.empty(n_tasks, dtype=np.int32)
    read_ptr = np.zeros(n_tasks + 1, dtype=np.int64)
    read_ids = np.empty(n_reads, dtype=np.int32)
    levels: list[tuple[int, int]] = []
    plan = _StreamedPlanState(
        n_tasks, n_init + n_tasks, int(owners.max()) + 1, n_reads
    )

    tid = 0
    rpos = 0
    prev_up_d0 = -1  # data id of the previous iteration's first update out
    tril_owner = owners  # owner(i, j) for i >= j is owners[i, j] directly
    for i in range(N):
        m = N - i  # trailing block size including the pivot column
        base = tid
        ntasks_i = m * (m + 1) // 2
        rows = np.arange(i + 1, N, dtype=np.int64)

        if i > 0:
            # Every iteration-i task reads its tile's previous version
            # (written last iteration, on the same node): one local
            # consumer per version, in matching ascending order.  These
            # are the lowest data ids consumed this iteration, so they
            # must be accumulated before the fan-out groups below.
            plan.add_single_local(
                prev_up_d0,
                np.arange(base, base + ntasks_i, dtype=np.int32),
            )

        # POTRF(i, i): reads the current diagonal version.
        diag_tile = tri_id(np.int64(i), np.int64(i))
        kinds[tid] = POTRF
        node[tid] = owners[i, i]
        flops[tid] = f_potrf
        iteration[tid] = i
        read_ptr[tid + 1] = rpos + 1
        read_ids[rpos] = cur[diag_tile]
        rpos += 1
        diag_ver = n_init + tid
        cur[diag_tile] = diag_ver
        levels.append((tid, tid + 1))
        tid += 1

        if m > 1:
            # TRSM panel: tiles (j, i), j = i+1..N-1, reads (prev, diag).
            panel_tiles = tri_id(rows, np.int64(i))
            trsm_nodes = tril_owner[rows, i]
            sl = slice(tid, tid + m - 1)
            kinds[sl] = TRSM
            node[sl] = trsm_nodes
            flops[sl] = f_trsm
            iteration[sl] = i
            read_ptr[tid + 1 : tid + m] = rpos + 2 * np.arange(
                1, m, dtype=np.int64
            )
            rv = read_ids[rpos : rpos + 2 * (m - 1)]
            rv[0::2] = cur[panel_tiles]
            rv[1::2] = diag_ver
            rpos += 2 * (m - 1)
            trsm_out0 = n_init + tid  # output id of TRSM(i+1, i)
            cur[panel_tiles] = trsm_out0 + np.arange(m - 1)
            levels.append((tid, tid + m - 1))
            tid += m - 1

            # Trailing update: per column k (ascending), SYRK(k, k) then
            # GEMM(j, k) for j = k+1..N-1 — column-major enumeration of
            # the trailing lower triangle.
            lens = (N - rows).astype(np.int64)
            kk = np.repeat(rows, lens)
            n_up = len(kk)
            seg0 = np.zeros(m - 1, dtype=np.int64)
            np.cumsum(lens[:-1], out=seg0[1:])
            up_j = np.arange(n_up, dtype=np.int64) - np.repeat(
                seg0, lens
            ) + kk
            is_syrk = up_j == kk
            up_tiles = tri_id(up_j, kk)
            a_ki = trsm_out0 + (kk - i - 1)  # TRSM out of col tile (k, i)
            a_ji = trsm_out0 + (up_j - i - 1)
            up_base = tid
            sl = slice(tid, tid + n_up)
            kinds[sl] = np.where(is_syrk, SYRK, GEMM)
            up_nodes = tril_owner[up_j, kk]
            node[sl] = up_nodes
            flops[sl] = np.where(is_syrk, f_syrk, f_gemm)
            iteration[sl] = i
            nread = np.where(is_syrk, 2, 3)
            starts = np.zeros(n_up, dtype=np.int64)
            np.cumsum(nread[:-1], out=starts[1:])
            nr_up = int(starts[-1]) + int(nread[-1])
            read_ptr[tid + 1 : tid + 1 + n_up] = (
                rpos + starts + nread
            )
            rv = read_ids[rpos : rpos + nr_up]
            # SYRK reads (prev, a_ki); GEMM reads (prev, a_ji, a_ki).
            rv[starts] = cur[up_tiles]
            rv[starts + 1] = np.where(is_syrk, a_ki, a_ji)
            rv[starts[~is_syrk] + 2] = a_ki[~is_syrk]
            rpos += nr_up
            cur[up_tiles] = n_init + tid + np.arange(n_up)
            levels.append((tid, tid + n_up))
            tid += n_up

            # Comm plan: the POTRF output fans out to the panel, each
            # TRSM output to its row/column of the trailing update.
            q = np.arange(m - 1, dtype=np.int64)
            off_up = q * (m - 1) - q * (q - 1) // 2  # first task of col k
            T, Q = q[None, :], q[:, None]
            # Readers of TRSM output q (column c = i+1+q): GEMM(c, k) for
            # k < c — position off[t] + (q - t) in column t — then
            # SYRK(c, c) and GEMM(j, c) at off[q] + (t - q).
            R = up_base + np.where(T < Q, off_up[T] - T + Q,
                                   off_up[Q] - Q + T)
            rel = np.concatenate(
                [np.zeros(m - 1, dtype=np.int64),
                 np.repeat(q + 1, m - 1)]
            )
            trsm_ids = np.arange(base + 1, base + m, dtype=np.int32)
            readers = np.concatenate(
                [trsm_ids, R.astype(np.int32).ravel()]
            )
            nodes = np.concatenate(
                [trsm_nodes, up_nodes[R - up_base].ravel()]
            )
            src_of_rel = np.concatenate(
                [owners[i, i][None], trsm_nodes]
            )
            plan.add_fanout(diag_ver, src_of_rel, rel, readers, nodes)
            miss = np.bincount(
                readers.astype(np.int64) - base, minlength=ntasks_i
            ).astype(np.int32)
        else:
            miss = np.zeros(1, dtype=np.int32)

        if i > 0:
            miss += 1  # the (local, produced) previous-version read
        plan.missing[base : base + ntasks_i] = miss
        prev_up_d0 = n_init + base + (m if m > 1 else 1)

    data_producer = np.concatenate(
        [np.full(n_init, -1, dtype=np.int32),
         np.arange(n_tasks, dtype=np.int32)]
    )
    # Initial homes: owner of tile (i, j) in declare order.
    init_i = np.concatenate([np.arange(j, N) for j in range(N)])
    init_j = np.repeat(np.arange(N), N - np.arange(N))
    init_home = owners[init_i, init_j].astype(np.int32)
    data_source_node = np.concatenate([init_home, node])

    return CompiledGraph(
        b=b,
        width=0,
        element_size=8,
        kind_names=list(CANONICAL_KINDS),
        kind_codes=kinds,
        node=node,
        flops=flops,
        iteration=iteration,
        priority=np.zeros(n_tasks, dtype=np.float64),
        write_id=(n_init + np.arange(n_tasks)).astype(np.int32),
        read_ptr=read_ptr,
        read_ids=read_ids,
        n_init=n_init,
        data_producer=data_producer,
        data_source_node=data_source_node,
        data_nbytes=np.full(n_init + n_tasks, b * b * 8, dtype=np.int64),
        data_keys=None,
        level_ranges=levels,
        _plan=plan.finish(),
    )


def compile_lu(N: int, b: int, dist: Distribution) -> CompiledGraph:
    """Arrays of ``build_lu_graph(N, b, dist)``, built streamed.

    Same scheme as :func:`compile_cholesky` on the full (nonsymmetric)
    tile grid: GETRF, the L panel (column), the U panel (row), then the
    trailing GEMM_LU block in row-major order, iteration by iteration —
    each batch written straight into preallocated buffers with the
    communication plan accumulated analytically in the same pass.
    """
    if N < 1:
        raise ValueError(f"need at least one tile, got N={N}")
    owners = dist.owner_map(N).astype(np.int32)

    n_init = N * N  # declare order: i outer, j inner -> id = i * N + j
    cur = np.arange(n_init, dtype=np.int64)

    GETRF = CANONICAL_KINDS.index("GETRF")
    TRSM_L = CANONICAL_KINDS.index("TRSM_L")
    TRSM_U = CANONICAL_KINDS.index("TRSM_U")
    GEMM_LU = CANONICAL_KINDS.index("GEMM_LU")
    f_getrf = kernel_flops("GETRF", b)
    f_trsm = kernel_flops("TRSM_L", b)
    f_gemm = kernel_flops("GEMM_LU", b)

    # Iteration i has m^2 tasks (m = N - i): 1 + 2(m-1) + (m-1)^2.
    n_tasks = sum(m * m for m in range(1, N + 1))
    n_reads = sum(
        1 + 4 * (m - 1) + 3 * (m - 1) * (m - 1) for m in range(1, N + 1)
    )
    kinds = np.empty(n_tasks, dtype=np.int16)
    node = np.empty(n_tasks, dtype=np.int32)
    flops = np.empty(n_tasks, dtype=np.float64)
    iteration = np.empty(n_tasks, dtype=np.int32)
    read_ptr = np.zeros(n_tasks + 1, dtype=np.int64)
    read_ids = np.empty(n_reads, dtype=np.int32)
    levels: list[tuple[int, int]] = []
    plan = _StreamedPlanState(
        n_tasks, n_init + n_tasks, int(owners.max()) + 1, n_reads
    )

    tid = 0
    rpos = 0
    prev_up_d0 = -1
    for i in range(N):
        m = N - i
        base = tid
        ntasks_i = m * m
        rows = np.arange(i + 1, N, dtype=np.int64)

        if i > 0:
            # Previous versions of the m x m active block, written last
            # iteration by its GEMM_LU grid in the same row-major order;
            # all local, one reader each: GETRF / TRSM_U row, then per
            # trailing row TRSM_L followed by the GEMM_LU row.
            a_readers = np.empty((m, m), dtype=np.int32)
            a_readers[0, 0] = base
            a_readers[0, 1:] = base + m + np.arange(m - 1)
            a_readers[1:, 0] = base + 1 + np.arange(m - 1)
            a_readers[1:, 1:] = (
                base + 2 * m - 1
                + np.arange((m - 1) * (m - 1)).reshape(m - 1, m - 1)
            )
            plan.add_single_local(prev_up_d0, a_readers.ravel())

        diag_tile = i * N + i
        kinds[tid] = GETRF
        node[tid] = owners[i, i]
        flops[tid] = f_getrf
        iteration[tid] = i
        read_ptr[tid + 1] = rpos + 1
        read_ids[rpos] = cur[diag_tile]
        rpos += 1
        diag_ver = n_init + tid
        cur[diag_tile] = diag_ver
        levels.append((tid, tid + 1))
        tid += 1

        if m > 1:
            # L panel: tiles (j, i), reads (prev, diag).
            l_tiles = rows * N + i
            l_nodes = owners[rows, i]
            sl = slice(tid, tid + m - 1)
            kinds[sl] = TRSM_L
            node[sl] = l_nodes
            flops[sl] = f_trsm
            iteration[sl] = i
            read_ptr[tid + 1 : tid + m] = rpos + 2 * np.arange(
                1, m, dtype=np.int64
            )
            rv = read_ids[rpos : rpos + 2 * (m - 1)]
            rv[0::2] = cur[l_tiles]
            rv[1::2] = diag_ver
            rpos += 2 * (m - 1)
            l_out0 = n_init + tid
            cur[l_tiles] = l_out0 + np.arange(m - 1)
            levels.append((tid, tid + m - 1))
            tid += m - 1

            # U panel: tiles (i, k), reads (prev, diag).
            u_tiles = i * N + rows
            u_nodes = owners[i, rows]
            sl = slice(tid, tid + m - 1)
            kinds[sl] = TRSM_U
            node[sl] = u_nodes
            flops[sl] = f_trsm
            iteration[sl] = i
            read_ptr[tid + 1 : tid + m] = rpos + 2 * np.arange(
                1, m, dtype=np.int64
            )
            rv = read_ids[rpos : rpos + 2 * (m - 1)]
            rv[0::2] = cur[u_tiles]
            rv[1::2] = diag_ver
            rpos += 2 * (m - 1)
            u_out0 = n_init + tid
            cur[u_tiles] = u_out0 + np.arange(m - 1)
            levels.append((tid, tid + m - 1))
            tid += m - 1

            # Trailing block, row-major: (j, k) for j then k ascending;
            # reads (prev, a_ji, a_ik).
            up_j = np.repeat(rows, m - 1)
            up_k = np.tile(rows, m - 1)
            n_up = (m - 1) * (m - 1)
            up_tiles = up_j * N + up_k
            up_base = tid
            up_nodes = owners[up_j, up_k]
            sl = slice(tid, tid + n_up)
            kinds[sl] = GEMM_LU
            node[sl] = up_nodes
            flops[sl] = f_gemm
            iteration[sl] = i
            read_ptr[tid + 1 : tid + 1 + n_up] = rpos + 3 * np.arange(
                1, n_up + 1, dtype=np.int64
            )
            rv = read_ids[rpos : rpos + 3 * n_up]
            rv[0::3] = cur[up_tiles]
            rv[1::3] = l_out0 + (up_j - i - 1)
            rv[2::3] = u_out0 + (up_k - i - 1)
            rpos += 3 * n_up
            cur[up_tiles] = n_init + tid + np.arange(n_up)
            levels.append((tid, tid + n_up))
            tid += n_up

            # Comm plan: GETRF output fans out to both panels; L output
            # j to GEMM_LU row j (consecutive ids); U output k to
            # GEMM_LU column k (stride m-1).
            q = np.arange(m - 1, dtype=np.int64)
            T, Q = q[None, :], q[:, None]
            grid = up_base + Q * (m - 1) + T  # GEMM_LU id of (row, col)
            l_ids = np.arange(base + 1, base + m, dtype=np.int32)
            u_ids = np.arange(base + m, base + 2 * m - 1, dtype=np.int32)
            grid_nodes = up_nodes.reshape(m - 1, m - 1)
            rel = np.concatenate(
                [np.zeros(2 * (m - 1), dtype=np.int64),
                 np.repeat(q + 1, m - 1),
                 np.repeat(q + m, m - 1)]
            )
            readers = np.concatenate(
                [l_ids, u_ids,
                 grid.astype(np.int32).ravel(),
                 grid.astype(np.int32).T.ravel()]
            )
            nodes = np.concatenate(
                [l_nodes, u_nodes,
                 grid_nodes.ravel(), grid_nodes.T.ravel()]
            )
            src_of_rel = np.concatenate(
                [owners[i, i][None], l_nodes, u_nodes]
            )
            plan.add_fanout(diag_ver, src_of_rel, rel, readers, nodes)
            miss = np.bincount(
                readers.astype(np.int64) - base, minlength=ntasks_i
            ).astype(np.int32)
        else:
            miss = np.zeros(1, dtype=np.int32)

        if i > 0:
            miss += 1  # the (local, produced) previous-version read
        plan.missing[base : base + ntasks_i] = miss
        prev_up_d0 = n_init + base + (2 * m - 1 if m > 1 else 1)

    init_home = owners.reshape(-1).astype(np.int32)
    return CompiledGraph(
        b=b,
        width=0,
        element_size=8,
        kind_names=list(CANONICAL_KINDS),
        kind_codes=kinds,
        node=node,
        flops=flops,
        iteration=iteration,
        priority=np.zeros(n_tasks, dtype=np.float64),
        write_id=(n_init + np.arange(n_tasks)).astype(np.int32),
        read_ptr=read_ptr,
        read_ids=read_ids,
        n_init=n_init,
        data_producer=np.concatenate(
            [np.full(n_init, -1, dtype=np.int32),
             np.arange(n_tasks, dtype=np.int32)]
        ),
        data_source_node=np.concatenate([init_home, node]),
        data_nbytes=np.full(n_init + n_tasks, b * b * 8, dtype=np.int64),
        data_keys=None,
        level_ranges=levels,
        _plan=plan.finish(),
    )
