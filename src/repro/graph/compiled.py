"""Array-based lowering of task graphs (the simulator's fast data plane).

The object representation (:class:`repro.graph.task.Task`, dict-of-list
dependency maps) is convenient to build and validate but tops out around
N = 100 tiles: the paper's headline runs reach N = 600 (~36M tasks), where
per-task Python objects dominate both memory and event-dispatch time.
This module lowers a graph into a :class:`CompiledGraph` of flat numpy
columns — task kind/node/flops/iteration/priority, CSR read adjacency,
per-version producer and byte-size tables — plus a :class:`CommPlan` of
precomputed communication structures (missing-input counts, local-consumer
and remote-needer lists, per-version remote destination lists in
first-need order) that the fast engine
(:func:`repro.runtime.simulator.fast_engine.simulate_compiled`) walks with
integer ids only.

Two entry points:

* :func:`compile_graph` lowers any existing :class:`TaskGraph` — the
  reference path, property-tested to drive the fast engine to *exactly*
  the object engine's makespan/bytes/messages;
* :func:`compile_cholesky` / :func:`compile_lu` generate the arrays of
  the 2D Cholesky/LU graphs directly from the distribution, never
  materializing a ``Task`` — O(N) vectorized batches instead of O(N^3)
  Python object constructions, which is what makes paper-scale N
  tractable.  They produce bit-identical arrays to lowering the
  object-built graph (also property-tested).

Priorities use the same bottom-level recurrence as
:func:`repro.graph.priorities.set_critical_path_priorities`; the direct
compilers carry ``level_ranges`` (contiguous batches of mutually
independent tasks) so the reverse sweep runs as ~3N vectorized
segment-max reductions instead of an O(tasks) Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from ..distributions.base import Distribution
from ..kernels.flops import kernel_flops
from .task import DataKey, TaskGraph

__all__ = [
    "CompiledGraph",
    "CommPlan",
    "compile_graph",
    "compile_cholesky",
    "compile_lu",
    "compiled_critical_path_priorities",
]

#: Canonical kind -> code table shared by the generic lowering and the
#: direct compilers, so both produce identical ``kind_codes`` arrays.
#: Unknown kinds are appended dynamically by :func:`compile_graph`.
CANONICAL_KINDS = (
    "POTRF", "TRSM", "SYRK", "GEMM",
    "GETRF", "TRSM_L", "TRSM_U", "GEMM_LU",
    "REDUCE", "REMAP",
    "TRSM_SOLVE", "TRSM_SOLVE_T", "GEMM_RHS", "GEMM_RHS_T",
    "TRTRI", "TRSM_RINV", "TRSM_LINV", "GEMM_INV",
    "TRMM", "LAUUM", "SYRK_T", "GEMM_T",
)


@dataclass
class CommPlan:
    """Precomputed communication bookkeeping for one compiled graph.

    All consumer lists are in task-id order and all destination lists in
    first-need order — the exact orders the object engine discovers them
    in, which is what makes the two engines tie-break identically.
    """

    #: per-task count of inputs not initially present at the task's node
    missing: npt.NDArray[np.int32]
    #: CSR over data ids: consumer tasks co-located with the producer
    lc_ptr: npt.NDArray[np.int64]
    lc_ids: npt.NDArray[np.int32]
    #: remote (data, destination) pairs, one row per eventual wire message
    #: (before any broadcast-tree re-routing): grouped by data id in
    #: first-need order of the destinations.
    pair_data: npt.NDArray[np.int64]
    pair_dst: npt.NDArray[np.int32]
    #: per-pair [start, start + count) slice into ``rn_ids``: the consumer
    #: tasks waiting at that destination, in task-id order
    pair_rn_start: npt.NDArray[np.int64]
    pair_rn_count: npt.NDArray[np.int64]
    rn_ids: npt.NDArray[np.int32]
    #: per data id, the [start, end) slice of its pairs (empty when the
    #: version never leaves its producer)
    kd_ptr: npt.NDArray[np.int64]
    #: (data id, home node) of misplaced initial versions, in the order
    #: the object engine kicks their eager transfers off at t = 0
    initial_sources: Tuple[Tuple[int, int], ...]


@dataclass
class CompiledGraph:
    """A task graph lowered to flat arrays (see module docstring)."""

    b: int
    width: int
    element_size: int
    kind_names: List[str]
    kind_codes: npt.NDArray[np.int16]  # per task
    node: npt.NDArray[np.int32]  # per task
    flops: npt.NDArray[np.float64]  # per task
    iteration: npt.NDArray[np.int32]  # per task
    priority: npt.NDArray[np.float64]  # per task (0 until assigned)
    write_id: npt.NDArray[np.int32]  # per task, -1 when the task writes nothing
    read_ptr: npt.NDArray[np.int64]  # len n_tasks + 1
    read_ids: npt.NDArray[np.int32]  # data ids
    n_init: int  # versions that pre-exist the computation (ids 0..n_init-1)
    data_producer: npt.NDArray[np.int32]  # producing task id, -1 for initial
    data_source_node: npt.NDArray[np.int32]  # producer's node / initial home
    data_nbytes: npt.NDArray[np.int64]  # per data id
    #: DataKey per data id — kept by :func:`compile_graph` for tracing;
    #: the direct compilers skip it (keys are synthesized on demand).
    data_keys: Optional[List[DataKey]] = None
    #: contiguous [lo, hi) task-id batches, in forward topological order,
    #: whose tasks are mutually independent (enables the vectorized
    #: priority sweep); None -> generic Python sweep.
    level_ranges: Optional[List[Tuple[int, int]]] = None
    _plan: Optional[CommPlan] = field(default=None, repr=False)
    _cons_csr: Optional[
        Tuple[npt.NDArray[np.int64], npt.NDArray[np.int32]]
    ] = field(default=None, repr=False)

    @property
    def n_tasks(self) -> int:
        return len(self.kind_codes)

    @property
    def n_data(self) -> int:
        return len(self.data_producer)

    def nodes_used(self) -> int:
        return int(self.node.max()) + 1 if self.n_tasks else 0

    def total_flops(self) -> float:
        return float(self.flops.sum())

    def comm_plan(self) -> CommPlan:
        """The precomputed communication structures (built once, cached)."""
        if self._plan is None:
            self._plan = _build_comm_plan(self)
        return self._plan

    def reassigned(self, node: npt.NDArray[np.int32]) -> "CompiledGraph":
        """A copy of this graph with tasks placed on ``node`` instead.

        Used by migrating scheduler policies (:mod:`repro.schedulers`):
        the structural arrays are shared, the placement-derived columns
        (``node``, ``data_source_node``) are replaced, and the cached
        communication plan is dropped so it is rebuilt against the new
        placement.  Initial data keeps its home; a produced version's
        source follows its producer.  ``priority`` is copied so runs on
        the reassigned graph never pollute the original's priorities.
        """
        node = np.ascontiguousarray(node, dtype=self.node.dtype)
        if node.shape != self.node.shape:
            raise ValueError(
                f"assignment has shape {node.shape}, expected {self.node.shape}"
            )
        source = self.data_source_node.copy()
        produced = self.data_producer >= 0
        source[produced] = node[self.data_producer[produced]]
        return replace(self, node=node, data_source_node=source,
                       priority=self.priority.copy(), _plan=None,
                       _cons_csr=self._cons_csr)

    def consumers_csr(
        self,
    ) -> Tuple[npt.NDArray[np.int64], npt.NDArray[np.int32]]:
        """CSR over *tasks*: ids of tasks reading each task's output,
        in task-id order (the priority sweep's adjacency).  Built once
        and cached (the arrays are treated as read-only)."""
        if self._cons_csr is not None:
            return self._cons_csr
        producer = self.data_producer[self.read_ids]
        has = producer >= 0
        prod = producer[has]
        cons = np.repeat(
            np.arange(self.n_tasks, dtype=np.int32),
            np.diff(self.read_ptr),
        )[has]
        order = np.argsort(prod, kind="stable")
        ptr = np.zeros(self.n_tasks + 1, dtype=np.int64)
        np.cumsum(np.bincount(prod, minlength=self.n_tasks), out=ptr[1:])
        self._cons_csr = (ptr, cons[order])
        return self._cons_csr


def _build_comm_plan(cg: CompiledGraph) -> CommPlan:
    n_tasks, n_data = cg.n_tasks, cg.n_data
    edge_cons = np.repeat(
        np.arange(n_tasks, dtype=np.int32), np.diff(cg.read_ptr)
    )
    edge_data = cg.read_ids
    src = cg.data_source_node[edge_data]
    dst = cg.node[edge_cons]
    produced = cg.data_producer[edge_data] >= 0
    remote = src != dst

    missing = np.bincount(
        edge_cons[produced | remote], minlength=n_tasks
    ).astype(np.int32)

    # Local consumers of produced versions, grouped by data id.
    lmask = produced & ~remote
    ldata = edge_data[lmask]
    lorder = np.argsort(ldata, kind="stable")
    lc_ptr = np.zeros(n_data + 1, dtype=np.int64)
    np.cumsum(np.bincount(ldata, minlength=n_data), out=lc_ptr[1:])
    lc_ids = edge_cons[lmask][lorder]

    # Remote needers, grouped by (data, destination) pair.
    rdata = edge_data[remote].astype(np.int64)
    rdst = dst[remote]
    rcons = edge_cons[remote]
    num_nodes = int(cg.node.max()) + 1 if n_tasks else 1
    pair_key = rdata * num_nodes + rdst
    porder = np.argsort(pair_key, kind="stable")
    sorted_pairs = pair_key[porder]
    # Group boundaries on the already-sorted keys (np.unique would sort
    # again — measurable at tens of millions of edges).
    if len(sorted_pairs):
        head = np.empty(len(sorted_pairs), dtype=bool)
        head[0] = True
        np.not_equal(sorted_pairs[1:], sorted_pairs[:-1], out=head[1:])
        starts = np.flatnonzero(head)
        uniq = sorted_pairs[starts]
        counts = np.diff(np.append(starts, len(sorted_pairs)))
    else:
        uniq = sorted_pairs
        starts = np.empty(0, dtype=np.int64)
        counts = starts
    # rn_ids holds all remote-needer tasks grouped by pair (task order
    # within each group, since the argsort is stable).
    rn_ids = rcons[porder]
    # First edge (in task order) of each pair: the stable sort puts each
    # group's smallest original index first, which drives first-need order.
    first_edge = porder[starts] if len(uniq) else starts
    pdata = (uniq // num_nodes).astype(np.int64)
    # Within each data id, order destinations by first need (pairs of one
    # data id stay contiguous): sort by (data, first_edge).
    kd_order = np.lexsort((first_edge, pdata))
    pair_data = pdata[kd_order]
    pair_dst = (uniq % num_nodes).astype(np.int32)[kd_order]
    pair_rn_start = starts[kd_order].astype(np.int64)
    pair_rn_count = counts[kd_order].astype(np.int64)

    kd_ptr = np.zeros(n_data + 1, dtype=np.int64)
    np.cumsum(np.bincount(pair_data, minlength=n_data), out=kd_ptr[1:])

    # Misplaced initial versions, ordered by their first remote read.
    init_mask = cg.data_producer[pair_data] < 0
    if init_mask.any():
        idata = pair_data[init_mask]
        ifirst = first_edge[kd_order][init_mask]
        seen_first = np.full(n_data, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(seen_first, idata, ifirst)
        init_ids = np.unique(idata)
        init_ids = init_ids[np.argsort(seen_first[init_ids], kind="stable")]
        initial_sources = tuple(
            (int(d), int(cg.data_source_node[d])) for d in init_ids
        )
    else:
        initial_sources = ()

    return CommPlan(
        missing=missing,
        lc_ptr=lc_ptr,
        lc_ids=lc_ids,
        pair_data=pair_data,
        pair_dst=pair_dst,
        pair_rn_start=pair_rn_start,
        pair_rn_count=pair_rn_count,
        rn_ids=rn_ids,
        kd_ptr=kd_ptr,
        initial_sources=initial_sources,
    )


def compiled_critical_path_priorities(
    cg: CompiledGraph, durations: npt.NDArray[np.float64]
) -> npt.NDArray[np.float64]:
    """Bottom-level priorities, bit-identical to the object-path sweep.

    ``priority[t] = durations[t] + max(priority of consumers, default 0)``
    — the recurrence of
    :func:`repro.graph.priorities.set_critical_path_priorities`.  With
    ``level_ranges`` available the reverse sweep is a handful of
    ``maximum.reduceat`` calls per level; otherwise it falls back to a
    Python loop over the (topologically ordered) task list.
    """
    n = cg.n_tasks
    cons_ptr, cons_ids = cg.consumers_csr()
    bottom = np.zeros(n, dtype=np.float64)
    if cg.level_ranges is not None:
        for lo, hi in reversed(cg.level_ranges):
            flat_lo, flat_hi = cons_ptr[lo], cons_ptr[hi]
            vals = bottom[cons_ids[flat_lo:flat_hi]]
            starts = (cons_ptr[lo:hi] - flat_lo).astype(np.int64)
            deg = np.diff(cons_ptr[lo : hi + 1])
            if len(vals):
                red = np.maximum.reduceat(
                    vals, np.minimum(starts, len(vals) - 1)
                )
                succ = np.where(deg > 0, red, 0.0)
            else:
                succ = np.zeros(hi - lo, dtype=np.float64)
            bottom[lo:hi] = durations[lo:hi] + succ
        return bottom
    # Generic reverse sweep (tasks are topologically ordered by id).
    ptr = cons_ptr.tolist()
    ids = cons_ids.tolist()
    dur = durations.tolist()
    out = bottom.tolist()
    for t in range(n - 1, -1, -1):
        succ = 0.0
        for c in ids[ptr[t] : ptr[t + 1]]:
            v = out[c]
            if v > succ:
                succ = v
        out[t] = dur[t] + succ
    return np.asarray(out, dtype=np.float64)


# ---------------------------------------------------------------------------
# Generic lowering of an object graph
# ---------------------------------------------------------------------------


def compile_graph(graph: TaskGraph) -> CompiledGraph:
    """Lower an object :class:`TaskGraph` into a :class:`CompiledGraph`.

    Data ids number the initial versions first (declaration order), then
    one id per writing task in task order — the same numbering the direct
    compilers use, so ``compile_graph(build_cholesky_graph(...))`` equals
    ``compile_cholesky(...)`` array for array.
    """
    kind_names = list(CANONICAL_KINDS)
    kind_code: Dict[str, int] = {k: i for i, k in enumerate(kind_names)}

    data_id: Dict[DataKey, int] = {}
    data_keys: List[DataKey] = []
    homes: List[int] = []
    for key, (home, _desc) in graph.initial.items():
        data_id[key] = len(data_keys)
        data_keys.append(key)
        homes.append(home)
    n_init = len(data_keys)

    n = len(graph.tasks)
    kinds = np.empty(n, dtype=np.int16)
    node = np.empty(n, dtype=np.int32)
    flops = np.empty(n, dtype=np.float64)
    iteration = np.empty(n, dtype=np.int32)
    priority = np.empty(n, dtype=np.float64)
    write_id = np.full(n, -1, dtype=np.int32)
    read_counts = np.empty(n, dtype=np.int64)
    reads_flat: List[int] = []

    producer: List[int] = [-1] * n_init
    source_node: List[int] = list(homes)

    for t in graph.tasks:
        code = kind_code.get(t.kind)
        if code is None:
            code = len(kind_names)
            kind_code[t.kind] = code
            kind_names.append(t.kind)
        kinds[t.id] = code
        node[t.id] = t.node
        flops[t.id] = t.flops
        iteration[t.id] = t.iteration
        priority[t.id] = t.priority
        read_counts[t.id] = len(t.reads)
        for k in t.reads:
            reads_flat.append(data_id[k])
        if t.write is not None:
            d = len(data_keys)
            data_id[t.write] = d
            data_keys.append(t.write)
            producer.append(t.id)
            source_node.append(t.node)
            write_id[t.id] = d

    read_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(read_counts, out=read_ptr[1:])
    nbytes = np.asarray(
        [graph.data_bytes(k) for k in data_keys], dtype=np.int64
    )
    return CompiledGraph(
        b=graph.b,
        width=graph.width,
        element_size=graph.element_size,
        kind_names=kind_names,
        kind_codes=kinds,
        node=node,
        flops=flops,
        iteration=iteration,
        priority=priority,
        write_id=write_id,
        read_ptr=read_ptr,
        read_ids=np.asarray(reads_flat, dtype=np.int32),
        n_init=n_init,
        data_producer=np.asarray(producer, dtype=np.int32),
        data_source_node=np.asarray(source_node, dtype=np.int32),
        data_nbytes=nbytes,
        data_keys=data_keys,
    )


# ---------------------------------------------------------------------------
# Direct compilers: Cholesky and LU without object materialization
# ---------------------------------------------------------------------------


def _concat(
    parts: Sequence[npt.NDArray[Any]], dtype: npt.DTypeLike
) -> npt.NDArray[Any]:
    if not parts:
        return np.empty(0, dtype=dtype)
    return np.concatenate([np.asarray(p, dtype=dtype) for p in parts])


def compile_cholesky(N: int, b: int, dist: Distribution) -> CompiledGraph:
    """Arrays of ``build_cholesky_graph(N, b, dist)``, built directly.

    Emits the exact task/version numbering of
    :func:`repro.graph.cholesky.cholesky_phase` — POTRF, the TRSM panel,
    then per-column SYRK + GEMMs, iteration by iteration — using O(N)
    vectorized batches.  Version bookkeeping exploits the closed form of
    Algorithm 1: the update of iteration ``i`` reads version ``i`` of
    every trailing tile and writes version ``i + 1``.
    """
    if N < 1:
        raise ValueError(f"need at least one tile, got N={N}")
    owners = dist.owner_map(N).astype(np.int32)

    # Initial versions: declare order is column-major over the lower
    # triangle (j outer, i from j to N-1): id(i, j) = off[j] + i - j.
    n_init = N * (N + 1) // 2
    jj = np.arange(N, dtype=np.int64)
    col_off = jj * N - jj * (jj - 1) // 2

    def tri_id(
        i: npt.NDArray[np.int64], j: npt.NDArray[np.int64]
    ) -> npt.NDArray[np.int64]:
        return col_off[j] + i - j

    # Current version id of every lower-triangle tile (packed tri index).
    cur = np.arange(n_init, dtype=np.int64)

    POTRF, TRSM, SYRK, GEMM = (
        CANONICAL_KINDS.index("POTRF"),
        CANONICAL_KINDS.index("TRSM"),
        CANONICAL_KINDS.index("SYRK"),
        CANONICAL_KINDS.index("GEMM"),
    )
    f_potrf = kernel_flops("POTRF", b)
    f_trsm = kernel_flops("TRSM", b)
    f_syrk = kernel_flops("SYRK", b)
    f_gemm = kernel_flops("GEMM", b)

    kinds_p: List[np.ndarray] = []
    node_p: List[np.ndarray] = []
    flops_p: List[np.ndarray] = []
    iter_p: List[np.ndarray] = []
    nread_p: List[np.ndarray] = []
    reads_p: List[np.ndarray] = []
    levels: List[Tuple[int, int]] = []

    tid = 0
    tril_owner = owners  # owner(i, j) for i >= j is owners[i, j] directly
    for i in range(N):
        m = N - i  # trailing block size including the pivot column
        rows = np.arange(i + 1, N, dtype=np.int64)

        # POTRF(i, i): reads the current diagonal version.
        diag_tile = tri_id(np.int64(i), np.int64(i))
        kinds_p.append(np.full(1, POTRF))
        node_p.append(owners[i, i][None])
        flops_p.append(np.full(1, f_potrf))
        iter_p.append(np.full(1, i))
        nread_p.append(np.full(1, 1))
        reads_p.append(cur[diag_tile][None])
        diag_ver = n_init + tid
        cur[diag_tile] = diag_ver
        levels.append((tid, tid + 1))
        tid += 1

        if m == 1:
            continue

        # TRSM panel: tiles (j, i), j = i+1..N-1, reads (prev, diag).
        panel_tiles = tri_id(rows, np.int64(i))
        kinds_p.append(np.full(m - 1, TRSM))
        node_p.append(tril_owner[rows, i])
        flops_p.append(np.full(m - 1, f_trsm))
        iter_p.append(np.full(m - 1, i))
        nread_p.append(np.full(m - 1, 2))
        trsm_reads = np.empty(2 * (m - 1), dtype=np.int64)
        trsm_reads[0::2] = cur[panel_tiles]
        trsm_reads[1::2] = diag_ver
        reads_p.append(trsm_reads)
        trsm_out0 = n_init + tid  # output id of TRSM(i+1, i)
        cur[panel_tiles] = trsm_out0 + np.arange(m - 1)
        levels.append((tid, tid + m - 1))
        tid += m - 1

        # Trailing update: per column k (ascending), SYRK(k, k) then
        # GEMM(j, k) for j = k+1..N-1 — column-major enumeration of the
        # trailing lower triangle.
        kk = np.repeat(rows, (N - rows).astype(np.int64))
        up_j = np.concatenate(
            [np.arange(k, N, dtype=np.int64) for k in rows]
        )
        n_up = len(kk)
        is_syrk = up_j == kk
        up_tiles = tri_id(up_j, kk)
        a_ki = trsm_out0 + (kk - i - 1)  # TRSM output of column tile (k, i)
        a_ji = trsm_out0 + (up_j - i - 1)
        kinds_p.append(np.where(is_syrk, SYRK, GEMM))
        node_p.append(tril_owner[up_j, kk])
        flops_p.append(np.where(is_syrk, f_syrk, f_gemm))
        iter_p.append(np.full(n_up, i))
        nread = np.where(is_syrk, 2, 3)
        nread_p.append(nread)
        starts = np.zeros(n_up, dtype=np.int64)
        np.cumsum(nread[:-1], out=starts[1:])
        up_reads = np.empty(int(nread.sum()), dtype=np.int64)
        # SYRK reads (prev, a_ki); GEMM reads (prev, a_ji, a_ki).
        up_reads[starts] = cur[up_tiles]
        up_reads[starts + 1] = np.where(is_syrk, a_ki, a_ji)
        up_reads[starts[~is_syrk] + 2] = a_ki[~is_syrk]
        reads_p.append(up_reads)
        cur[up_tiles] = n_init + tid + np.arange(n_up)
        levels.append((tid, tid + n_up))
        tid += n_up

    n_tasks = tid
    read_ptr = np.zeros(n_tasks + 1, dtype=np.int64)
    np.cumsum(_concat(nread_p, np.int64), out=read_ptr[1:])
    node = _concat(node_p, np.int32)
    data_producer = np.concatenate(
        [np.full(n_init, -1, dtype=np.int32),
         np.arange(n_tasks, dtype=np.int32)]
    )
    # Initial homes: owner of tile (i, j) in declare order.
    init_i = np.concatenate([np.arange(j, N) for j in range(N)])
    init_j = np.repeat(np.arange(N), N - np.arange(N))
    init_home = owners[init_i, init_j].astype(np.int32)
    data_source_node = np.concatenate([init_home, node])

    return CompiledGraph(
        b=b,
        width=0,
        element_size=8,
        kind_names=list(CANONICAL_KINDS),
        kind_codes=_concat(kinds_p, np.int16),
        node=node,
        flops=_concat(flops_p, np.float64),
        iteration=_concat(iter_p, np.int32),
        priority=np.zeros(n_tasks, dtype=np.float64),
        write_id=(n_init + np.arange(n_tasks)).astype(np.int32),
        read_ptr=read_ptr,
        read_ids=_concat(reads_p, np.int32),
        n_init=n_init,
        data_producer=data_producer,
        data_source_node=data_source_node,
        data_nbytes=np.full(n_init + n_tasks, b * b * 8, dtype=np.int64),
        data_keys=None,
        level_ranges=levels,
    )


def compile_lu(N: int, b: int, dist: Distribution) -> CompiledGraph:
    """Arrays of ``build_lu_graph(N, b, dist)``, built directly.

    Same scheme as :func:`compile_cholesky` on the full (nonsymmetric)
    tile grid: GETRF, the L panel (column), the U panel (row), then the
    trailing GEMM_LU block in row-major order, iteration by iteration.
    """
    if N < 1:
        raise ValueError(f"need at least one tile, got N={N}")
    owners = dist.owner_map(N).astype(np.int32)

    n_init = N * N  # declare order: i outer, j inner -> id = i * N + j
    cur = np.arange(n_init, dtype=np.int64)

    GETRF = CANONICAL_KINDS.index("GETRF")
    TRSM_L = CANONICAL_KINDS.index("TRSM_L")
    TRSM_U = CANONICAL_KINDS.index("TRSM_U")
    GEMM_LU = CANONICAL_KINDS.index("GEMM_LU")
    f_getrf = kernel_flops("GETRF", b)
    f_trsm = kernel_flops("TRSM_L", b)
    f_gemm = kernel_flops("GEMM_LU", b)

    kinds_p: List[np.ndarray] = []
    node_p: List[np.ndarray] = []
    flops_p: List[np.ndarray] = []
    iter_p: List[np.ndarray] = []
    nread_p: List[np.ndarray] = []
    reads_p: List[np.ndarray] = []
    levels: List[Tuple[int, int]] = []

    tid = 0
    for i in range(N):
        m = N - i
        rows = np.arange(i + 1, N, dtype=np.int64)

        diag_tile = i * N + i
        kinds_p.append(np.full(1, GETRF))
        node_p.append(owners[i, i][None])
        flops_p.append(np.full(1, f_getrf))
        iter_p.append(np.full(1, i))
        nread_p.append(np.full(1, 1))
        reads_p.append(cur[diag_tile][None])
        diag_ver = n_init + tid
        cur[diag_tile] = diag_ver
        levels.append((tid, tid + 1))
        tid += 1

        if m == 1:
            continue

        # L panel: tiles (j, i), reads (prev, diag).
        l_tiles = rows * N + i
        kinds_p.append(np.full(m - 1, TRSM_L))
        node_p.append(owners[rows, i])
        flops_p.append(np.full(m - 1, f_trsm))
        iter_p.append(np.full(m - 1, i))
        nread_p.append(np.full(m - 1, 2))
        l_reads = np.empty(2 * (m - 1), dtype=np.int64)
        l_reads[0::2] = cur[l_tiles]
        l_reads[1::2] = diag_ver
        reads_p.append(l_reads)
        l_out0 = n_init + tid
        cur[l_tiles] = l_out0 + np.arange(m - 1)
        levels.append((tid, tid + m - 1))
        tid += m - 1

        # U panel: tiles (i, k), reads (prev, diag).
        u_tiles = i * N + rows
        kinds_p.append(np.full(m - 1, TRSM_U))
        node_p.append(owners[i, rows])
        flops_p.append(np.full(m - 1, f_trsm))
        iter_p.append(np.full(m - 1, i))
        nread_p.append(np.full(m - 1, 2))
        u_reads = np.empty(2 * (m - 1), dtype=np.int64)
        u_reads[0::2] = cur[u_tiles]
        u_reads[1::2] = diag_ver
        reads_p.append(u_reads)
        u_out0 = n_init + tid
        cur[u_tiles] = u_out0 + np.arange(m - 1)
        levels.append((tid, tid + m - 1))
        tid += m - 1

        # Trailing block, row-major: (j, k) for j then k ascending;
        # reads (prev, a_ji, a_ik).
        up_j = np.repeat(rows, m - 1)
        up_k = np.tile(rows, m - 1)
        n_up = len(up_j)
        up_tiles = up_j * N + up_k
        kinds_p.append(np.full(n_up, GEMM_LU))
        node_p.append(owners[up_j, up_k])
        flops_p.append(np.full(n_up, f_gemm))
        iter_p.append(np.full(n_up, i))
        nread_p.append(np.full(n_up, 3))
        up_reads = np.empty(3 * n_up, dtype=np.int64)
        up_reads[0::3] = cur[up_tiles]
        up_reads[1::3] = l_out0 + (up_j - i - 1)
        up_reads[2::3] = u_out0 + (up_k - i - 1)
        reads_p.append(up_reads)
        cur[up_tiles] = n_init + tid + np.arange(n_up)
        levels.append((tid, tid + n_up))
        tid += n_up

    n_tasks = tid
    read_ptr = np.zeros(n_tasks + 1, dtype=np.int64)
    np.cumsum(_concat(nread_p, np.int64), out=read_ptr[1:])
    node = _concat(node_p, np.int32)
    init_home = owners.reshape(-1).astype(np.int32)
    return CompiledGraph(
        b=b,
        width=0,
        element_size=8,
        kind_names=list(CANONICAL_KINDS),
        kind_codes=_concat(kinds_p, np.int16),
        node=node,
        flops=_concat(flops_p, np.float64),
        iteration=_concat(iter_p, np.int32),
        priority=np.zeros(n_tasks, dtype=np.float64),
        write_id=(n_init + np.arange(n_tasks)).astype(np.int32),
        read_ptr=read_ptr,
        read_ids=_concat(reads_p, np.int32),
        n_init=n_init,
        data_producer=np.concatenate(
            [np.full(n_init, -1, dtype=np.int32),
             np.arange(n_tasks, dtype=np.int32)]
        ),
        data_source_node=np.concatenate([init_home, node]),
        data_nbytes=np.full(n_init + n_tasks, b * b * 8, dtype=np.int64),
        data_keys=None,
        level_ranges=levels,
    )
