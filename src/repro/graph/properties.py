"""Structural validation and statistics of task graphs.

Used by the test suite and as runtime sanity checks: topological order of
the task list, single-producer discipline, expected task counts for each
operation, and per-kind/per-node summaries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .task import TaskGraph

__all__ = [
    "validate_graph",
    "kind_counts",
    "node_task_counts",
    "expected_cholesky_counts",
    "expected_trtri_counts",
    "expected_lauum_counts",
    "GraphStats",
    "graph_stats",
]


def validate_graph(graph: TaskGraph) -> None:
    """Raise AssertionError on structural inconsistencies.

    Checks: task ids are unique, every read has a producer emitted
    earlier in the list or an initial declaration (=> the list order is
    a topological order and the graph is acyclic), no task reads the
    version it writes (self-dependency), every version has at most one
    producer (guaranteed by construction, re-verified), and node ids are
    non-negative.  The compiled form is then re-checked by the schedule
    verifier (:mod:`repro.analyze.schedule`) so the object and array
    validation paths cannot drift apart.
    """
    seen = set(graph.initial)
    ids = set()
    for t in graph.tasks:
        if t.id in ids:
            raise AssertionError(f"duplicate task id {t.id} ({t})")
        ids.add(t.id)
        if t.node < 0:
            raise AssertionError(f"task {t} placed on negative node")
        if t.write is not None and t.write in t.reads:
            raise AssertionError(
                f"task {t} reads its own output {t.write} "
                "(self-dependency)"
            )
        for k in t.reads:
            if k not in seen:
                raise AssertionError(
                    f"task {t} reads {k} before it is produced: "
                    "task list is not a topological order"
                )
        if t.write is not None:
            if t.write in seen:
                raise AssertionError(f"data {t.write} written twice")
            seen.add(t.write)

    # One validation path: the schedule verifier re-derives the same
    # invariants (plus byte conservation) from the compiled arrays.
    # Imported lazily — repro.analyze depends on this package.
    from ..analyze.schedule import verify_compiled
    from .compiled import compile_graph

    report = verify_compiled(compile_graph(graph), graph=graph)
    if not report.ok():
        raise AssertionError(
            "schedule verifier rejects the compiled graph:\n"
            + report.render()
        )


def kind_counts(graph: TaskGraph) -> dict[str, int]:
    """Number of tasks of each kernel kind."""
    return dict(Counter(t.kind for t in graph.tasks))


def node_task_counts(graph: TaskGraph, num_nodes: int) -> dict[int, int]:
    """Number of tasks placed on each node."""
    c = Counter(t.node for t in graph.tasks)
    return {n: c.get(n, 0) for n in range(num_nodes)}


def expected_cholesky_counts(N: int) -> dict[str, int]:
    """Task counts of Algorithm 1 on N x N tiles."""
    return {
        "POTRF": N,
        "TRSM": N * (N - 1) // 2,
        "SYRK": N * (N - 1) // 2,
        "GEMM": N * (N - 1) * (N - 2) // 6,
    }


def expected_trtri_counts(N: int) -> dict[str, int]:
    """Task counts of the tiled TRTRI on N x N tiles."""
    return {
        "TRTRI": N,
        "TRSM_RINV": N * (N - 1) // 2,
        "TRSM_LINV": N * (N - 1) // 2,
        "GEMM_INV": N * (N - 1) * (N - 2) // 6,
    }


def expected_lauum_counts(N: int) -> dict[str, int]:
    """Task counts of the tiled LAUUM on N x N tiles."""
    return {
        "LAUUM": N,
        "SYRK_T": N * (N - 1) // 2,
        "TRMM": N * (N - 1) // 2,
        "GEMM_T": N * (N - 1) * (N - 2) // 6,
    }


@dataclass(frozen=True)
class GraphStats:
    """Aggregate description of a task graph."""

    num_tasks: int
    num_edges: int
    total_flops: float
    kinds: dict[str, int]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ", ".join(f"{k}:{v}" for k, v in sorted(self.kinds.items()))
        return (
            f"{self.num_tasks} tasks, {self.num_edges} edges, "
            f"{self.total_flops / 1e9:.2f} Gflop [{kinds}]"
        )


def graph_stats(graph: TaskGraph) -> GraphStats:
    return GraphStats(
        num_tasks=len(graph.tasks),
        num_edges=sum(1 for _ in graph.dependency_edges()),
        total_flops=graph.total_flops(),
        kinds=kind_counts(graph),
    )
