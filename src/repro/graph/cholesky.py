"""Task-graph builders for the tiled Cholesky factorization (Algorithm 1).

``build_cholesky_graph`` produces the 2D graph: every tile has a single
owner given by the distribution and all tasks modifying it run there
(owner computes).  ``build_cholesky_graph_25d`` produces the 2.5D variant
of §IV: iteration ``i`` runs on slice ``i mod c``, each slice accumulates
partial updates in its own copy of the trailing matrix, and explicit
REDUCE tasks aggregate the partials onto the iteration's slice right
before the tile's final TRSM/POTRF.
"""

from __future__ import annotations

from ..distributions.base import Distribution
from ..distributions.twod5 import TwoDotFiveD
from ..kernels.flops import kernel_flops
from .task import DataKey, GraphBuilder, TaskGraph

__all__ = [
    "build_cholesky_graph",
    "build_cholesky_graph_25d",
    "declare_spd_tiles",
    "cholesky_phase",
]


def declare_spd_tiles(bld: GraphBuilder, N: int, dist: Distribution) -> None:
    """Declare the initial lower-triangle tiles of A, resident at their owners."""
    for j in range(N):
        for i in range(j, N):
            bld.declare("A", i, j, dist.owner(i, j), "spd")


def cholesky_phase(
    bld: GraphBuilder, N: int, dist: Distribution, iteration_offset: int = 0
) -> None:
    """Append the POTRF task graph to an existing builder (tiles declared)."""
    b = bld.graph.b
    for i in range(N):
        it = iteration_offset + i
        # POTRF on the diagonal tile.
        prev = bld.current("A", i, i)
        diag = bld.bump("A", i, i)
        bld.task("POTRF", dist.owner(i, i), (i,), (prev,), diag,
                 kernel_flops("POTRF", b), it)
        # Panel of TRSMs below the diagonal.
        for j in range(i + 1, N):
            prev = bld.current("A", j, i)
            out = bld.bump("A", j, i)
            bld.task("TRSM", dist.owner(j, i), (j, i), (prev, diag), out,
                     kernel_flops("TRSM", b), it)
        # Trailing matrix update.
        for k in range(i + 1, N):
            a_ki = bld.current("A", k, i)
            prev = bld.current("A", k, k)
            out = bld.bump("A", k, k)
            bld.task("SYRK", dist.owner(k, k), (k, i), (prev, a_ki), out,
                     kernel_flops("SYRK", b), it)
            for j in range(k + 1, N):
                a_ji = bld.current("A", j, i)
                prev = bld.current("A", j, k)
                out = bld.bump("A", j, k)
                bld.task("GEMM", dist.owner(j, k), (j, k, i),
                         (prev, a_ji, a_ki), out, kernel_flops("GEMM", b), it)


def build_cholesky_graph(N: int, b: int, dist: Distribution) -> TaskGraph:
    """2D tiled Cholesky factorization graph on ``N x N`` tiles of size ``b``."""
    if N < 1:
        raise ValueError(f"need at least one tile, got N={N}")
    graph = TaskGraph(b)
    bld = GraphBuilder(graph)
    declare_spd_tiles(bld, N, dist)
    cholesky_phase(bld, N, dist)
    return graph


def _ensure_partial(bld: GraphBuilder, d25: TwoDotFiveD, i: int, j: int, s: int) -> None:
    """Declare slice ``s``'s partial-update stream for tile (i, j) if missing.

    The stream of the tile's *final* slice starts from the replicated input
    data; every other slice accumulates into a zero-initialized buffer so
    the reduction is a plain sum.
    """
    if not bld.exists("A", i, j, part=s):
        bld.declare("A", i, j, d25.owner(s, i, j), "zero", part=s)


def _reduce_partials(
    bld: GraphBuilder, d25: TwoDotFiveD, i: int, j: int, target: int, iteration: int
) -> DataKey:
    """Aggregate all partial streams of tile (i, j) onto slice ``target``.

    Returns the version holding the fully-updated tile on slice ``target``.
    Skipped entirely (no task) when only the target stream exists.
    """
    b = bld.graph.b
    reads = [bld.current("A", i, j, part=target)]
    for s in range(d25.c):
        if s != target and bld.exists("A", i, j, part=s):
            reads.append(bld.current("A", i, j, part=s))
    if len(reads) == 1:
        return reads[0]
    out = bld.bump("A", i, j, part=target)
    flops = (len(reads) - 1) * kernel_flops("REDUCE", b)
    bld.task("REDUCE", d25.owner(target, i, j), (i, j), tuple(reads), out,
             flops, iteration)
    return out


def build_cholesky_graph_25d(N: int, b: int, d25: TwoDotFiveD) -> TaskGraph:
    """2.5D tiled Cholesky graph: replication over ``c`` slices (§IV).

    Data streams: ``DataKey(part=s)`` is slice ``s``'s copy of a tile.  The
    stream of the slice performing the tile's final iteration is seeded
    with the input data ("spd"); other slices accumulate partial GEMM/SYRK
    updates from zero and feed the REDUCE.
    """
    if N < 1:
        raise ValueError(f"need at least one tile, got N={N}")
    graph = TaskGraph(b)
    bld = GraphBuilder(graph)
    # Final slice of tile (i, j), i >= j: the slice of iteration j (its TRSM
    # for off-diagonal tiles, its POTRF for the diagonal).
    for j in range(N):
        for i in range(j, N):
            t = d25.slice_of_iteration(j)
            bld.declare("A", i, j, d25.owner(t, i, j), "spd", part=t)

    for i in range(N):
        s = d25.slice_of_iteration(i)
        # Aggregate pending updates, then factorize the diagonal tile.
        acc = _reduce_partials(bld, d25, i, i, s, i)
        diag = bld.bump("A", i, i, part=s)
        bld.task("POTRF", d25.owner(s, i, i), (i,), (acc,), diag,
                 kernel_flops("POTRF", b), i)
        # Panel TRSMs (always on slice s = final slice of column i).
        for j in range(i + 1, N):
            accp = _reduce_partials(bld, d25, j, i, s, i)
            out = bld.bump("A", j, i, part=s)
            bld.task("TRSM", d25.owner(s, j, i), (j, i), (accp, diag), out,
                     kernel_flops("TRSM", b), i)
        # Trailing updates of iteration i accumulate on slice s's streams.
        for k in range(i + 1, N):
            a_ki = bld.current("A", k, i, part=s)
            _ensure_partial(bld, d25, k, k, s)
            prev = bld.current("A", k, k, part=s)
            out = bld.bump("A", k, k, part=s)
            bld.task("SYRK", d25.owner(s, k, k), (k, i), (prev, a_ki), out,
                     kernel_flops("SYRK", b), i)
            for j in range(k + 1, N):
                a_ji = bld.current("A", j, i, part=s)
                _ensure_partial(bld, d25, j, k, s)
                prev = bld.current("A", j, k, part=s)
                out = bld.bump("A", j, k, part=s)
                bld.task("GEMM", d25.owner(s, j, k), (j, k, i),
                         (prev, a_ji, a_ki), out, kernel_flops("GEMM", b), i)
    return graph
