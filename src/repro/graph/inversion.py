"""Task-graph builders for TRTRI, LAUUM and the POTRI workflow (§V-F.2).

POTRI computes the inverse of an SPD matrix in three steps sharing one
task graph:

1. ``A <- POTRF(A)``      (Cholesky: A holds L)
2. ``A <- TRTRI(A)``      (triangular inversion: A holds L^{-1})
3. ``A <- LAUUM(A)``      (symmetric product: A holds (L^{-1})^T L^{-1} = A^{-1})

TRTRI's interior update at iteration ``k`` on tile (m, n), m > k > n, reads
tiles (m, k) *and* (k, n) — a nonsymmetric pattern broadcasting along rows
and columns independently, which favours 2DBC over SBC.  LAUUM's pattern is
symmetric like POTRF's.  ``build_potri_graph`` therefore supports the
paper's mixed strategy: POTRF and LAUUM under one distribution, TRTRI under
another, with explicit remaps in between.
"""

from __future__ import annotations

from typing import Optional

from ..distributions.base import Distribution
from ..kernels.flops import kernel_flops
from .cholesky import cholesky_phase, declare_spd_tiles
from .redistribution import remap_phase
from .task import GraphBuilder, TaskGraph

__all__ = [
    "build_trtri_graph",
    "build_lauum_graph",
    "build_potri_graph",
    "trtri_phase",
    "lauum_phase",
]


def trtri_phase(
    bld: GraphBuilder, N: int, dist: Distribution, iteration_offset: int
) -> None:
    """In-place inversion of the lower-triangular factor held in A.

    Tiled left-looking algorithm (PLASMA's ztrtri ordering): at iteration
    ``k``, the panel below the diagonal is scaled by ``-L_{k,k}^{-1}`` on
    the right, interior tiles (m, n) with n < k < m accumulate
    ``A_{m,k} A_{k,n}``, row ``k`` is scaled by ``L_{k,k}^{-1}`` on the
    left, and finally the diagonal tile is inverted.
    """
    b = bld.graph.b
    for k in range(N):
        it = iteration_offset + k
        diag = bld.current("A", k, k)
        for m in range(k + 1, N):
            prev = bld.current("A", m, k)
            out = bld.bump("A", m, k)
            bld.task("TRSM_RINV", dist.owner(m, k), (m, k), (prev, diag), out,
                     kernel_flops("TRSM_RINV", b), it)
        for m in range(k + 1, N):
            a_mk = bld.current("A", m, k)
            for n in range(k):
                a_kn = bld.current("A", k, n)
                prev = bld.current("A", m, n)
                out = bld.bump("A", m, n)
                bld.task("GEMM_INV", dist.owner(m, n), (m, n, k),
                         (prev, a_mk, a_kn), out, kernel_flops("GEMM_INV", b), it)
        for n in range(k):
            prev = bld.current("A", k, n)
            out = bld.bump("A", k, n)
            bld.task("TRSM_LINV", dist.owner(k, n), (k, n), (prev, diag), out,
                     kernel_flops("TRSM_LINV", b), it)
        out = bld.bump("A", k, k)
        bld.task("TRTRI", dist.owner(k, k), (k,), (diag,), out,
                 kernel_flops("TRTRI", b), it)


def lauum_phase(
    bld: GraphBuilder, N: int, dist: Distribution, iteration_offset: int
) -> None:
    """In-place ``A <- W^T W`` for the lower-triangular W held in A.

    At iteration ``k``, row ``k`` of W contributes rank-b updates to the
    tiles above it in its columns — the same symmetric row+column broadcast
    pattern as POTRF (each tile (k, n) feeds column n and, transposed, row
    n), which is why SBC also benefits LAUUM.
    """
    b = bld.graph.b
    for k in range(N):
        it = iteration_offset + k
        for n in range(k):
            a_kn = bld.current("A", k, n)
            prev = bld.current("A", n, n)
            out = bld.bump("A", n, n)
            bld.task("SYRK_T", dist.owner(n, n), (k, n), (prev, a_kn), out,
                     kernel_flops("SYRK_T", b), it)
            for m in range(n + 1, k):
                a_km = bld.current("A", k, m)
                prev = bld.current("A", m, n)
                out = bld.bump("A", m, n)
                bld.task("GEMM_T", dist.owner(m, n), (m, n, k),
                         (prev, a_km, a_kn), out, kernel_flops("GEMM_T", b), it)
        diag = bld.current("A", k, k)
        for n in range(k):
            prev = bld.current("A", k, n)
            out = bld.bump("A", k, n)
            bld.task("TRMM", dist.owner(k, n), (k, n), (prev, diag), out,
                     kernel_flops("TRMM", b), it)
        out = bld.bump("A", k, k)
        bld.task("LAUUM", dist.owner(k, k), (k,), (diag,), out,
                 kernel_flops("LAUUM", b), it)


def build_trtri_graph(N: int, b: int, dist: Distribution) -> TaskGraph:
    """Standalone TRTRI graph; initial tiles hold a lower-triangular matrix."""
    graph = TaskGraph(b)
    bld = GraphBuilder(graph)
    for j in range(N):
        for i in range(j, N):
            bld.declare("A", i, j, dist.owner(i, j), "tri")
    trtri_phase(bld, N, dist, 0)
    return graph


def build_lauum_graph(N: int, b: int, dist: Distribution) -> TaskGraph:
    """Standalone LAUUM graph; initial tiles hold a lower-triangular matrix."""
    graph = TaskGraph(b)
    bld = GraphBuilder(graph)
    for j in range(N):
        for i in range(j, N):
            bld.declare("A", i, j, dist.owner(i, j), "tri")
    lauum_phase(bld, N, dist, 0)
    return graph


def build_potri_graph(
    N: int,
    b: int,
    dist: Distribution,
    trtri_dist: Optional[Distribution] = None,
) -> TaskGraph:
    """POTRI = POTRF + TRTRI + LAUUM as one merged task graph.

    When ``trtri_dist`` is given, the matrix is remapped to it before TRTRI
    and back to ``dist`` afterwards — the paper's "SBC remap 2DBC" strategy.
    """
    if N < 1:
        raise ValueError(f"need at least one tile, got N={N}")
    graph = TaskGraph(b)
    bld = GraphBuilder(graph)
    declare_spd_tiles(bld, N, dist)
    cholesky_phase(bld, N, dist)
    offset = N
    if trtri_dist is not None:
        remap_phase(bld, N, trtri_dist, iteration=offset)
        offset += 1
        trtri_phase(bld, N, trtri_dist, iteration_offset=offset)
        offset += N
        remap_phase(bld, N, dist, iteration=offset)
        offset += 1
    else:
        trtri_phase(bld, N, dist, iteration_offset=offset)
        offset += N
    lauum_phase(bld, N, dist, iteration_offset=offset)
    return graph
