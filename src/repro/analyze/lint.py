"""AST-based codebase invariant linter.

Repo-wide invariants that no unit test states but every PR relies on,
checked by walking Python ASTs (no imports, no execution):

* ``ANA-RAND`` — no *unseeded* randomness outside test fixtures: the
  module-level ``random.*`` / ``numpy.random.*`` functions draw from
  hidden global state and break the repo's replay guarantees.  Seeded
  construction (``np.random.default_rng(seed)``, ``random.Random(seed)``,
  ``np.random.SeedSequence(...)``) is fine; the zero-argument forms are
  not;
* ``ANA-CLOCK`` — no wall-clock reads (``time.time``,
  ``time.perf_counter``, ``time.monotonic``, ``datetime.now``) inside
  ``runtime/simulator/``: the simulator owns its clock, and a wall-clock
  read there silently breaks bit-exact engine equality;
* ``ANA-OBS`` — every runtime path that completes tasks must emit
  :class:`~repro.obs.events.TaskEvent`\\ s: the modules listed in
  :data:`TASK_COMPLETION_MODULES` must contain at least one
  ``record_task`` call;
* ``ANA-EQTEST`` — engine-equality coverage: every ``simulate_*``
  entry point defined under ``src/`` must be referenced somewhere under
  ``tests/``, so a new engine cannot ship without an equality/behaviour
  test naming it.

Run via ``python -m repro.analyze --lint`` (or ``--all``); wired into
CI as a blocking step.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from pathlib import Path
from typing import Optional

from .findings import Report, Severity

__all__ = ["lint_repo", "lint_sources", "TASK_COMPLETION_MODULES"]

#: Module-level ``random`` functions that use the hidden global RNG.
_RANDOM_GLOBAL_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "betavariate", "expovariate", "seed",
    "getrandbits", "normalvariate",
}

#: ``numpy.random`` module-level functions backed by the legacy global
#: state (plus ``seed`` itself).
_NP_RANDOM_GLOBAL_FNS = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "normal", "uniform", "standard_normal",
    "seed",
}

#: Wall-clock reads forbidden inside the simulator.
_CLOCK_CALLS = {
    ("time", "time"), ("time", "perf_counter"), ("time", "monotonic"),
    ("time", "time_ns"), ("time", "perf_counter_ns"),
    ("datetime", "now"), ("datetime", "utcnow"),
}

#: Runtime modules (relative to the source root) that complete tasks and
#: must therefore emit TaskEvents through a ``record_task`` call.  The
#: out-of-core engine is deliberately absent: it traces IO/cache events
#: (its unit of progress is a tile movement, not a task).
TASK_COMPLETION_MODULES = (
    "repro/runtime/simulator/engine.py",
    "repro/runtime/simulator/fast_engine.py",
    "repro/runtime/local.py",
    "repro/runtime/distributed/executor.py",
)

#: Directories whose files may use unseeded randomness (fixtures).
_RAND_EXEMPT_PARTS = ("tests", "benchmarks", "examples", "conftest")


def _dotted(node: ast.AST) -> Optional[tuple[str, ...]]:
    """Flatten ``a.b.c`` into ("a", "b", "c"); None for other shapes."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


class _FileLint(ast.NodeVisitor):
    """Collects rule hits for one parsed source file."""

    def __init__(self, rel: str, in_simulator: bool, rand_exempt: bool):
        self.rel = rel
        self.in_simulator = in_simulator
        self.rand_exempt = rand_exempt
        self.hits: list[tuple[str, int, str, str]] = []
        self.record_task_calls = 0
        self.simulate_defs: list[tuple[str, int]] = []

    def _hit(self, rule: str, lineno: int, message: str, hint: str) -> None:
        self.hits.append((rule, lineno, message, hint))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.name.startswith("simulate_"):
            self.simulate_defs.append((node.name, node.lineno))
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        if node.name.startswith("simulate_"):
            self.simulate_defs.append((node.name, node.lineno))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted:
            self._check_call(dotted, node)
        self.generic_visit(node)

    def _check_call(self, dotted: tuple[str, ...], node: ast.Call) -> None:
        if dotted[-1] == "record_task":
            self.record_task_calls += 1

        if not self.rand_exempt:
            # random.<global fn>(...)
            if len(dotted) == 2 and dotted[0] == "random" \
                    and dotted[1] in _RANDOM_GLOBAL_FNS:
                self._hit(
                    "ANA-RAND", node.lineno,
                    f"call to random.{dotted[1]} uses the unseeded global "
                    "RNG",
                    "construct random.Random(seed) and draw from it",
                )
            # random.Random() / np.random.default_rng() with no arguments
            if dotted[-1] in ("Random", "default_rng") \
                    and "random" in dotted and not node.args \
                    and not node.keywords:
                self._hit(
                    "ANA-RAND", node.lineno,
                    f"{'.'.join(dotted)}() without a seed draws entropy "
                    "from the OS",
                    "pass an explicit seed or SeedSequence",
                )
            # np.random.<legacy global fn>(...)
            if len(dotted) >= 3 and dotted[-2] == "random" \
                    and dotted[-1] in _NP_RANDOM_GLOBAL_FNS:
                self._hit(
                    "ANA-RAND", node.lineno,
                    f"call to {'.'.join(dotted)} uses numpy's legacy "
                    "global RNG state",
                    "use np.random.default_rng(seed)",
                )

        if self.in_simulator:
            tail = dotted[-2:] if len(dotted) >= 2 else dotted
            if tuple(tail) in _CLOCK_CALLS:
                self._hit(
                    "ANA-CLOCK", node.lineno,
                    f"wall-clock read {'.'.join(dotted)}() inside "
                    "runtime/simulator/",
                    "the simulator's time axis is the event clock; pass "
                    "times in explicitly",
                )


def _iter_sources(src_root: Path) -> Iterable[Path]:
    return sorted(src_root.rglob("*.py"))


def lint_sources(src_root: Path, tests_root: Optional[Path] = None) -> Report:
    """Lint every Python file under ``src_root``.

    ``tests_root`` enables the ANA-EQTEST rule (simulate_* entry points
    must be referenced by at least one test file).
    """
    rep = Report()
    src_root = Path(src_root)
    simulate_defs: list[tuple[str, str, int]] = []
    files = list(_iter_sources(src_root))
    rep.note_pass("lint", len(files))
    for path in files:
        rel = path.relative_to(src_root).as_posix()
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as exc:
            rep.add("ANA-PARSE", Severity.ERROR,
                    f"cannot parse: {exc.msg}",
                    f"{rel}:{exc.lineno or 0}")
            continue
        in_sim = "runtime/simulator/" in rel
        exempt = any(part in _RAND_EXEMPT_PARTS for part in rel.split("/"))
        visitor = _FileLint(rel, in_sim, exempt)
        visitor.visit(tree)
        for rule, lineno, message, hint in visitor.hits:
            rep.add(rule, Severity.ERROR, message, f"{rel}:{lineno}", hint)
        if rel in TASK_COMPLETION_MODULES and not visitor.record_task_calls:
            rep.add(
                "ANA-OBS", Severity.ERROR,
                "runtime module completes tasks but never calls "
                "record_task: executions would be invisible to repro.obs",
                f"{rel}:1",
                "emit a TaskEvent wherever a task finishes (see "
                "docs/observability.md)",
            )
        for fn_name, lineno in visitor.simulate_defs:
            simulate_defs.append((fn_name, rel, lineno))

    missing_modules = [
        m for m in TASK_COMPLETION_MODULES if not (src_root / m).exists()
    ]
    for m in missing_modules:
        rep.add(
            "ANA-OBS", Severity.WARNING,
            "configured task-completion module does not exist "
            "(update TASK_COMPLETION_MODULES after moving runtimes)",
            f"{m}:1",
        )

    if tests_root is not None:
        tests_root = Path(tests_root)
        corpus = ""
        if tests_root.is_dir():
            corpus = "\n".join(
                p.read_text() for p in sorted(tests_root.rglob("*.py"))
            )
        seen: set[str] = set()
        for fn_name, rel, lineno in simulate_defs:
            if fn_name in seen:
                continue
            seen.add(fn_name)
            if fn_name not in corpus:
                rep.add(
                    "ANA-EQTEST", Severity.ERROR,
                    f"engine entry point {fn_name} has no test referencing "
                    "it",
                    f"{rel}:{lineno}",
                    "new simulate_* paths need an engine-equality test "
                    "(see tests/test_compiled_engine.py)",
                )
    return rep


def lint_repo(root: Path) -> Report:
    """Lint the repository layout used by this project (src/ + tests/)."""
    root = Path(root)
    return lint_sources(root / "src", tests_root=root / "tests")
