"""``python -m repro.analyze`` — the static-analysis CLI.

Modes (combinable; ``--all`` turns everything on):

* ``--graphs`` — compile every shipped graph builder (Cholesky, LU,
  POSV, POTRI × SBC / 2DBC / 2.5D / remap variants) and run the full
  schedule verifier on each, including SBC symmetry and the Theorem 1
  volume bound where the distribution is an SBC;
* ``--lint`` — AST invariant rules over ``src/`` + ``tests/``;
* ``--flow`` — CFG + dataflow concurrency/determinism rules (FLOW-*)
  over ``src/repro`` (event-loop blocking, lost coroutines, unlocked
  shared state, set-order hazards, int32 index overflow);
* ``--mc`` — small-scope explicit-state model checker: every scheduler
  policy is exhaustively explored on the small-scope graph matrix and
  certified deadlock-free / starvation-free (MC-*);
* ``--races [TRACE [TRACE2]]`` — with no path, run a seeded traced
  simulation and race-check it (plus a replay determinism check); with
  one JSONL trace, race-check it against the graph named by
  ``--trace-graph``; with two traces, diff them for determinism;
* ``--self-test`` — the seeded mutation harness: every injected defect
  class must be detected (the no-false-negative gate).

``--report PATH`` writes the machine-readable findings document that CI
publishes as an artifact; ``--sarif PATH`` writes the same findings as
SARIF 2.1.0 for GitHub code scanning; ``--certificates DIR`` stores the
per-policy model-checking certificates ``--mc`` proves.  Compiled-graph
builds are memoized for the whole invocation under the sweep service's
structure keys, so ``--all`` builds each distinct graph once.  Exit
status is 0 iff no error-severity finding was produced (``--strict``
also fails on warnings).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable
from pathlib import Path
from typing import Any, Optional, Union

from ..distributions.base import Distribution
from ..distributions.block_cyclic import BlockCyclic2D
from ..distributions.row_cyclic import RowCyclic1D
from ..distributions.sbc import SymmetricBlockCyclic
from ..distributions.twod5 import TwoDotFiveD
from ..graph.cholesky import build_cholesky_graph, build_cholesky_graph_25d
from ..graph.compiled import (
    CompiledGraph,
    compile_cholesky,
    compile_graph,
    compile_lu,
)
from ..graph.inversion import build_potri_graph
from ..graph.lu import build_lu_graph, build_lu_graph_25d
from ..graph.solve import build_posv_graph
from ..graph.task import TaskGraph
from ..obs.events import Recorder
from ..obs.export import read_jsonl
from ..runtime.simulator.engine import simulate
from .findings import Report, Severity
from .flow import flow_sources
from .lint import lint_sources
from .mc import certify_policies
from .mutate import Baseline, build_baseline, self_test
from .races import compare_traces, detect_races
from .sarif import write_sarif
from .schedule import verify_all, verify_policy_placement

#: One row of the builder verification matrix:
#: (name, thunk -> (compiled graph, distribution or None, object graph
#: or None, tile count for the SBC rules)).
Case = tuple[str, Callable[[], tuple[Any, ...]]]

AnyDist = Union[Distribution, TwoDotFiveD]


class _GraphMemo:
    """In-run graph cache keyed by the sweep service's structure keys.

    ``--graphs`` historically rebuilt every graph from scratch in each
    pass: the 14-case builder matrix, then the policy zoo over the same
    Cholesky graphs again.  The service already defines the canonical
    identity of a built graph — ``structure_key(JobSpec)``, the key its
    store memoizes structures under — so the CLI reuses that exact key
    (namespaced ``object:`` / ``compiled:`` for the two build layers).

    Graphs the service cannot describe (POSV/POTRI, remap variants)
    fall through unmemoized, and the *direct* compilers
    (``compile_cholesky`` / ``compile_lu``) are deliberately never
    served from the memo: those matrix rows exist to cross-check an
    independently built plan against the generic lowering.
    """

    def __init__(self) -> None:
        self._cache: dict[str, Any] = {}
        self.hits = 0
        self.builds = 0

    def _skey(self, algorithm: str, ntiles: int, b: int,
              dist: AnyDist) -> Optional[str]:
        from ..config import laptop
        from ..service import JobSpec, structure_key

        if algorithm not in ("cholesky", "lu"):
            return None
        try:
            spec = JobSpec.make(algorithm, ntiles, b, dist, laptop())
        except (TypeError, ValueError):
            return None
        return structure_key(spec)

    def fetch(self, namespace: str, algorithm: str, ntiles: int, b: int,
              dist: AnyDist, build: Callable[[], Any]) -> Any:
        skey = self._skey(algorithm, ntiles, b, dist)
        if skey is None:
            return build()
        key = f"{namespace}:{skey}"
        if key in self._cache:
            self.hits += 1
        else:
            self.builds += 1
            self._cache[key] = build()
        return self._cache[key]

    def stats(self) -> str:
        return f"{self.hits} reuse(s), {self.builds} memoized build(s)"


def _matrix(memo: Optional[_GraphMemo] = None) -> list[Case]:
    """Every shipped graph builder × the distributions it supports.

    Sizes are chosen so the whole matrix verifies in seconds while still
    exercising multiple pattern periods (N > r) and every task kind.
    """
    N, b = 8, 32
    Ninv = 6
    memo = memo if memo is not None else _GraphMemo()

    def object_graph(algorithm: str, n: int, dist: AnyDist) -> TaskGraph:
        builders = {"cholesky": build_cholesky_graph, "lu": build_lu_graph}
        graph: TaskGraph = memo.fetch(
            "object", algorithm, n, b, dist,
            lambda: builders[algorithm](n, b, dist))
        return graph

    def generic(algorithm: str, n: int, dist: AnyDist) -> CompiledGraph:
        g = object_graph(algorithm, n, dist)
        cg: CompiledGraph = memo.fetch(
            "compiled", algorithm, n, b, dist, lambda: compile_graph(g))
        return cg

    def cholesky(
        dist: Distribution, n: int = N
    ) -> tuple[CompiledGraph, Distribution, TaskGraph, int]:
        return (generic("cholesky", n, dist), dist,
                object_graph("cholesky", n, dist), n)

    def cholesky_direct(
        dist: Distribution, n: int = N
    ) -> tuple[CompiledGraph, Distribution, TaskGraph, int]:
        # The direct compiler has no DataKey table; cross-check its plan
        # against the object graph built with identical parameters.  The
        # direct build itself must stay un-memoized — it is the
        # independent half of the comparison.
        g = object_graph("cholesky", n, dist)
        return compile_cholesky(n, b, dist), dist, g, n

    def cholesky_25d(c: int) -> tuple[CompiledGraph, None, TaskGraph, int]:
        d25 = TwoDotFiveD(BlockCyclic2D(2, 2), c)
        g = build_cholesky_graph_25d(N, b, d25)
        # 2.5D runs tasks on slice copies: no single owner per tile, so
        # the distribution-level rules do not apply (dist=None).  The
        # 2.5D builders also have their own graph shape — not the
        # service's `cholesky` structure — so they bypass the memo.
        return compile_graph(g), None, g, N

    def lu(dist: Distribution) -> tuple[CompiledGraph, Distribution, TaskGraph, int]:
        return generic("lu", N, dist), dist, object_graph("lu", N, dist), N

    def lu_direct(dist: Distribution) -> tuple[CompiledGraph, Distribution, TaskGraph, int]:
        g = object_graph("lu", N, dist)
        return compile_lu(N, b, dist), dist, g, N

    def lu_25d(c: int) -> tuple[CompiledGraph, None, TaskGraph, int]:
        d25 = TwoDotFiveD(BlockCyclic2D(2, 2), c)
        g = build_lu_graph_25d(N, b, d25)
        return compile_graph(g), None, g, N

    def posv(dist: Distribution) -> tuple[CompiledGraph, Distribution, TaskGraph, int]:
        g = build_posv_graph(N, b, dist, RowCyclic1D(6))
        return compile_graph(g), dist, g, N

    def potri(
        dist: Distribution, trtri_dist: Optional[Distribution] = None
    ) -> tuple[CompiledGraph, Distribution, TaskGraph, int, Optional[Distribution]]:
        g = build_potri_graph(Ninv, b, dist, trtri_dist=trtri_dist)
        return compile_graph(g), dist, g, Ninv, trtri_dist

    sbc = lambda: SymmetricBlockCyclic(4)  # noqa: E731 - fresh per case
    sbc_basic = lambda: SymmetricBlockCyclic(4, "basic")  # noqa: E731
    bc = lambda: BlockCyclic2D(2, 4)  # noqa: E731

    return [
        ("cholesky/sbc4-ext", lambda: cholesky(sbc())),
        ("cholesky/sbc4-basic", lambda: cholesky(sbc_basic())),
        ("cholesky/2dbc-2x4", lambda: cholesky(bc())),
        ("cholesky/sbc4-ext-direct", lambda: cholesky_direct(sbc())),
        ("cholesky/2.5d-c2", lambda: cholesky_25d(2)),
        ("lu/2dbc-2x4", lambda: lu(bc())),
        ("lu/sbc4-ext", lambda: lu(sbc())),
        ("lu/2dbc-2x4-direct", lambda: lu_direct(bc())),
        ("lu/2.5d-c2", lambda: lu_25d(2)),
        ("posv/sbc4-ext", lambda: posv(sbc())),
        ("posv/2dbc-2x4", lambda: posv(bc())),
        ("potri/sbc4-ext", lambda: potri(sbc())),
        ("potri/2dbc-2x4", lambda: potri(bc())),
        ("potri/sbc4-remap-2dbc", lambda: potri(sbc(), bc())),
    ]


def run_graphs(quiet: bool = False,
               memo: Optional[_GraphMemo] = None) -> Report:
    """Verify the full builder matrix."""
    rep = Report()
    for name, thunk in _matrix(memo):
        cg, dist, graph, n, *extra = thunk()
        # A remap graph spans two distributions; the valid node range is
        # their union.
        num_nodes = None
        if extra and extra[0] is not None:
            num_nodes = max(dist.num_nodes, extra[0].num_nodes)
        one = verify_all(cg, dist=dist, graph=graph, name=name, N=n,
                         num_nodes=num_nodes)
        if not quiet:
            state = "ok" if one.ok() else "FAIL"
            print(f"  {state:4s} {name:26s} "
                  f"({cg.n_tasks} tasks, {cg.n_data} versions)")
        rep.extend(one)
    return rep


def run_policies(quiet: bool = False,
                 memo: Optional[_GraphMemo] = None) -> Report:
    """SCHED-PLACE over the scheduler policy zoo.

    Every registered policy plans a Cholesky graph on an SBC and a 2DBC
    distribution; non-migrating policies must keep every task on its
    owner-computes node, migrating ones must stay on the machine.  The
    graphs are the same two the builder matrix verifies, so with a
    shared memo this pass performs no builds at all.
    """
    from ..config import laptop
    from ..schedulers import POLICIES

    N, b = 8, 32
    memo = memo if memo is not None else _GraphMemo()
    rep = Report()
    for dist in (SymmetricBlockCyclic(4), BlockCyclic2D(2, 4)):
        cg: CompiledGraph = memo.fetch(
            "compiled", "cholesky", N, b, dist,
            lambda dist=dist: compile_graph(  # type: ignore[misc]
                build_cholesky_graph(N, b, dist)))
        machine = laptop(nodes=dist.num_nodes, cores=2)
        name = f"cholesky/{dist.name}"
        for pname in sorted(POLICIES):
            one = verify_policy_placement(cg, machine, pname, name=name)
            if not quiet:
                state = "ok" if one.ok() else "FAIL"
                print(f"  {state:4s} {name:26s} policy {pname}")
            rep.extend(one)
    return rep


def run_traced_races(quiet: bool = False,
                     base: Optional[Baseline] = None) -> Report:
    """Simulate the baseline with tracing on; race- and replay-check it."""
    base = base if base is not None else build_baseline()
    rep = detect_races(base.recorder, base.cg, name="simulated")
    rerun = Recorder(source="simulator")
    simulate(base.graph, base.machine, trace=True, recorder=rerun)
    rep.extend(compare_traces(base.recorder, rerun, name="simulated"))
    if not quiet:
        state = "ok" if rep.ok() else "FAIL"
        print(f"  {state:4s} simulated trace "
              f"({len(base.recorder.task_events)} tasks, "
              f"{len(base.recorder.transfer_events)} transfers)")
    return rep


def _trace_graph(spec: str) -> tuple[CompiledGraph, TaskGraph]:
    """Build the graph a standalone trace file is checked against.

    ``spec`` is ``builder:N:b:r`` with builder in {cholesky, lu}; the
    trace must come from a run of exactly that graph.
    """
    parts = spec.split(":")
    builder = parts[0]
    n = int(parts[1]) if len(parts) > 1 else 8
    b = int(parts[2]) if len(parts) > 2 else 32
    r = int(parts[3]) if len(parts) > 3 else 4
    dist = SymmetricBlockCyclic(r)
    if builder == "cholesky":
        g = build_cholesky_graph(n, b, dist)
    elif builder == "lu":
        g = build_lu_graph(n, b, dist)
    else:
        raise SystemExit(f"unknown --trace-graph builder {builder!r} "
                         "(expected cholesky or lu)")
    return compile_graph(g), g


def run_races(paths: list[str], spec: str, quiet: bool = False,
              base: Optional[Baseline] = None) -> Report:
    if not paths:
        return run_traced_races(quiet=quiet, base=base)
    if len(paths) == 1:
        cg, _ = _trace_graph(spec)
        rec = read_jsonl(paths[0])
        return detect_races(rec, cg, name=Path(paths[0]).name)
    if len(paths) == 2:
        a, b = (read_jsonl(p) for p in paths)
        return compare_traces(
            a, b, name="traces",
            label_a=Path(paths[0]).name, label_b=Path(paths[1]).name)
    raise SystemExit("--races takes at most two trace files")


def run_lint(root: Path, quiet: bool = False) -> Report:
    rep = lint_sources(root / "src", tests_root=root / "tests")
    if not quiet:
        state = "ok" if rep.ok() else "FAIL"
        print(f"  {state:4s} lint ({rep.passes.get('lint', 0)} files)")
    return rep


def run_flow(root: Path, quiet: bool = False) -> Report:
    rep = flow_sources(src_root=root / "src")
    if not quiet:
        state = "ok" if rep.ok() else "FAIL"
        print(f"  {state:4s} flow ({rep.passes.get('flow', 0)} files)")
    return rep


def run_mc(quiet: bool = False,
           out_dir: Optional[str] = None) -> Report:
    """Certify every registered policy on the small-scope matrix."""
    certs, rep = certify_policies(out_dir=out_dir)
    if not quiet:
        for name in sorted(certs):
            cert = certs[name]
            state = "ok" if cert["all_ok"] else "FAIL"
            states = sum(c["states"] for c in cert["cases"])
            print(f"  {state:4s} {name:26s} "
                  f"({len(cert['cases'])} cases, {states} states)")
        if out_dir is not None:
            print(f"  certificates written to {out_dir}/")
    return rep


def main(argv: Optional[list[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Schedule verifier, trace race detector, dataflow "
                    "concurrency linter, scheduler model checker, and "
                    "codebase invariant linter.",
    )
    ap.add_argument("--all", action="store_true",
                    help="run every pass (graphs, lint, flow, mc, races, "
                         "self-test)")
    ap.add_argument("--graphs", action="store_true",
                    help="verify every shipped graph builder")
    ap.add_argument("--lint", action="store_true",
                    help="AST invariant rules over src/ and tests/")
    ap.add_argument("--flow", action="store_true",
                    help="dataflow concurrency rules (FLOW-*) over src/")
    ap.add_argument("--mc", action="store_true",
                    help="model-check every scheduler policy (MC-*)")
    ap.add_argument("--certificates", metavar="DIR", default=None,
                    help="write per-policy model-check certificates here "
                         "(implies --mc)")
    ap.add_argument("--races", nargs="*", metavar="TRACE", default=None,
                    help="race-check a trace (none: simulate one; one: "
                         "JSONL vs --trace-graph; two: determinism diff)")
    ap.add_argument("--trace-graph", default="cholesky:8:32:4",
                    metavar="BUILDER:N:B:R",
                    help="graph a standalone trace is checked against "
                         "(default %(default)s)")
    ap.add_argument("--self-test", action="store_true",
                    help="mutation harness: injected defects must be caught")
    ap.add_argument("--seed", type=int, default=0,
                    help="mutation-harness seed (default %(default)s)")
    ap.add_argument("--report", metavar="PATH",
                    help="write the JSON findings document here")
    ap.add_argument("--sarif", metavar="PATH",
                    help="write the findings as SARIF 2.1.0 here")
    ap.add_argument("--root", default=".",
                    help="repository root for --lint/--flow (default: cwd)")
    ap.add_argument("--strict", action="store_true",
                    help="exit nonzero on warnings too")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="suppress per-subject progress lines")
    args = ap.parse_args(argv)

    do_graphs = args.all or args.graphs
    do_lint = args.all or args.lint
    do_flow = args.all or args.flow
    do_mc = args.all or args.mc or args.certificates is not None
    do_races = args.all or args.races is not None
    do_selftest = args.all or args.self_test
    if not (do_graphs or do_lint or do_flow or do_mc or do_races
            or do_selftest):
        ap.print_help()
        return 2

    rep = Report()
    memo = _GraphMemo()
    # --races (traced mode) and --self-test both start from the seeded
    # baseline simulation; under --all build it once and share it.
    base: Optional[Baseline] = None
    if do_selftest and do_races and not args.races:
        base = build_baseline()
    if do_graphs:
        if not args.quiet:
            print("[schedule] verifying graph builders")
        rep.extend(run_graphs(quiet=args.quiet, memo=memo))
        if not args.quiet:
            print("[schedule] verifying scheduler-policy placement")
        rep.extend(run_policies(quiet=args.quiet, memo=memo))
        if not args.quiet:
            print(f"  graph memo: {memo.stats()}")
    if do_flow:
        if not args.quiet:
            print("[flow] dataflow concurrency rules")
        rep.extend(run_flow(Path(args.root), quiet=args.quiet))
    if do_mc:
        if not args.quiet:
            print("[mc] model-checking scheduler policies")
        rep.extend(run_mc(quiet=args.quiet, out_dir=args.certificates))
    if do_races:
        if not args.quiet:
            print("[races] happens-before analysis")
        rep.extend(run_races(args.races or [], args.trace_graph,
                             quiet=args.quiet, base=base))
    if do_lint:
        if not args.quiet:
            print("[lint] codebase invariants")
        rep.extend(run_lint(Path(args.root), quiet=args.quiet))
    if do_selftest:
        if not args.quiet:
            print("[self-test] mutation harness")
        rep.extend(self_test(seed=args.seed, verbose=not args.quiet,
                             base=base))

    if args.report:
        rep.write(args.report)
        if not args.quiet:
            print(f"findings report written to {args.report}")
    if args.sarif:
        write_sarif(rep, args.sarif)
        if not args.quiet:
            print(f"SARIF report written to {args.sarif}")
    interesting = [f for f in rep
                   if f.severity != Severity.INFO or not rep.ok()]
    if interesting or not args.quiet:
        print(rep.render())
    return rep.exit_code(strict=args.strict)


if __name__ == "__main__":
    sys.exit(main())
