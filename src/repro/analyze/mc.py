"""Pass 5: small-scope explicit-state model checker for scheduler policies.

Where the schedule verifier proves properties of one *static* plan and
the race detector checks one *recorded* interleaving, this pass checks
**all** interleavings: it explores every reachable state of the untimed
scheduling semantics shared by both simulator engines — ready tasks
start immediately on a free worker, backlog waits in the policy's
:class:`~repro.schedulers.ReadyQueue`, a completion releases its
consumers and re-pops the freed worker — for every
:class:`~repro.schedulers.SchedulerInterface` policy against a matrix
of small compiled graphs (N <= 8, P <= 4, clique + chain + grid
interconnects).  Task durations are abstracted away, so the only
nondeterminism is *which running task completes next*; exhausting those
choices covers every schedule either engine (or a real runtime with
jittery kernels) can produce.

Properties proved per policy, for all interleavings:

* ``MC-DEADLOCK`` — deadlock-freedom: no reachable state has unfinished
  tasks but nothing running (a queue that strands or drops tasks);
* ``MC-STARVE``   — starvation-freedom: a free worker and a non-empty
  node backlog always yield an assignment (``pop`` may not refuse);
  with finite graphs and eager dispatch this, plus deadlock-freedom,
  implies every ready task is eventually assigned on every path;
* ``MC-QUEUE``    — queue accounting: ``depth``/``total`` agree with
  the model's push/pop ledger and ``pop`` only returns tasks it was
  given, on the node it was given them;
* ``MC-PLACE``    — owner-computes / migration-declaration safety: a
  plan's assignment stays on the data's node unless the policy declares
  ``migrates = True``, and always inside the machine;
* ``MC-SCOPE``    — the state cap was hit before the space was
  exhausted (the certificate is then *not* issued).

The exploration memoizes canonical state fingerprints and applies a
partial-order reduction for native-queue policies: when a running
task's *node footprint* (its own node plus every consumer's node) is
disjoint from every other running task's, its completion commutes with
theirs — per-node worker counters, per-node heaps and disjoint
missing-counter decrements — so it is expanded as a singleton ample
set.  Foreign ``ReadyQueue`` disciplines (work stealing, seeded
mutants) get no reduction: their internal state may couple nodes, so
every interleaving is explored.

Each policy's run is summarised in a machine-checkable **certificate**
(JSON, sha256 content digest; :func:`verify_certificate` re-checks it)
that ``benchmarks/bench_scheduler_tournament.py`` requires before a
policy may be ranked, via :func:`require_certificates`.

Run via ``python -m repro.analyze --mc`` (or ``--all``); wired into CI
as a blocking step.
"""

from __future__ import annotations

import copy
import hashlib
import heapq
import json
import pickle
from dataclasses import replace
from pathlib import Path
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any, Optional, Union

from .findings import Report

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..config import MachineSpec
    from ..graph.compiled import CompiledGraph
    from ..schedulers import SchedulerInterface

__all__ = [
    "CERT_SCHEMA",
    "ModelCheckResult",
    "certify_policies",
    "model_check",
    "require_certificates",
    "small_scope_cases",
    "verify_certificate",
]

#: Certificate document schema version.
CERT_SCHEMA = 1

#: Default per-case explored-state budget; exceeding it raises
#: ``MC-SCOPE`` and withholds the certificate.
DEFAULT_MAX_STATES = 200_000


# ---------------------------------------------------------------------------
# Queue models
# ---------------------------------------------------------------------------

class _NativeQueue:
    """Bit-exact model of the engines' native ready discipline.

    ``repro.runtime.simulator.engine._NodeState`` keeps one max-priority
    heap per node with FIFO tie-breaking via a push sequence number;
    this mirrors it (and the compiled engine's vectorized equivalent).
    """

    __slots__ = ("heaps", "seq")

    def __init__(self, nodes: int) -> None:
        self.heaps: list[list[tuple[float, int, int]]] = [[] for _ in range(nodes)]
        self.seq = 0

    def push(self, node: int, task: int, priority: float) -> None:
        self.seq += 1
        heapq.heappush(self.heaps[node], (-priority, self.seq, task))

    def pop(self, node: int) -> Optional[int]:
        if not self.heaps[node]:
            return None
        return heapq.heappop(self.heaps[node])[2]

    def depth(self, node: int) -> int:
        return len(self.heaps[node])

    def total(self) -> int:
        return sum(len(h) for h in self.heaps)

    def clone(self) -> "_NativeQueue":
        q = _NativeQueue(0)
        q.heaps = [list(h) for h in self.heaps]
        q.seq = self.seq
        return q

    def fingerprint(self) -> tuple[tuple[tuple[float, int, int], ...], ...]:
        """Canonical content: sorted heap entries with sequence numbers
        renumbered in pop order, so two histories with identical pop
        behaviour share one fingerprint."""
        out = []
        for heap in self.heaps:
            entries = sorted(heap)
            out.append(tuple((p, i, t) for i, (p, _, t) in enumerate(entries)))
        return tuple(out)


class _ForeignQueue:
    """Adapter over a policy-supplied :class:`ReadyQueue` instance."""

    __slots__ = ("queue",)

    def __init__(self, queue: Any) -> None:
        self.queue = queue

    def push(self, node: int, task: int, priority: float) -> None:
        self.queue.push(node, task, priority)

    def pop(self, node: int) -> Optional[int]:
        tid = self.queue.pop(node)
        return None if tid is None else int(tid)

    def depth(self, node: int) -> int:
        return int(self.queue.depth(node))

    def total(self) -> int:
        return int(self.queue.total())

    def clone(self) -> "_ForeignQueue":
        try:
            # pickle round-trips 2-5x faster than deepcopy for the
            # plain-container state real ReadyQueues keep.
            return _ForeignQueue(pickle.loads(pickle.dumps(self.queue)))
        except Exception:
            return _ForeignQueue(copy.deepcopy(self.queue))

    def fingerprint(self) -> Any:
        state = vars(self.queue)
        try:
            return pickle.dumps(
                (type(self.queue).__name__, sorted(state.items())))
        except Exception:
            return repr(sorted(state.items(), key=lambda kv: kv[0]))


# ---------------------------------------------------------------------------
# The untimed scheduling model
# ---------------------------------------------------------------------------

class _CaseError(Exception):
    """One finding aborts the current case (properties already false)."""

    def __init__(self, rule: str, message: str, hint: str) -> None:
        super().__init__(message)
        self.rule = rule
        self.hint = hint


class _Model:
    """Shared-semantics transition system for one (graph, machine, plan)."""

    def __init__(
        self,
        cg: "CompiledGraph",
        machine: "MachineSpec",
        placement: Sequence[int],
        priorities: Sequence[float],
        synchronized: bool,
        queue_proto: Union[_NativeQueue, _ForeignQueue],
    ) -> None:
        n = cg.n_tasks
        self.n_tasks = n
        self.nodes = machine.nodes
        self.cores = machine.cores
        self.node_of = [int(x) for x in placement]
        self.prio = [float(x) for x in priorities]
        self.synchronized = synchronized
        self.queue_proto = queue_proto
        self.all_done = (1 << n) - 1

        read_ptr = cg.read_ptr
        read_ids = cg.read_ids
        producer = cg.data_producer
        deps_mask = [0] * n
        consumers: list[list[int]] = [[] for _ in range(n)]
        for t in range(n):
            for e in range(int(read_ptr[t]), int(read_ptr[t + 1])):
                p = int(producer[int(read_ids[e])])
                if p >= 0 and p != t:
                    if not (deps_mask[t] >> p) & 1:
                        deps_mask[t] |= 1 << p
                        consumers[p].append(t)
        self.deps_mask = deps_mask
        self.consumers = [tuple(c) for c in consumers]

        iters = sorted({int(i) for i in cg.iteration})
        iter_pos = {it: i for i, it in enumerate(iters)}
        self.iter_of = [iter_pos[int(i)] for i in cg.iteration]
        iter_masks = [0] * len(iters)
        for t in range(n):
            iter_masks[self.iter_of[t]] |= 1 << t
        self.iter_masks = iter_masks

        #: node footprint per task, for the partial-order reduction.
        self.footprint = [
            frozenset([self.node_of[t]]
                      + [self.node_of[c] for c in self.consumers[t]])
            for t in range(n)
        ]

    # -- semantics --------------------------------------------------------

    def _released_iter(self, done: int) -> int:
        r = 0
        masks = self.iter_masks
        while r + 1 < len(masks) and (done & masks[r]) == masks[r]:
            r += 1
        return r

    def _eligible(self, done: int, busy: frozenset[int],
                  queued: frozenset[int],
                  candidates: Sequence[int]) -> list[int]:
        released = self._released_iter(done) if self.synchronized else -1
        out = []
        for c in candidates:
            if (done >> c) & 1 or c in busy or c in queued:
                continue
            if (done & self.deps_mask[c]) != self.deps_mask[c]:
                continue
            if self.synchronized and self.iter_of[c] > released:
                continue
            out.append(c)
        return sorted(out)

    def initial(self) -> tuple[int, frozenset[int], tuple[int, ...],
                               frozenset[int],
                               Union[_NativeQueue, _ForeignQueue]]:
        queue = self.queue_proto.clone()
        free = [self.cores] * self.nodes
        running: set = set()
        queued: set = set()
        ready = self._eligible(0, frozenset(), frozenset(),
                               range(self.n_tasks))
        self._dispatch(ready, free, running, queued, queue)
        self._drain(0, free, running, queued, queue)
        self._check_ledger(queued, queue)
        return (0, frozenset(running), tuple(free), frozenset(queued), queue)

    def _dispatch(self, ready: Sequence[int], free: list[int],
                  running: set, queued: set,
                  queue: Union[_NativeQueue, _ForeignQueue]) -> None:
        """A ready task starts immediately on a free worker of its node;
        only the backlog goes through the policy's queue (this is the
        engines' contract — the queue arbitrates contention)."""
        for c in ready:
            n = self.node_of[c]
            if free[n] > 0:
                free[n] -= 1
                running.add(c)
            else:
                queue.push(n, c, self.prio[c])
                queued.add(c)

    def _drain(self, done: int, free: list[int], running: set, queued: set,
               queue: Union[_NativeQueue, _ForeignQueue]) -> None:
        for n in range(self.nodes):
            while free[n] > 0 and queue.depth(n) > 0:
                tid = queue.pop(n)
                if tid is None:
                    raise _CaseError(
                        "MC-STARVE",
                        f"queue refuses node {n}: pop() returned None "
                        f"with depth {queue.depth(n)} and a free worker",
                        "pop(node) must return a task whenever "
                        "depth(node) > 0",
                    )
                if tid not in queued:
                    raise _CaseError(
                        "MC-QUEUE",
                        f"queue served task {tid} on node {n} which was "
                        "never pushed (or already popped)",
                        "a ReadyQueue must return each pushed task "
                        "exactly once",
                    )
                if self.node_of[tid] != n:
                    raise _CaseError(
                        "MC-QUEUE",
                        f"queue served task {tid} (node "
                        f"{self.node_of[tid]}) to node {n}, breaking "
                        "owner-computes placement",
                        "pop(node) may only return tasks pushed for "
                        "that node",
                    )
                queued.discard(tid)
                free[n] -= 1
                running.add(tid)

    def _check_ledger(self, queued: set,
                      queue: Union[_NativeQueue, _ForeignQueue]) -> None:
        total = queue.total()
        if total != len(queued):
            raise _CaseError(
                "MC-QUEUE",
                f"queue total() reports {total} but holds "
                f"{len(queued)} undrained task(s)",
                "depth()/total() must reflect exactly the pushed-but-"
                "not-popped tasks",
            )

    def complete(
        self,
        state: tuple[int, frozenset[int], tuple[int, ...], frozenset[int],
                     Union[_NativeQueue, _ForeignQueue]],
        t: int,
    ) -> tuple[int, frozenset[int], tuple[int, ...], frozenset[int],
               Union[_NativeQueue, _ForeignQueue]]:
        done, running_f, free_t, queued_f, queue0 = state
        queue = queue0.clone()
        done |= 1 << t
        running = set(running_f)
        running.discard(t)
        queued = set(queued_f)
        free = list(free_t)
        free[self.node_of[t]] += 1
        candidates: Sequence[int]
        if self.synchronized:
            candidates = range(self.n_tasks)  # a barrier may open
        else:
            candidates = self.consumers[t]
        ready = self._eligible(done, frozenset(running), frozenset(queued),
                               candidates)
        self._dispatch(ready, free, running, queued, queue)
        self._drain(done, free, running, queued, queue)
        self._check_ledger(queued, queue)
        return (done, frozenset(running), tuple(free), frozenset(queued),
                queue)

    def fingerprint(self, state: tuple[int, frozenset[int], tuple[int, ...],
                                       frozenset[int],
                                       Union[_NativeQueue, _ForeignQueue]],
                    ) -> bytes:
        done, running, free, queued, queue = state
        return pickle.dumps(
            (done, tuple(sorted(running)), free, tuple(sorted(queued)),
             queue.fingerprint()))


class ModelCheckResult:
    """Exploration summary of one (policy, case) pair."""

    __slots__ = ("label", "states", "transitions", "reduced", "properties",
                 "n_tasks")

    def __init__(self, label: str, n_tasks: int) -> None:
        self.label = label
        self.n_tasks = n_tasks
        self.states = 0
        self.transitions = 0
        self.reduced = 0
        self.properties = {
            "deadlock_free": True,
            "starvation_free": True,
            "queue_consistent": True,
            "placement_safe": True,
            "exhaustive": True,
        }

    def ok(self) -> bool:
        return all(self.properties.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "case": self.label,
            "n_tasks": self.n_tasks,
            "states": self.states,
            "transitions": self.transitions,
            "por_reductions": self.reduced,
            "properties": dict(self.properties),
        }


_RULE_PROPERTY = {
    "MC-DEADLOCK": "deadlock_free",
    "MC-STARVE": "starvation_free",
    "MC-QUEUE": "queue_consistent",
    "MC-PLACE": "placement_safe",
    "MC-SCOPE": "exhaustive",
}


def model_check(
    cg: "CompiledGraph",
    machine: "MachineSpec",
    policy: Union[str, "SchedulerInterface"],
    label: str = "graph",
    max_states: int = DEFAULT_MAX_STATES,
    rep: Optional[Report] = None,
) -> tuple[ModelCheckResult, Report]:
    """Exhaustively explore one policy on one small compiled graph."""
    from ..schedulers import CompiledGraphView, get_policy

    rep = rep if rep is not None else Report()
    pol = get_policy(policy)
    result = ModelCheckResult(label, cg.n_tasks)
    loc = f"mc:{label}[{pol.name}]"

    kernel = machine.kernel
    durations = kernel.overhead + cg.flops / kernel.rate(cg.b)
    splan = pol.plan(CompiledGraphView(cg, machine, durations))

    # Static placement / migration-declaration safety (MC-PLACE).
    placement = [int(x) for x in cg.node]
    if splan.assignment is not None:
        asg = [int(x) for x in splan.assignment]
        bad = len(asg) != cg.n_tasks or any(
            a < 0 or a >= machine.nodes for a in asg)
        moved = not bad and not pol.migrates and any(
            a != p for a, p in zip(asg, placement))
        if bad:
            result.properties["placement_safe"] = False
            rep.add("MC-PLACE", "error",
                    f"policy {pol.name!r} returned an out-of-range or "
                    f"mis-sized assignment ({len(asg)} entries for "
                    f"{cg.n_tasks} tasks)", loc,
                    "assignments must cover every task with a valid node")
            return result, rep
        if moved:
            result.properties["placement_safe"] = False
            rep.add("MC-PLACE", "error",
                    f"policy {pol.name!r} migrates tasks without "
                    "declaring migrates = True", loc,
                    "declare migrates = True or return assignment=None")
            return result, rep
        placement = asg

    priorities: Sequence[float]
    if splan.priorities is not None:
        priorities = [float(p) for p in splan.priorities]
    else:
        priorities = [0.0] * cg.n_tasks

    native = splan.queue_factory is None
    proto: Union[_NativeQueue, _ForeignQueue]
    if native:
        proto = _NativeQueue(machine.nodes)
    else:
        proto = _ForeignQueue(splan.queue_factory(machine.nodes,
                                                  machine.cores))
    synchronized = bool(splan.synchronized)
    model = _Model(cg, machine, placement, priorities, synchronized, proto)
    use_por = native and not synchronized

    try:
        init = model.initial()
    except _CaseError as exc:
        result.properties[_RULE_PROPERTY[exc.rule]] = False
        rep.add(exc.rule, "error", f"{exc} (initial dispatch)", loc, exc.hint)
        return result, rep

    seen = {model.fingerprint(init)}
    stack = [init]
    try:
        while stack:
            state = stack.pop()
            done, running = state[0], state[1]
            if not running:
                if done != model.all_done:
                    left = model.all_done & ~done
                    n_left = bin(left).count("1")
                    queued = len(state[3])
                    raise _CaseError(
                        "MC-DEADLOCK",
                        f"reachable deadlock: {n_left} task(s) "
                        f"unfinished, {queued} stranded in the queue, "
                        "no worker running",
                        "the queue must eventually serve every pushed "
                        "task and may not drop any",
                    )
                continue
            enabled: Sequence[int] = sorted(running)
            if use_por and len(enabled) > 1:
                for t in enabled:
                    fp = model.footprint[t]
                    if all(fp.isdisjoint(model.footprint[u])
                           for u in enabled if u != t):
                        result.reduced += len(enabled) - 1
                        enabled = [t]
                        break
            for t in enabled:
                succ = model.complete(state, t)
                result.transitions += 1
                key = model.fingerprint(succ)
                if key not in seen:
                    seen.add(key)
                    if len(seen) > max_states:
                        raise _CaseError(
                            "MC-SCOPE",
                            f"state budget of {max_states} exhausted "
                            f"after {result.transitions} transitions",
                            "shrink the case or raise max_states; no "
                            "certificate without exhaustion",
                        )
                    stack.append(succ)
    except _CaseError as exc:
        result.properties[_RULE_PROPERTY[exc.rule]] = False
        rep.add(exc.rule, "error", str(exc), loc, exc.hint)
    result.states = len(seen)
    return result, rep


# ---------------------------------------------------------------------------
# The small-scope matrix
# ---------------------------------------------------------------------------

def small_scope_cases() -> list[tuple[str, "CompiledGraph", "MachineSpec"]]:
    """The default exploration matrix: N <= 8 tile graphs on P <= 4
    nodes over clique, chain and grid interconnects.

    Sizes are picked so one policy explores the whole matrix in a few
    seconds while still covering multi-core contention, a non-square
    node count and both Cholesky and LU task structures.
    """
    from ..config import laptop
    from ..distributions.block_cyclic import BlockCyclic2D
    from ..distributions.sbc import SymmetricBlockCyclic
    from ..graph.compiled import compile_cholesky, compile_lu
    from ..topology import chain, clique, grid

    b = 32
    cases: list[tuple[str, "CompiledGraph", "MachineSpec"]] = []

    def add(label: str, cg: "CompiledGraph", nodes: int, cores: int,
            topo_name: str) -> None:
        machine = laptop(nodes=nodes, cores=cores)
        bw = machine.network.bandwidth
        lat = machine.network.latency
        if topo_name == "clique":
            topo = clique(nodes, bw, lat)
        elif topo_name == "chain":
            topo = chain(nodes, bw, lat)
        else:
            rows = 2 if nodes % 2 == 0 else 1
            topo = grid(rows, nodes // rows, bw, lat)
        machine = replace(machine, topology=topo)
        cases.append((f"{label}/{topo_name}", cg, machine))

    add("cholesky-n5/bc2d-2x2/c1", compile_cholesky(5, b, BlockCyclic2D(2, 2)),
        nodes=4, cores=1, topo_name="clique")
    add("cholesky-n4/bc2d-2x2/c2", compile_cholesky(4, b, BlockCyclic2D(2, 2)),
        nodes=4, cores=2, topo_name="grid")
    add("cholesky-n5/sbc3-ext/c2",
        compile_cholesky(5, b, SymmetricBlockCyclic(3)),
        nodes=3, cores=2, topo_name="chain")
    add("lu-n4/bc2d-2x2/c2", compile_lu(4, b, BlockCyclic2D(2, 2)),
        nodes=4, cores=2, topo_name="clique")
    return cases


# ---------------------------------------------------------------------------
# Certificates
# ---------------------------------------------------------------------------

def _canonical(doc: dict[str, Any]) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _certificate(policy_name: str, migrates: bool,
                 results: Sequence[ModelCheckResult]) -> dict[str, Any]:
    body: dict[str, Any] = {
        "schema": CERT_SCHEMA,
        "generator": "repro.analyze.mc",
        "policy": policy_name,
        "migrates": migrates,
        "cases": [r.to_dict() for r in results],
        "all_ok": bool(results) and all(r.ok() for r in results),
    }
    body["digest"] = hashlib.sha256(_canonical(body).encode()).hexdigest()
    return body


def verify_certificate(doc: dict[str, Any]) -> bool:
    """Machine-check a certificate: schema, content digest, and every
    property of every case proved."""
    if not isinstance(doc, dict) or doc.get("schema") != CERT_SCHEMA:
        return False
    if doc.get("generator") != "repro.analyze.mc":
        return False
    body = {k: v for k, v in doc.items() if k != "digest"}
    if hashlib.sha256(_canonical(body).encode()).hexdigest() != \
            doc.get("digest"):
        return False
    cases = doc.get("cases")
    if not isinstance(cases, list) or not cases:
        return False
    if not all(isinstance(c, dict) and c.get("properties") and
               all(c["properties"].values()) for c in cases):
        return False
    return bool(doc.get("all_ok"))


def certify_policies(
    policies: Optional[Sequence[str]] = None,
    out_dir: Optional[Union[str, Path]] = None,
    max_states: int = DEFAULT_MAX_STATES,
    cases: Optional[Sequence[tuple[str, "CompiledGraph", "MachineSpec"]]]
        = None,
    rep: Optional[Report] = None,
) -> tuple[dict[str, dict[str, Any]], Report]:
    """Model-check every policy on the small-scope matrix and emit one
    certificate per policy (optionally written to ``out_dir``)."""
    from ..schedulers import POLICIES, get_policy

    rep = rep if rep is not None else Report()
    names = list(policies) if policies is not None else sorted(POLICIES)
    matrix = list(cases) if cases is not None else small_scope_cases()
    certs: dict[str, dict[str, Any]] = {}
    for name in names:
        pol = get_policy(name)
        results = []
        for label, cg, machine in matrix:
            result, _ = model_check(cg, machine, pol, label,
                                    max_states=max_states, rep=rep)
            results.append(result)
        cert = _certificate(pol.name, bool(pol.migrates), results)
        certs[pol.name] = cert
        states = sum(r.states for r in results)
        rep.add(
            "MC-CERT", "info",
            f"policy {pol.name!r}: {len(results)} case(s), {states} "
            f"states, all properties "
            f"{'proved' if cert['all_ok'] else 'NOT proved'}",
            f"mc:{pol.name}",
        )
    rep.note_pass("model-check", len(names) * len(matrix))
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        for name, cert in certs.items():
            path = out / f"{name}.cert.json"
            path.write_text(json.dumps(cert, indent=2, sort_keys=True) + "\n",
                            encoding="utf-8")
    return certs, rep


def require_certificates(
    policies: Optional[Sequence[str]] = None,
    max_states: int = DEFAULT_MAX_STATES,
    cases: Optional[Sequence[tuple[str, "CompiledGraph", "MachineSpec"]]]
        = None,
) -> dict[str, dict[str, Any]]:
    """Certify the given policies (default: the whole zoo) and raise if
    any certificate fails verification — the tournament's pre-ranking
    gate."""
    certs, rep = certify_policies(policies, max_states=max_states,
                                  cases=cases)
    bad = sorted(name for name, cert in certs.items()
                 if not verify_certificate(cert))
    if bad:
        detail = "; ".join(str(f) for f in rep.findings
                           if f.severity == "error")
        raise RuntimeError(
            f"scheduler policies failed model checking: {', '.join(bad)}"
            f" — {detail or 'certificate verification failed'}")
    return certs
