"""Static analysis over graphs, schedules, traces, and the codebase.

Three passes, one findings model, one CLI (``python -m repro.analyze``):

* :mod:`repro.analyze.schedule` — proves well-formedness of a compiled
  schedule (acyclicity, single-writer, owner-computes, byte
  conservation, SBC symmetry, Theorem 1 bounds) with vectorized
  numpy sweeps that scale to the paper's largest compiled graphs;
* :mod:`repro.analyze.races` — vector-clock happens-before analysis of
  recorded ``repro.obs`` traces: data races, missing/misordered
  deliveries, stale retransmits, run-to-run determinism;
* :mod:`repro.analyze.lint` — AST rules over the repository itself
  (no unseeded randomness, no wall-clock in the simulator, TaskEvent
  coverage of every runtime, engine-equality test coverage).

:mod:`repro.analyze.mutate` keeps all of the above honest: a seeded
harness injects known-bad schedules and traces and fails loudly unless
every injected defect class is detected.

The rule catalogue and severity contract live in ``docs/analyze.md``.
"""

from .findings import Finding, Report, Severity
from .lint import lint_repo, lint_sources
from .mutate import build_baseline, run_mutation_harness, self_test
from .races import compare_traces, detect_races
from .schedule import (
    kahn_order,
    verify_all,
    verify_compiled,
    verify_sbc,
    verify_theorem1,
    verify_topology_capacity,
)

__all__ = [
    "Finding",
    "Report",
    "Severity",
    "verify_compiled",
    "verify_sbc",
    "verify_theorem1",
    "verify_topology_capacity",
    "verify_all",
    "kahn_order",
    "detect_races",
    "compare_traces",
    "lint_repo",
    "lint_sources",
    "build_baseline",
    "run_mutation_harness",
    "self_test",
]
