"""Static analysis over graphs, schedules, traces, and the codebase.

Five passes, one findings model, one CLI (``python -m repro.analyze``):

* :mod:`repro.analyze.schedule` — proves well-formedness of a compiled
  schedule (acyclicity, single-writer, owner-computes, byte
  conservation, SBC symmetry, Theorem 1 bounds) with vectorized
  numpy sweeps that scale to the paper's largest compiled graphs;
* :mod:`repro.analyze.races` — vector-clock happens-before analysis of
  recorded ``repro.obs`` traces: data races, missing/misordered
  deliveries, stale retransmits, run-to-run determinism;
* :mod:`repro.analyze.lint` — AST rules over the repository itself
  (no unseeded randomness, no wall-clock in the simulator, TaskEvent
  coverage of every runtime, engine-equality test coverage);
* :mod:`repro.analyze.flow` — a CFG + intraprocedural dataflow engine
  over the repository source: blocking calls reachable on the event
  loop, coroutines never awaited, unlocked loop/worker shared state,
  set-iteration order feeding schedule decisions, and int32 index
  overflow in the compiled-graph hot paths (FLOW-* rules);
* :mod:`repro.analyze.mc` — a small-scope explicit-state model checker
  that exhaustively explores every scheduler policy on small compiled
  graphs and emits per-policy deadlock/starvation-freedom certificates
  (MC-* rules) that the policy tournament requires before ranking.

:mod:`repro.analyze.mutate` keeps all of the above honest: a seeded
harness injects known-bad schedules, traces, source snippets, and
scheduler disciplines, and fails loudly unless every injected defect
class is detected.  :mod:`repro.analyze.sarif` renders any findings
report as SARIF 2.1.0 for GitHub code scanning.

The rule catalogue and severity contract live in ``docs/analyze.md``.
"""

from .findings import (
    REPORT_VERSION,
    Finding,
    Report,
    Severity,
    severity_rank,
)
from .flow import flow_module, flow_sources
from .lint import lint_repo, lint_sources
from .mc import (
    ModelCheckResult,
    certify_policies,
    model_check,
    require_certificates,
    small_scope_cases,
    verify_certificate,
)
from .mutate import build_baseline, run_mutation_harness, self_test
from .races import compare_traces, detect_races
from .sarif import to_sarif, write_sarif
from .schedule import (
    kahn_order,
    verify_all,
    verify_compiled,
    verify_sbc,
    verify_theorem1,
    verify_topology_capacity,
)

__all__ = [
    "Finding",
    "Report",
    "Severity",
    "REPORT_VERSION",
    "severity_rank",
    "verify_compiled",
    "verify_sbc",
    "verify_theorem1",
    "verify_topology_capacity",
    "verify_all",
    "kahn_order",
    "detect_races",
    "compare_traces",
    "lint_repo",
    "lint_sources",
    "flow_module",
    "flow_sources",
    "model_check",
    "ModelCheckResult",
    "small_scope_cases",
    "certify_policies",
    "verify_certificate",
    "require_certificates",
    "to_sarif",
    "write_sarif",
    "build_baseline",
    "run_mutation_harness",
    "self_test",
]
