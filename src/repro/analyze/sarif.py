"""SARIF 2.1.0 export of an analysis :class:`~repro.analyze.Report`.

GitHub code scanning ingests SARIF, so publishing the findings document
in this shape turns every analyzer rule — schedule invariants, races,
lint, dataflow (FLOW-*) and model-checker (MC-*) results — into inline
PR annotations.  ``python -m repro.analyze --all --sarif findings.sarif``
writes the file; CI uploads it with ``github/codeql-action/upload-sarif``.

Location mapping: findings whose location is a ``file:line`` pair (the
lint and flow passes) become ``physicalLocation`` results that annotate
the source line; synthetic locations (``graph:task 17``,
``mc:case[policy]``, ``trace:transfer 0->3``) become
``logicalLocations`` so they still appear in the code-scanning list.
"""

from __future__ import annotations

import json
import re
from typing import Any, Optional

from .findings import Finding, Report, severity_rank

__all__ = ["to_sarif", "write_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemas/provenance/sarif-schema-2.1.0.json")

_LEVELS = {"error": "error", "warning": "warning", "info": "note"}

#: ``repro/service/server.py:238`` — a real source coordinate.
_FILE_LINE = re.compile(r"^(?P<file>[\w./-]+\.py):(?P<line>\d+)$")


def _location(finding: Finding) -> dict[str, Any]:
    m = _FILE_LINE.match(finding.location)
    if m:
        return {
            "physicalLocation": {
                "artifactLocation": {
                    "uri": f"src/{m.group('file')}",
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {"startLine": int(m.group("line"))},
            }
        }
    return {
        "logicalLocations": [
            {"fullyQualifiedName": finding.location, "kind": "member"}
        ]
    }


def to_sarif(report: Report) -> dict[str, Any]:
    """Render the report as one SARIF run, errors first."""
    ordered = report.ordered()
    rules: list[dict[str, Any]] = []
    rule_index: dict[str, int] = {}
    for f in ordered:
        if f.rule not in rule_index:
            rule_index[f.rule] = len(rules)
            rules.append({
                "id": f.rule,
                "shortDescription": {"text": f.rule},
                "helpUri": ("https://example.invalid/docs/analyze.md#"
                            "rule-catalogue"),
                "defaultConfiguration": {
                    "level": _LEVELS.get(f.severity, "note"),
                },
            })
    results = []
    for f in ordered:
        result: dict[str, Any] = {
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": _LEVELS.get(f.severity, "note"),
            "message": {
                "text": f.message + (f"  Hint: {f.hint}" if f.hint else ""),
            },
            "locations": [_location(f)],
        }
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analyze",
                        "informationUri":
                            "https://example.invalid/docs/analyze.md",
                        "rules": rules,
                    }
                },
                "results": results,
                "properties": {
                    "passes": dict(report.passes),
                    "maxSeverityRank": min(
                        (severity_rank(f.severity) for f in ordered),
                        default=len(_LEVELS)),
                },
            }
        ],
    }


def write_sarif(report: Report, path: object,
                indent: Optional[int] = 2) -> str:
    """Serialize :func:`to_sarif` to ``path``; returns the path."""
    with open(str(path), "w", encoding="utf-8") as fh:
        json.dump(to_sarif(report), fh, indent=indent)
        fh.write("\n")
    return str(path)
