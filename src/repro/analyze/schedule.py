"""Static schedule verification over :class:`repro.graph.CompiledGraph`.

Every rule operates on the flat arrays (kind/node columns, CSR read
adjacency, producer tables), so verification is vectorized numpy work
and scales to the paper's 10.7M-task N = 400 compiled graphs.  Rules:

* ``SCHED-CYCLE`` — the dependency relation is acyclic (Kahn sweep; the
  common case where task ids are already a topological order is a single
  vectorized comparison, with the full frontier sweep as fallback);
* ``SCHED-TOPO`` — the task list order is a topological order (every
  read's producer precedes the reader), which the runtimes rely on;
* ``SCHED-SELF`` — no task reads the version it writes (self-dependency
  deadlock);
* ``SCHED-WRITER`` — single-writer discipline: each data version has at
  most one producing task, and the producer tables agree with the
  per-task ``write_id`` column;
* ``SCHED-READS`` — every read references a declared data id;
* ``SCHED-NODE`` — task placement lands on a valid node, and (when the
  :class:`~repro.distributions.base.Distribution` is supplied together
  with the tile keys) the *owner computes* rule holds: each task that
  writes tile (i, j) runs on ``dist.owner(i, j)``;
* ``SCHED-BYTES`` — byte conservation: per-node sent and received
  bytes implied by the communication plan balance globally, and the
  totals equal :func:`repro.comm.count_communications` on the object
  graph when it is available;
* ``SCHED-PLACE`` — scheduler-policy placement: a policy's task
  assignment (:meth:`repro.schedulers.SchedulerInterface.plan`) must
  respect the graph's data placement — identical to the owner-computes
  ``node`` column — unless the policy declares ``migrates = True``, and
  even a migrating policy must stay inside the machine's node range;
* ``SCHED-TOPO-CAP`` — physical link capacity: route the communication
  plan over the machine's interconnect (the attached
  :class:`repro.topology.Topology`, or the per-port clique model when
  none) and require the bytes each directed link / switch backplane
  carries to fit in ``bandwidth x makespan``.  A violated link proves
  the claimed makespan infeasible on that machine — the schedule's
  traffic cannot physically drain in the time reported;
* ``SCHED-SBC-SYM`` — SBC symmetry (§III of the paper): the owner map is
  symmetric and, per pattern position ``d``, the row-``d`` and
  column-``d`` broadcast peer sets coincide;
* ``SCHED-THM1`` — Theorem 1 volume bounds: the exact counted message
  volume stays under ``S*(r-1)`` (basic SBC) / ``S*(r-2)`` (extended
  SBC) tiles.

:func:`verify_compiled` runs the structural rules; :func:`verify_sbc`
runs the two distribution-level rules; :func:`verify_all` combines them
and is what ``python -m repro.analyze --all`` calls per builder.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from ..comm.counter import count_communications
from ..comm.fast_counter import cholesky_message_count
from ..comm.formulas import sbc_cholesky_volume
from ..config import MachineSpec
from ..distributions.base import Distribution
from ..distributions.sbc import SymmetricBlockCyclic
from ..graph.compiled import CompiledGraph
from ..graph.task import TaskGraph
from .findings import Report, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..schedulers import SchedulerInterface

__all__ = [
    "verify_compiled",
    "verify_sbc",
    "verify_theorem1",
    "verify_topology_capacity",
    "verify_policy_placement",
    "verify_all",
    "kahn_order",
]

#: Cap on per-rule findings so a systemically-broken graph does not
#: produce millions of identical lines; the counting summary still
#: reports the full total.
MAX_FINDINGS_PER_RULE = 20


def _task_loc(name: str, t: int) -> str:
    return f"{name}:task {t}"


def _edges(cg: CompiledGraph) -> tuple[np.ndarray, np.ndarray]:
    """(producer task, consumer task) pairs of every produced-data read."""
    consumers = np.repeat(
        np.arange(cg.n_tasks, dtype=np.int64), np.diff(cg.read_ptr)
    )
    producers = cg.data_producer[cg.read_ids].astype(np.int64)
    has = producers >= 0
    return producers[has], consumers[has]


def kahn_order(cg: CompiledGraph) -> Optional[np.ndarray]:
    """Topological order by vectorized Kahn sweep, or None on a cycle.

    Works on arbitrary task numbering (unlike the fast ``producer < consumer``
    check); each round releases the whole current frontier at once, so the
    Python-level loop runs O(depth) times, not O(tasks).
    """
    n = cg.n_tasks
    prod, cons = _edges(cg)
    indeg = np.bincount(cons, minlength=n).astype(np.int64)
    # CSR from producer -> consumer list.
    order = np.argsort(prod, kind="stable")
    adj = cons[order]
    ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(prod, minlength=n), out=ptr[1:])

    out = np.empty(n, dtype=np.int64)
    frontier = np.flatnonzero(indeg == 0)
    done = 0
    while len(frontier):
        out[done:done + len(frontier)] = frontier
        done += len(frontier)
        # Gather all consumers of the frontier in one flat slice batch:
        # for frontier row k with CSR slice [s_k, s_k + c_k), the output
        # positions [cum_k, cum_k + c_k) map to adj[s_k + offset].
        starts = ptr[frontier]
        counts = ptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            frontier = np.empty(0, dtype=np.int64)
            continue
        cum = np.zeros(len(frontier), dtype=np.int64)
        np.cumsum(counts[:-1], out=cum[1:])
        idx = np.repeat(starts - cum, counts) + np.arange(total, dtype=np.int64)
        touched = adj[idx]
        dec = np.bincount(touched, minlength=n)
        indeg -= dec
        frontier = touched[indeg[touched] == 0]
        # A task whose indegree hits zero can appear several times in
        # ``touched`` (several satisfied inputs in one batch); dedup.
        if len(frontier):
            frontier = np.unique(frontier)
    if done != n:
        return None
    return out


def verify_compiled(
    cg: CompiledGraph,
    dist: Optional[Distribution] = None,
    graph: Optional[TaskGraph] = None,
    name: str = "graph",
    num_nodes: Optional[int] = None,
) -> Report:
    """Run the structural schedule rules on one compiled graph.

    ``num_nodes`` overrides the valid node range for graphs spanning
    several distributions (e.g. POTRI remapping SBC to a wider 2DBC).
    """
    rep = Report()
    n = cg.n_tasks
    rep.note_pass("schedule", n)
    if n == 0:
        return rep

    # -- SCHED-READS: reads reference declared data ids --------------------
    bad_reads = np.flatnonzero(
        (cg.read_ids < 0) | (cg.read_ids >= cg.n_data)
    )
    if len(bad_reads):
        consumers = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(cg.read_ptr)
        )
        for e in bad_reads[:MAX_FINDINGS_PER_RULE]:
            rep.add(
                "SCHED-READS", Severity.ERROR,
                f"read of undeclared data id {int(cg.read_ids[e])} "
                f"(valid ids are 0..{cg.n_data - 1})",
                _task_loc(name, int(consumers[e])),
                "every read must name an initial version or a task output",
            )
        # Undeclared reads poison the edge analysis below; stop here.
        return rep

    # -- SCHED-WRITER: single writer per data version ----------------------
    writers = np.flatnonzero(cg.write_id >= 0)
    wid = cg.write_id[writers].astype(np.int64)
    bad_wid = writers[(wid < cg.n_init) | (wid >= cg.n_data)]
    for t in bad_wid[:MAX_FINDINGS_PER_RULE]:
        rep.add(
            "SCHED-WRITER", Severity.ERROR,
            f"task writes data id {int(cg.write_id[t])}, which is not a "
            "produced-version id",
            _task_loc(name, int(t)),
            "initial versions (ids < n_init) must never be overwritten",
        )
    in_range = (wid >= 0) & (wid < cg.n_data)
    counts = np.bincount(wid[in_range], minlength=cg.n_data)
    dup_ids = np.flatnonzero(counts > 1)
    for d in dup_ids[:MAX_FINDINGS_PER_RULE]:
        culprits = writers[wid == d]
        rep.add(
            "SCHED-WRITER", Severity.ERROR,
            f"data id {int(d)} written by {int(counts[d])} tasks "
            f"{[int(c) for c in culprits[:4]]}",
            _task_loc(name, int(culprits[0])),
            "each tile version must have exactly one producer "
            "(bump the version instead of re-writing)",
        )
    # Producer-table consistency (skip ids already flagged as duplicates).
    ok_w = in_range & (counts[np.clip(wid, 0, cg.n_data - 1)] == 1)
    mismatch = writers[ok_w][
        cg.data_producer[wid[ok_w]] != writers[ok_w]
    ]
    for t in mismatch[:MAX_FINDINGS_PER_RULE]:
        d = int(cg.write_id[t])
        rep.add(
            "SCHED-WRITER", Severity.ERROR,
            f"producer table names task {int(cg.data_producer[d])} for "
            f"data id {d} but task {int(t)} writes it",
            _task_loc(name, int(t)),
            "data_producer and write_id must be inverse views",
        )

    # -- SCHED-SELF: no task reads its own output --------------------------
    consumers = np.repeat(np.arange(n, dtype=np.int64), np.diff(cg.read_ptr))
    self_edges = np.flatnonzero(
        cg.data_producer[cg.read_ids] == consumers
    )
    for e in self_edges[:MAX_FINDINGS_PER_RULE]:
        rep.add(
            "SCHED-SELF", Severity.ERROR,
            f"task reads data id {int(cg.read_ids[e])}, its own output "
            "(self-dependency can never become ready)",
            _task_loc(name, int(consumers[e])),
            "read the previous version and write the bumped one",
        )

    # -- SCHED-TOPO / SCHED-CYCLE ------------------------------------------
    prod, cons = _edges(cg)
    forward = prod < cons
    if not forward.all():
        back = np.flatnonzero(~forward)
        # Non-topological numbering: either a cycle, or merely an order
        # the runtimes would deadlock on.  Kahn distinguishes the two.
        order = kahn_order(cg)
        if order is None:
            rep.add(
                "SCHED-CYCLE", Severity.ERROR,
                f"dependency cycle: {len(back)} edge(s) cannot be "
                "topologically ordered — the schedule deadlocks",
                _task_loc(name, int(cons[back[0]])),
                "a task (transitively) reads a version derived from its "
                "own output",
            )
        else:
            for e in back[:MAX_FINDINGS_PER_RULE]:
                rep.add(
                    "SCHED-TOPO", Severity.ERROR,
                    f"task {int(cons[e])} reads the output of task "
                    f"{int(prod[e])}, emitted later in the list",
                    _task_loc(name, int(cons[e])),
                    "builders must emit tasks in dependency order; the "
                    "runtimes scan the list once",
                )

    # -- SCHED-NODE: valid placement + owner-computes ----------------------
    if num_nodes is None:
        num_nodes = (dist.num_nodes if dist is not None
                     else int(cg.node.max()) + 1)
    bad_nodes = np.flatnonzero((cg.node < 0) | (cg.node >= num_nodes))
    for t in bad_nodes[:MAX_FINDINGS_PER_RULE]:
        rep.add(
            "SCHED-NODE", Severity.ERROR,
            f"task placed on node {int(cg.node[t])}, outside "
            f"[0, {num_nodes})",
            _task_loc(name, int(t)),
        )
    # The source-node table must name the writing task's node, or the
    # transfer plan would route tiles from the wrong port.
    writers_ok = writers[(wid >= 0) & (wid < cg.n_data)]
    wid_ok = cg.write_id[writers_ok].astype(np.int64)
    src_mismatch = writers_ok[
        cg.data_source_node[wid_ok] != cg.node[writers_ok]
    ]
    for t in src_mismatch[:MAX_FINDINGS_PER_RULE]:
        d = int(cg.write_id[t])
        rep.add(
            "SCHED-NODE", Severity.ERROR,
            f"data id {d} is declared at node "
            f"{int(cg.data_source_node[d])} but its producer runs on node "
            f"{int(cg.node[t])}",
            _task_loc(name, int(t)),
            "owner computes: a version lives where it is produced",
        )
    if dist is not None and cg.data_keys is not None:
        # Owner-computes against the distribution, for single-phase 2D
        # graphs (REMAP re-homes tiles, so skip graphs that contain it).
        kinds = set(cg.kind_names[c] for c in np.unique(cg.kind_codes))
        if "REMAP" not in kinds:
            written = [
                (t, cg.data_keys[cg.write_id[t]])
                for t in writers_ok.tolist()
            ]
            misplaced = [
                (t, k) for t, k in written
                if k.name == "A" and k.part == 0
                and dist.owner(k.i, k.j) != int(cg.node[t])
            ]
            for t, k in misplaced[:MAX_FINDINGS_PER_RULE]:
                rep.add(
                    "SCHED-NODE", Severity.ERROR,
                    f"tile ({k.i}, {k.j}) v{k.ver} is written on node "
                    f"{int(cg.node[t])} but {dist.name} owns it on node "
                    f"{dist.owner(k.i, k.j)}",
                    _task_loc(name, t),
                    "the owner-computes rule determines placement",
                )

    # -- SCHED-BYTES: sent/recv conservation + counter cross-check ---------
    if not rep.findings:  # plan construction assumes a well-formed graph
        plan = cg.comm_plan()
        src_nodes = cg.data_source_node[plan.pair_data]
        nbytes = cg.data_nbytes[plan.pair_data]
        sent = np.bincount(src_nodes, weights=nbytes, minlength=num_nodes)
        recv = np.bincount(plan.pair_dst, weights=nbytes, minlength=num_nodes)
        if int(sent.sum()) != int(recv.sum()):
            rep.add(
                "SCHED-BYTES", Severity.ERROR,
                f"byte conservation violated: nodes send "
                f"{int(sent.sum())} B but receive {int(recv.sum())} B",
                f"{name}:plan",
                "every wire message needs exactly one source and one "
                "destination",
            )
        total = int(nbytes.sum())
        messages = len(plan.pair_data)
        if graph is not None:
            stats = count_communications(graph)
            if stats.total_bytes != total or stats.num_messages != messages:
                rep.add(
                    "SCHED-BYTES", Severity.ERROR,
                    f"plan carries {total} B in {messages} messages but "
                    f"count_communications finds {stats.total_bytes} B in "
                    f"{stats.num_messages}",
                    f"{name}:plan",
                    "the compiled plan and the object counter must agree "
                    "message for message",
                )

    return rep


def verify_sbc(dist: SymmetricBlockCyclic, N: int,
               name: Optional[str] = None) -> Report:
    """SBC symmetry (§III): row/column broadcast peer sets coincide."""
    rep = Report()
    rep.note_pass("sbc-symmetry")
    label = name or dist.name
    owners = dist.owner_map(N)
    if not np.array_equal(owners, owners.T):
        i, j = np.argwhere(owners != owners.T)[0]
        rep.add(
            "SCHED-SBC-SYM", Severity.ERROR,
            f"owner map is not symmetric: owner({int(i)}, {int(j)}) = "
            f"{int(owners[i, j])} but owner({int(j)}, {int(i)}) = "
            f"{int(owners[j, i])}",
            f"{label}:tile ({int(i)}, {int(j)})",
            "SBC canonicalizes to the lower triangle; owner(i, j) must "
            "equal owner(j, i)",
        )
        return rep
    # Row-d vs column-d peer sets: with a symmetric owner map these are
    # equal by construction, so check the *pattern-level* claim that
    # makes Theorem 1 tick: every node in broadcast row/column d is a
    # pair containing d (so the two broadcasts hit the same r-1 nodes).
    r = dist.r
    if N < r:
        return rep
    for d in range(r):
        row_set = set(int(x) for x in owners[d, :N])
        col_set = set(int(x) for x in owners[:N, d])
        if row_set != col_set:
            rep.add(
                "SCHED-SBC-SYM", Severity.ERROR,
                f"pattern row {d} is served by nodes {sorted(row_set)} "
                f"but pattern column {d} by {sorted(col_set)}: the row "
                "and column broadcasts diverge",
                f"{label}:pattern position {d}",
                "each pattern position d may only hold pairs containing d",
            )
    try:
        dist.validate()
    except AssertionError as exc:
        rep.add(
            "SCHED-SBC-SYM", Severity.ERROR,
            f"diagonal pattern family is inconsistent: {exc}",
            f"{label}:diagonal patterns",
        )
    return rep


def verify_theorem1(dist: SymmetricBlockCyclic, N: int,
                    name: Optional[str] = None) -> Report:
    """Theorem 1 bound: counted POTRF volume <= S*(r-1) / S*(r-2) tiles."""
    rep = Report()
    rep.note_pass("theorem1")
    label = name or dist.name
    counted = cholesky_message_count(dist, N)
    bound = sbc_cholesky_volume(N, dist.r, dist.variant)
    fanout = "r-1" if dist.variant == "basic" else "r-2"
    if counted > bound:
        rep.add(
            "SCHED-THM1", Severity.ERROR,
            f"counted POTRF volume {counted} tiles exceeds the Theorem 1 "
            f"bound S*({fanout}) = {bound:.0f} for N={N}, r={dist.r} "
            f"({dist.variant})",
            f"{label}:N={N}",
            "the distribution does not realize the SBC broadcast "
            "structure it claims",
        )
    else:
        rep.add(
            "SCHED-THM1", Severity.INFO,
            f"POTRF volume {counted} tiles <= S*({fanout}) = {bound:.0f} "
            f"(margin {bound - counted:.0f} tiles, edge effects)",
            f"{label}:N={N}",
        )
    return rep


def verify_topology_capacity(
    cg: CompiledGraph,
    machine: MachineSpec,
    makespan: float,
    name: str = "graph",
) -> Report:
    """SCHED-TOPO-CAP: routed per-link bytes fit in capacity x makespan.

    ``makespan`` is a *claimed* execution time (typically
    ``SimReport.makespan``).  The rule lower-bounds each physical
    channel's busy time by the bytes the communication plan forces
    through it: with a :class:`repro.topology.Topology` attached, every
    message's bytes are charged to each directed edge of its static
    route (and to every finite switch backplane it crosses); without
    one, to its source's egress and destination's ingress port.  Any
    channel asked to carry more than ``bandwidth x makespan`` proves the
    claim infeasible — no event ordering can drain that traffic in the
    reported time.  The converse does not hold (a passing claim may
    still be unachievable), so the rule reports violations, not
    certificates; an INFO finding records the peak utilization.
    """
    rep = Report()
    rep.note_pass("topology-capacity")
    if makespan <= 0.0:
        rep.add(
            "SCHED-TOPO-CAP", Severity.ERROR,
            f"claimed makespan {makespan!r} is not positive",
            f"{name}:makespan",
            "capacity checks need the execution time the schedule claims",
        )
        return rep
    plan = cg.comm_plan()
    if len(plan.pair_data) == 0:
        return rep
    nbytes = cg.data_nbytes[plan.pair_data].astype(np.float64)
    src = cg.data_source_node[plan.pair_data].astype(np.int64)
    dst = plan.pair_dst.astype(np.int64)
    topo = machine.topology

    checks: list[tuple[str, float, np.ndarray]] = []
    if topo is None:
        # Scalar clique: each node owns one egress and one ingress port
        # of the uniform bandwidth (the NetworkSim serialization points).
        bw = machine.network.bandwidth
        sent = np.bincount(src, weights=nbytes, minlength=machine.nodes)
        recv = np.bincount(dst, weights=nbytes, minlength=machine.nodes)
        for kind, per_node in (("egress port", sent), ("ingress port", recv)):
            for i in np.flatnonzero(per_node > bw * makespan)[
                    :MAX_FINDINGS_PER_RULE]:
                checks.append((
                    f"node {int(i)} {kind}", bw, per_node[int(i):int(i) + 1]))
        peak = float(max(float(sent.max()), float(recv.max()))
                     / (bw * makespan))
    else:
        ct = topo.compiled()
        arrays = ct.as_arrays()
        ptr = arrays["path_ptr"]
        eid = arrays["path_eid"]
        edge_bw = arrays["edge_bw"]
        edge_sw = arrays["edge_sw"]
        sw_bw = arrays["switch_bw"]
        pidx = src * ct.num_nodes + dst
        starts = ptr[pidx]
        counts = ptr[pidx + 1] - starts
        total = int(counts.sum())
        cum = np.zeros(len(counts), dtype=np.int64)
        np.cumsum(counts[:-1], out=cum[1:])
        edges = eid[np.repeat(starts - cum, counts)
                    + np.arange(total, dtype=np.int64)]
        per_edge = np.bincount(
            edges, weights=np.repeat(nbytes, counts), minlength=ct.n_edges)
        edge_cap = edge_bw * makespan
        for e in np.flatnonzero(per_edge > edge_cap)[:MAX_FINDINGS_PER_RULE]:
            checks.append((
                f"link {ct.edge_u[int(e)]}->{ct.edge_v[int(e)]}",
                float(edge_bw[int(e)]), per_edge[int(e):int(e) + 1]))
        # Switch backplanes: bytes of every routed edge whose source
        # vertex is a finite-bandwidth switch serialize on it.
        sw_of_edges = edge_sw[edges]
        on_switch = sw_of_edges >= 0
        if bool(on_switch.any()) and ct.n_switches:
            per_sw = np.bincount(
                sw_of_edges[on_switch],
                weights=np.repeat(nbytes, counts)[on_switch],
                minlength=ct.n_switches)
            finite = np.isfinite(sw_bw)
            over_sw = np.flatnonzero(
                finite & (per_sw > sw_bw * makespan))
            for s in over_sw[:MAX_FINDINGS_PER_RULE]:
                checks.append((
                    f"switch {int(s)} backplane", float(sw_bw[int(s)]),
                    per_sw[int(s):int(s) + 1]))
        with np.errstate(invalid="ignore"):
            util = per_edge / edge_cap
        peak = float(util.max()) if len(util) else 0.0
    for label, bw, carried in checks:
        need = float(carried[0])
        rep.add(
            "SCHED-TOPO-CAP", Severity.ERROR,
            f"{label} must carry {need:.0f} B but fits only "
            f"{bw * makespan:.0f} B in the claimed makespan "
            f"({makespan:.6g} s at {bw:.3g} B/s — "
            f"{need / (bw * makespan):.2f}x capacity)",
            f"{name}:{label}",
            "the claimed makespan is physically infeasible: wire time "
            "on this channel alone exceeds it",
        )
    if not checks:
        rep.add(
            "SCHED-TOPO-CAP", Severity.INFO,
            f"peak channel utilization {peak:.2f} of capacity x makespan",
            f"{name}:topology",
        )
    return rep


def verify_policy_placement(cg: CompiledGraph, machine: MachineSpec,
                            policy: Union[str, "SchedulerInterface"],
                            name: str = "graph") -> Report:
    """SCHED-PLACE: a scheduler policy's assignments respect placement.

    Runs ``policy.plan()`` against ``cg`` on ``machine`` and checks the
    returned assignment (if any): a policy that does not declare
    ``migrates = True`` must keep every task on its owner-computes node
    (anything else silently changes the communication pattern the
    distribution was chosen for), and a migrating policy must still land
    every task on a node the machine has.
    """
    from ..schedulers import CompiledGraphView, get_policy

    rep = Report()
    rep.note_pass("policy-placement")
    pol = get_policy(policy)
    kernel = machine.kernel
    durations = kernel.overhead + cg.flops / kernel.rate(cg.b)
    splan = pol.plan(CompiledGraphView(cg, machine, durations))
    label = f"{name}[{pol.name}]"
    if splan.assignment is None:
        return rep
    asg = np.asarray(splan.assignment)
    if asg.shape != cg.node.shape:
        rep.add(
            "SCHED-PLACE", Severity.ERROR,
            f"policy returned {asg.shape[0] if asg.ndim == 1 else asg.shape}"
            f" assignments for {cg.n_tasks} tasks",
            f"{label}:plan",
            "SchedulePlan.assignment must cover every task exactly once",
        )
        return rep
    out_of_range = np.flatnonzero((asg < 0) | (asg >= machine.nodes))
    for t in out_of_range[:MAX_FINDINGS_PER_RULE]:
        rep.add(
            "SCHED-PLACE", Severity.ERROR,
            f"task assigned to node {int(asg[t])}, outside "
            f"[0, {machine.nodes})",
            _task_loc(label, int(t)),
        )
    if not pol.migrates:
        moved = np.flatnonzero(asg != cg.node)
        for t in moved[:MAX_FINDINGS_PER_RULE]:
            rep.add(
                "SCHED-PLACE", Severity.ERROR,
                f"non-migrating policy moves task from its data's node "
                f"{int(cg.node[t])} to node {int(asg[t])}",
                _task_loc(label, int(t)),
                "declare migrates = True (and accept the extra input "
                "transfers) or return assignment=None",
            )
    return rep


def verify_all(
    cg: CompiledGraph,
    dist: Optional[Distribution] = None,
    graph: Optional[TaskGraph] = None,
    name: str = "graph",
    N: Optional[int] = None,
    num_nodes: Optional[int] = None,
) -> Report:
    """Structural rules + SBC symmetry / Theorem 1 when they apply."""
    rep = verify_compiled(cg, dist=dist, graph=graph, name=name,
                          num_nodes=num_nodes)
    if isinstance(dist, SymmetricBlockCyclic) and N is not None:
        rep.extend(verify_sbc(dist, N, name=name))
        rep.extend(verify_theorem1(dist, N, name=name))
    return rep


def findings_summary(rep: Report) -> list[str]:
    """One line per rule hit — convenience for CLI output."""
    return [
        f"{rule}: {len(rep.by_rule(rule))}" for rule in rep.rules_hit()
    ]
