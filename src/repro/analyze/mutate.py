"""Seeded mutation harness: inject known-bad defects, assert detection.

The analyzers are only trustworthy if they *provably* catch the defect
classes they claim to.  This module builds one small, clean Cholesky
setup (graph + compiled graph + simulator trace) plus paired source
snippets and scheduler mutants, derives ≥ 24 mutants — each injecting
exactly one defect of a named class (graph/capacity/distribution/trace
tampering, FLOW-* dataflow defects, MC-* scheduler defects) — and runs
the matching analyzer on each.  A mutant is *caught* when the analyzer
reports at least one finding with the expected rule id.

The harness is the ``python -m repro.analyze --self-test`` gate: it
fails (exit 1) if the clean baseline is not clean (false positives) or
any mutant survives (false negatives).  ``tests/test_analyze.py``
asserts the same 100%-detection property suite-side.

Mutant selection is driven by ``random.Random(seed)`` so repeated runs
with one seed are identical while different seeds vary the tampered
task/transfer — a cheap way to keep the detectors honest over time.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..config import MachineSpec, laptop
from ..distributions.block_cyclic import BlockCyclic2D
from ..distributions.sbc import SymmetricBlockCyclic
from ..graph.cholesky import build_cholesky_graph
from ..graph.compiled import CompiledGraph, compile_cholesky, compile_graph
from ..obs.events import Recorder
from ..runtime.simulator.engine import simulate
from ..schedulers import GraphView, ReadyQueue, SchedulePlan, SchedulerInterface
from .findings import Report, Severity
from .flow import flow_module
from .mc import model_check
from .races import compare_traces, detect_races
from .schedule import (
    verify_compiled,
    verify_sbc,
    verify_theorem1,
    verify_topology_capacity,
)

__all__ = ["Baseline", "Mutant", "MutationOutcome", "build_baseline",
           "run_mutation_harness", "self_test"]


@dataclass
class Baseline:
    """One clean setup every mutant derives from."""

    N: int
    dist: SymmetricBlockCyclic
    machine: MachineSpec
    graph: object  # TaskGraph
    cg: CompiledGraph
    recorder: Recorder


@dataclass(frozen=True)
class Mutant:
    """One injected defect: a name, the defect class, the expected rule."""

    name: str
    defect: str  # "cycle", "double-writer", "symmetry-break", ...
    expected_rule: str
    run: Callable[[], Report]


@dataclass
class MutationOutcome:
    """Result of running the analyzers on one mutant."""

    name: str
    defect: str
    expected_rule: str
    rules_hit: list[str]

    @property
    def caught(self) -> bool:
        return self.expected_rule in self.rules_hit


def _clone(cg: CompiledGraph) -> CompiledGraph:
    """Independent copy of a compiled graph (caches dropped)."""
    return CompiledGraph(
        b=cg.b,
        width=cg.width,
        element_size=cg.element_size,
        kind_names=list(cg.kind_names),
        kind_codes=cg.kind_codes.copy(),
        node=cg.node.copy(),
        flops=cg.flops.copy(),
        iteration=cg.iteration.copy(),
        priority=cg.priority.copy(),
        write_id=cg.write_id.copy(),
        read_ptr=cg.read_ptr.copy(),
        read_ids=cg.read_ids.copy(),
        n_init=cg.n_init,
        data_producer=cg.data_producer.copy(),
        data_source_node=cg.data_source_node.copy(),
        data_nbytes=cg.data_nbytes.copy(),
        data_keys=list(cg.data_keys) if cg.data_keys is not None else None,
        level_ranges=(list(cg.level_ranges)
                      if cg.level_ranges is not None else None),
    )


def _copy_recorder(rec: Recorder) -> Recorder:
    out = Recorder(source=rec.source)
    out.task_events = list(rec.task_events)
    out.transfer_events = list(rec.transfer_events)
    out.io_events = list(rec.io_events)
    out.cache_events = list(rec.cache_events)
    out.fault_events = list(rec.fault_events)
    return out


def build_baseline(N: int = 6, r: int = 4, b: int = 32,
                   cores: int = 2) -> Baseline:
    """Clean Cholesky setup: SBC(r) graph, compiled arrays, traced run."""
    dist = SymmetricBlockCyclic(r)
    graph = build_cholesky_graph(N, b, dist)
    cg = compile_graph(graph)
    machine = laptop(nodes=dist.num_nodes, cores=cores)
    rec = Recorder(source="simulator")
    simulate(graph, machine, trace=True, recorder=rec)
    return Baseline(N=N, dist=dist, machine=machine, graph=graph, cg=cg,
                    recorder=rec)


# ---------------------------------------------------------------------------
# Mutant constructors.  Each returns a callable producing the Report of
# the matching analyzer on the tampered artifact.
# ---------------------------------------------------------------------------


def _remote_edge(base: Baseline, rng: random.Random) -> tuple[int, int]:
    """(data id, consumer task) of a randomly chosen remote produced read."""
    cg = base.cg
    consumers = np.repeat(
        np.arange(cg.n_tasks, dtype=np.int64), np.diff(cg.read_ptr)
    )
    remote = np.flatnonzero(
        (cg.data_producer[cg.read_ids] >= 0)
        & (cg.data_source_node[cg.read_ids] != cg.node[consumers])
    )
    e = int(remote[rng.randrange(len(remote))])
    return int(cg.read_ids[e]), int(consumers[e])


def _graph_mutants(base: Baseline, rng: random.Random) -> list[Mutant]:
    dist, graph = base.dist, base.graph

    def verify(cg: CompiledGraph) -> Report:
        return verify_compiled(cg, dist=dist, graph=graph, name="mutant")

    def cycle() -> Report:
        # The first POTRF comes to read a TRSM output that (transitively)
        # depends on it: a genuine 2-cycle, not just a bad numbering.
        cg = _clone(base.cg)
        trsm = int(np.flatnonzero(cg.kind_names.index("TRSM")
                                  == cg.kind_codes)[0])
        cg.read_ids[cg.read_ptr[0]] = cg.write_id[trsm]
        return verify(cg)

    def back_edge() -> Report:
        # Two independent TRSMs of the first panel: redirect the earlier
        # one's diagonal read to the later one's output — a backward edge
        # with no cycle (the later TRSM does not depend on the earlier).
        cg = _clone(base.cg)
        trsm_code = cg.kind_names.index("TRSM")
        t1, t2 = (int(t) for t in np.flatnonzero(
            cg.kind_codes == trsm_code)[:2])
        cg.read_ids[cg.read_ptr[t1] + 1] = cg.write_id[t2]
        return verify(cg)

    def double_writer() -> Report:
        cg = _clone(base.cg)
        tasks = sorted(rng.sample(range(1, cg.n_tasks), 2))
        cg.write_id[tasks[1]] = cg.write_id[tasks[0]]
        return verify(cg)

    def self_dependency() -> Report:
        cg = _clone(base.cg)
        t = rng.randrange(cg.n_tasks)
        cg.read_ids[cg.read_ptr[t]] = cg.write_id[t]
        return verify(cg)

    def undeclared_read() -> Report:
        cg = _clone(base.cg)
        t = rng.randrange(cg.n_tasks)
        cg.read_ids[cg.read_ptr[t]] = cg.n_data + 7
        return verify(cg)

    def negative_node() -> Report:
        cg = _clone(base.cg)
        cg.node[rng.randrange(cg.n_tasks)] = -3
        return verify(cg)

    def owner_break() -> Report:
        # Move one task off its tile's owner; the version's declared
        # source node no longer matches the producer's placement.
        cg = _clone(base.cg)
        t = rng.randrange(cg.n_tasks)
        cg.node[t] = (int(cg.node[t]) + 1) % dist.num_nodes
        return verify(cg)

    def byte_break() -> Report:
        # Inflate the byte size of one transferred version: the plan's
        # traffic no longer matches count_communications.
        cg = _clone(base.cg)
        plan = base.cg.comm_plan()
        d = int(plan.pair_data[rng.randrange(len(plan.pair_data))])
        cg.data_nbytes[d] *= 2
        return verify(cg)

    return [
        Mutant("cycle-potrf-trsm", "cycle", "SCHED-CYCLE", cycle),
        Mutant("backward-edge", "topological-order", "SCHED-TOPO", back_edge),
        Mutant("double-writer", "double-writer", "SCHED-WRITER",
               double_writer),
        Mutant("self-dependency", "self-dependency", "SCHED-SELF",
               self_dependency),
        Mutant("undeclared-read", "undeclared-read", "SCHED-READS",
               undeclared_read),
        Mutant("negative-node", "bad-placement", "SCHED-NODE",
               negative_node),
        Mutant("owner-computes-break", "bad-placement", "SCHED-NODE",
               owner_break),
        Mutant("byte-inflation", "volume-mismatch", "SCHED-BYTES",
               byte_break),
    ]


class _AsymmetricSBC(SymmetricBlockCyclic):
    """SBC with one off-diagonal owner tampered: breaks row/col symmetry."""

    def owner(self, i: int, j: int) -> int:
        if (i, j) == (1, 0):
            return (super().owner(1, 0) + 1) % self.num_nodes
        return super().owner(i, j)

    def owner_map(self, N: int) -> np.ndarray:
        out = super().owner_map(N)
        if N > 1:
            out[1, 0] = (out[1, 0] + 1) % self.num_nodes
        return out


class _FakeSBC(SymmetricBlockCyclic):
    """Claims SBC(r) but scatters owners round-robin: Theorem 1 fails."""

    def owner(self, i: int, j: int) -> int:
        if i < j:
            i, j = j, i
        return (i + 2 * j) % self.num_nodes

    def owner_map(self, N: int) -> np.ndarray:
        idx = np.arange(N)
        i = np.maximum(idx[:, None], idx[None, :])
        j = np.minimum(idx[:, None], idx[None, :])
        return (i + 2 * j) % self.num_nodes


def _capacity_mutants(base: Baseline) -> list[Mutant]:
    from ..topology import chain

    net = base.machine.network
    routed = replace(
        base.machine,
        topology=chain(base.machine.nodes, bandwidth=net.bandwidth,
                       latency=net.latency),
    )

    def infeasible_makespan() -> Report:
        # Claim the schedule finished in 1 ns: the routed chain links
        # could not even have carried the traffic's wire time.
        return verify_topology_capacity(base.cg, routed, 1e-9, name="mutant")

    return [
        Mutant("infeasible-makespan", "capacity-violation", "SCHED-TOPO-CAP",
               infeasible_makespan),
    ]


def _distribution_mutants(base: Baseline) -> list[Mutant]:
    N, r = base.N, base.dist.r

    def symmetry_break() -> Report:
        return verify_sbc(_AsymmetricSBC(r), N)

    def volume_break() -> Report:
        return verify_theorem1(_FakeSBC(r), max(N, 3 * r))

    return [
        Mutant("asymmetric-owner", "symmetry-break", "SCHED-SBC-SYM",
               symmetry_break),
        Mutant("fake-sbc-volume", "volume-bound", "SCHED-THM1",
               volume_break),
    ]


def _trace_mutants(base: Baseline, rng: random.Random) -> list[Mutant]:
    cg = base.cg
    key_of = cg.data_keys

    def races(rec: Recorder) -> Report:
        return detect_races(rec, cg, name="mutant")

    def early_start() -> Report:
        # A consumer of a remote tile starts before the delivery lands.
        rec = _copy_recorder(base.recorder)
        d, t = _remote_edge(base, rng)
        deliveries = [e for e in rec.transfer_events
                      if e.key == key_of[d] and e.dst == int(cg.node[t])]
        delivered = max(e.delivered for e in deliveries)
        idx = next(i for i, e in enumerate(rec.task_events)
                   if e.task_id == t)
        e = rec.task_events[idx]
        shift = (e.start - delivered) + 0.25 * (e.end - e.start) + 1e-6
        rec.task_events[idx] = replace(
            e, ready=e.ready - shift, start=e.start - shift,
            end=e.end - shift)
        return races(rec)

    def missing_transfer() -> Report:
        # Drop one delivery whose tile a task actually consumed remotely.
        rec = _copy_recorder(base.recorder)
        d, t = _remote_edge(base, rng)
        rec.transfer_events = [
            e for e in rec.transfer_events
            if not (e.key == key_of[d] and e.dst == int(cg.node[t]))
        ]
        return races(rec)

    def order_inversion() -> Report:
        # Deliver an older version of a tile after a newer one reached
        # the same destination (retransmit-reorder hazard).
        rec = _copy_recorder(base.recorder)
        by_tile: dict[tuple[str, int, int, int], list[int]] = {}
        for i, e in enumerate(rec.transfer_events):
            k = e.key
            by_tile.setdefault((k.name, k.i, k.j, k.part), []).append(i)
        # Pick any delivered transfer; replay a *stale* version of its
        # tile (version - 1 exists for every produced version with ver>0)
        # to the same destination, after the fresh one landed.
        cand = [i for i, e in enumerate(rec.transfer_events)
                if e.key.ver > 0]
        e = rec.transfer_events[cand[rng.randrange(len(cand))]]
        stale_key = e.key._replace(ver=e.key.ver - 1)
        src = int(cg.data_source_node[key_of.index(stale_key)])
        stale = replace(
            e, key=stale_key, src=src,
            submitted=e.delivered + 1e-6, started=e.delivered + 2e-6,
            delivered=e.delivered + 3e-6,
        )
        rec.transfer_events.append(stale)
        return races(rec)

    def stale_retry() -> Report:
        # A retransmission fires for a message that was already delivered.
        rec = _copy_recorder(base.recorder)
        e = rec.transfer_events[rng.randrange(len(rec.transfer_events))]
        rec.record_fault("retry", time=e.delivered + 0.5, src=e.src,
                         dst=e.dst, key=e.key, detail="ack lost")
        return races(rec)

    def determinism_break() -> Report:
        # Replay the seeded run... with one task on the wrong node.
        other = _copy_recorder(base.recorder)
        idx = rng.randrange(len(other.task_events))
        e = other.task_events[idx]
        other.task_events[idx] = replace(
            e, node=(e.node + 1) % base.dist.num_nodes,
            start=e.start + 1e-3, end=e.end + 1e-3)
        return compare_traces(base.recorder, other, name="mutant")

    return [
        Mutant("early-start-race", "race", "RACE-HB", early_start),
        Mutant("missing-transfer", "race", "RACE-MISSING", missing_transfer),
        Mutant("stale-version-delivery", "race", "RACE-ORDER",
               order_inversion),
        Mutant("retry-after-delivery", "race", "RACE-RETRY", stale_retry),
        Mutant("nondeterministic-replay", "nondeterminism",
               "RACE-DETERMINISM", determinism_break),
    ]


# ---------------------------------------------------------------------------
# FLOW mutants: paired clean/defective source snippets through flow_module
# ---------------------------------------------------------------------------

#: ``(name, expected rule, clean twin, mutant, virtual path)``.  The
#: clean twin is the *fixed* form of the same code; the harness runs it
#: through the flow pass as part of the no-false-positive baseline.
_FLOW_SNIPPETS: list[tuple[str, str, str, str, str]] = [
    (
        "flow-block-event-loop-fsync", "FLOW-BLOCK",
        # The PR 7 service defect: fsync-under-submit must go through
        # run_in_executor (passing _persist as a value, not calling it).
        '''\
import asyncio
import os


class Server:
    async def submit(self, spec, record):
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._persist, spec, record)

    def _persist(self, skey, record):
        with open(skey, "ab") as fh:
            os.fsync(fh.fileno())
''',
        '''\
import os


class Server:
    async def submit(self, spec, record):
        self._persist(spec, record)

    def _persist(self, skey, record):
        with open(skey, "ab") as fh:
            os.fsync(fh.fileno())
''',
        "repro/service/_mutant.py",
    ),
    (
        "flow-block-future-result", "FLOW-BLOCK",
        '''\
import asyncio


async def run_job(pool, fn, spec):
    return await asyncio.wrap_future(pool.submit(fn, spec))
''',
        '''\
async def run_job(pool, fn, spec):
    return pool.submit(fn, spec).result()
''',
        "repro/service/_mutant.py",
    ),
    (
        "flow-await-lost-coroutine", "FLOW-AWAIT",
        '''\
class Client:
    async def fetch(self, url):
        return url

    async def poll(self, url):
        return await self.fetch(url)
''',
        '''\
class Client:
    async def fetch(self, url):
        return url

    async def poll(self, url):
        coro = self.fetch(url)
        return None
''',
        "repro/service/_mutant.py",
    ),
    (
        "flow-shared-unlocked-global", "FLOW-SHARED",
        '''\
import asyncio
import threading

CACHE = {}
_LOCK = threading.Lock()


def _worker(key, value):
    with _LOCK:
        CACHE[key] = value


async def handle(key, value):
    with _LOCK:
        CACHE[key] = value
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, _worker, key, value)
''',
        '''\
import asyncio

CACHE = {}


def _worker(key, value):
    CACHE[key] = value


async def handle(key, value):
    CACHE[key] = value
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, _worker, key, value)
''',
        "repro/service/_mutant.py",
    ),
    (
        "flow-dictord-set-schedule", "FLOW-DICTORD",
        '''\
def order_tasks(ready, schedule):
    pending = {t for t in ready}
    for t in sorted(pending):
        schedule.append(t)
''',
        '''\
def order_tasks(ready, schedule):
    pending = {t for t in ready}
    for t in pending:
        schedule.append(t)
''',
        "repro/service/_mutant.py",
    ),
    (
        "flow-npovf-i32-index", "FLOW-NPOVF",
        '''\
import numpy as np


def flat_ids(cg, n_tiles):
    wide = cg.node.astype(np.int64)
    return wide * n_tiles + cg.iteration
''',
        '''\
def flat_ids(cg, n_tiles):
    return cg.node * n_tiles + cg.iteration
''',
        "repro/graph/compiled.py",
    ),
]


def _flow_mutants() -> list[Mutant]:
    """Each defective snippet must trip its FLOW rule."""
    out: list[Mutant] = []
    for name, rule, _clean_src, bad_src, rel in _FLOW_SNIPPETS:
        def run(bad_src: str = bad_src, rel: str = rel) -> Report:
            return flow_module(bad_src, rel)
        out.append(Mutant(name, "dataflow", rule, run))
    return out


def _flow_clean_baseline() -> Report:
    """The clean twins through the flow pass (false-positive gate)."""
    rep = Report()
    for _name, _rule, clean_src, _bad_src, rel in _FLOW_SNIPPETS:
        rep.extend(flow_module(clean_src, rel))
    return rep


# ---------------------------------------------------------------------------
# MC mutants: defective queue disciplines / policies through model_check
# ---------------------------------------------------------------------------
#
# Module-level classes (not closures) so the checker's foreign-queue
# cloning (pickle round-trip) works on their instances.

class _HiddenBacklogQueue(ReadyQueue):
    """Honest ledger, but ``depth()`` hides the backlog: pushed tasks
    are never offered to a freeing worker, so the run strands ready
    tasks with every worker idle — a deadlock."""

    def __init__(self) -> None:
        self._held: list[int] = []

    def push(self, node: int, task: int, priority: float) -> None:
        self._held.append(task)

    def pop(self, node: int) -> Optional[int]:  # pragma: no cover - unreached
        return None

    def depth(self, node: int) -> int:
        return 0

    def total(self) -> int:
        return len(self._held)


class _RefusingQueue(ReadyQueue):
    """Advertises backlog (``depth`` > 0) but refuses every ``pop`` —
    a ready task is never assigned to the free worker (starvation)."""

    def __init__(self) -> None:
        self._held: list[int] = []

    def push(self, node: int, task: int, priority: float) -> None:
        self._held.append(task)

    def pop(self, node: int) -> Optional[int]:
        return None

    def depth(self, node: int) -> int:
        return len(self._held)

    def total(self) -> int:
        return len(self._held)


class _LyingLedgerQueue(ReadyQueue):
    """Accepts pushes but reports ``total() == 0``: the deadlock
    accounting the engines rely on is silently wrong."""

    def __init__(self) -> None:
        self._held: list[int] = []

    def push(self, node: int, task: int, priority: float) -> None:
        self._held.append(task)

    def pop(self, node: int) -> Optional[int]:
        return self._held.pop(0) if self._held else None

    def depth(self, node: int) -> int:
        return len(self._held)

    def total(self) -> int:
        return 0


def _queue_policy(policy_name: str, factory: Callable[[], ReadyQueue]
                  ) -> SchedulerInterface:
    class _QueueMutantPolicy(SchedulerInterface):
        name = policy_name

        def plan(self, view: GraphView) -> SchedulePlan:
            return SchedulePlan(
                queue_factory=lambda nodes, cores: factory())

    return _QueueMutantPolicy()


class _UndeclaredMigrator(SchedulerInterface):
    """Returns a placement override without declaring ``migrates``."""

    name = "mutant-migrator"

    def plan(self, view: GraphView) -> SchedulePlan:
        return SchedulePlan(assignment=[0] * view.n_tasks)


def _mc_case() -> tuple[CompiledGraph, MachineSpec]:
    """Tiny exhaustive case every MC mutant runs against."""
    cg = compile_cholesky(4, 32, BlockCyclic2D(2, 2))
    return cg, laptop(nodes=4, cores=1)


def _mc_mutants() -> list[Mutant]:
    cg, machine = _mc_case()

    def check(policy: SchedulerInterface) -> Callable[[], Report]:
        def run() -> Report:
            _result, rep = model_check(cg, machine, policy,
                                       label="mutant-case")
            return rep
        return run

    return [
        Mutant("mc-hidden-backlog-deadlock", "scheduler", "MC-DEADLOCK",
               check(_queue_policy("mutant-deadlock", _HiddenBacklogQueue))),
        Mutant("mc-refused-pop-starvation", "scheduler", "MC-STARVE",
               check(_queue_policy("mutant-starve", _RefusingQueue))),
        Mutant("mc-lying-queue-ledger", "scheduler", "MC-QUEUE",
               check(_queue_policy("mutant-ledger", _LyingLedgerQueue))),
        Mutant("mc-undeclared-migration", "scheduler", "MC-PLACE",
               check(_UndeclaredMigrator())),
    ]


def _mc_clean_baseline() -> Report:
    """The default policy model-checks clean on the tiny case."""
    cg, machine = _mc_case()
    _result, rep = model_check(cg, machine, "critical-path",
                               label="mutant-case")
    return rep


def run_mutation_harness(
    seed: int = 0, base: Optional[Baseline] = None
) -> tuple[list[MutationOutcome], Report]:
    """Build ≥ 10 mutants, run the analyzers, report detection.

    Returns the per-mutant outcomes plus a :class:`Report` that contains
    one error finding per *missed* mutant and one per baseline false
    positive — i.e. an empty-of-errors report proves the
    no-false-negative gate.
    """
    rng = random.Random(seed)
    if base is None:
        base = build_baseline()
    gate = Report()

    # The clean baseline must be clean (no false positives).
    clean = verify_compiled(base.cg, dist=base.dist, graph=base.graph,
                            name="baseline")
    clean.extend(verify_sbc(base.dist, base.N, name="baseline"))
    clean.extend(detect_races(base.recorder, base.cg, name="baseline"))
    rerun = Recorder(source="simulator")
    rep = simulate(base.graph, base.machine, trace=True, recorder=rerun)
    clean.extend(compare_traces(base.recorder, rerun, name="baseline"))
    clean.extend(verify_topology_capacity(base.cg, base.machine,
                                          rep.makespan, name="baseline"))
    clean.extend(_flow_clean_baseline())
    clean.extend(_mc_clean_baseline())
    gate.note_pass("mutation-baseline", 1)
    for f in clean.by_severity(Severity.ERROR):
        gate.add("MUT-FALSE-POSITIVE", Severity.ERROR,
                 f"clean baseline flagged: {f.rule}: {f.message}",
                 f.location,
                 "an analyzer reports defects on a verified-clean run")

    mutants = (_graph_mutants(base, rng) + _capacity_mutants(base)
               + _distribution_mutants(base) + _trace_mutants(base, rng)
               + _flow_mutants() + _mc_mutants())
    outcomes: list[MutationOutcome] = []
    for m in mutants:
        found = m.run()
        outcome = MutationOutcome(
            name=m.name, defect=m.defect, expected_rule=m.expected_rule,
            rules_hit=[r for r in found.rules_hit()
                       if found.by_rule(r)[0].severity != Severity.INFO],
        )
        outcomes.append(outcome)
        gate.note_pass("mutation", 1)
        if not outcome.caught:
            gate.add(
                "MUT-FALSE-NEGATIVE", Severity.ERROR,
                f"injected {m.defect} defect ({m.name}) was not caught: "
                f"expected {m.expected_rule}, analyzers reported "
                f"{outcome.rules_hit or 'nothing'}",
                f"mutant:{m.name}",
                "the matching analyzer rule lost its teeth",
            )
    return outcomes, gate


def self_test(seed: int = 0, verbose: bool = False,
              base: Optional[Baseline] = None) -> Report:
    """The ``--self-test`` entry: mutation gate as a findings report."""
    outcomes, gate = run_mutation_harness(seed=seed, base=base)
    caught = sum(1 for o in outcomes if o.caught)
    if verbose:  # pragma: no cover - CLI cosmetics
        for o in outcomes:
            mark = "caught" if o.caught else "MISSED"
            print(f"  {mark:7s} {o.name:28s} [{o.defect}] -> "
                  f"{', '.join(o.rules_hit) or '-'}")
    gate.add(
        "MUT-SUMMARY", Severity.INFO,
        f"{caught}/{len(outcomes)} injected defects detected "
        f"(seed {seed})",
        "mutation-harness",
    )
    return gate
