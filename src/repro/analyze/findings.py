"""Typed findings shared by every analysis pass.

A :class:`Finding` is one detected defect: a rule id (stable, documented
in ``docs/analyze.md``), a severity, a human message, the location the
defect was detected at (a file/line for lint rules, a graph/task/tile
for schedule rules, a trace event for race rules) and a fix hint.  A
:class:`Report` aggregates findings across passes and serializes to the
machine-readable JSON document the CI step publishes as an artifact.

Severities:

* ``error`` — a proven invariant violation; the CLI exits nonzero;
* ``warning`` — a hazard (e.g. a stale retransmit that *could* reorder
  delivery) that does not falsify the run by itself;
* ``info`` — advisory context attached to a verification (e.g. the
  margin left under a Theorem 1 bound).
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from dataclasses import asdict, dataclass, field
from typing import Optional

__all__ = [
    "Severity", "Finding", "Report", "SEVERITIES", "REPORT_VERSION",
    "severity_rank",
]

#: Recognized severity levels, most severe first.
SEVERITIES = ("error", "warning", "info")

#: Schema version of :meth:`Report.to_dict`.  Version 2 added the
#: per-rule ``rules`` summary; :meth:`Report.from_dict` accepts 1 and 2.
REPORT_VERSION = 2


class Severity:
    """Namespace of the severity constants (plain strings)."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


def severity_rank(severity: str) -> int:
    """Stable ordering key: 0 = error, 1 = warning, 2 = info.

    Unknown severities sort last so a forward-compatible reader never
    promotes them above real errors.
    """
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        return len(SEVERITIES)


@dataclass(frozen=True)
class Finding:
    """One defect (or advisory) detected by an analysis pass."""

    rule: str  # stable rule id, e.g. "SCHED-CYCLE"
    severity: str  # one of SEVERITIES
    message: str  # human-readable statement of the defect
    location: str  # "file:line", "graph:task 17", "trace:event 3", ...
    hint: str = ""  # how to fix / where to look

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tail = f"  [{self.hint}]" if self.hint else ""
        return (f"{self.severity.upper():7s} {self.rule:18s} "
                f"{self.location}: {self.message}{tail}")


@dataclass
class Report:
    """Aggregated findings of one or several analysis passes."""

    findings: list[Finding] = field(default_factory=list)
    #: analysis passes that ran (pass name -> subject count), so a clean
    #: report still proves *what* was checked.
    passes: dict[str, int] = field(default_factory=dict)

    def add(
        self,
        rule: str,
        severity: str,
        message: str,
        location: str,
        hint: str = "",
    ) -> Finding:
        f = Finding(rule, severity, message, location, hint)
        self.findings.append(f)
        return f

    def note_pass(self, name: str, subjects: int = 1) -> None:
        """Record that a pass examined ``subjects`` more subjects."""
        self.passes[name] = self.passes.get(name, 0) + subjects

    def extend(self, other: "Report") -> None:
        self.findings.extend(other.findings)
        for name, n in other.passes.items():
            self.note_pass(name, n)

    # -- queries -------------------------------------------------------------

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def by_severity(self, severity: str) -> list[Finding]:
        return [f for f in self.findings if f.severity == severity]

    def by_rule(self, rule: str) -> list[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def rules_hit(self) -> list[str]:
        """Distinct rule ids with at least one finding, first-hit order."""
        seen: dict[str, None] = {}
        for f in self.findings:
            seen.setdefault(f.rule, None)
        return list(seen)

    def ordered(self) -> list[Finding]:
        """Findings sorted by severity (errors first), stably: findings
        of equal severity keep their discovery order."""
        return sorted(self.findings, key=lambda f: severity_rank(f.severity))

    @property
    def num_errors(self) -> int:
        return len(self.by_severity(Severity.ERROR))

    @property
    def num_warnings(self) -> int:
        return len(self.by_severity(Severity.WARNING))

    def ok(self, *, strict: bool = False) -> bool:
        """True when no errors (``strict`` also rejects warnings)."""
        if self.num_errors:
            return False
        return not (strict and self.num_warnings)

    def exit_code(self, *, strict: bool = False) -> int:
        return 0 if self.ok(strict=strict) else 1

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        rules: dict[str, dict[str, object]] = {}
        for f in self.findings:
            row = rules.setdefault(
                f.rule, {"id": f.rule, "count": 0,
                         "max_severity": f.severity})
            row["count"] = int(row["count"]) + 1  # type: ignore[call-overload]
            if severity_rank(f.severity) < severity_rank(
                    str(row["max_severity"])):
                row["max_severity"] = f.severity
        return {
            "version": REPORT_VERSION,
            "passes": dict(self.passes),
            "summary": {
                "errors": self.num_errors,
                "warnings": self.num_warnings,
                "info": len(self.by_severity(Severity.INFO)),
            },
            "rules": [rules[r] for r in sorted(rules)],
            "findings": [asdict(f) for f in self.findings],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: object) -> str:
        """Write the JSON document; returns the path written."""
        with open(str(path), "w") as fh:
            fh.write(self.to_json() + "\n")
        return str(path)

    @classmethod
    def from_dict(cls, doc: dict[str, object]) -> "Report":
        """Parse a serialized report.  Accepts schema versions 1 and 2
        (the v2 ``rules`` summary is derived, so it is recomputed rather
        than trusted)."""
        version = doc.get("version", 1)
        if version not in (1, REPORT_VERSION):
            raise ValueError(f"unsupported report version {version!r}")
        rep = cls()
        passes = doc.get("passes", {})
        if isinstance(passes, dict):
            for name, n in passes.items():
                rep.note_pass(str(name), int(n))  # type: ignore[call-overload]
        raw = doc.get("findings", [])
        if isinstance(raw, list):
            for obj in raw:
                rep.add(obj["rule"], obj["severity"], obj["message"],
                        obj["location"], obj.get("hint", ""))
        return rep

    def render(self, *, max_findings: int = 50) -> str:
        """Human-readable multi-line summary (what the CLI prints)."""
        lines: list[str] = []
        for f in self.findings[:max_findings]:
            lines.append(str(f))
        extra = len(self.findings) - max_findings
        if extra > 0:
            lines.append(f"... and {extra} more finding(s)")
        checked = sum(self.passes.values())
        lines.append(
            f"{self.num_errors} error(s), {self.num_warnings} warning(s), "
            f"{len(self.by_severity(Severity.INFO))} info "
            f"across {len(self.passes)} pass(es), {checked} subject(s)"
        )
        return "\n".join(lines)


def merge(reports: Iterable[Report]) -> Report:
    """Fold several pass reports into one."""
    out = Report()
    for r in reports:
        out.extend(r)
    return out
