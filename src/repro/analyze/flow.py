"""Pass 4: CFG + intraprocedural dataflow concurrency linter.

Five rules over the repository's own source, built on ``ast`` alone (no
imports, no execution):

* ``FLOW-BLOCK`` — blocking I/O (``os.fsync``, ``time.sleep``,
  ``subprocess.*``, ``open``, result-store writes) or
  ``pool.submit(...).result()`` reachable inside an ``async def`` —
  directly or through a chain of same-module synchronous helpers.  This
  is the defect class the sweep service's dedicated I/O executor exists
  to prevent: one fsync on the event loop stalls every in-flight job.
* ``FLOW-AWAIT`` — a coroutine object is created but never awaited,
  gathered, scheduled, or otherwise consumed; the call silently does
  nothing.
* ``FLOW-SHARED`` — module-level (or closure-captured) mutable state
  mutated from both the event loop and pool workers without a common
  module-level lock.
* ``FLOW-DICTORD`` — iteration over an unordered ``set`` feeding an
  order-sensitive sink (``append``/``heappush``/hash ``update``/...),
  a determinism hazard for the two-engine bit-equality contract.
* ``FLOW-NPOVF`` — ``int32``/``uint32`` index arithmetic in the
  compiled-graph and kernel hot paths that can overflow at paper scale
  (N = 1000 means ~1.7e8 tasks; a pair key ``id * num_nodes`` must be
  widened to ``int64`` first).

The pass parses each file, builds a basic-block CFG per function and
runs a forward may-analysis over it, so findings respect reachability
(code after ``return``/``raise``/``break`` is never flagged) and branch
merge points join tags conservatively.

Run via ``python -m repro.analyze --flow`` (or ``--all``); wired into
CI as a blocking step.
"""

from __future__ import annotations

import ast
from pathlib import Path
from collections.abc import Sequence
from typing import Optional, Union

from .findings import Report, Severity

__all__ = ["flow_module", "flow_sources", "NPOVF_FILES"]

_AnyFunc = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Calls that block the calling thread (dotted suffix match).
_BLOCKING_CALLS: set[tuple[str, ...]] = {
    ("os", "fsync"), ("os", "replace"), ("os", "rename"),
    ("time", "sleep"),
    ("subprocess", "run"), ("subprocess", "call"),
    ("subprocess", "check_call"), ("subprocess", "check_output"),
    ("subprocess", "Popen"),
    ("socket", "create_connection"),
}

#: Bare builtins that block (file open hits the disk).
_BLOCKING_BARE = {"open"}

#: Write/flush methods of the result store: calling them inline in a
#: coroutine re-introduces the fsync-on-the-event-loop defect.
_STORE_METHODS = {"put", "put_structure", "sync", "compact"}

#: Methods that consume a coroutine argument (scheduling it).
_CORO_CONSUMERS = {
    "gather", "create_task", "ensure_future", "wait_for", "wait",
    "run", "run_until_complete", "shield", "as_completed",
}

#: Mutating container methods (for FLOW-SHARED).
_MUTATING_METHODS = {
    "append", "extend", "add", "update", "insert", "remove", "pop",
    "popleft", "appendleft", "clear", "setdefault", "discard",
    "__setitem__",
}

#: Order-sensitive sinks inside a set-iterating loop (FLOW-DICTORD).
_ORDER_SINKS = {
    "append", "extend", "appendleft", "push", "put", "heappush",
    "update", "write",
}

#: Files where FLOW-NPOVF applies (int32 index hot paths).
NPOVF_FILES = (
    "graph/compiled.py",
    "runtime/simulator/_kernel.py",
    "runtime/simulator/fast_engine.py",
)

#: ``CompiledGraph``/comm-plan columns known to be int32 (see
#: ``repro.graph.compiled``) — loading one of these attributes yields a
#: narrow array.
_I32_FIELDS = {
    "node", "iteration", "write_id", "read_ids", "data_producer",
    "data_source_node", "missing", "lc_ids", "rn_ids", "pair_dst",
    "pair_src",
}

#: numpy constructors whose ``dtype=`` keyword decides the width.
_NP_CTORS = {"arange", "zeros", "empty", "full", "array", "asarray"}

#: numpy functions that preserve their first argument's dtype.
_NP_PRESERVING = {"repeat", "sort", "concatenate", "unique", "tile"}


def _dotted(node: ast.AST) -> Optional[tuple[str, ...]]:
    """``a.b.c`` -> ``("a", "b", "c")``; None for non-dotted shapes."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return tuple(reversed(parts))
    return None


def _is_narrow_dtype(node: ast.AST) -> bool:
    d = _dotted(node)
    if d and d[-1] in ("int32", "uint32"):
        return True
    return isinstance(node, ast.Constant) and node.value in ("int32", "uint32")


def _is_wide_dtype(node: ast.AST) -> bool:
    d = _dotted(node)
    if d and d[-1] in ("int64", "uint64", "intp", "float64", "float32"):
        return True
    return isinstance(node, ast.Constant) and node.value in (
        "int64", "uint64", "intp", "float64", "float32",
    )


# ---------------------------------------------------------------------------
# Control-flow graph
# ---------------------------------------------------------------------------

#: CFG items: ("stmt", s) analyses the whole simple statement; ("head", s)
#: analyses only the control expression of a compound statement (test /
#: iter / with-items) whose body lives in other blocks.
_Item = tuple[str, ast.stmt]


class _Block:
    __slots__ = ("items", "succ")

    def __init__(self) -> None:
        self.items: list[_Item] = []
        self.succ: list[int] = []


class _Cfg:
    """Basic-block CFG for one function body; block 0 is the entry and
    block 1 the virtual exit."""

    def __init__(self, body: Sequence[ast.stmt]) -> None:
        self.blocks: list[_Block] = [_Block(), _Block()]
        self._loops: list[tuple[int, int]] = []  # (head, after)
        out = self._seq(body, 0)
        if out >= 0:
            self._edge(out, 1)

    def _new(self) -> int:
        self.blocks.append(_Block())
        return len(self.blocks) - 1

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succ:
            self.blocks[src].succ.append(dst)

    def _seq(self, body: Sequence[ast.stmt], cur: int) -> int:
        """Thread ``body`` starting in block ``cur``; return the open
        block at the end, or -1 if every path terminated."""
        for stmt in body:
            if cur < 0:
                # Dead code after return/raise/break: park it in an
                # unreachable block so the worklist never visits it.
                cur = self._new()
            cur = self._stmt(stmt, cur)
        return cur

    def _stmt(self, stmt: ast.stmt, cur: int) -> int:
        blocks = self.blocks
        if isinstance(stmt, ast.If):
            blocks[cur].items.append(("head", stmt))
            after = self._new()
            then_entry = self._new()
            self._edge(cur, then_entry)
            then_out = self._seq(stmt.body, then_entry)
            if then_out >= 0:
                self._edge(then_out, after)
            if stmt.orelse:
                else_entry = self._new()
                self._edge(cur, else_entry)
                else_out = self._seq(stmt.orelse, else_entry)
                if else_out >= 0:
                    self._edge(else_out, after)
            else:
                self._edge(cur, after)
            return after
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = self._new()
            self._edge(cur, head)
            blocks[head].items.append(("head", stmt))
            after = self._new()
            body_entry = self._new()
            self._edge(head, body_entry)
            infinite = isinstance(stmt, ast.While) and isinstance(
                stmt.test, ast.Constant) and bool(stmt.test.value)
            self._loops.append((head, after))
            body_out = self._seq(stmt.body, body_entry)
            self._loops.pop()
            if body_out >= 0:
                self._edge(body_out, head)
            if stmt.orelse:
                else_entry = self._new()
                self._edge(head, else_entry)
                else_out = self._seq(stmt.orelse, else_entry)
                if else_out >= 0:
                    self._edge(else_out, after)
            elif not infinite:
                self._edge(head, after)
            return after
        if isinstance(stmt, ast.Try):
            after = self._new()
            body_entry = self._new()
            self._edge(cur, body_entry)
            body_out = self._seq(stmt.body, body_entry)
            else_out = body_out
            if stmt.orelse and body_out >= 0:
                else_out = self._seq(stmt.orelse, body_out)
            handler_outs: list[int] = []
            for handler in stmt.handlers:
                h_entry = self._new()
                # An exception may fire before or after any body effect.
                self._edge(cur, h_entry)
                if body_out >= 0:
                    self._edge(body_out, h_entry)
                h_out = self._seq(handler.body, h_entry)
                if h_out >= 0:
                    handler_outs.append(h_out)
            exits = handler_outs + ([else_out] if else_out >= 0 else [])
            if stmt.finalbody:
                f_entry = self._new()
                for b in exits:
                    self._edge(b, f_entry)
                if not exits:
                    self._edge(cur, f_entry)
                f_out = self._seq(stmt.finalbody, f_entry)
                if f_out >= 0:
                    self._edge(f_out, after)
                    return after
                return -1
            for b in exits:
                self._edge(b, after)
            return after if exits else -1
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            blocks[cur].items.append(("head", stmt))
            return self._seq(stmt.body, cur)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            blocks[cur].items.append(("stmt", stmt))
            self._edge(cur, 1)
            return -1
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._edge(cur, self._loops[-1][1])
            return -1
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self._edge(cur, self._loops[-1][0])
            return -1
        # Nested defs/classes bind a name; their bodies are analysed as
        # separate functions.  Everything else is a simple statement.
        blocks[cur].items.append(("stmt", stmt))
        return cur


# ---------------------------------------------------------------------------
# Dataflow state
# ---------------------------------------------------------------------------

class _State:
    """Per-program-point tags, joined with may-union at CFG merges."""

    __slots__ = ("sets", "coros", "futs", "i32")

    def __init__(self) -> None:
        self.sets: set[str] = set()
        self.coros: dict[str, int] = {}
        self.futs: set[str] = set()
        self.i32: dict[str, str] = {}  # name -> "i32" | "wide"

    def copy(self) -> "_State":
        st = _State()
        st.sets = set(self.sets)
        st.coros = dict(self.coros)
        st.futs = set(self.futs)
        st.i32 = dict(self.i32)
        return st

    def merge(self, other: "_State") -> bool:
        """Join ``other`` into self; True if anything changed."""
        changed = False
        if not other.sets <= self.sets:
            self.sets |= other.sets
            changed = True
        for name, line in other.coros.items():
            if name not in self.coros:
                self.coros[name] = line
                changed = True
        if not other.futs <= self.futs:
            self.futs |= other.futs
            changed = True
        for name, tag in other.i32.items():
            old = self.i32.get(name)
            if old is None or (old == "wide" and tag == "i32"):
                self.i32[name] = tag  # narrow wins: may-overflow
                changed = True
        return changed


class _Val:
    """Abstract value of one expression."""

    __slots__ = ("is_set", "i32", "coro_line", "is_future")

    def __init__(
        self,
        is_set: bool = False,
        i32: Optional[str] = None,
        coro_line: Optional[int] = None,
        is_future: bool = False,
    ) -> None:
        self.is_set = is_set
        self.i32 = i32
        self.coro_line = coro_line
        self.is_future = is_future


# ---------------------------------------------------------------------------
# Module context: symbol tables + blocking-call summaries
# ---------------------------------------------------------------------------

class _FnInfo:
    __slots__ = ("qual", "node", "cls", "is_async", "blocking")

    def __init__(self, qual: str, node: _AnyFunc, cls: Optional[str]) -> None:
        self.qual = qual
        self.node = node
        self.cls = cls
        self.is_async = isinstance(node, ast.AsyncFunctionDef)
        #: Human description of a blocking call reachable from this
        #: function (sync functions only), or None.
        self.blocking: Optional[str] = None


class _ModuleCtx:
    def __init__(self, tree: ast.Module, rel: str) -> None:
        self.rel = rel
        self.npovf = any(rel.endswith(f) for f in NPOVF_FILES)
        self.functions: list[_FnInfo] = []
        self.by_bare: dict[str, list[_FnInfo]] = {}
        self.by_method: dict[tuple[str, str], _FnInfo] = {}
        self.module_globals: set[str] = set()
        self.module_locks: set[str] = set()
        self._collect(tree)
        self._blocking_fixpoint()

    # -- symbol tables ----------------------------------------------------

    def _collect(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            for name in _bound_names(stmt):
                self.module_globals.add(name)
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                d = _dotted(stmt.value.func)
                if d and d[-1] in ("Lock", "RLock"):
                    for tgt in stmt.targets:
                        if isinstance(tgt, ast.Name):
                            self.module_locks.add(tgt.id)

        def walk(node: ast.AST, cls: Optional[str], prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}{child.name}"
                    info = _FnInfo(qual, child, cls)
                    self.functions.append(info)
                    self.by_bare.setdefault(child.name, []).append(info)
                    if cls is not None:
                        self.by_method[(cls, child.name)] = info
                    walk(child, cls, f"{qual}.")
                elif isinstance(child, ast.ClassDef):
                    walk(child, child.name, f"{child.name}.")

        walk(tree, None, "")

    def resolve_call(self, fn: _FnInfo, func: ast.AST) -> Optional[_FnInfo]:
        """Resolve a called expression to a same-module function."""
        d = _dotted(func)
        if d is None:
            return None
        if len(d) == 1:
            cands = self.by_bare.get(d[0], [])
            if len(cands) == 1:
                return cands[0]
            return None
        if len(d) == 2 and d[0] == "self" and fn.cls is not None:
            return self.by_method.get((fn.cls, d[1]))
        return None

    # -- blocking summaries ----------------------------------------------

    def _direct_blocking(self, fn: _FnInfo) -> Optional[str]:
        for node in _walk_no_defs(fn.node):
            if isinstance(node, ast.Call):
                desc = _blocking_call(node, futs=frozenset())
                if desc is not None:
                    return desc
        return None

    def _blocking_fixpoint(self) -> None:
        for fn in self.functions:
            if not fn.is_async:
                fn.blocking = self._direct_blocking(fn)
        changed = True
        while changed:
            changed = False
            for fn in self.functions:
                if fn.is_async or fn.blocking is not None:
                    continue
                for node in _walk_no_defs(fn.node):
                    if not isinstance(node, ast.Call):
                        continue
                    callee = self.resolve_call(fn, node.func)
                    if callee is not None and not callee.is_async \
                            and callee.blocking is not None:
                        fn.blocking = f"{callee.blocking} via {callee.qual}()"
                        changed = True
                        break


def _bound_names(stmt: ast.stmt) -> list[str]:
    names: list[str] = []
    if isinstance(stmt, ast.Assign):
        for tgt in stmt.targets:
            if isinstance(tgt, ast.Name):
                names.append(tgt.id)
            elif isinstance(tgt, (ast.Tuple, ast.List)):
                names.extend(e.id for e in tgt.elts if isinstance(e, ast.Name))
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        if isinstance(stmt.target, ast.Name):
            names.append(stmt.target.id)
    return names


def _walk_no_defs(fn: _AnyFunc) -> list[ast.AST]:
    """Walk a function body without descending into nested defs."""
    out: list[ast.AST] = []
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


def _blocking_call(call: ast.Call, futs: frozenset) -> Optional[str]:
    """Classify one call as blocking the current thread, or None."""
    d = _dotted(call.func)
    if d is not None:
        if d[-1] == "shutdown":
            return None  # lifecycle teardown, exempt by design
        for pat in _BLOCKING_CALLS:
            if d[-len(pat):] == pat:
                return ".".join(pat)
        if len(d) == 1 and d[0] in _BLOCKING_BARE:
            return d[0]
        if len(d) >= 2 and d[-2] == "store" and d[-1] in _STORE_METHODS:
            return f"store.{d[-1]}"
    func = call.func
    if isinstance(func, ast.Attribute):
        if func.attr == "result":
            base = func.value
            based = _dotted(base)
            if isinstance(base, ast.Call):
                inner = _dotted(base.func)
                if inner and inner[-1] in ("submit", "run_in_executor"):
                    return f"{inner[-1]}(...).result"
            elif based is not None and len(based) == 1 and based[0] in futs:
                return f"{based[0]}.result"
    return None


# ---------------------------------------------------------------------------
# Per-function analysis
# ---------------------------------------------------------------------------

class _FnAnalysis:
    """Run the forward dataflow over one function's CFG and report."""

    def __init__(self, ctx: _ModuleCtx, fn: _FnInfo, rep: Report) -> None:
        self.ctx = ctx
        self.fn = fn
        self.rep = rep
        self.reported: set[tuple[str, int]] = set()
        self.locals = {a.arg for a in _all_args(fn.node)}

    # -- driver -----------------------------------------------------------

    def run(self) -> None:
        cfg = _Cfg(self.fn.node.body)
        states: dict[int, _State] = {0: _State()}
        work = [0]
        while work:
            bid = work.pop()
            out = states[bid].copy()
            self._transfer(out, cfg.blocks[bid], report=False)
            for succ in cfg.blocks[bid].succ:
                if succ not in states:
                    states[succ] = out.copy()
                    work.append(succ)
                elif states[succ].merge(out):
                    work.append(succ)
        for bid in sorted(states):
            if bid == 1:
                continue
            self._transfer(states[bid].copy(), cfg.blocks[bid], report=True)
        exit_state = states.get(1)
        if exit_state is not None:
            for name, line in sorted(exit_state.coros.items()):
                self._emit(
                    "FLOW-AWAIT", "error", line,
                    f"coroutine assigned to '{name}' in "
                    f"{self.fn.qual}() is never awaited",
                    "await it, pass it to asyncio.gather/create_task, or "
                    "drop the call",
                )

    def _emit(self, rule: str, severity: Severity, line: int,
              message: str, hint: str) -> None:
        key = (rule, line)
        if key in self.reported:
            return
        self.reported.add(key)
        self.rep.add(rule, severity, message,
                     location=f"{self.ctx.rel}:{line}", hint=hint)

    # -- transfer ---------------------------------------------------------

    def _transfer(self, st: _State, block: _Block, report: bool) -> None:
        for kind, stmt in block.items:
            if kind == "head":
                self._head(st, stmt, report)
            else:
                self._stmt(st, stmt, report)

    def _head(self, st: _State, stmt: ast.stmt, report: bool) -> None:
        if isinstance(stmt, (ast.If, ast.While)):
            self._eval(st, stmt.test, report)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            val = self._eval(st, stmt.iter, report)
            if report and val.is_set and _body_has_order_sink(stmt):
                self._emit(
                    "FLOW-DICTORD", "warning", stmt.lineno,
                    f"iteration over an unordered set feeds an "
                    f"order-sensitive sink in {self.fn.qual}()",
                    "wrap the iterable in sorted(...) to pin the order",
                )
            for name in _target_names(stmt.target):
                self._kill(st, name)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(st, item.context_expr, report)
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        self._kill(st, name)

    def _stmt(self, st: _State, stmt: ast.stmt, report: bool) -> None:
        if isinstance(stmt, ast.Assign):
            val = self._eval(st, stmt.value, report)
            for tgt in stmt.targets:
                self._assign(st, tgt, val, report)
        elif isinstance(stmt, ast.AnnAssign):
            val = _Val()
            if stmt.value is not None:
                val = self._eval(st, stmt.value, report)
            self._assign(st, stmt.target, val, report)
        elif isinstance(stmt, ast.AugAssign):
            self._eval(st, stmt.value, report)
        elif isinstance(stmt, ast.Expr):
            val = self._eval(st, stmt.value, report, stmt_expr=True)
            if report and val.coro_line is not None:
                self._emit(
                    "FLOW-AWAIT", "error", val.coro_line,
                    f"coroutine call in {self.fn.qual}() is discarded "
                    "without being awaited",
                    "await it or schedule it with asyncio.create_task",
                )
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(st, stmt.value, report)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            self._kill(st, stmt.name)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(st, child, report)

    def _assign(self, st: _State, tgt: ast.expr, val: _Val,
                report: bool) -> None:
        if isinstance(tgt, ast.Name):
            name = tgt.id
            self.locals.add(name)
            old = st.coros.get(name)
            if report and old is not None and val.coro_line != old:
                self._emit(
                    "FLOW-AWAIT", "error", old,
                    f"coroutine held by '{name}' in {self.fn.qual}() is "
                    "overwritten before being awaited",
                    "await the first coroutine before rebinding the name",
                )
            self._kill(st, name)
            if val.is_set:
                st.sets.add(name)
            if val.coro_line is not None:
                st.coros[name] = val.coro_line
            if val.is_future:
                st.futs.add(name)
            if val.i32 is not None:
                st.i32[name] = val.i32
        elif isinstance(tgt, (ast.Tuple, ast.List)):
            for elt in tgt.elts:
                self._assign(st, elt, _Val(), report)
        else:
            self._eval(st, tgt, report)

    def _kill(self, st: _State, name: str) -> None:
        st.sets.discard(name)
        st.coros.pop(name, None)
        st.futs.discard(name)
        st.i32.pop(name, None)

    # -- expressions ------------------------------------------------------

    def _eval(self, st: _State, expr: ast.expr, report: bool,
              stmt_expr: bool = False, under_await: bool = False) -> _Val:
        if isinstance(expr, ast.Name):
            val = _Val(
                is_set=expr.id in st.sets,
                i32=st.i32.get(expr.id),
                is_future=expr.id in st.futs,
            )
            # Any use of a pending-coroutine name consumes it (await,
            # gather arg, return, container append — all escape).
            st.coros.pop(expr.id, None)
            return val
        if isinstance(expr, ast.Await):
            return self._eval(st, expr.value, report, under_await=True)
        if isinstance(expr, ast.Call):
            return self._call(st, expr, report, stmt_expr, under_await)
        if isinstance(expr, (ast.Set, ast.SetComp)):
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    self._eval(st, child, report)
                elif isinstance(child, ast.comprehension):
                    self._eval(st, child.iter, report)
            return _Val(is_set=True)
        if isinstance(expr, ast.BinOp):
            left = self._eval(st, expr.left, report)
            right = self._eval(st, expr.right, report)
            if isinstance(expr.op, (ast.BitOr, ast.BitAnd, ast.Sub,
                                    ast.BitXor)) and (left.is_set or
                                                      right.is_set):
                return _Val(is_set=True)
            if self.ctx.npovf and isinstance(expr.op, ast.Mult):
                self._npovf_mult(expr, left, right, report)
            if left.i32 == "wide" or right.i32 == "wide":
                return _Val(i32="wide")
            if left.i32 == "i32" or right.i32 == "i32":
                return _Val(i32="i32")
            return _Val()
        if isinstance(expr, ast.Subscript):
            base = self._eval(st, expr.value, report)
            self._eval(st, expr.slice, report)
            return _Val(i32=base.i32)
        if isinstance(expr, ast.Attribute):
            self._eval(st, expr.value, report)
            if self.ctx.npovf and expr.attr in _I32_FIELDS:
                return _Val(i32="i32")
            return _Val()
        if isinstance(expr, ast.Lambda):
            return _Val()
        val = _Val()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._eval(st, child, report)
            elif isinstance(child, ast.comprehension):
                self._eval(st, child.iter, report)
        return val

    def _call(self, st: _State, call: ast.Call, report: bool,
              stmt_expr: bool, under_await: bool) -> _Val:
        d = _dotted(call.func)

        # FLOW-BLOCK: direct blocking primitive, or a same-module sync
        # helper whose summary is blocking.
        if self.fn.is_async:
            desc = _blocking_call(call, futs=frozenset(st.futs))
            if desc is None:
                callee = self.ctx.resolve_call(self.fn, call.func)
                if callee is not None and not callee.is_async \
                        and callee.blocking is not None:
                    desc = f"{callee.blocking} via {callee.qual}()"
            if report and desc is not None:
                self._emit(
                    "FLOW-BLOCK", "error", call.lineno,
                    f"blocking call ({desc}) on the event loop in "
                    f"async {self.fn.qual}()",
                    "move it behind loop.run_in_executor / a dedicated "
                    "I/O executor",
                )

        # Evaluate the callee object and the arguments.
        if isinstance(call.func, ast.Attribute):
            self._eval(st, call.func.value, report)
        for arg in call.args:
            node = arg.value if isinstance(arg, ast.Starred) else arg
            self._eval(st, node, report)
        for kw in call.keywords:
            self._eval(st, kw.value, report)

        if d is not None:
            name = d[-1]
            if len(d) == 1 and name in ("set", "frozenset"):
                return _Val(is_set=True)
            if name in ("union", "intersection", "difference",
                        "symmetric_difference"):
                base_d = _dotted(call.func)
                if base_d and len(base_d) >= 2 and base_d[0] in st.sets:
                    return _Val(is_set=True)
            if len(d) == 1 and name in ("sorted", "len", "sum", "min",
                                        "max"):
                return _Val()
            if len(d) == 1 and name in ("list", "tuple"):
                # list(s)/tuple(s) freeze the *set* order — still tainted.
                if call.args:
                    inner = self._peek_set(st, call.args[0])
                    return _Val(is_set=inner)
                return _Val()
            if name in ("submit", "run_in_executor") and not under_await:
                return _Val(is_future=True)
            if name == "astype" and call.args:
                if _is_wide_dtype(call.args[0]):
                    return _Val(i32="wide")
                if _is_narrow_dtype(call.args[0]):
                    return _Val(i32="i32")
                return _Val()
            if len(d) == 2 and d[0] in ("np", "numpy"):
                if name in ("int64", "uint64"):
                    return _Val(i32="wide")
                if name in ("int32", "uint32"):
                    return _Val(i32="i32")
                if name in _NP_CTORS:
                    for kw in call.keywords:
                        if kw.arg == "dtype":
                            if _is_narrow_dtype(kw.value):
                                return _Val(i32="i32")
                            if _is_wide_dtype(kw.value):
                                return _Val(i32="wide")
                    return _Val()
                if name in _NP_PRESERVING and call.args:
                    inner = self._eval(st, call.args[0], report=False)
                    return _Val(i32=inner.i32)

        # Same-module coroutine construction (FLOW-AWAIT material).
        callee = self.ctx.resolve_call(self.fn, call.func)
        if callee is not None and callee.is_async and not under_await:
            return _Val(coro_line=call.lineno)
        return _Val()

    def _peek_set(self, st: _State, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in st.sets
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        return False

    def _npovf_mult(self, expr: ast.BinOp, left: _Val, right: _Val,
                    report: bool) -> None:
        if not report:
            return
        if "wide" in (left.i32, right.i32):
            return
        if "i32" not in (left.i32, right.i32):
            return
        # A small constant factor cannot overflow an int32 task id.
        for operand in (expr.left, expr.right):
            if isinstance(operand, ast.Constant) and \
                    isinstance(operand.value, (int, float)) and \
                    abs(operand.value) <= 64:
                return
        self._emit(
            "FLOW-NPOVF", "error", expr.lineno,
            f"int32 index arithmetic in {self.fn.qual}() can overflow "
            "at N=1000 paper scale",
            "widen with .astype(np.int64) before multiplying",
        )


def _all_args(fn: _AnyFunc) -> list[ast.arg]:
    a = fn.args
    out = list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs)
    if a.vararg:
        out.append(a.vararg)
    if a.kwarg:
        out.append(a.kwarg)
    return out


def _target_names(tgt: ast.expr) -> list[str]:
    if isinstance(tgt, ast.Name):
        return [tgt.id]
    if isinstance(tgt, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in tgt.elts:
            out.extend(_target_names(elt))
        return out
    return []


def _body_has_order_sink(loop: Union[ast.For, ast.AsyncFor]) -> bool:
    stack: list[ast.AST] = list(loop.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, ast.Call):
            d = _dotted(node.func)
            if d is not None and d[-1] in _ORDER_SINKS:
                return True
        stack.extend(ast.iter_child_nodes(node))
    return False


# ---------------------------------------------------------------------------
# FLOW-SHARED: loop-side vs worker-side mutation of shared state
# ---------------------------------------------------------------------------

class _Mutation:
    __slots__ = ("name", "lineno", "locked")

    def __init__(self, name: str, lineno: int, locked: bool) -> None:
        self.name = name
        self.lineno = lineno
        self.locked = locked


def _fn_mutations(ctx: _ModuleCtx, fn: _FnInfo) -> list[_Mutation]:
    """Module-global (or nonlocal) names this function mutates."""
    globals_decl: set[str] = set()
    nonlocals_decl: set[str] = set()
    local_binds = {a.arg for a in _all_args(fn.node)}
    for node in _walk_no_defs(fn.node):
        if isinstance(node, ast.Global):
            globals_decl.update(node.names)
        elif isinstance(node, ast.Nonlocal):
            nonlocals_decl.update(node.names)
        elif isinstance(node, ast.Assign):
            for tgt in node.targets:
                local_binds.update(_target_names(tgt))

    shared = (ctx.module_globals - (local_binds - globals_decl)) \
        | globals_decl | nonlocals_decl
    out: list[_Mutation] = []

    def visit(stmts: Sequence[ast.stmt], lock_depth: int) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                depth = lock_depth
                for item in stmt.items:
                    d = _dotted(item.context_expr)
                    if d is not None and d[0] in ctx.module_locks:
                        depth += 1
                visit(stmt.body, depth)
                continue
            locked = lock_depth > 0
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                for tgt in targets:
                    if isinstance(tgt, ast.Name) and tgt.id in (
                            globals_decl | nonlocals_decl):
                        out.append(_Mutation(tgt.id, stmt.lineno, locked))
                    elif isinstance(tgt, ast.Subscript):
                        d = _dotted(tgt.value)
                        if d is not None and d[0] in shared:
                            out.append(_Mutation(d[0], stmt.lineno, locked))
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr in _MUTATING_METHODS:
                    d = _dotted(node.func.value)
                    if d is not None and d[0] in shared and \
                            d[0] not in local_binds:
                        out.append(_Mutation(d[0], node.lineno, locked))
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    pass  # handled by the explicit cases above
            if isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While)):
                visit(stmt.body, lock_depth)
                visit(stmt.orelse, lock_depth)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body, lock_depth)
                for handler in stmt.handlers:
                    visit(handler.body, lock_depth)
                visit(stmt.orelse, lock_depth)
                visit(stmt.finalbody, lock_depth)

    visit(fn.node.body, 0)
    return out


def _worker_entries(ctx: _ModuleCtx, tree: ast.Module) -> set[str]:
    """Functions handed to executors/threads (run off the event loop)."""
    entries: set[str] = set()

    def resolve(expr: ast.expr, cls: Optional[str]) -> None:
        d = _dotted(expr)
        if d is None:
            return
        if len(d) == 1:
            for info in ctx.by_bare.get(d[0], []):
                entries.add(info.qual)
        elif len(d) == 2 and d[0] == "self" and cls is not None:
            info = ctx.by_method.get((cls, d[1]))
            if info is not None:
                entries.add(info.qual)

    def walk(node: ast.AST, cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                walk(child, child.name)
                continue
            if isinstance(child, ast.Call):
                d = _dotted(child.func)
                if d is not None:
                    if d[-1] == "run_in_executor" and len(child.args) >= 2:
                        resolve(child.args[1], cls)
                    elif d[-1] in ("submit", "apply_async") and child.args:
                        resolve(child.args[0], cls)
                    elif d[-1] in ("Thread", "Process"):
                        for kw in child.keywords:
                            if kw.arg == "target":
                                resolve(kw.value, cls)
            walk(child, cls)

    walk(tree, None)
    return entries


def _transitive(ctx: _ModuleCtx, roots: set[str]) -> set[str]:
    """Close a set of function quals under same-module sync calls."""
    by_qual = {fn.qual: fn for fn in ctx.functions}
    seen = set(roots)
    work = [q for q in roots if q in by_qual]
    while work:
        fn = by_qual.get(work.pop())
        if fn is None:
            continue
        for node in _walk_no_defs(fn.node):
            if isinstance(node, ast.Call):
                callee = ctx.resolve_call(fn, node.func)
                if callee is not None and not callee.is_async and \
                        callee.qual not in seen:
                    seen.add(callee.qual)
                    work.append(callee.qual)
    return seen


def _check_shared(ctx: _ModuleCtx, tree: ast.Module, rep: Report) -> None:
    worker_roots = _worker_entries(ctx, tree)
    loop_roots = {fn.qual for fn in ctx.functions if fn.is_async}
    if not worker_roots or not loop_roots:
        return
    worker_side = _transitive(ctx, worker_roots)
    loop_side = _transitive(ctx, loop_roots)

    mutations: dict[str, list[tuple[str, _Mutation]]] = {}
    for fn in ctx.functions:
        side = ""
        if fn.qual in worker_side:
            side += "w"
        if fn.qual in loop_side or fn.is_async:
            side += "l"
        if not side:
            continue
        for mut in _fn_mutations(ctx, fn):
            mutations.setdefault(mut.name, []).append((side, mut))

    for name, muts in sorted(mutations.items()):
        sides = set("".join(side for side, _ in muts))
        if not {"w", "l"} <= sides:
            continue
        if all(mut.locked for _, mut in muts):
            continue
        first = min((mut for _, mut in muts), key=lambda m: m.lineno)
        rep.add(
            "FLOW-SHARED", "error",
            f"'{name}' is mutated from both the event loop and pool "
            "workers without a shared lock",
            location=f"{ctx.rel}:{first.lineno}",
            hint="guard every mutation with one module-level lock, or "
                 "confine the state to one side",
        )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def flow_module(text: str, rel: str, rep: Optional[Report] = None) -> Report:
    """Run the dataflow pass over one module's source text."""
    rep = rep if rep is not None else Report()
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        rep.add("ANA-PARSE", "error", f"file does not parse: {exc.msg}",
                location=f"{rel}:{exc.lineno or 0}",
                hint="fix the syntax error")
        return rep
    ctx = _ModuleCtx(tree, rel)
    for fn in ctx.functions:
        _FnAnalysis(ctx, fn, rep).run()
    _check_shared(ctx, tree, rep)
    return rep


def flow_sources(src_root: Union[str, Path] = "src",
                 rep: Optional[Report] = None) -> Report:
    """Run the dataflow pass over every ``*.py`` file under ``src_root``."""
    rep = rep if rep is not None else Report()
    root = Path(src_root)
    files = sorted(p for p in root.rglob("*.py") if "__pycache__" not in p.parts)
    for path in files:
        rel = path.relative_to(root).as_posix()
        flow_module(path.read_text(encoding="utf-8"), rel, rep)
    rep.note_pass("flow", len(files))
    return rep
