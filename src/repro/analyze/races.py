"""Trace race & determinism detection over ``repro.obs`` traces.

Operates on a recorded trace (a :class:`repro.obs.Recorder`, possibly
reloaded from JSONL via :func:`repro.obs.read_jsonl`) together with the
:class:`~repro.graph.compiled.CompiledGraph` that names each task's
reads and write.  The detector rebuilds the *synchronization order* the
runtime actually provides and flags every conflicting tile access that
is not covered by it:

* a worker executes one task at a time, so tasks sharing a worker lane
  are program-ordered;
* a wire message orders its send (on the source) before its delivery
  (at the destination), and a node's ingress channel serializes the
  deliveries it accepts;
* a version becomes readable at a node when it is produced there or
  when a message carrying it is delivered there — *nothing else* orders
  a remote read against its producer.

Happens-before is computed with vector clocks over these lanes
(per-node worker lanes for tasks, one egress lane per source, one
ingress lane per destination), so the query "is access A ordered before
access B" is a clock comparison rather than a graph reachability walk.

Rules:

* ``RACE-HB`` — a conflicting pair (producer/reader of the same tile
  version) with no happens-before edge: the read could observe a stale
  or half-written tile under timing perturbation;
* ``RACE-MISSING`` — a remote read with no message delivering the
  version to the reading node at all;
* ``RACE-ORDER`` — deliveries of increasing versions of one tile land
  at a node out of version order (the ack/retransmit reordering hazard
  of the distributed executor);
* ``RACE-RETRY`` — a retransmission fired for a message that had
  already been delivered (a lost ack): the duplicate can race the
  original (warning);
* ``RACE-DETERMINISM`` — two traces of the same seeded run diverge
  (:func:`compare_traces`).

The analysis assumes per-version messages (``broadcast="direct"``,
``aggregate=False``): aggregation coalesces several versions into one
recorded message, which intentionally hides payloads from the trace.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

import numpy as np

from ..graph.compiled import CompiledGraph
from ..obs.events import Recorder, TaskEvent, TransferEvent
from .findings import Report, Severity

__all__ = [
    "detect_races",
    "compare_traces",
    "VectorClock",
    "assign_lanes",
]

#: Slack for comparing trace timestamps (simulated clocks are exact;
#: wall clocks of the real executors jitter below this).
EPS = 1e-9

MAX_FINDINGS_PER_RULE = 20


class VectorClock:
    """A mutable vector clock over dynamically-registered lanes."""

    __slots__ = ("c",)

    def __init__(self, c: Optional[dict[int, int]] = None):
        self.c: dict[int, int] = dict(c) if c else {}

    def copy(self) -> "VectorClock":
        return VectorClock(self.c)

    def merge(self, other: "VectorClock") -> None:
        for lane, n in other.c.items():
            if n > self.c.get(lane, 0):
                self.c[lane] = n

    def tick(self, lane: int) -> None:
        self.c[lane] = self.c.get(lane, 0) + 1

    def dominates(self, other: "VectorClock") -> bool:
        """True when ``other <= self`` componentwise (other HB self or ==)."""
        return all(self.c.get(lane, 0) >= n for lane, n in other.c.items())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VC({self.c})"


def assign_lanes(spans: Sequence[tuple[float, float]]) -> list[int]:
    """Greedy interval colouring: overlapping spans get distinct lanes.

    Same scheme the Perfetto exporter uses for worker lanes — two tasks
    can only have executed on one worker if their spans do not overlap,
    so same-lane order is real synchronization, not coincidence.
    """
    order = sorted(range(len(spans)), key=lambda i: (spans[i][0], spans[i][1]))
    lanes_end: list[float] = []
    out = [0] * len(spans)
    for i in order:
        start, end = spans[i]
        for lane, busy_until in enumerate(lanes_end):
            if busy_until <= start + EPS:
                lanes_end[lane] = end
                out[i] = lane
                break
        else:
            out[i] = len(lanes_end)
            lanes_end.append(end)
    return out


def _data_id_of_key(cg: CompiledGraph) -> dict[object, int]:
    """Map a trace transfer key (DataKey or raw id) to the data id."""
    if cg.data_keys is None:
        return {}
    return {k: i for i, k in enumerate(cg.data_keys)}


def _key_to_id(key: object, table: dict[object, int]) -> Optional[int]:
    if isinstance(key, (int, np.integer)):
        return int(key)
    return table.get(key)


def detect_races(
    recorder: Recorder,
    cg: CompiledGraph,
    name: str = "trace",
) -> Report:
    """Vector-clock happens-before analysis of one trace against its graph."""
    rep = Report()
    rep.note_pass("races", len(recorder.task_events))
    tasks: dict[int, TaskEvent] = {e.task_id: e for e in recorder.task_events}
    key_table = _data_id_of_key(cg)

    # ---- lane assignment --------------------------------------------------
    # Worker lanes per node for tasks; one egress lane per source node and
    # one ingress lane per destination node for transfers.  Lane ids are
    # disjoint integers.
    by_node: dict[int, list[TaskEvent]] = {}
    for e in recorder.task_events:
        by_node.setdefault(e.node, []).append(e)
    task_lane: dict[int, int] = {}
    next_lane = 0
    for node in sorted(by_node):
        evs = by_node[node]
        lanes = assign_lanes([(e.start, e.end) for e in evs])
        for e, lane in zip(evs, lanes):
            task_lane[e.task_id] = next_lane + lane
        next_lane += max(lanes) + 1 if lanes else 0
    all_nodes = set(by_node) | {e.src for e in recorder.transfer_events} \
        | {e.dst for e in recorder.transfer_events}
    egress_lane = {n: next_lane + i for i, n in enumerate(sorted(all_nodes))}
    next_lane += len(all_nodes)
    ingress_lane = {n: next_lane + i for i, n in enumerate(sorted(all_nodes))}

    # ---- atoms in time order ---------------------------------------------
    # (time, rank, tie, kind, payload): kind 0 = task (at start; its
    # clock ticks at end), 1 = send, 2 = recv.  Processing in time order
    # makes every well-formed HB edge point backwards in processing
    # order; an edge that would point forwards in time is itself a
    # violation.  Atoms sharing a timestamp order send -> recv -> task:
    # a zero-latency message must be sent before it lands, and a task
    # triggered by a delivery starts at exactly the delivery time.
    atoms: list[tuple[float, int, int, int, object]] = []
    tie = 0
    for e in recorder.task_events:
        tie += 1
        atoms.append((e.start, 2, tie, 0, e))
    for e in recorder.transfer_events:
        tie += 1
        atoms.append((e.started, 0, tie, 1, e))
        tie += 1
        atoms.append((e.delivered, 1, tie, 2, e))
    atoms.sort(key=lambda a: (a[0], a[1], a[2]))

    # Clocks at completion of each atom.
    task_clock: dict[int, VectorClock] = {}
    #: per (data id, node): clock of the event that made the version
    #: available there (producer completion or message delivery).
    avail: dict[tuple[int, int], VectorClock] = {}
    avail_time: dict[tuple[int, int], float] = {}
    #: per lane: clock of the last atom processed on it.
    lane_clock: dict[int, VectorClock] = {}
    #: per (data id, dst): delivery bookkeeping for RACE-ORDER / RETRY.
    delivered_at: dict[tuple[int, int], float] = {}
    #: send-side clock per transfer event (frozen dataclass — keyed by id).
    send_clock: dict[int, VectorClock] = {}

    n_init = cg.n_init
    read_ptr, read_ids = cg.read_ptr, cg.read_ids
    write_id = cg.write_id
    data_src = cg.data_source_node

    def lane_advance(lane: int, vc: VectorClock) -> VectorClock:
        prev = lane_clock.get(lane)
        if prev is not None:
            vc.merge(prev)
        vc.tick(lane)
        lane_clock[lane] = vc
        return vc

    hb_errors = 0
    missing = 0
    for _time, _rank, _tie, kind, payload in atoms:
        if kind == 0:
            e = payload  # TaskEvent
            t = e.task_id
            vc = VectorClock()
            if 0 <= t < cg.n_tasks:
                for d in read_ids[read_ptr[t]:read_ptr[t + 1]]:
                    d = int(d)
                    slot = (d, e.node)
                    got = avail.get(slot)
                    if got is None:
                        if d < n_init and int(data_src[d]) == e.node:
                            pass  # initial data, already home
                        elif d >= n_init and int(data_src[d]) == e.node \
                                and cg.data_producer[d] >= 0 \
                                and int(cg.data_producer[d]) not in tasks:
                            pass  # producer absent from trace (partial trace)
                        else:
                            missing += 1
                            if missing <= MAX_FINDINGS_PER_RULE:
                                rep.add(
                                    "RACE-MISSING", Severity.ERROR,
                                    f"task {t} on node {e.node} reads data "
                                    f"id {d} but no event makes it "
                                    "available there",
                                    f"{name}:task {t}",
                                    "a producing task or a delivering "
                                    "transfer must precede the read",
                                )
                        continue
                    if avail_time[slot] > e.start + EPS:
                        hb_errors += 1
                        if hb_errors <= MAX_FINDINGS_PER_RULE:
                            rep.add(
                                "RACE-HB", Severity.ERROR,
                                f"task {t} on node {e.node} starts at "
                                f"{e.start:.6g} but data id {d} only "
                                f"becomes available there at "
                                f"{avail_time[slot]:.6g}",
                                f"{name}:task {t}",
                                "no happens-before edge orders the "
                                "producer before this read",
                            )
                        continue
                    vc.merge(got)
            vc = lane_advance(task_lane.get(t, -1), vc)
            task_clock[t] = vc
            # The version this task writes becomes available locally.
            if 0 <= t < cg.n_tasks and write_id[t] >= 0:
                slot = (int(write_id[t]), e.node)
                avail[slot] = vc
                avail_time[slot] = e.end
        elif kind == 1:
            e = payload  # TransferEvent send side
            d = _key_to_id(e.key, key_table)
            vc = VectorClock()
            if d is not None:
                slot = (d, e.src)
                got = avail.get(slot)
                if got is not None:
                    if avail_time[slot] > e.started + EPS:
                        hb_errors += 1
                        if hb_errors <= MAX_FINDINGS_PER_RULE:
                            rep.add(
                                "RACE-HB", Severity.ERROR,
                                f"message for data id {d} leaves node "
                                f"{e.src} at {e.started:.6g} before the "
                                f"version exists there "
                                f"(at {avail_time[slot]:.6g})",
                                f"{name}:transfer {e.src}->{e.dst}",
                            )
                    else:
                        vc.merge(got)
                elif not (d < n_init and int(data_src[d]) == e.src):
                    # Zero-duration producer whose task atom (ranked
                    # after sends at equal time) has not run yet.
                    p = int(cg.data_producer[d]) if d < cg.n_data else -1
                    pe = tasks.get(p)
                    if pe is not None and pe.node == e.src \
                            and pe.end <= e.started + EPS:
                        send_clock[id(e)] = lane_advance(
                            egress_lane.get(e.src, -2), vc)
                        continue
                    missing += 1
                    if missing <= MAX_FINDINGS_PER_RULE:
                        rep.add(
                            "RACE-MISSING", Severity.ERROR,
                            f"node {e.src} sends data id {d} it never "
                            "produced or received",
                            f"{name}:transfer {e.src}->{e.dst}",
                            "forwarders must receive a tile before "
                            "relaying it",
                        )
            send_clock[id(e)] = lane_advance(egress_lane.get(e.src, -2), vc)
        else:
            e = payload  # TransferEvent delivery side
            d = _key_to_id(e.key, key_table)
            vc = VectorClock()
            send_vc = send_clock.get(id(e))
            if send_vc is not None:
                vc.merge(send_vc)
            vc = lane_advance(ingress_lane.get(e.dst, -3), vc)
            if d is not None:
                slot = (d, e.dst)
                if slot not in avail or avail_time[slot] > e.delivered:
                    avail[slot] = vc
                    avail_time[slot] = e.delivered
                delivered_at[(d, e.dst)] = e.delivered

    # ---- RACE-HB, pass 2: clock check of every dependency edge -----------
    # The availability sweep above catches timestamp inversions; this
    # pass catches *ordering* gaps the clocks expose even when the
    # timestamps happen to be consistent (e.g. a same-node read whose
    # producer ran on an overlapping worker lane with no sync between).
    pairs_checked = 0
    for t, e in tasks.items():
        if not 0 <= t < cg.n_tasks:
            continue
        rvc = task_clock.get(t)
        if rvc is None:
            continue
        for d in read_ids[read_ptr[t]:read_ptr[t + 1]]:
            d = int(d)
            p = int(cg.data_producer[d])
            if p < 0 or p not in task_clock:
                continue
            pairs_checked += 1
            if not rvc.dominates(task_clock[p]):
                hb_errors += 1
                if hb_errors <= MAX_FINDINGS_PER_RULE:
                    rep.add(
                        "RACE-HB", Severity.ERROR,
                        f"no happens-before chain orders producer task {p} "
                        f"(node {tasks[p].node}) before consumer task {t} "
                        f"(node {e.node}) for data id {d}",
                        f"{name}:task {t}",
                        "the consumer can observe a half-written tile",
                    )

    # ---- RACE-ORDER: version-order inversions at a destination -----------
    if cg.data_keys is not None:
        by_tile: dict[tuple[object, int], list[tuple[float, int]]] = {}
        for e in recorder.transfer_events:
            d = _key_to_id(e.key, key_table)
            if d is None:
                continue
            k = cg.data_keys[d]
            by_tile.setdefault(
                ((k.name, k.i, k.j, k.part), e.dst), []
            ).append((e.delivered, k.ver))
        order_errors = 0
        for (tile, dst), deliveries in sorted(
            by_tile.items(), key=lambda kv: str(kv[0])
        ):
            deliveries.sort()
            vers = [v for _, v in deliveries]
            for a, b in zip(vers, vers[1:]):
                if b < a:
                    order_errors += 1
                    if order_errors <= MAX_FINDINGS_PER_RULE:
                        rep.add(
                            "RACE-ORDER", Severity.ERROR,
                            f"node {dst} receives tile {tile} version {b} "
                            f"after version {a}: deliveries arrived out "
                            "of version order",
                            f"{name}:tile {tile}",
                            "a retransmitted or reordered message can "
                            "overwrite newer data in place",
                        )

    # ---- RACE-RETRY: retransmission of an already-delivered message ------
    retry_warns = 0
    for f in recorder.fault_events:
        if f.op != "retry":
            continue
        d = _key_to_id(f.key, key_table)
        if d is None:
            continue
        got = delivered_at.get((d, f.dst))
        if got is not None and got < f.time - EPS:
            retry_warns += 1
            if retry_warns <= MAX_FINDINGS_PER_RULE:
                rep.add(
                    "RACE-RETRY", Severity.WARNING,
                    f"data id {d} was retransmitted to node {f.dst} at "
                    f"{f.time:.6g} although a copy was delivered at "
                    f"{got:.6g} (lost ack?)",
                    f"{name}:transfer {f.src}->{f.dst}",
                    "the duplicate races the original; receivers must "
                    "deduplicate by version",
                )

    return rep


def _task_sig(e: TaskEvent) -> tuple[int, str, int, float, float]:
    return (e.task_id, e.kind, e.node, round(e.start, 9), round(e.end, 9))


def _transfer_sig(e: TransferEvent) -> tuple[str, int, int, int, float]:
    return (str(e.key), e.src, e.dst, e.nbytes, round(e.delivered, 9))


def compare_traces(
    a: Recorder,
    b: Recorder,
    name: str = "trace",
    label_a: str = "A",
    label_b: str = "B",
) -> Report:
    """Determinism check: two traces of the same seeded run must agree."""
    rep = Report()
    rep.note_pass("determinism")

    ta = {e.task_id: e for e in a.task_events}
    tb = {e.task_id: e for e in b.task_events}
    only_a = sorted(set(ta) - set(tb))
    only_b = sorted(set(tb) - set(ta))
    for t in only_a[:MAX_FINDINGS_PER_RULE]:
        rep.add("RACE-DETERMINISM", Severity.ERROR,
                f"task {t} executed in {label_a} but not in {label_b}",
                f"{name}:task {t}")
    for t in only_b[:MAX_FINDINGS_PER_RULE]:
        rep.add("RACE-DETERMINISM", Severity.ERROR,
                f"task {t} executed in {label_b} but not in {label_a}",
                f"{name}:task {t}")
    diffs = 0
    for t in sorted(set(ta) & set(tb)):
        if _task_sig(ta[t]) != _task_sig(tb[t]):
            diffs += 1
            if diffs <= MAX_FINDINGS_PER_RULE:
                ea, eb = ta[t], tb[t]
                rep.add(
                    "RACE-DETERMINISM", Severity.ERROR,
                    f"task {t} diverges: {label_a} ran {ea.kind} on node "
                    f"{ea.node} [{ea.start:.6g}, {ea.end:.6g}], {label_b} "
                    f"ran {eb.kind} on node {eb.node} "
                    f"[{eb.start:.6g}, {eb.end:.6g}]",
                    f"{name}:task {t}",
                    "a seeded run must replay bit-identically",
                )
    sa = sorted(_transfer_sig(e) for e in a.transfer_events)
    sb = sorted(_transfer_sig(e) for e in b.transfer_events)
    if sa != sb:
        seen_b = {}
        for sig in sb:
            seen_b[sig] = seen_b.get(sig, 0) + 1
        shown = 0
        for sig in sa:
            if seen_b.get(sig, 0):
                seen_b[sig] -= 1
                continue
            shown += 1
            if shown <= MAX_FINDINGS_PER_RULE:
                key, src, dst, nbytes, delivered = sig
                rep.add(
                    "RACE-DETERMINISM", Severity.ERROR,
                    f"transfer {key} {src}->{dst} ({nbytes} B, delivered "
                    f"{delivered:.6g}) appears in {label_a} but not "
                    f"{label_b}",
                    f"{name}:transfer {src}->{dst}",
                )
        if not shown and len(sa) != len(sb):
            rep.add(
                "RACE-DETERMINISM", Severity.ERROR,
                f"{label_a} records {len(sa)} transfers, {label_b} "
                f"{len(sb)}",
                f"{name}:transfers",
            )
    return rep
