"""End-to-end self-verification of the installation.

``python -m repro.verify`` runs a battery of cross-component consistency
checks — the same invariants the test suite relies on, packaged as a
quick (seconds) smoke test for a fresh install or a new platform:

1. numerics: tiled POTRF/POSV/POTRI match SciPy;
2. counters: the vectorized volume counter equals the graph counter,
   for Cholesky and LU, across distribution families;
3. theory: counted SBC volumes respect Theorem 1's bound;
4. simulator: transferred bytes equal the counted volume, work is
   conserved, and all comm options preserve byte counts;
5. distributed: really-measured inter-process traffic equals the counter.

Each check prints PASS/FAIL; the exit status is 0 only if all pass.
"""

from __future__ import annotations

import sys
import traceback
from collections.abc import Callable

import numpy as np
import scipy.linalg

__all__ = ["run_checks", "main"]


def _check_numerics() -> None:
    import repro
    from repro.kernels.reference import posv_reference, potri_reference

    L, info = repro.cholesky(n=96, b=16, dist=repro.SymmetricBlockCyclic(4))
    ref = scipy.linalg.cholesky(info["a"], lower=True)
    assert np.abs(L - ref).max() < 1e-9, "POTRF mismatch vs SciPy"

    x, info = repro.solve(n=64, b=16, dist=repro.SymmetricBlockCyclic(3), width=8)
    assert np.abs(x - posv_reference(info["a"], info["b"])).max() < 1e-9

    inv, info = repro.inverse(
        n=64, b=16, dist=repro.SymmetricBlockCyclic(4),
        trtri_dist=repro.BlockCyclic2D(3, 2),
    )
    assert np.abs(inv - potri_reference(info["a"])).max() < 1e-8


def _check_counters() -> None:
    from repro.comm import (
        cholesky_volume_exact,
        count_communications,
        lu_message_count,
    )
    from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
    from repro.graph import build_cholesky_graph, build_lu_graph

    for dist in (SymmetricBlockCyclic(5), SymmetricBlockCyclic(6, variant="basic"),
                 BlockCyclic2D(3, 4)):
        g = build_cholesky_graph(14, 16, dist)
        assert cholesky_volume_exact(dist, 14, 16) == count_communications(g).total_bytes
        gl = build_lu_graph(10, 16, dist)
        assert lu_message_count(dist, 10) == count_communications(gl).num_messages


def _check_theorem1() -> None:
    from repro.comm import cholesky_message_count, storage_tiles
    from repro.distributions import SymmetricBlockCyclic

    for r in (5, 6, 7, 8):
        d = SymmetricBlockCyclic(r)
        for N in (16, 48):
            assert cholesky_message_count(d, N) <= storage_tiles(N) * (r - 2), (
                f"Theorem 1 bound violated for r={r}, N={N}"
            )


def _check_simulator() -> None:
    from repro.comm import count_communications
    from repro.config import laptop
    from repro.distributions import SymmetricBlockCyclic
    from repro.graph import build_cholesky_graph
    from repro.runtime import simulate

    g = build_cholesky_graph(12, 32, SymmetricBlockCyclic(4))
    m = laptop(nodes=6, cores=2)
    cc = count_communications(g)
    for kwargs in ({}, {"broadcast": "tree"}, {"aggregate": True},
                   {"synchronized": True}):
        rep = simulate(g, m, **kwargs)
        assert rep.num_tasks == len(g.tasks), f"lost tasks with {kwargs}"
        assert rep.comm_bytes == cc.total_bytes, f"byte mismatch with {kwargs}"
        assert 0 < rep.avg_utilization <= 1.0


def _check_distributed() -> None:
    from repro.comm import count_communications
    from repro.distributions import SymmetricBlockCyclic
    from repro.graph import build_cholesky_graph
    from repro.runtime import InitialDataSpec, execute_distributed
    from repro.tiles import TileGrid

    g = build_cholesky_graph(6, 16, SymmetricBlockCyclic(3))
    rep = execute_distributed(g, InitialDataSpec(TileGrid(n=96, b=16), seed=1),
                              timeout=120)
    assert rep.total_bytes == count_communications(g).total_bytes


CHECKS: list[tuple[str, Callable[[], None]]] = [
    ("numerics vs SciPy (POTRF/POSV/POTRI)", _check_numerics),
    ("volume counters (graph == vectorized)", _check_counters),
    ("Theorem 1 bound", _check_theorem1),
    ("simulator conservation (all comm options)", _check_simulator),
    ("distributed executor traffic", _check_distributed),
]


def run_checks(verbose: bool = True) -> bool:
    """Run every check; returns True if all pass."""
    ok = True
    for name, fn in CHECKS:
        try:
            fn()
            status = "PASS"
        except Exception:
            status = "FAIL"
            ok = False
            if verbose:
                traceback.print_exc()
        if verbose:
            print(f"[{status}] {name}")
    return ok


def main() -> int:
    print("repro self-verification")
    print("-----------------------")
    ok = run_checks()
    print("-----------------------")
    print("all checks passed" if ok else "SOME CHECKS FAILED")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
