"""Deterministic fault injection for the simulator and distributed runtimes.

A :class:`FaultPlan` is a seeded, immutable description of everything that
goes wrong during one execution:

* :class:`SlowdownWindow` — a per-node compute slowdown (straggler): tasks
  *starting* inside ``[start, end)`` on ``node`` take ``factor`` times
  longer (the distributed executor sleeps the difference after the
  kernel);
* :class:`LinkDegradation` — per-link bandwidth degradation: wire time of
  every quantum crossing a matching (src, dst) link inside the window is
  multiplied by ``factor``.  With a routed topology attached
  (``MachineSpec(topology=...)``) the hook fires per *physical hop*: the
  endpoints it sees are the directed edge's vertices (switch vertices
  included), so degrading edge (u, v) slows every route crossing it —
  not just the u→v message pair;
* ``loss_rate`` — transient transfer loss: a delivered message is dropped
  with probability ``loss_rate`` and retransmitted ``retransmit_timeout``
  seconds later (simulated time in the engines; recovered by the
  ack/retry machinery in the distributed executor);
* :class:`WorkerCrash` — fail-stop worker death: the node completes
  ``after_tasks`` of its tasks and then stops (the simulator raises a
  diagnostic :class:`SimulatedFailure`; the distributed worker process
  calls ``os._exit`` and the driver's liveness check reports it).

Determinism is the design constraint: the same plan produces *bit
identical* makespan / bytes / messages on both simulator engines
(``simulate`` and ``simulate_compiled`` — extended property tests in
``tests/test_failure_injection.py``).  Loss decisions therefore never
hash data keys (the engines represent them differently); instead each
link (src, dst) carries a deterministic attempt counter and the n-th
delivery attempt on a link is dropped iff ``mix(seed, src, dst, n)``
falls below the loss rate (:class:`LossState`).  Both engines process
deliveries in the same order, so the n-th attempt is the same message.
Under a routed topology the counters live on the route's directed
edges: every hop of a delivery rolls its own edge counter
(:meth:`repro.topology.CompiledTopology.roll_loss`) and the message is
lost when *any* hop drops — a lossy shared link affects every route
crossing it, and single-hop cliques reduce to the (src, dst) roll.

:class:`RetryPolicy` parameterizes the distributed executor's per-message
ack tracking: initial ack timeout, exponential backoff factor, and the
retry budget after which the sender gives up with a diagnostic error.

See ``docs/network-model.md`` ("Fault model") for the full semantics and
``benchmarks/bench_resilience.py`` for the SBC-vs-2DBC sensitivity sweep
this enables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "SlowdownWindow",
    "LinkDegradation",
    "WorkerCrash",
    "RetryPolicy",
    "FaultPlan",
    "LossState",
    "SimulatedFailure",
]


class SimulatedFailure(RuntimeError):
    """A fault plan killed the simulated execution (worker crash)."""


_M64 = (1 << 64) - 1


def _mix(*ints: int) -> float:
    """Deterministic splitmix64-style hash of integers onto [0, 1)."""
    x = 0x9E3779B97F4A7C15
    for v in ints:
        x = (x ^ ((v + 0x9E3779B97F4A7C15) & _M64)) & _M64
        x = (x * 0xBF58476D1CE4E5B9) & _M64
        x ^= x >> 31
        x = (x * 0x94D049BB133111EB) & _M64
        x ^= x >> 27
    return x / 2.0 ** 64


@dataclass(frozen=True)
class SlowdownWindow:
    """Compute straggler: tasks starting in [start, end) on ``node`` run
    ``factor`` times slower."""

    node: int
    factor: float
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {self.factor}")
        if self.end < self.start:
            raise ValueError(f"window ends ({self.end}) before it starts ({self.start})")


@dataclass(frozen=True)
class LinkDegradation:
    """Bandwidth degradation: wire time on matching links is multiplied by
    ``factor`` inside [start, end).  ``src``/``dst`` of -1 match any node.

    With a routed topology the match is evaluated against each directed
    edge a quantum traverses (endpoints may be switch vertices, i.e.
    ids >= ``num_nodes``), so (src, dst) names a physical topology edge
    rather than a message's (source, destination) pair."""

    factor: float
    src: int = -1
    dst: int = -1
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1, got {self.factor}")
        if self.end < self.start:
            raise ValueError(f"window ends ({self.end}) before it starts ({self.start})")


@dataclass(frozen=True)
class WorkerCrash:
    """Fail-stop death of ``node`` after it completes ``after_tasks`` of
    its own tasks (tasks already running finish; nothing new starts)."""

    node: int
    after_tasks: int

    def __post_init__(self) -> None:
        if self.after_tasks < 0:
            raise ValueError(f"after_tasks must be >= 0, got {self.after_tasks}")


@dataclass(frozen=True)
class RetryPolicy:
    """Ack timeout + exponential backoff of the distributed executor.

    A data message unacknowledged for ``timeout * backoff**attempt``
    seconds is retransmitted; after ``max_retries`` retransmissions the
    sender raises a diagnostic error instead of wedging forever.
    """

    timeout: float = 0.5
    backoff: float = 2.0
    max_retries: int = 10

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"ack timeout must be positive, got {self.timeout}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    def delay(self, attempt: int) -> float:
        """Ack deadline for the ``attempt``-th transmission (0 = first)."""
        return self.timeout * self.backoff ** attempt


class LossState:
    """Per-run mutable loss counters; see the module docstring for why
    decisions hash (seed, src, dst, attempt-index) and nothing else."""

    __slots__ = ("_seed", "_rate", "_counts")

    def __init__(self, seed: int, rate: float):
        self._seed = seed
        self._rate = rate
        self._counts: dict[tuple[int, int], int] = {}

    def lost(self, src: int, dst: int) -> bool:
        """Decide the fate of the next delivery attempt on (src, dst)."""
        key = (src, dst)
        n = self._counts.get(key, 0)
        self._counts[key] = n + 1
        if self._rate <= 0.0:
            return False
        return _mix(self._seed, src, dst, n) < self._rate


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, immutable description of the faults of one execution."""

    seed: int = 0
    slowdowns: tuple[SlowdownWindow, ...] = ()
    links: tuple[LinkDegradation, ...] = ()
    loss_rate: float = 0.0
    retransmit_timeout: float = 1e-3
    crashes: tuple[WorkerCrash, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.retransmit_timeout <= 0:
            raise ValueError(
                f"retransmit_timeout must be positive, got {self.retransmit_timeout}"
            )
        seen = set()
        for c in self.crashes:
            if c.node in seen:
                raise ValueError(f"node {c.node} has more than one crash fault")
            seen.add(c.node)
        # Tolerate lists passed by callers: freeze to tuples.
        object.__setattr__(self, "slowdowns", tuple(self.slowdowns))
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "crashes", tuple(self.crashes))

    # -- queries (hot paths guard on the has_* flags first) ------------------

    @property
    def has_network_faults(self) -> bool:
        return bool(self.links) or self.loss_rate > 0.0

    def compute_factor(self, node: int, time: float) -> float:
        """Duration multiplier for a task starting at ``time`` on ``node``."""
        f = 1.0
        for w in self.slowdowns:
            if w.node == node and w.start <= time < w.end:
                f *= w.factor
        return f

    def link_factor(self, src: int, dst: int, time: float) -> float:
        """Wire-time multiplier for a quantum served at ``time`` on (src, dst)."""
        f = 1.0
        for d in self.links:
            if (d.src in (-1, src) and d.dst in (-1, dst)
                    and d.start <= time < d.end):
                f *= d.factor
        return f

    def crash_after(self, node: int) -> Optional[int]:
        """Task count after which ``node`` fail-stops, or None."""
        for c in self.crashes:
            if c.node == node:
                return c.after_tasks
        return None

    def loss_state(self) -> Optional[LossState]:
        """Fresh per-run loss counters (None when loss is disabled)."""
        if self.loss_rate <= 0.0:
            return None
        return LossState(self.seed, self.loss_rate)
