"""Runtimes: numeric local execution, cluster simulation, distributed IPC."""

from .execution import KERNEL_DISPATCH, InitialDataSpec, apply_task, materialize_initial
from .local import (
    assemble_lower,
    assemble_rhs,
    assemble_symmetric,
    execute_graph,
    final_versions,
)
from .simulator import (
    CriticalPathBreakdown,
    SimReport,
    critical_path_breakdown,
    iteration_profile,
    simulate,
    utilization_timeline,
)
from .bounds import CholeskyBounds, cholesky_bounds
from .distributed import (
    DeadWorkerError,
    DistributedReport,
    ExecutionTimeout,
    execute_distributed,
)
from .faults import (
    FaultPlan,
    LinkDegradation,
    RetryPolicy,
    SimulatedFailure,
    SlowdownWindow,
    WorkerCrash,
)

__all__ = [
    "KERNEL_DISPATCH",
    "InitialDataSpec",
    "apply_task",
    "materialize_initial",
    "execute_graph",
    "final_versions",
    "assemble_lower",
    "assemble_symmetric",
    "assemble_rhs",
    "simulate",
    "SimReport",
    "CriticalPathBreakdown",
    "critical_path_breakdown",
    "iteration_profile",
    "utilization_timeline",
    "execute_distributed",
    "DistributedReport",
    "DeadWorkerError",
    "ExecutionTimeout",
    "FaultPlan",
    "SlowdownWindow",
    "LinkDegradation",
    "WorkerCrash",
    "RetryPolicy",
    "SimulatedFailure",
    "CholeskyBounds",
    "cholesky_bounds",
]
