"""Flat-array transcription of the fast engine's lean event loop.

:func:`serve_loop` is the ready-pop -> launch -> delivery-decrement cycle
of :func:`repro.runtime.simulator.fast_engine.simulate_compiled` written
in the numba-compatible subset of Python: module-level functions over
numpy arrays and scalars only — no dicts, closures, tuples-in-heaps or
Python object allocation anywhere in the loop.  The same source runs two
ways:

* ``kernel="jit"`` compiles it with numba (lazily, cached per process);
* ``kernel="interp"`` runs it uncompiled — slow, but it is how the suite
  pins the kernel's event ordering bit-for-bit against the numpy path on
  machines without numba.

The transcription covers the lean configuration only (direct broadcast,
no trace/synchronized/faults/aggregation/custom queue); anything else
stays on the numpy path.  Routed topologies and heterogeneous nodes ARE
covered: per-node core counts arrive as an array, and with ``topo_on``
set each quantum walks its pair's pre-gathered route (per-link occupancy,
switch backplane contention) with the exact float operations of
``NetworkSim._serve`` — fault hooks stay excluded, so the walk skips the
wire-factor branch the shared code guards with ``is not None``.  Event
ordering is preserved by construction:
the event heap is keyed (time, push-sequence) and every push increments
the sequence counter at the same program point as the numpy path, so the
two runs pop identical event streams and produce identical makespans,
byte and message counts (asserted in ``tests/test_compiled_engine.py``).

Heaps live in preallocated arenas — per-node ready heaps sized by task
placement counts, per-source network heaps by pair source counts, the
event heap by its structural bound (one completion per occupied core,
one egress event per busy source, one delivery per remote pair) — so the
loop never allocates.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

__all__ = ["serve_loop", "jit_serve_loop", "numba_available"]


def _ev_push(ev_t, ev_s, ev_k, ev_p, n, t, s, k, p):
    """Push (t, s, k, p) onto the (time, seq)-keyed event heap."""
    i = n
    while i > 0:
        par = (i - 1) >> 1
        pt = ev_t[par]
        if pt < t or (pt == t and ev_s[par] < s):
            break
        ev_t[i] = pt
        ev_s[i] = ev_s[par]
        ev_k[i] = ev_k[par]
        ev_p[i] = ev_p[par]
        i = par
    ev_t[i] = t
    ev_s[i] = s
    ev_k[i] = k
    ev_p[i] = p
    return n + 1


def _ev_siftdown(ev_t, ev_s, ev_k, ev_p, n):
    """Restore the heap after the root was replaced by the last entry."""
    i = 0
    t = ev_t[0]
    s = ev_s[0]
    k = ev_k[0]
    p = ev_p[0]
    while True:
        c = 2 * i + 1
        if c >= n:
            break
        r = c + 1
        if r < n and (
            ev_t[r] < ev_t[c] or (ev_t[r] == ev_t[c] and ev_s[r] < ev_s[c])
        ):
            c = r
        if ev_t[c] < t or (ev_t[c] == t and ev_s[c] < s):
            ev_t[i] = ev_t[c]
            ev_s[i] = ev_s[c]
            ev_k[i] = ev_k[c]
            ev_p[i] = ev_p[c]
            i = c
        else:
            break
    ev_t[i] = t
    ev_s[i] = s
    ev_k[i] = k
    ev_p[i] = p
    return i


def _arena_push(kprio, kseq, kval, base, n, prio, s, v):
    """Push onto one (negprio, seq)-keyed heap living at arena offset."""
    i = n
    while i > 0:
        par = (i - 1) >> 1
        pp = kprio[base + par]
        if pp < prio or (pp == prio and kseq[base + par] < s):
            break
        kprio[base + i] = pp
        kseq[base + i] = kseq[base + par]
        kval[base + i] = kval[base + par]
        i = par
    kprio[base + i] = prio
    kseq[base + i] = s
    kval[base + i] = v
    return n + 1


def _arena_pop(kprio, kseq, kval, base, n):
    """Pop the min entry; returns (value, new length)."""
    v0 = kval[base]
    last = n - 1
    if last > 0:
        prio = kprio[base + last]
        s = kseq[base + last]
        v = kval[base + last]
        i = 0
        while True:
            c = 2 * i + 1
            if c >= last:
                break
            r = c + 1
            if r < last and (
                kprio[base + r] < kprio[base + c]
                or (kprio[base + r] == kprio[base + c]
                    and kseq[base + r] < kseq[base + c])
            ):
                c = r
            if kprio[base + c] < prio or (
                kprio[base + c] == prio and kseq[base + c] < s
            ):
                kprio[base + i] = kprio[base + c]
                kseq[base + i] = kseq[base + c]
                kval[base + i] = kval[base + c]
                i = c
            else:
                break
        kprio[base + i] = prio
        kseq[base + i] = s
        kval[base + i] = v
    return v0, last


def serve_loop(
    node,            # int32[n_tasks] task placement
    dur,             # float64[n_tasks] task durations
    negprio,         # float64[n_tasks] ready-queue keys (-priority)
    write_id,        # int32[n_tasks] output data id, -1 for none
    missing,         # int32[n_tasks] mutated in place
    lc_ptr,          # int64[n_data + 1] local-consumer CSR
    lc_ids,          # int32[]
    kd_ptr,          # int64[n_data + 1] remote-pair CSR
    pair_dst,        # int32[n_pairs]
    pair_prio,       # float64[n_pairs]
    pair_nbytes,     # int64[n_pairs]
    pair_src,        # int32[n_pairs]
    rn_start,        # int64[n_pairs]
    rn_count,        # int64[n_pairs]
    rn_ids,          # int32[]
    init_pairs,      # int64[] pairs of misplaced initial data, kick order
    num_nodes,       # int
    cores,           # int64[num_nodes] workers per node
    quantum,         # int (bytes)
    bandwidth,       # float (scalar clique model, ignored when topo_on)
    latency,         # float (scalar clique model, ignored when topo_on)
    topo_on,         # int: 1 = walk routed topology, 0 = scalar model
    tp_lat,          # float64[n_pairs] per-pair route latency
    tp_ptr,          # int64[n_pairs + 1] per-pair route CSR
    tp_eid,          # int64[] directed-edge ids along each pair's route
    edge_bw,         # float64[n_edges] per-directed-edge bandwidth
    edge_sw,         # int64[n_edges] switch at each edge's source, -1 none
    sw_bw,           # float64[n_switches] backplane bandwidth (inf = none)
):
    """Run the lean event loop; returns the aggregate counters.

    Returns ``(makespan, total_bytes, total_messages, queued)`` where
    ``queued`` is the number of tasks still sitting in ready queues at
    drain (0 on a successful run).  ``missing`` is decremented in place;
    the caller derives the executed-task count from it.
    """
    n_tasks = node.shape[0]
    n_pairs = pair_dst.shape[0]

    # --- arenas -------------------------------------------------------------
    ev_cap = num_nodes + n_pairs + 8
    for n in range(num_nodes):
        ev_cap += cores[n]
    ev_t = np.empty(ev_cap, dtype=np.float64)
    ev_s = np.empty(ev_cap, dtype=np.int64)
    ev_k = np.empty(ev_cap, dtype=np.int8)
    ev_p = np.empty(ev_cap, dtype=np.int64)
    ev_n = 0

    rq_base = np.zeros(num_nodes + 1, dtype=np.int64)
    for t in range(n_tasks):
        rq_base[node[t] + 1] += 1
    for n in range(num_nodes):
        rq_base[n + 1] += rq_base[n]
    rq_prio = np.empty(n_tasks, dtype=np.float64)
    rq_seq = np.empty(n_tasks, dtype=np.int64)
    rq_task = np.empty(n_tasks, dtype=np.int32)
    rq_n = np.zeros(num_nodes, dtype=np.int64)

    nq_base = np.zeros(num_nodes + 1, dtype=np.int64)
    for p in range(n_pairs):
        nq_base[pair_src[p] + 1] += 1
    for n in range(num_nodes):
        nq_base[n + 1] += nq_base[n]
    nq_prio = np.empty(n_pairs, dtype=np.float64)
    nq_seq = np.empty(n_pairs, dtype=np.int64)
    nq_pair = np.empty(n_pairs, dtype=np.int32)
    nq_n = np.zeros(num_nodes, dtype=np.int64)

    tr_remaining = pair_nbytes.copy()
    tr_started = np.zeros(n_pairs, dtype=np.uint8)
    tr_end = np.full(n_pairs, -1.0, dtype=np.float64)

    free = cores.copy()
    egress_busy = np.zeros(num_nodes, dtype=np.uint8)
    ingress_free = np.zeros(num_nodes, dtype=np.float64)
    # Per-run occupancy state of the routed topology (empty when scalar).
    link_free = np.zeros(edge_bw.shape[0], dtype=np.float64)
    switch_free = np.zeros(sw_bw.shape[0], dtype=np.float64)

    seq = 0
    net_seq = 0
    rdy_seq = 0
    total_bytes = 0
    total_messages = 0
    now = 0.0

    # --- kick off: source tasks ascending, then misplaced initial data ------
    for t in range(n_tasks):
        if missing[t] == 0:
            n = node[t]
            if free[n] > 0:
                free[n] -= 1
                seq += 1
                ev_n = _ev_push(ev_t, ev_s, ev_k, ev_p, ev_n,
                                dur[t], seq, 0, t)
            else:
                rdy_seq += 1
                rq_n[n] = _arena_push(rq_prio, rq_seq, rq_task, rq_base[n],
                                      rq_n[n], negprio[t], rdy_seq, t)
    for ip in range(init_pairs.shape[0]):
        p = init_pairs[ip]
        src = pair_src[p]
        total_bytes += pair_nbytes[p]
        total_messages += 1
        net_seq += 1
        nq_n[src] = _arena_push(nq_prio, nq_seq, nq_pair, nq_base[src],
                                nq_n[src], -pair_prio[p], net_seq, p)
        if egress_busy[src] == 0:
            # serve(src, now=0): first quantum of the just-queued message.
            p2, nq_n[src] = _arena_pop(nq_prio, nq_seq, nq_pair,
                                       nq_base[src], nq_n[src])
            remaining = tr_remaining[p2]
            size = quantum if quantum < remaining else remaining
            remaining -= size
            tr_remaining[p2] = remaining
            dstn = pair_dst[p2]
            if topo_on == 0:
                wire = size / bandwidth
                occupancy = wire if tr_started[p2] == 1 else wire + latency
                tr_started[p2] = 1
                egress_done = occupancy
                ingress = ingress_free[dstn] + wire
                delivery = egress_done if egress_done > ingress else ingress
            else:
                # Store-and-forward walk over the pair's route — the
                # float-for-float transcription of NetworkSim._serve's
                # topology branch (no fault hook: such runs never reach
                # the kernel).
                q0 = tp_ptr[p2]
                q1 = tp_ptr[p2 + 1]
                wire = size / edge_bw[tp_eid[q0]]
                occupancy = (wire if tr_started[p2] == 1
                             else wire + tp_lat[p2])
                tr_started[p2] = 1
                egress_done = occupancy
                t_ = egress_done
                last_wire = wire
                if q1 - q0 > 1:
                    for qk in range(q0 + 1, q1):
                        e = tp_eid[qk]
                        s_ = edge_sw[e]
                        if s_ >= 0:
                            sbw = sw_bw[s_]
                            if sbw != np.inf:
                                sf = switch_free[s_]
                                t_ = (t_ if t_ > sf else sf) + size / sbw
                                switch_free[s_] = t_
                        hw = size / edge_bw[e]
                        lf = link_free[e]
                        t_ = (t_ if t_ > lf else lf) + hw
                        link_free[e] = t_
                        last_wire = hw
                ingress = ingress_free[dstn] + last_wire
                delivery = t_ if t_ > ingress else ingress
            ingress_free[dstn] = delivery
            egress_busy[src] = 1
            if remaining:
                net_seq += 1
                nq_n[src] = _arena_push(nq_prio, nq_seq, nq_pair,
                                        nq_base[src], nq_n[src],
                                        -pair_prio[p2], net_seq, p2)
            else:
                tr_end[p2] = delivery
            seq += 1
            ev_n = _ev_push(ev_t, ev_s, ev_k, ev_p, ev_n,
                            egress_done, seq, 1, src)
            if not remaining:
                seq += 1
                ev_n = _ev_push(ev_t, ev_s, ev_k, ev_p, ev_n,
                                delivery, seq, 2, p2)

    # --- event loop ---------------------------------------------------------
    while ev_n > 0:
        now = ev_t[0]
        kind = ev_k[0]
        payload = ev_p[0]
        ev_n -= 1
        if ev_n > 0:
            ev_t[0] = ev_t[ev_n]
            ev_s[0] = ev_s[ev_n]
            ev_k[0] = ev_k[ev_n]
            ev_p[0] = ev_p[ev_n]
            _ev_siftdown(ev_t, ev_s, ev_k, ev_p, ev_n)

        if kind == 0:  # task completion
            t = payload
            n = node[t]
            if rq_n[n] > 0:
                t2, rq_n[n] = _arena_pop(rq_prio, rq_seq, rq_task,
                                         rq_base[n], rq_n[n])
                seq += 1
                ev_n = _ev_push(ev_t, ev_s, ev_k, ev_p, ev_n,
                                now + dur[t2], seq, 0, t2)
            else:
                free[n] += 1
            d = write_id[t]
            if d >= 0:
                for li in range(lc_ptr[d], lc_ptr[d + 1]):
                    tid = lc_ids[li]
                    missing[tid] -= 1
                    if missing[tid] == 0:  # enqueue_ready(tid, now)
                        n2 = node[tid]
                        if free[n2] > 0:
                            free[n2] -= 1
                            seq += 1
                            ev_n = _ev_push(ev_t, ev_s, ev_k, ev_p, ev_n,
                                            now + dur[tid], seq, 0, tid)
                        else:
                            rdy_seq += 1
                            rq_n[n2] = _arena_push(
                                rq_prio, rq_seq, rq_task, rq_base[n2],
                                rq_n[n2], negprio[tid], rdy_seq, tid)
                p0 = kd_ptr[d]
                p1 = kd_ptr[d + 1]
                for p in range(p0, p1):  # request_transfers(d, n, now)
                    total_bytes += pair_nbytes[p]
                    total_messages += 1
                    net_seq += 1
                    nq_n[n] = _arena_push(nq_prio, nq_seq, nq_pair,
                                          nq_base[n], nq_n[n],
                                          -pair_prio[p], net_seq, p)
                    if egress_busy[n] == 0:
                        p2, nq_n[n] = _arena_pop(nq_prio, nq_seq, nq_pair,
                                                 nq_base[n], nq_n[n])
                        remaining = tr_remaining[p2]
                        size = quantum if quantum < remaining else remaining
                        remaining -= size
                        tr_remaining[p2] = remaining
                        dstn = pair_dst[p2]
                        if topo_on == 0:
                            wire = size / bandwidth
                            occupancy = (wire if tr_started[p2] == 1
                                         else wire + latency)
                            tr_started[p2] = 1
                            egress_done = now + occupancy
                            ingress = ingress_free[dstn] + wire
                            delivery = (egress_done if egress_done > ingress
                                        else ingress)
                        else:
                            q0 = tp_ptr[p2]
                            q1 = tp_ptr[p2 + 1]
                            wire = size / edge_bw[tp_eid[q0]]
                            occupancy = (wire if tr_started[p2] == 1
                                         else wire + tp_lat[p2])
                            tr_started[p2] = 1
                            egress_done = now + occupancy
                            t_ = egress_done
                            last_wire = wire
                            if q1 - q0 > 1:
                                for qk in range(q0 + 1, q1):
                                    e = tp_eid[qk]
                                    s_ = edge_sw[e]
                                    if s_ >= 0:
                                        sbw = sw_bw[s_]
                                        if sbw != np.inf:
                                            sf = switch_free[s_]
                                            t_ = ((t_ if t_ > sf else sf)
                                                  + size / sbw)
                                            switch_free[s_] = t_
                                    hw = size / edge_bw[e]
                                    lf = link_free[e]
                                    t_ = (t_ if t_ > lf else lf) + hw
                                    link_free[e] = t_
                                    last_wire = hw
                            ingress = ingress_free[dstn] + last_wire
                            delivery = t_ if t_ > ingress else ingress
                        ingress_free[dstn] = delivery
                        egress_busy[n] = 1
                        if remaining:
                            net_seq += 1
                            nq_n[n] = _arena_push(
                                nq_prio, nq_seq, nq_pair, nq_base[n],
                                nq_n[n], -pair_prio[p2], net_seq, p2)
                        else:
                            tr_end[p2] = delivery
                        seq += 1
                        ev_n = _ev_push(ev_t, ev_s, ev_k, ev_p, ev_n,
                                        egress_done, seq, 1, n)
                        if not remaining:
                            seq += 1
                            ev_n = _ev_push(ev_t, ev_s, ev_k, ev_p, ev_n,
                                            delivery, seq, 2, p2)
        elif kind == 1:  # source egress channel freed
            src = payload
            if nq_n[src] == 0:
                egress_busy[src] = 0
                continue
            p2, nq_n[src] = _arena_pop(nq_prio, nq_seq, nq_pair,
                                       nq_base[src], nq_n[src])
            remaining = tr_remaining[p2]
            size = quantum if quantum < remaining else remaining
            remaining -= size
            tr_remaining[p2] = remaining
            dstn = pair_dst[p2]
            if topo_on == 0:
                wire = size / bandwidth
                occupancy = wire if tr_started[p2] == 1 else wire + latency
                tr_started[p2] = 1
                egress_done = now + occupancy
                ingress = ingress_free[dstn] + wire
                delivery = egress_done if egress_done > ingress else ingress
            else:
                q0 = tp_ptr[p2]
                q1 = tp_ptr[p2 + 1]
                wire = size / edge_bw[tp_eid[q0]]
                occupancy = (wire if tr_started[p2] == 1
                             else wire + tp_lat[p2])
                tr_started[p2] = 1
                egress_done = now + occupancy
                t_ = egress_done
                last_wire = wire
                if q1 - q0 > 1:
                    for qk in range(q0 + 1, q1):
                        e = tp_eid[qk]
                        s_ = edge_sw[e]
                        if s_ >= 0:
                            sbw = sw_bw[s_]
                            if sbw != np.inf:
                                sf = switch_free[s_]
                                t_ = (t_ if t_ > sf else sf) + size / sbw
                                switch_free[s_] = t_
                        hw = size / edge_bw[e]
                        lf = link_free[e]
                        t_ = (t_ if t_ > lf else lf) + hw
                        link_free[e] = t_
                        last_wire = hw
                ingress = ingress_free[dstn] + last_wire
                delivery = t_ if t_ > ingress else ingress
            ingress_free[dstn] = delivery
            if remaining:
                net_seq += 1
                nq_n[src] = _arena_push(nq_prio, nq_seq, nq_pair,
                                        nq_base[src], nq_n[src],
                                        -pair_prio[p2], net_seq, p2)
            else:
                tr_end[p2] = delivery
            seq += 1
            ev_n = _ev_push(ev_t, ev_s, ev_k, ev_p, ev_n,
                            egress_done, seq, 1, src)
            if not remaining:
                seq += 1
                ev_n = _ev_push(ev_t, ev_s, ev_k, ev_p, ev_n,
                                delivery, seq, 2, p2)
        else:  # kind == 2: transfer delivered at the destination
            p = payload
            end = tr_end[p]
            s0 = rn_start[p]
            for ri in range(s0, s0 + rn_count[p]):
                tid = rn_ids[ri]
                missing[tid] -= 1
                if missing[tid] == 0:  # enqueue_ready(tid, end)
                    n2 = node[tid]
                    if free[n2] > 0:
                        free[n2] -= 1
                        seq += 1
                        ev_n = _ev_push(ev_t, ev_s, ev_k, ev_p, ev_n,
                                        end + dur[tid], seq, 0, tid)
                    else:
                        rdy_seq += 1
                        rq_n[n2] = _arena_push(
                            rq_prio, rq_seq, rq_task, rq_base[n2],
                            rq_n[n2], negprio[tid], rdy_seq, tid)

    queued = 0
    for n in range(num_nodes):
        queued += rq_n[n]
    return now, total_bytes, total_messages, queued


_JIT: Optional[Any] = None


def numba_available() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def jit_serve_loop():
    """The numba-compiled :func:`serve_loop` (compiled once per process).

    Raises ``ImportError`` when numba is not installed — callers decide
    whether to surface that (``kernel="jit"``) or fall back silently
    (``kernel="auto"``).
    """
    global _JIT, _ev_push, _ev_siftdown, _arena_push, _arena_pop
    if _JIT is None:
        from numba import njit

        opts = dict(cache=True, nogil=True)
        # Rebind the helpers to their compiled dispatchers *permanently*:
        # numba resolves globals lazily at first call, so a save/restore
        # around njit(serve_loop) would hand it back the plain functions.
        # The interpreted serve_loop keeps working either way (dispatchers
        # are plain callables and compute the identical arithmetic).
        _ev_push = njit(**opts)(_ev_push)
        _ev_siftdown = njit(**opts)(_ev_siftdown)
        _arena_push = njit(**opts)(_arena_push)
        _arena_pop = njit(**opts)(_arena_pop)
        _JIT = njit(**opts)(serve_loop)
    return _JIT
