"""Post-mortem analysis of traced simulations.

Given a traced :class:`SimReport` (``simulate(..., trace=True)``), this
module reconstructs the *realized* critical path — the chain of tasks,
transfers, and waits that actually determined the makespan — and
classifies where the time went:

* ``compute``     — kernels executing on the critical chain;
* ``xfer_queue``  — critical messages waiting for their source's egress port;
* ``xfer_wire``   — critical messages in flight;
* ``worker_wait`` — critical tasks ready but waiting for a free worker
  (informational: this interval overlaps the compute of the task that
  eventually freed the worker, so ``compute + xfer_queue + xfer_wire``
  alone reconstructs the makespan).

This is the instrument that exposed the network-model findings recorded in
DESIGN.md §5 (e.g. that SBC's spine tile owner carries two consecutive
panels' broadcasts), and it is generally useful to answer "why is this
schedule slow?" for any distribution/graph combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...graph.task import DataKey, TaskGraph
from .engine import SimReport

__all__ = [
    "CriticalPathBreakdown",
    "critical_path_breakdown",
    "iteration_profile",
    "utilization_timeline",
]

_EPS = 1e-12


@dataclass
class CriticalPathBreakdown:
    """Where the makespan went, along the realized critical path."""

    makespan: float
    compute: float = 0.0
    xfer_queue: float = 0.0
    xfer_wire: float = 0.0
    worker_wait: float = 0.0
    hops: int = 0
    #: number of critical-path tasks per kernel kind
    kinds: dict[str, int] = field(default_factory=dict)
    #: task ids along the path, sink first
    path: list[int] = field(default_factory=list)

    @property
    def communication_fraction(self) -> float:
        """Share of the critical path spent on communication."""
        if self.makespan <= 0:
            return 0.0
        return (self.xfer_queue + self.xfer_wire) / self.makespan

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"makespan {self.makespan * 1e3:.1f}ms = compute {self.compute * 1e3:.1f}"
            f" + queue {self.xfer_queue * 1e3:.1f} + wire {self.xfer_wire * 1e3:.1f}"
            f" + worker {self.worker_wait * 1e3:.1f} (ms, {self.hops} hops)"
        )


def critical_path_breakdown(
    graph: TaskGraph, report: SimReport
) -> CriticalPathBreakdown:
    """Walk back from the last-finishing task, following whichever
    dependency (input arrival or worker availability) bound each start."""
    if report.trace is None or report.transfers is None:
        raise ValueError("simulate(..., trace=True) is required for analysis")
    traces = {t.task_id: t for t in report.trace}
    deliveries: dict[tuple[DataKey, int], object] = {
        (t.key, t.dst): t for t in report.transfers
    }
    # Map (node, end-time) -> task, to attribute worker waits.
    end_at_node: dict[tuple[int, float], int] = {}
    for t in report.trace:
        end_at_node.setdefault((graph.tasks[t.task_id].node, round(t.end, 12)), t.task_id)

    out = CriticalPathBreakdown(makespan=report.makespan)
    cur: Optional[int] = max(report.trace, key=lambda t: t.end).task_id
    guard = 0
    while cur is not None and guard <= len(graph.tasks):
        guard += 1
        e = traces[cur]
        task = graph.tasks[cur]
        out.path.append(cur)
        out.hops += 1
        out.kinds[task.kind] = out.kinds.get(task.kind, 0) + 1
        out.compute += e.end - e.start
        if e.start > e.ready + _EPS:
            # Worker-bound: continue through the task that freed the worker.
            out.worker_wait += e.start - e.ready
            cur = end_at_node.get((task.node, round(e.start, 12)))
            continue
        # Input-bound: find the binding input.
        best_key, best_time, best_tr = None, -1.0, None
        for key in task.reads:
            tr = deliveries.get((key, task.node))
            if tr is not None:
                arrival = tr.delivered
            else:
                pid = graph.producer.get(key)
                arrival = traces[pid].end if pid is not None else 0.0
            if arrival > best_time:
                best_key, best_time, best_tr = key, arrival, tr
        if best_key is None or best_time <= _EPS:
            break  # reached a source task
        if best_tr is not None:
            out.xfer_queue += best_tr.queue_wait
            out.xfer_wire += best_tr.delivered - best_tr.started
        cur = graph.producer.get(best_key)
    return out


def iteration_profile(graph: TaskGraph, report: SimReport) -> list[tuple[int, float]]:
    """Completion time of each iteration (the per-panel rhythm).

    Returns (iteration, last task end) pairs in iteration order — the gaps
    expose which panels stall the pipeline.
    """
    if report.trace is None:
        raise ValueError("simulate(..., trace=True) is required for analysis")
    ends: dict[int, float] = {}
    for t in report.trace:
        it = graph.tasks[t.task_id].iteration
        ends[it] = max(ends.get(it, 0.0), t.end)
    return sorted(ends.items())


def utilization_timeline(
    report: SimReport, buckets: int = 50
) -> list[tuple[float, float]]:
    """Worker utilization over time, as (bucket start, busy fraction) pairs.

    Shows the paper's pipeline phases: the ramp-up while the first panels
    unlock parallelism, the near-full plateau, and the endgame where the
    shrinking trailing matrix starves the workers — the regime where the
    distribution's communication pattern decides the makespan.
    """
    if report.trace is None:
        raise ValueError("simulate(..., trace=True) is required for analysis")
    if buckets < 1:
        raise ValueError(f"need at least one bucket, got {buckets}")
    span = report.makespan
    if span <= 0:
        return []
    width = span / buckets
    busy = [0.0] * buckets
    for t in report.trace:
        first = min(int(t.start / width), buckets - 1)
        last = min(int(t.end / width), buckets - 1)
        for bkt in range(first, last + 1):
            lo = max(t.start, bkt * width)
            hi = min(t.end, (bkt + 1) * width)
            if hi > lo:
                busy[bkt] += hi - lo
    workers = len(report.busy_time) * report.cores_per_node
    return [(i * width, busy[i] / (width * workers)) for i in range(buckets)]
