"""Array-plane discrete-event engine over a :class:`CompiledGraph`.

This is the same simulation as :func:`repro.runtime.simulator.engine
.simulate` — same network model (the :class:`NetworkSim` instance is
shared code), same scheduling policy, same event ordering — but the event
loop walks integer task/data ids over the flat arrays produced by
:mod:`repro.graph.compiled` instead of ``Task`` objects and dict-of-list
dependency maps.  Every bookkeeping structure is lowered to a compact
Python-native form chosen for constant-time, allocation-free access in
the loop:

* per-task node / kind columns become ``bytes`` (values are small, so
  indexing yields interned ints and the working set stays cache-sized);
* the missing-input counters live in one ``bytearray``;
* the common ``write_id[t] == n_init + t`` layout of the direct compilers
  is detected and replaced by arithmetic, skipping a 10M-entry table;
* CSR adjacency and the numeric per-task/per-pair columns are indexed
  through zero-copy ``memoryview``s of the plan's contiguous numpy
  arrays — boxed-number-free storage (8 bytes per entry instead of a
  pointer to a boxed number each) without duplicating the buffers.

For the lean configuration (direct broadcast, untraced, unsynchronized,
fault-free, default queue) the serve loop also exists as a flat-array
kernel in :mod:`._kernel`, numba-compiled when available and selected
with ``simulate_compiled(..., kernel="auto"|"jit")``; the loop in this
module is the always-available fallback and the reference for the
kernel's equality tests.

The transcription is deliberately statement-by-statement faithful to the
object engine, including the order in which events are pushed (the heap
tie-breaker is the push sequence number): the property suite asserts
*exact* equality of makespan, bytes and messages between the two engines
across distributions, broadcast modes and aggregation settings.  The
object engine remains the reference implementation — prefer it for small
graphs, custom ``duration_fn`` callables and exploratory changes; see
``docs/network-model.md`` ("Scaling limits").
"""

from __future__ import annotations

import gc
from dataclasses import replace
from heapq import heappop, heappush
from collections import defaultdict, deque
from typing import Optional

import numpy as np

from ...config import MachineSpec
from ...graph.compiled import CompiledGraph, compiled_critical_path_priorities
from ...obs import Recorder
from ..faults import FaultPlan, SimulatedFailure
from .engine import SimReport
from .network import NetworkSim, Transfer

__all__ = ["simulate_compiled"]


def simulate_compiled(
    cg: CompiledGraph,
    machine: MachineSpec,
    synchronized: bool = False,
    durations: Optional[np.ndarray] = None,
    auto_priorities: bool = True,
    trace: bool = False,
    broadcast: str = "direct",
    aggregate: bool = False,
    recorder: Optional[Recorder] = None,
    faults: Optional[FaultPlan] = None,
    scheduler=None,
    kernel: str = "auto",
) -> SimReport:
    """Simulate a compiled graph on ``machine``.

    Accepts the same options as the object engine's ``simulate`` except
    that custom task durations are passed as a per-task array
    (``durations``) rather than a callable.  Returns the same
    :class:`SimReport`.

    ``kernel`` selects the implementation of the inner serve loop:

    * ``"numpy"`` — the pure-Python/numpy event loop below (always
      available, always tested);
    * ``"jit"`` — the numba-compiled flat-array kernel
      (:mod:`repro.runtime.simulator._kernel`); raises if numba is not
      installed or the run needs features the kernel does not cover
      (trace, ``synchronized``, faults, tree broadcast, aggregation,
      custom ready queues);
    * ``"interp"`` — the same flat-array kernel run uncompiled: slow,
      but lets the suite pin the kernel's event ordering without numba;
    * ``"auto"`` (default) — ``"jit"`` when numba is importable and the
      run is kernel-eligible, else ``"numpy"``.

    All kernels produce bit-identical makespan/bytes/messages (asserted
    against the object engine in ``tests/test_compiled_engine.py``).

    ``scheduler`` names a policy from :data:`repro.schedulers.POLICIES`
    (or passes a ``SchedulerInterface`` instance).  Plans are applied to
    a copy of ``cg`` — the caller's priority/placement columns are never
    mutated — and ``scheduler=None`` / ``"critical-path"`` leaves every
    native code path untouched, so default runs stay bit-exact with the
    object engine.

    A :class:`repro.runtime.faults.FaultPlan` produces bit-identical
    makespan/bytes/messages to the object engine under the same plan
    (fault runs take the general loop and route every network quantum
    through the shared :class:`NetworkSim` code so the injected wire
    factors agree exactly).
    """
    if broadcast not in ("direct", "tree"):
        raise ValueError(f"unknown broadcast mode {broadcast!r}")
    n_tasks = cg.n_tasks
    if n_tasks == 0:
        raise ValueError("cannot simulate an empty graph")
    if cg.nodes_used() > machine.nodes:
        raise ValueError(
            f"graph uses {cg.nodes_used()} nodes but machine has {machine.nodes}"
        )
    if kernel not in ("auto", "numpy", "jit", "interp"):
        raise ValueError(f"unknown kernel {kernel!r}")
    num_nodes = machine.nodes
    if durations is None:
        mkern = machine.kernel
        durations = mkern.overhead + cg.flops / mkern.rate(cg.b)
        mtopo = machine.topology
        if mtopo is not None and mtopo.speed:
            # Heterogeneous nodes: elementwise division by the per-node
            # speed multiplier — the identical IEEE expression the object
            # engine's default duration_fn evaluates per task.  A caller-
            # supplied ``durations`` array is used verbatim (like a custom
            # ``duration_fn`` on the object engine).
            speed = np.asarray(mtopo.speed, dtype=np.float64)
            durations = durations / speed[cg.node]

    # --- scheduler policy (repro.schedulers) --------------------------------
    # Applied before any lowering so node / priority columns and the comm
    # plan all reflect the policy's choices.  Plans land on a clone of
    # ``cg`` (``replace`` / ``reassigned``) — the caller's arrays stay
    # untouched, so a later default run of the same graph still triggers
    # its own auto-priority sweep.
    cqueue = None
    if scheduler is not None:
        from ...schedulers import CompiledGraphView, get_policy

        policy = get_policy(scheduler)
        splan = policy.plan(CompiledGraphView(cg, machine, durations))
        synchronized = synchronized or splan.synchronized
        if splan.assignment is not None:
            asg = np.ascontiguousarray(splan.assignment, dtype=cg.node.dtype)
            if asg.shape != (n_tasks,):
                got = asg.shape[0] if asg.ndim == 1 else asg.shape
                raise ValueError(
                    f"policy {policy.name!r} returned {got} "
                    f"assignments for {n_tasks} tasks"
                )
            if asg.size and (int(asg.min()) < 0 or int(asg.max()) >= num_nodes):
                raise ValueError(
                    f"policy {policy.name!r} assigned tasks outside "
                    f"nodes [0, {num_nodes})"
                )
            cg = cg.reassigned(asg)
        if splan.priorities is not None:
            prios = np.ascontiguousarray(splan.priorities, dtype=np.float64)
            if prios.shape != (n_tasks,):
                raise ValueError(
                    f"policy {policy.name!r} returned {len(prios)} "
                    f"priorities for {n_tasks} tasks"
                )
            if splan.assignment is not None:
                cg.priority[:] = prios  # the reassigned clone's private copy
            else:
                cg = replace(cg, priority=prios)
            auto_priorities = False
        if splan.queue_factory is not None:
            cqueue = splan.queue_factory(num_nodes, machine.cores)
    if auto_priorities and not cg.priority.any():
        cg.priority[:] = compiled_critical_path_priorities(cg, durations)

    plan = cg.comm_plan()
    ctopo = (machine.topology.compiled()
             if machine.topology is not None else None)

    # --- kernel dispatch ----------------------------------------------------
    # The flat-array kernel covers the lean configuration only — exactly
    # the runs the numpy path below serves with its inlined loop.
    # Topology runs ARE kernel-eligible: the kernel lowers the routing
    # tables to flat arrays and walks them with the same float ops as
    # ``NetworkSim._serve`` (fault hooks stay excluded).
    want_trace = trace or (recorder is not None and recorder.enabled)
    kernel_ok = (
        not want_trace
        and not synchronized
        and faults is None
        and cqueue is None
        and broadcast == "direct"
        and not aggregate
    )
    if kernel in ("jit", "interp"):
        if not kernel_ok:
            raise ValueError(
                f"kernel={kernel!r} supports only direct-broadcast, "
                "untraced, unsynchronized, fault-free runs with the "
                "default ready queue; use kernel='numpy' (or 'auto') "
                "for this configuration"
            )
        return _run_kernel(cg, machine, plan, durations, kernel)
    if kernel == "auto" and kernel_ok:
        from . import _kernel as _k

        if _k.numba_available():
            return _run_kernel(cg, machine, plan, durations, "jit")

    # --- lowered per-run state ---------------------------------------------
    # ``bytes``/``bytearray`` columns index ~as fast as lists but without a
    # pointer per entry: at N = 400 the task columns alone would otherwise
    # be ~90 MB of pointers each, and the loop's working set falls out of
    # cache (see module docstring).
    if num_nodes <= 256:
        node_l = cg.node.astype(np.uint8).tobytes()
    else:
        node_l = cg.node.tolist()
    if len(cg.kind_names) <= 256:
        kind_l = cg.kind_codes.astype(np.uint8).tobytes()
    else:
        kind_l = cg.kind_codes.tolist()
    n_init = cg.n_init
    # The direct compilers emit write_id[t] == n_init + t; detect it and
    # use arithmetic instead of a 10M-entry table.
    write_dense = bool(
        np.array_equal(
            cg.write_id,
            np.arange(n_init, n_init + n_tasks, dtype=np.int64),
        )
    )
    write_l = None if write_dense else cg.write_id.tolist()
    # Numeric columns are indexed through ``memoryview``s of contiguous
    # numpy arrays: indexing boxes a fresh int/float per access exactly
    # like ``array.array`` (same speed, measured), but the views are
    # zero-copy — at N = 400, copying these columns into ``array.array``
    # buffers would duplicate ~470 MB that the plan already holds.
    dur_l = memoryview(np.ascontiguousarray(durations, dtype=np.float64))
    # Ready-queue keys are -priority; pre-negate once (the view keeps the
    # negated array alive).
    negprio_l = memoryview(np.negative(cg.priority))
    # A custom ReadyQueue takes the un-negated priority (same argument the
    # object engine hands its queue).
    prio_l = cg.priority.tolist() if cqueue is not None else None
    mi = plan.missing
    if mi.size == 0 or int(mi.max()) < 256:
        missing = bytearray(mi.astype(np.uint8).tobytes())
    else:
        missing = mi.tolist()
    lc_ptr = memoryview(np.ascontiguousarray(plan.lc_ptr))
    # kd_ptr is consulted per *message* (rare), but "does this data have
    # remote destinations at all" per *task* (hot): a bytes bitmap answers
    # the hot question in one index with no boxed-int churn.
    has_remote = (np.diff(plan.kd_ptr) != 0).astype(np.uint8).tobytes()
    kd_ptr = memoryview(np.ascontiguousarray(plan.kd_ptr))
    pair_dst = memoryview(np.ascontiguousarray(plan.pair_dst))
    rn_start = memoryview(np.ascontiguousarray(plan.pair_rn_start))
    rn_count = memoryview(np.ascontiguousarray(plan.pair_rn_count))
    nbytes_a = cg.data_nbytes
    # Local-consumer ids are sliced per completed task (many, tiny
    # slices); the view shares the plan's buffer.
    lc_ids = memoryview(np.ascontiguousarray(plan.lc_ids))
    # Remote-needer slices are large (one per message, all the waiting
    # consumers of one tile on one node), so deliveries decrement their
    # counters in bulk with numpy over a view of the ``missing`` buffer.
    # Valid only when every slice is strictly increasing (no task listed
    # twice — a duplicate would be decremented once, not twice, by fancy
    # indexing); otherwise fall back to the scalar loop.
    rn_arr = plan.rn_ids
    rn_vec = getattr(cg, "_rn_monotonic", None)
    if rn_vec is None:
        rn_vec = True
        if len(rn_arr) > 1:
            delta = np.diff(rn_arr)
            cross = np.sort(plan.pair_rn_start)
            cross = cross[(cross > 0) & (cross <= len(delta))] - 1
            within = np.ones(len(delta), dtype=bool)
            within[cross] = False
            rn_vec = bool(np.all(delta[within] > 0))
        cg._rn_monotonic = rn_vec
    rn_vec = rn_vec and isinstance(missing, bytearray)
    mi_view = np.frombuffer(missing, dtype=np.uint8) if rn_vec else None

    # Per-pair transfer priority: max over the waiting tasks, exactly the
    # max() the object engine evaluates at request time.
    n_pairs = len(pair_dst)
    if n_pairs:
        starts = plan.pair_rn_start
        order = np.argsort(starts, kind="stable")
        red = np.maximum.reduceat(cg.priority[rn_arr], starts[order])
        pair_prio_arr = np.empty(n_pairs, dtype=np.float64)
        pair_prio_arr[order] = red
        pair_prio = memoryview(pair_prio_arr)
    else:
        pair_prio = memoryview(np.empty(0, dtype=np.float64))
    # Deliveries resolve (data, dst) -> pair index by scanning the data's
    # kd slice (a handful of destinations) instead of a dict keyed on
    # data*num_nodes+dst: a few boxed compares per message in exchange
    # for dropping the ~n_pairs-entry dict from the working set.

    # --- synchronized-mode bookkeeping -------------------------------------
    if synchronized:
        iters, inverse = np.unique(cg.iteration, return_inverse=True)
        ipos = inverse.tolist()
        iter_remaining = np.bincount(inverse, minlength=len(iters)).tolist()
        n_iters = len(iters)
    else:
        ipos = None
        iter_remaining = []
        n_iters = 0
    iter_blocked: dict[int, list[int]] = defaultdict(list)
    released_idx = 0

    free = [machine.cores_for(i) for i in range(num_nodes)]
    # Per-node ready queue as a bucket queue: a FIFO deque per distinct
    # -priority plus a small heap of the distinct -priorities present.
    # Pop order (highest priority, FIFO within ties) is identical to the
    # object engine's (-priority, seq) heap, but push/pop cost no
    # log-depth tuple comparisons — the queues hold millions of entries
    # at paper scale.
    buckets: list[dict] = [{} for _ in range(num_nodes)]
    pheap: list[list] = [[] for _ in range(num_nodes)]
    qlen = [0] * num_nodes  # queue depth, only tracked for the trace gauge

    # --- fault-plan state (mirrors engine.simulate) -------------------------
    fault_slow = faults is not None and bool(faults.slowdowns)
    crash_after = (
        {c.node: c.after_tasks for c in faults.crashes}
        if faults is not None and faults.crashes else None
    )
    dead = [False] * num_nodes if crash_after is not None else None
    completed_on = [0] * num_nodes
    loss = faults.loss_state() if faults is not None else None
    wire_factor = (
        faults.link_factor if faults is not None and faults.links else None
    )
    # Under a slowdown the per-task duration depends on start time, so the
    # end-of-run busy-time bincount is wrong; accumulate like the object
    # engine instead.
    busy_acc = [0.0] * num_nodes if fault_slow else None
    tbk_acc = [0.0] * len(cg.kind_names) if fault_slow else None

    net = NetworkSim(machine.network, num_nodes, aggregate=aggregate,
                     wire_factor=wire_factor, topology=ctopo)
    if loss is None:
        lost_fn = None
    elif ctopo is None:
        lost_fn = loss.lost
    else:
        # Loss targets topology edges: roll every hop of the pair's
        # deterministic route (single-hop cliques reduce to loss.lost).
        lost_fn = lambda s, d: ctopo.roll_loss(loss, s, d)  # noqa: E731
    # The per-quantum server is transcribed inline in the event loop (the
    # single hottest network path); bind its state once.
    net_queues = net._queues
    net_ingress = net._ingress_free
    net_egress_busy = net._egress_busy
    net_busy = net.busy_time
    net_quantum = net.quantum
    net_bw = net._bandwidth
    net_lat = net._latency

    # --- event loop ---------------------------------------------------------
    # Events are (time, seq, kind, payload): kind 0 = task completion
    # (payload: task id), 1 = egress freed (payload: source node), 2 =
    # delivery (payload: Transfer), 3 = retransmission of a lost message
    # (payload: Transfer) — the object engine's "task"/"sent"/"xfer"/
    # "retry".
    events: list = []
    seq = 0
    now = 0.0

    if recorder is not None and recorder.enabled:
        rec = recorder
        trace = True
    else:
        rec = Recorder(source="simulator") if trace and recorder is None else None
        trace = rec is not None
    ready_time = [0.0] * n_tasks if trace else None
    first_chunk_start: dict[tuple[int, int], float] = {}
    data_keys = cg.data_keys
    kind_names = cg.kind_names

    if trace and faults is not None:
        # Same declaration order as the object engine.
        for w in faults.slowdowns:
            rec.record_fault("slowdown", time=w.start, node=w.node,
                             detail=f"x{w.factor} until {w.end:g}")
        for ln in faults.links:
            rec.record_fault("degraded", time=ln.start, src=ln.src, dst=ln.dst,
                             detail=f"x{ln.factor} until {ln.end:g}")

    def enqueue_ready(t: int, time: float) -> None:
        nonlocal seq
        if trace:
            ready_time[t] = time
        if synchronized and ipos[t] > released_idx:
            iter_blocked[ipos[t]].append(t)
            return
        n = node_l[t]
        if dead is not None and dead[n]:
            # Fail-stopped node: park the task (mirrors engine.simulate).
            if cqueue is not None:
                cqueue.push(n, t, prio_l[t])
                return
            np_ = negprio_l[t]
            bq = buckets[n]
            b = bq.get(np_)
            if b is None:
                bq[np_] = deque((t,))
                heappush(pheap[n], np_)
            else:
                b.append(t)
            return
        if free[n] > 0:
            free[n] -= 1
            dur = dur_l[t]
            if fault_slow:
                dur *= faults.compute_factor(n, time)
                busy_acc[n] += dur
                tbk_acc[kind_l[t]] += dur
            if trace:
                rec.record_task(t, kind_names[kind_l[t]], n,
                                ready_time[t], time, time + dur, cg.flops[t])
            seq += 1
            heappush(events, (time + dur, seq, 0, t))
        else:
            if cqueue is not None:
                cqueue.push(n, t, prio_l[t])
            else:
                np_ = negprio_l[t]
                bq = buckets[n]
                b = bq.get(np_)
                if b is None:
                    bq[np_] = deque((t,))
                    heappush(pheap[n], np_)
                else:
                    b.append(t)
            if trace:
                qlen[n] += 1
                rec.metrics.gauge(
                    "queue.depth.max", "peak ready-queue depth per node"
                ).set_max(qlen[n], labels=(n,))

    def launch(chunk) -> None:
        nonlocal seq
        tr = chunk.transfer
        if trace and (tr.key, tr.dst) not in first_chunk_start:
            first_chunk_start[(tr.key, tr.dst)] = chunk.egress_done
        seq += 1
        heappush(events, (chunk.egress_done, seq, 1, tr.src))
        if chunk.final:
            seq += 1
            heappush(events, (chunk.delivery, seq, 2, tr))

    def _send(d: int, src: int, dst: int, prio: float, time: float) -> None:
        started = net.submit(
            Transfer(d, src, dst, int(nbytes_a[d]), prio), time
        )
        if started is not None:
            launch(started)

    # Forwarding plans for tree broadcasts: (data id, node) -> child nodes.
    tree_children: dict[tuple[int, int], list[int]] = {}
    _forward_prios: dict[tuple[int, int], float] = {}

    def request_transfers(d: int, src: int, time: float) -> None:
        p0 = int(kd_ptr[d])
        p1 = int(kd_ptr[d + 1])
        if p0 == p1:
            return
        if broadcast == "direct" or p1 - p0 == 1:
            for p in range(p0, p1):
                _send(d, src, pair_dst[p], pair_prio[p], time)
            return
        # Binomial tree: urgent destinations closest to the root; node at
        # index i is served by the node at index i - 2^floor(log2 i).
        dsts = pair_dst[p0:p1]
        prios = {dsts[k]: pair_prio[p0 + k] for k in range(p1 - p0)}
        order = sorted(dsts, key=lambda x: -prios[x])
        ring = [src] + order
        children: dict[int, list[int]] = defaultdict(list)
        for i in range(1, len(ring)):
            parent = i - (1 << (i.bit_length() - 1))
            children[parent].append(i)
        subtree_prio = [0.0] * len(ring)
        for i in range(len(ring) - 1, 0, -1):
            subtree_prio[i] = max(
                [prios[ring[i]]] + [subtree_prio[c] for c in children.get(i, ())]
            )
        for i in range(1, len(ring)):
            kids = children.get(i)
            if kids:
                tree_children[(d, ring[i])] = [ring[c] for c in kids]
        for c in children[0]:
            _send(d, src, ring[c], subtree_prio[c], time)
        for i in range(1, len(ring)):
            for c in children.get(i, ()):
                _forward_prios[(d, ring[c])] = subtree_prio[c]

    def release_iterations(time: float) -> None:
        nonlocal released_idx
        while (
            released_idx + 1 < n_iters
            and iter_remaining[released_idx] == 0
        ):
            released_idx += 1
            for t in iter_blocked.pop(released_idx, []):
                if missing[t] == 0:
                    enqueue_ready(t, time)

    # Kick off: source tasks (ascending id, like the object engine's scan)
    # and transfers of misplaced initial data.
    for t in np.flatnonzero(mi == 0).tolist():
        enqueue_ready(t, 0.0)
    for d, home in plan.initial_sources:
        request_transfers(d, home, 0.0)

    delivered_pairs = bytearray(n_pairs)

    # The loop allocates only acyclic temporaries (event tuples, chunks),
    # reclaimed by refcounting; with tens of millions of live ints in the
    # lowered lists, letting the cyclic collector run full passes here
    # costs more than the whole event loop.  The two ``enqueue_ready``
    # call sites below are inlined copies of the function above — the
    # call itself (and the closure-cell reloads it forces) is measurable
    # at ten million calls.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        if (trace or synchronized or faults is not None or cqueue is not None
                or ctopo is not None):
            while events:
                now, _evseq, kind, payload = heappop(events)
                if kind == 0:  # task completion
                    t = payload
                    n = node_l[t]
                    if crash_after is not None and not dead[n]:
                        completed_on[n] += 1
                        point = crash_after.get(n)
                        if point is not None and completed_on[n] >= point:
                            dead[n] = True
                            if trace:
                                rec.record_fault(
                                    "crash", time=now, node=n,
                                    detail=f"after {completed_on[n]} tasks")
                    if dead is not None and dead[n]:
                        pass  # no workers left on a fail-stopped node
                    else:
                        if cqueue is not None:
                            t2 = cqueue.pop(n)
                        elif pheap[n]:
                            ph = pheap[n]
                            np0 = ph[0]
                            bq = buckets[n]
                            b2 = bq[np0]
                            t2 = b2.popleft()
                            if not b2:
                                heappop(ph)
                                del bq[np0]
                        else:
                            t2 = None
                        if t2 is None:
                            free[n] += 1
                        else:
                            if trace:
                                qlen[n] -= 1
                            dur = dur_l[t2]
                            if fault_slow:
                                dur *= faults.compute_factor(n, now)
                                busy_acc[n] += dur
                                tbk_acc[kind_l[t2]] += dur
                            if trace:
                                rec.record_task(t2, kind_names[kind_l[t2]], n,
                                                ready_time[t2], now, now + dur,
                                                cg.flops[t2])
                            seq += 1
                            heappush(events, (now + dur, seq, 0, t2))
                    d = t + n_init if write_dense else write_l[t]
                    if d >= 0:
                        a = lc_ptr[d]
                        b = lc_ptr[d + 1]
                        if a != b:
                            # most tiles have exactly one local consumer;
                            # skip the slice allocation for that case
                            for tid in ((lc_ids[a],) if b - a == 1
                                        else lc_ids[a:b]):
                                m = missing[tid] - 1
                                missing[tid] = m
                                if m == 0:  # inlined enqueue_ready(tid, now)
                                    if trace:
                                        ready_time[tid] = now
                                    if synchronized and ipos[tid] > released_idx:
                                        iter_blocked[ipos[tid]].append(tid)
                                        continue
                                    n2 = node_l[tid]
                                    if dead is not None and dead[n2]:
                                        if cqueue is not None:
                                            cqueue.push(n2, tid, prio_l[tid])
                                            continue
                                        np_ = negprio_l[tid]
                                        bq2 = buckets[n2]
                                        b3 = bq2.get(np_)
                                        if b3 is None:
                                            bq2[np_] = deque((tid,))
                                            heappush(pheap[n2], np_)
                                        else:
                                            b3.append(tid)
                                        continue
                                    if free[n2] > 0:
                                        free[n2] -= 1
                                        dur = dur_l[tid]
                                        if fault_slow:
                                            dur *= faults.compute_factor(n2, now)
                                            busy_acc[n2] += dur
                                            tbk_acc[kind_l[tid]] += dur
                                        if trace:
                                            rec.record_task(
                                                tid, kind_names[kind_l[tid]], n2,
                                                now, now, now + dur, cg.flops[tid])
                                        seq += 1
                                        heappush(events, (now + dur, seq, 0, tid))
                                    else:
                                        if cqueue is not None:
                                            cqueue.push(n2, tid, prio_l[tid])
                                        else:
                                            np_ = negprio_l[tid]
                                            bq = buckets[n2]
                                            b3 = bq.get(np_)
                                            if b3 is None:
                                                bq[np_] = deque((tid,))
                                                heappush(pheap[n2], np_)
                                            else:
                                                b3.append(tid)
                                        if trace:
                                            qlen[n2] += 1
                                            rec.metrics.gauge(
                                                "queue.depth.max",
                                                "peak ready-queue depth per node",
                                            ).set_max(qlen[n2], labels=(n2,))
                        if has_remote[d]:
                            request_transfers(d, n, now)
                    if synchronized:
                        iter_remaining[ipos[t]] -= 1
                        release_iterations(now)
                elif kind == 1:  # source egress channel freed
                    if faults is not None or ctopo is not None:
                        # Fault and topology runs take the shared NetworkSim
                        # path so the injected wire factors / routed walks
                        # apply identically to both engines (the
                        # transcription below skips both).
                        nxt = net.egress_freed(payload, now)
                        if nxt is not None:
                            launch(nxt)
                        continue
                    # Statement-by-statement transcription of
                    # ``NetworkSim._serve`` + ``launch``: the per-quantum path
                    # runs millions of times and the call/Chunk overhead is
                    # measurable.  Covered by the engine-equality suite.
                    src_n = payload
                    queue = net_queues[src_n]
                    while queue:
                        negprio, _s, tr = heappop(queue)
                        if negprio == -tr.priority:
                            break
                    else:
                        net_egress_busy[src_n] = False
                        continue
                    remaining = tr.remaining
                    size = net_quantum if net_quantum < remaining else remaining
                    remaining -= size
                    tr.remaining = remaining
                    wire = size / net_bw
                    occupancy = wire if tr.started else wire + net_lat
                    tr.started = True
                    egress_done = now + occupancy
                    dst = tr.dst
                    ingress = net_ingress[dst] + wire
                    delivery = egress_done if egress_done > ingress else ingress
                    net_ingress[dst] = delivery
                    net_busy[src_n] += occupancy
                    if remaining:
                        s2 = net._seq + 1
                        net._seq = s2
                        heappush(queue, (-tr.priority, s2, tr))
                    else:
                        tr.end = delivery
                    if trace and (tr.key, dst) not in first_chunk_start:
                        first_chunk_start[(tr.key, dst)] = egress_done
                    seq += 1
                    heappush(events, (egress_done, seq, 1, src_n))
                    if not remaining:
                        seq += 1
                        heappush(events, (delivery, seq, 2, tr))
                elif kind == 3:  # retransmission of a lost message
                    old = payload
                    nt = Transfer(old.key, old.src, old.dst, old.nbytes,
                                  old.priority)
                    nt.keys = list(old.keys)  # preserve aggregated payloads
                    if trace:
                        rec.record_fault(
                            "retry", time=now, src=old.src, dst=old.dst,
                            key=(data_keys[old.key] if data_keys is not None
                                 else old.key))
                    started = net.submit(nt, now)
                    if started is not None:
                        launch(started)
                else:  # transfer delivered at the destination
                    tr = payload
                    if lost_fn is not None and lost_fn(tr.src, tr.dst):
                        # Transient loss: the message evaporates in flight;
                        # the sender retransmits after the plan's timeout.
                        if trace:
                            rec.record_fault(
                                "loss", time=tr.end, src=tr.src, dst=tr.dst,
                                key=(data_keys[tr.key] if data_keys is not None
                                     else tr.key),
                                detail="retry at "
                                f"{tr.end + faults.retransmit_timeout:.6g}",
                            )
                        seq += 1
                        heappush(events,
                                 (tr.end + faults.retransmit_timeout, seq, 3, tr))
                        continue
                    if trace:
                        rec.record_transfer(
                            key=data_keys[tr.key] if data_keys is not None else tr.key,
                            src=tr.src,
                            dst=tr.dst,
                            nbytes=tr.nbytes,
                            submitted=tr.submitted,
                            started=first_chunk_start.get(
                                (tr.key, tr.dst), tr.submitted
                            ),
                            delivered=tr.end,
                        )
                    dst = tr.dst
                    end = tr.end
                    for d in tr.keys:
                        p = kd_ptr[d]
                        while pair_dst[p] != dst:
                            p += 1
                        if not delivered_pairs[p]:
                            delivered_pairs[p] = 1
                            s0 = rn_start[p]
                            s1 = s0 + rn_count[p]
                            if rn_vec:
                                ids = rn_arr[s0:s1]
                                vals = mi_view[ids]
                                vals -= 1
                                mi_view[ids] = vals
                                newly = ids[vals == 0]
                                ready_iter = newly.tolist() if len(newly) else ()
                            else:
                                ready_iter = []
                                for tid in rn_arr[s0:s1].tolist():
                                    m = missing[tid] - 1
                                    missing[tid] = m
                                    if m == 0:
                                        ready_iter.append(tid)
                            # Enqueueing after all decrements is equivalent to
                            # the object engine's interleaved order: enqueues
                            # never read the counters, and the relative order
                            # of the newly-ready tasks is the slice order.
                            for tid in ready_iter:
                                # inlined enqueue_ready(tid, end)
                                if trace:
                                    ready_time[tid] = end
                                if synchronized and ipos[tid] > released_idx:
                                    iter_blocked[ipos[tid]].append(tid)
                                    continue
                                n2 = node_l[tid]
                                if dead is not None and dead[n2]:
                                    if cqueue is not None:
                                        cqueue.push(n2, tid, prio_l[tid])
                                        continue
                                    np_ = negprio_l[tid]
                                    bq2 = buckets[n2]
                                    b3 = bq2.get(np_)
                                    if b3 is None:
                                        bq2[np_] = deque((tid,))
                                        heappush(pheap[n2], np_)
                                    else:
                                        b3.append(tid)
                                    continue
                                if free[n2] > 0:
                                    free[n2] -= 1
                                    dur = dur_l[tid]
                                    if fault_slow:
                                        dur *= faults.compute_factor(n2, end)
                                        busy_acc[n2] += dur
                                        tbk_acc[kind_l[tid]] += dur
                                    if trace:
                                        rec.record_task(
                                            tid, kind_names[kind_l[tid]], n2,
                                            end, end, end + dur, cg.flops[tid])
                                    seq += 1
                                    heappush(events, (end + dur, seq, 0, tid))
                                else:
                                    if cqueue is not None:
                                        cqueue.push(n2, tid, prio_l[tid])
                                    else:
                                        np_ = negprio_l[tid]
                                        bq = buckets[n2]
                                        b3 = bq.get(np_)
                                        if b3 is None:
                                            bq[np_] = deque((tid,))
                                            heappush(pheap[n2], np_)
                                        else:
                                            b3.append(tid)
                                    if trace:
                                        qlen[n2] += 1
                                        rec.metrics.gauge(
                                            "queue.depth.max",
                                            "peak ready-queue depth per node",
                                        ).set_max(qlen[n2], labels=(n2,))
                        for child in tree_children.pop((d, dst), ()):
                            _send(
                                d,
                                dst,
                                child,
                                _forward_prios.pop((d, child), tr.priority),
                                end,
                            )
        else:
            # Lean variant of the loop above for the common untraced,
            # unsynchronized case: identical statements minus the trace
            # and barrier branches (the equality suite runs both paths).
            _hpush = heappush
            _hpop = heappop
            is_tree = broadcast == "tree"
            while events:
                now, _evseq, kind, payload = _hpop(events)
                if kind == 0:  # task completion
                    t = payload
                    n = node_l[t]
                    ph = pheap[n]
                    if ph:
                        np0 = ph[0]
                        bq = buckets[n]
                        b2 = bq[np0]
                        t2 = b2.popleft()
                        if not b2:
                            _hpop(ph)
                            del bq[np0]
                        seq += 1
                        _hpush(events, (now + dur_l[t2], seq, 0, t2))
                    else:
                        free[n] += 1
                    d = t + n_init if write_dense else write_l[t]
                    if d >= 0:
                        a = lc_ptr[d]
                        b = lc_ptr[d + 1]
                        if a != b:
                            for tid in ((lc_ids[a],) if b - a == 1
                                        else lc_ids[a:b]):
                                m = missing[tid] - 1
                                missing[tid] = m
                                if m == 0:  # enqueue_ready(tid, now)
                                    n2 = node_l[tid]
                                    if free[n2] > 0:
                                        free[n2] -= 1
                                        seq += 1
                                        _hpush(events,
                                               (now + dur_l[tid], seq, 0, tid))
                                    else:
                                        np_ = negprio_l[tid]
                                        bq = buckets[n2]
                                        b3 = bq.get(np_)
                                        if b3 is None:
                                            bq[np_] = deque((tid,))
                                            _hpush(pheap[n2], np_)
                                        else:
                                            b3.append(tid)
                        if has_remote[d]:
                            request_transfers(d, n, now)
                elif kind == 1:  # source egress channel freed
                    src_n = payload
                    queue = net_queues[src_n]
                    while queue:
                        negprio, _s, tr = _hpop(queue)
                        if negprio == -tr.priority:
                            break
                    else:
                        net_egress_busy[src_n] = False
                        continue
                    remaining = tr.remaining
                    size = (net_quantum if net_quantum < remaining
                            else remaining)
                    remaining -= size
                    tr.remaining = remaining
                    wire = size / net_bw
                    occupancy = wire if tr.started else wire + net_lat
                    tr.started = True
                    egress_done = now + occupancy
                    dst = tr.dst
                    ingress = net_ingress[dst] + wire
                    delivery = (egress_done if egress_done > ingress
                                else ingress)
                    net_ingress[dst] = delivery
                    net_busy[src_n] += occupancy
                    if remaining:
                        s2 = net._seq + 1
                        net._seq = s2
                        _hpush(queue, (-tr.priority, s2, tr))
                    else:
                        tr.end = delivery
                    seq += 1
                    _hpush(events, (egress_done, seq, 1, src_n))
                    if not remaining:
                        seq += 1
                        _hpush(events, (delivery, seq, 2, tr))
                else:  # transfer delivered at the destination
                    tr = payload
                    dst = tr.dst
                    end = tr.end
                    for d in tr.keys:
                        p = kd_ptr[d]
                        while pair_dst[p] != dst:
                            p += 1
                        if not delivered_pairs[p]:
                            delivered_pairs[p] = 1
                            s0 = rn_start[p]
                            s1 = s0 + rn_count[p]
                            if rn_vec:
                                ids = rn_arr[s0:s1]
                                vals = mi_view[ids]
                                vals -= 1
                                mi_view[ids] = vals
                                newly = ids[vals == 0]
                                ready_iter = (newly.tolist() if len(newly)
                                              else ())
                            else:
                                ready_iter = []
                                for tid in rn_arr[s0:s1].tolist():
                                    m = missing[tid] - 1
                                    missing[tid] = m
                                    if m == 0:
                                        ready_iter.append(tid)
                            for tid in ready_iter:  # enqueue_ready(tid, end)
                                n2 = node_l[tid]
                                if free[n2] > 0:
                                    free[n2] -= 1
                                    seq += 1
                                    _hpush(events,
                                           (end + dur_l[tid], seq, 0, tid))
                                else:
                                    np_ = negprio_l[tid]
                                    bq = buckets[n2]
                                    b3 = bq.get(np_)
                                    if b3 is None:
                                        bq[np_] = deque((tid,))
                                        _hpush(pheap[n2], np_)
                                    else:
                                        b3.append(tid)
                        if is_tree:
                            for child in tree_children.pop((d, dst), ()):
                                _send(
                                    d,
                                    dst,
                                    child,
                                    _forward_prios.pop((d, child), tr.priority),
                                    end,
                                )
    finally:
        if gc_was_enabled:
            gc.enable()

    if cqueue is not None:
        queued = cqueue.total()
    else:
        queued = sum(len(q) for bq in buckets for q in bq.values())
    blocked = sum(len(v) for v in iter_blocked.values())
    if isinstance(missing, bytearray):
        unready = int(np.count_nonzero(np.frombuffer(missing, dtype=np.uint8)))
    else:
        unready = sum(1 for m in missing if m)
    done = n_tasks - queued - blocked - unready
    if done != n_tasks:
        if dead is not None and any(dead):
            crashed = ", ".join(
                f"node {i} after {completed_on[i]} tasks"
                for i in range(num_nodes) if dead[i]
            )
            raise SimulatedFailure(
                f"simulated worker crash ({crashed}): "
                f"{n_tasks - done}/{n_tasks} tasks never ran"
            )
        raise RuntimeError(
            f"simulation deadlock: executed {done}/{n_tasks} tasks "
            f"({blocked} blocked on barriers)"
        )

    if fault_slow:
        # Slowed durations depend on each task's start time, so they were
        # accumulated in event order, exactly like the object engine.
        busy_time = busy_acc
        time_by_kind = {
            kind_names[c]: tbk_acc[c]
            for c in range(len(kind_names))
            if tbk_acc[c]
        }
    else:
        # Every task ran exactly once, so per-node and per-kind busy time
        # are plain weighted bincounts over the task table.  Summation
        # order differs from the object engine's event-order accumulation,
        # so these match it to float rounding (makespan/bytes/messages
        # stay exact).
        busy_time = np.bincount(
            cg.node, weights=durations, minlength=num_nodes
        ).tolist()
        counts = np.bincount(cg.kind_codes, minlength=len(kind_names))
        kt = np.bincount(cg.kind_codes, weights=durations,
                         minlength=len(kind_names))
        time_by_kind = {
            kind_names[c]: float(kt[c])
            for c in range(len(kind_names))
            if counts[c]
        }
    if trace:
        rec.finalize_utilization(busy_time, now, machine.cores)
        rec.metrics.gauge("makespan.seconds", "simulated makespan").set(now)
    return SimReport(
        makespan=now,
        total_flops=cg.total_flops(),
        num_nodes=machine.nodes,
        comm_bytes=int(net.total_bytes),
        comm_messages=int(net.total_messages),
        busy_time=busy_time,
        time_by_kind=time_by_kind,
        num_tasks=n_tasks,
        cores_per_node=machine.cores,
        trace=rec.task_events if trace else None,
        transfers=rec.transfer_events if trace else None,
        obs=rec if trace else None,
    )


def _run_kernel(
    cg: CompiledGraph,
    machine: MachineSpec,
    plan,
    durations: np.ndarray,
    kernel: str,
) -> SimReport:
    """Run the lean event loop via :mod:`._kernel` and build the report.

    ``kernel`` is the resolved mode: ``"jit"`` (numba-compiled) or
    ``"interp"`` (same source, uncompiled).  Eligibility was checked by
    the caller; priorities and the comm plan are already final.
    """
    from . import _kernel

    n_tasks = cg.n_tasks
    num_nodes = machine.nodes
    n_pairs = len(plan.pair_dst)
    n_data = len(cg.data_nbytes)

    # Source node per data id: the producing task's node, or the declared
    # home for initial data — exactly the ``src`` the numpy path hands
    # ``request_transfers`` (correct under scheduler reassignment too,
    # since ``cg.node`` here is the reassigned column).
    src_of_data = np.zeros(n_data, dtype=np.int64)
    wmask = cg.write_id >= 0
    src_of_data[cg.write_id[wmask]] = cg.node[wmask]
    for d, home in plan.initial_sources:
        src_of_data[d] = home
    pair_src = src_of_data[plan.pair_data]
    pair_nbytes = cg.data_nbytes[plan.pair_data].astype(np.int64, copy=False)

    # Per-pair transfer priority: max over the waiting tasks (same
    # reduceat as the numpy path's lowering).
    if n_pairs:
        starts = plan.pair_rn_start
        order = np.argsort(starts, kind="stable")
        red = np.maximum.reduceat(cg.priority[plan.rn_ids], starts[order])
        pair_prio = np.empty(n_pairs, dtype=np.float64)
        pair_prio[order] = red
    else:
        pair_prio = np.zeros(0, dtype=np.float64)

    # Misplaced initial data kicks off its transfers at t = 0, pairs in
    # CSR order per data — the numpy path's kick-off sequence.
    init: list[int] = []
    kd_ptr = plan.kd_ptr
    for d, _home in plan.initial_sources:
        init.extend(range(int(kd_ptr[d]), int(kd_ptr[d + 1])))
    init_pairs = np.asarray(init, dtype=np.int64)

    dur = np.ascontiguousarray(durations, dtype=np.float64)
    negprio = np.negative(cg.priority)
    missing = plan.missing.astype(np.int32)  # private copy, mutated

    cores_arr = np.asarray(
        [machine.cores_for(i) for i in range(num_nodes)], dtype=np.int64
    )

    # --- topology lowering --------------------------------------------------
    # The compiled routing tables are indexed (src, dst); the kernel works
    # per transfer pair, so gather each pair's route into its own CSR slice
    # (and its route latency) once, here, instead of per quantum.
    ctopo = (machine.topology.compiled()
             if machine.topology is not None else None)
    if ctopo is None:
        topo_on = 0
        tp_lat = np.zeros(0, dtype=np.float64)
        tp_ptr = np.zeros(1, dtype=np.int64)
        tp_eid = np.zeros(0, dtype=np.int64)
        edge_bw = np.zeros(0, dtype=np.float64)
        edge_sw = np.zeros(0, dtype=np.int64)
        sw_bw = np.zeros(0, dtype=np.float64)
    else:
        topo_on = 1
        ta = ctopo.as_arrays()
        edge_bw = ta["edge_bw"]
        edge_sw = ta["edge_sw"]
        sw_bw = ta["switch_bw"]
        pidx = pair_src.astype(np.int64) * num_nodes \
            + plan.pair_dst.astype(np.int64)
        tp_lat = ta["pair_lat"][pidx]
        starts64 = ta["path_ptr"][pidx]
        counts = ta["path_ptr"][pidx + 1] - starts64
        tp_ptr = np.zeros(n_pairs + 1, dtype=np.int64)
        np.cumsum(counts, out=tp_ptr[1:])
        total = int(tp_ptr[-1])
        if total:
            # tp_eid[j] for j in [tp_ptr[i], tp_ptr[i+1]) maps to
            # path_eid[starts64[i] + (j - tp_ptr[i])].
            off = np.repeat(starts64 - tp_ptr[:-1], counts)
            tp_eid = ta["path_eid"][np.arange(total, dtype=np.int64) + off]
        else:
            tp_eid = np.zeros(0, dtype=np.int64)

    net = NetworkSim(machine.network, num_nodes)
    if kernel == "jit":
        try:
            fn = _kernel.jit_serve_loop()
        except ImportError as exc:
            raise RuntimeError(
                "kernel='jit' requires numba, which is not installed; "
                "kernel='auto' falls back to the numpy path"
            ) from exc
    else:
        fn = _kernel.serve_loop

    now, total_bytes, total_messages, queued = fn(
        np.ascontiguousarray(cg.node, dtype=np.int32),
        dur,
        negprio,
        np.ascontiguousarray(cg.write_id, dtype=np.int64),
        missing,
        plan.lc_ptr,
        plan.lc_ids,
        kd_ptr,
        plan.pair_dst,
        pair_prio,
        pair_nbytes,
        np.ascontiguousarray(pair_src, dtype=np.int64),
        plan.pair_rn_start,
        plan.pair_rn_count,
        plan.rn_ids,
        init_pairs,
        num_nodes,
        cores_arr,
        int(net.quantum),
        float(net._bandwidth),
        float(net._latency),
        topo_on,
        tp_lat,
        tp_ptr,
        tp_eid,
        edge_bw,
        edge_sw,
        sw_bw,
    )

    unready = int(np.count_nonzero(missing))
    queued = int(queued)
    done = n_tasks - queued - unready
    if done != n_tasks:
        raise RuntimeError(
            f"simulation deadlock: executed {done}/{n_tasks} tasks "
            f"(0 blocked on barriers)"
        )

    kind_names = cg.kind_names
    busy_time = np.bincount(
        cg.node, weights=durations, minlength=num_nodes
    ).tolist()
    counts = np.bincount(cg.kind_codes, minlength=len(kind_names))
    kt = np.bincount(cg.kind_codes, weights=durations,
                     minlength=len(kind_names))
    time_by_kind = {
        kind_names[c]: float(kt[c])
        for c in range(len(kind_names))
        if counts[c]
    }
    return SimReport(
        makespan=float(now),
        total_flops=cg.total_flops(),
        num_nodes=machine.nodes,
        comm_bytes=int(total_bytes),
        comm_messages=int(total_messages),
        busy_time=busy_time,
        time_by_kind=time_by_kind,
        num_tasks=n_tasks,
        cores_per_node=machine.cores,
        trace=None,
        transfers=None,
        obs=None,
    )
