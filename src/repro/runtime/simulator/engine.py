"""Discrete-event simulation of a task graph on a cluster.

Models the execution environment of the paper's experiments:

* each node runs ``machine.cores`` workers; a ready task is started on a
  free worker, highest priority first (StarPU's dynamic local scheduling);
* the owner-computes placement is already encoded in the graph;
* data produced on one node and read on another travels as one eager
  point-to-point message per (version, destination), overlapped with
  computation (§V-C: communications are asynchronous and per-tile);
* optional ``synchronized`` mode withholds tasks of iteration ``k`` until
  every task of iteration ``k-1`` has completed — the static fork-join
  behaviour of classical MPI implementations, used as the COnfCHOX-style
  baseline.

The simulated transferred bytes are, by construction, exactly the volume
reported by :func:`repro.comm.count_communications` on the same graph;
the test suite verifies the equality.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Optional

from ...config import MachineSpec
from ...graph.priorities import set_critical_path_priorities
from ...graph.task import DataKey, Task, TaskGraph
from ...obs import Recorder, TaskEvent, TransferEvent
from ..faults import FaultPlan, SimulatedFailure
from .network import NetworkSim, Transfer

__all__ = ["SimReport", "TaskTrace", "TransferTrace", "simulate"]

#: Backwards-compatible names: the simulator's per-task / per-message
#: trace records are now the shared observability events of
#: :mod:`repro.obs.events` (same field names, plus kind/node/nbytes).
TaskTrace = TaskEvent
TransferTrace = TransferEvent


@dataclass
class SimReport:
    """Outcome of one simulated execution."""

    makespan: float
    total_flops: float
    num_nodes: int
    comm_bytes: int
    comm_messages: int
    busy_time: list[float] = field(default_factory=list)
    time_by_kind: dict[str, float] = field(default_factory=dict)
    num_tasks: int = 0
    cores_per_node: int = 1
    trace: Optional[list[TaskEvent]] = None
    transfers: Optional[list[TransferEvent]] = None
    #: the recorder that collected the trace (None on un-traced runs);
    #: carries the metrics registry and feeds the repro.obs exporters.
    obs: Optional[Recorder] = None

    @property
    def gflops_per_node(self) -> float:
        """The paper's figure of merit: #flops / (t * P) in GFlop/s."""
        return self.total_flops / (self.makespan * self.num_nodes) / 1e9

    @property
    def avg_utilization(self) -> float:
        """Mean fraction of worker-time spent computing."""
        if not self.busy_time or self.makespan <= 0:
            return 0.0
        workers = len(self.busy_time) * self.cores_per_node
        return sum(self.busy_time) / (self.makespan * workers)

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable summary (durations in seconds, traffic in bytes)."""
        return {
            "makespan": self.makespan,
            "gflops_per_node": self.gflops_per_node,
            "total_flops": self.total_flops,
            "num_nodes": self.num_nodes,
            "cores_per_node": self.cores_per_node,
            "comm_bytes": self.comm_bytes,
            "comm_messages": self.comm_messages,
            "avg_utilization": self.avg_utilization,
            "num_tasks": self.num_tasks,
            "time_by_kind": dict(self.time_by_kind),
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"makespan {self.makespan:.3f}s, {self.gflops_per_node:.1f} GFlop/s/node, "
            f"{self.comm_bytes / 1e9:.2f} GB in {self.comm_messages} messages, "
            f"utilization {self.avg_utilization:.2f}"
        )


class _NodeState:
    """Worker pool and ready queue of one simulated node."""

    __slots__ = ("free_workers", "ready", "seq")

    def __init__(self, workers: int):
        self.free_workers = workers
        self.ready: list = []
        self.seq = 0

    def push(self, task: Task) -> None:
        self.seq += 1
        heapq.heappush(self.ready, (-task.priority, self.seq, task))

    def pop(self) -> Optional[Task]:
        if not self.ready:
            return None
        return heapq.heappop(self.ready)[2]


def simulate(
    graph: TaskGraph,
    machine: MachineSpec,
    synchronized: bool = False,
    duration_fn: Optional[Callable[[Task], float]] = None,
    auto_priorities: bool = True,
    trace: bool = False,
    broadcast: str = "direct",
    aggregate: bool = False,
    recorder: Optional[Recorder] = None,
    faults: Optional[FaultPlan] = None,
    scheduler=None,
) -> SimReport:
    """Simulate ``graph`` on ``machine``; see module docstring for the model.

    ``trace=True`` records per-task and per-message events; pass your own
    :class:`repro.obs.Recorder` as ``recorder`` to also collect metrics
    across several runs or to export the trace (``repro.obs.export``).
    The recorder is returned on ``SimReport.obs``.

    ``aggregate`` coalesces queued messages sharing a (source,
    destination) pair into one wire message — same bytes, fewer messages.

    ``broadcast`` selects how a version reaches its remote consumers:
    ``"direct"`` (the paper's setup: the producer sends one point-to-point
    message per destination) or ``"tree"`` (binomial forwarding: receivers
    relay the tile onwards, spreading the port load and reducing the
    depth of large fan-outs to log2 — the collective-communication
    optimization §V-C notes Chameleon does not perform).  Total message
    and byte counts are identical in both modes.

    ``faults`` injects a seeded :class:`repro.runtime.faults.FaultPlan`:
    straggler windows multiply task durations, link degradations multiply
    wire time, transient losses drop deliveries and retransmit after a
    timeout (retransmitted bytes/messages count), and worker crashes
    fail-stop a node — the run then raises a diagnostic
    :class:`SimulatedFailure` naming the crashed node.  The same plan
    produces bit-identical results on :func:`simulate_compiled`; see
    ``docs/network-model.md`` ("Fault model").

    ``scheduler`` selects a policy from :mod:`repro.schedulers` (a name
    from ``repro.schedulers.POLICIES`` or a ``SchedulerInterface``
    instance).  The default ``None`` — like the default
    ``"critical-path"`` policy — runs the engine's native behaviour
    bit-exactly; other policies may replace priorities, override task
    placement (only if they declare ``migrates``; the graph's node
    fields are restored afterwards), force fork-join barriers, or plug
    in a dynamic ready-queue discipline.  See ``docs/schedulers.md``.
    """
    if broadcast not in ("direct", "tree"):
        raise ValueError(f"unknown broadcast mode {broadcast!r}")
    if not graph.tasks:
        raise ValueError("cannot simulate an empty graph")
    if duration_fn is None:
        b = graph.b
        kernel = machine.kernel
        topo = machine.topology
        if topo is not None and topo.speed:
            # Heterogeneous nodes: the per-node speed multiplier divides
            # the homogeneous duration.  The compiled engine evaluates the
            # identical IEEE expression vectorized, keeping bit-equality.
            speed = topo.speed
            duration_fn = lambda t: kernel.duration(t.flops, b) / speed[t.node]  # noqa: E731
        else:
            duration_fn = lambda t: kernel.duration(t.flops, b)  # noqa: E731

    queue = None
    saved_nodes: Optional[list[int]] = None
    saved_prios: Optional[list[float]] = None
    if scheduler is not None:
        from ...schedulers import ObjectGraphView, get_policy

        policy = get_policy(scheduler)
        splan = policy.plan(ObjectGraphView(graph, machine, duration_fn))
        synchronized = synchronized or splan.synchronized
        if splan.priorities is not None:
            prios = list(splan.priorities)
            if len(prios) != len(graph.tasks):
                raise ValueError(
                    f"policy {policy.name!r} returned {len(prios)} "
                    f"priorities for {len(graph.tasks)} tasks")
            saved_prios = [t.priority for t in graph.tasks]
            for t in graph.tasks:
                t.priority = prios[t.id]
            auto_priorities = False
        if splan.assignment is not None:
            asg = list(splan.assignment)
            if len(asg) != len(graph.tasks):
                raise ValueError(
                    f"policy {policy.name!r} returned {len(asg)} "
                    f"assignments for {len(graph.tasks)} tasks")
            if any(not 0 <= n < machine.nodes for n in asg):
                raise ValueError(
                    f"policy {policy.name!r} assigned a task outside "
                    f"nodes [0, {machine.nodes})")
            saved_nodes = [t.node for t in graph.tasks]
            for t in graph.tasks:
                t.node = asg[t.id]
        if splan.queue_factory is not None:
            queue = splan.queue_factory(machine.nodes, machine.cores)
    try:
        return _simulate(graph, machine, synchronized, duration_fn,
                         auto_priorities, trace, broadcast, aggregate,
                         recorder, faults, queue)
    finally:
        if saved_nodes is not None:
            for t in graph.tasks:
                t.node = saved_nodes[t.id]
        if saved_prios is not None:
            for t in graph.tasks:
                t.priority = saved_prios[t.id]


def _simulate(
    graph: TaskGraph,
    machine: MachineSpec,
    synchronized: bool,
    duration_fn: Callable[[Task], float],
    auto_priorities: bool,
    trace: bool,
    broadcast: str,
    aggregate: bool,
    recorder: Optional[Recorder],
    faults: Optional[FaultPlan],
    queue,
) -> SimReport:
    """The event loop behind :func:`simulate` (placement already applied)."""
    if graph.nodes_used() > machine.nodes:
        raise ValueError(
            f"graph uses {graph.nodes_used()} nodes but machine has {machine.nodes}"
        )
    num_nodes = machine.nodes
    if auto_priorities and all(t.priority == 0.0 for t in graph.tasks):
        # Bottom-level priorities mirror Chameleon's scheduling hints and
        # let both workers and the network favour the critical path.
        set_critical_path_priorities(graph, duration_fn)

    tasks = graph.tasks
    n_tasks = len(tasks)

    # --- dependency bookkeeping --------------------------------------------
    # missing[t] = input instances not yet present at t.node.
    missing = [0] * n_tasks
    # consumers on the producing node, released when the producer finishes.
    local_consumers: dict[DataKey, list[int]] = defaultdict(list)
    # consumers at remote nodes, released when the transfer arrives.
    remote_needers: dict[tuple[DataKey, int], list[int]] = defaultdict(list)
    # destination nodes awaiting each key (drives eager transfer fan-out).
    key_dsts: dict[DataKey, list[int]] = defaultdict(list)
    initial_sources: list[tuple[DataKey, int]] = []  # misplaced initial data
    for t in tasks:
        for k in t.reads:
            pid = graph.producer.get(k)
            if pid is not None:
                missing[t.id] += 1
                if tasks[pid].node == t.node:
                    local_consumers[k].append(t.id)
                else:
                    if (k, t.node) not in remote_needers:
                        key_dsts[k].append(t.node)
                    remote_needers[(k, t.node)].append(t.id)
            else:
                home = graph.initial[k][0]
                if home != t.node:
                    missing[t.id] += 1
                    if (k, t.node) not in remote_needers:
                        if k not in key_dsts:
                            initial_sources.append((k, home))
                        key_dsts[k].append(t.node)
                    remote_needers[(k, t.node)].append(t.id)

    # --- synchronized-mode bookkeeping -------------------------------------
    iterations = sorted({t.iteration for t in tasks})
    iter_pos = {it: i for i, it in enumerate(iterations)}
    iter_remaining = [0] * len(iterations)
    for t in tasks:
        iter_remaining[iter_pos[t.iteration]] += 1
    iter_blocked: dict[int, list[Task]] = defaultdict(list)
    released_idx = 0  # tasks with iteration index <= released_idx may run

    # --- fault-plan state ---------------------------------------------------
    fault_slow = faults is not None and bool(faults.slowdowns)
    crash_after = (
        {c.node: c.after_tasks for c in faults.crashes}
        if faults is not None and faults.crashes else None
    )
    dead = [False] * num_nodes if crash_after is not None else None
    completed_on = [0] * num_nodes
    loss = faults.loss_state() if faults is not None else None
    wire_factor = (
        faults.link_factor if faults is not None and faults.links else None
    )

    nodes = [_NodeState(machine.cores_for(i)) for i in range(num_nodes)]
    ctopo = (machine.topology.compiled()
             if machine.topology is not None else None)
    net = NetworkSim(machine.network, num_nodes, aggregate=aggregate,
                     wire_factor=wire_factor, topology=ctopo)
    if loss is None:
        lost_fn = None
    elif ctopo is None:
        lost_fn = loss.lost
    else:
        # Loss targets topology edges: roll every hop of the pair's
        # deterministic route (single-hop cliques reduce to loss.lost).
        lost_fn = lambda s, d: ctopo.roll_loss(loss, s, d)  # noqa: E731

    # --- event loop ---------------------------------------------------------
    events: list = []  # (time, seq, kind, payload)
    seq = 0
    busy_time = [0.0] * num_nodes
    time_by_kind: dict[str, float] = defaultdict(float)
    done = 0
    now = 0.0

    def push_event(time: float, kind: str, payload) -> None:
        nonlocal seq
        seq += 1
        heapq.heappush(events, (time, seq, kind, payload))

    if recorder is not None and recorder.enabled:
        rec = recorder
        trace = True
    else:
        # A NullRecorder counts as "tracing disabled": zero-cost no-op.
        rec = Recorder(source="simulator") if trace and recorder is None else None
        trace = rec is not None
    ready_time = [0.0] * n_tasks if trace else None
    first_chunk_start: dict[tuple[DataKey, int], float] = {}

    if trace and faults is not None:
        # Declare the plan's windows up front so the trace shows them even
        # if nothing lands inside one.
        for w in faults.slowdowns:
            rec.record_fault("slowdown", time=w.start, node=w.node,
                             detail=f"x{w.factor} until {w.end:g}")
        for ln in faults.links:
            rec.record_fault("degraded", time=ln.start, src=ln.src, dst=ln.dst,
                             detail=f"x{ln.factor} until {ln.end:g}")

    def start_task(task: Task, time: float) -> None:
        dur = duration_fn(task)
        if fault_slow:
            dur *= faults.compute_factor(task.node, time)
        busy_time[task.node] += dur
        time_by_kind[task.kind] += dur
        if trace:
            rec.record_task(task.id, task.kind, task.node,
                            ready_time[task.id], time, time + dur, task.flops)
        push_event(time + dur, "task", task)

    def enqueue_ready(task: Task, time: float) -> None:
        """Task has all inputs at its node; start it or queue it."""
        if trace:
            ready_time[task.id] = time
        if synchronized and iter_pos[task.iteration] > released_idx:
            iter_blocked[iter_pos[task.iteration]].append(task)
            return
        st = nodes[task.node]
        if dead is not None and dead[task.node]:
            # Fail-stopped node: the task is parked forever; the run ends
            # with a diagnostic SimulatedFailure.
            if queue is not None:
                queue.push(task.node, task.id, task.priority)
            else:
                st.push(task)
            return
        if st.free_workers > 0:
            st.free_workers -= 1
            start_task(task, time)
        else:
            if queue is not None:
                queue.push(task.node, task.id, task.priority)
            else:
                st.push(task)
            if trace:
                depth = (queue.depth(task.node) if queue is not None
                         else len(st.ready))
                rec.metrics.gauge(
                    "queue.depth.max", "peak ready-queue depth per node"
                ).set_max(depth, labels=(task.node,))

    def data_arrived_local(key: DataKey, time: float) -> None:
        for tid in local_consumers.get(key, ()):
            missing[tid] -= 1
            if missing[tid] == 0:
                enqueue_ready(tasks[tid], time)

    def data_arrived_remote(key: DataKey, dst: int, time: float) -> None:
        for tid in remote_needers.pop((key, dst), ()):
            missing[tid] -= 1
            if missing[tid] == 0:
                enqueue_ready(tasks[tid], time)

    def launch(chunk) -> None:
        tr = chunk.transfer
        if trace and (tr.key, tr.dst) not in first_chunk_start:
            first_chunk_start[(tr.key, tr.dst)] = chunk.egress_done
        push_event(chunk.egress_done, "sent", chunk)
        if chunk.final:
            push_event(chunk.delivery, "xfer", tr)

    # Forwarding plans for tree broadcasts: (key, node) -> child nodes.
    tree_children: dict[tuple[DataKey, int], list[int]] = {}

    def _send(key: DataKey, src: int, dst: int, prio: float, time: float) -> None:
        started = net.submit(Transfer(key, src, dst, graph.data_bytes(key), prio), time)
        if started is not None:
            launch(started)

    def request_transfers(key: DataKey, src: int, time: float) -> None:
        """Eagerly push a fresh version to every remote consumer node."""
        dsts = key_dsts.pop(key, None)
        if not dsts:
            return
        prios = {
            dst: max(tasks[tid].priority for tid in remote_needers[(key, dst)])
            for dst in dsts
        }
        if broadcast == "direct" or len(dsts) == 1:
            for dst in dsts:
                _send(key, src, dst, prios[dst], time)
            return
        # Binomial tree: urgent destinations closest to the root; node at
        # index i is served by the node at index i - 2^floor(log2 i).
        order = sorted(dsts, key=lambda d: -prios[d])
        ring = [src] + order
        children: dict[int, list[int]] = defaultdict(list)
        for i in range(1, len(ring)):
            parent = i - (1 << (i.bit_length() - 1))
            children[parent].append(i)
        # Each edge carries the max priority of the subtree it serves.
        subtree_prio = [0.0] * len(ring)
        for i in range(len(ring) - 1, 0, -1):
            subtree_prio[i] = max(
                [prios[ring[i]]] + [subtree_prio[c] for c in children.get(i, ())]
            )
        for i in range(1, len(ring)):
            kids = children.get(i)
            if kids:
                tree_children[(key, ring[i])] = [ring[c] for c in kids]
        for c in children[0]:
            _send(key, src, ring[c], subtree_prio[c], time)
        # Stash subtree priorities for the forwarding hops.
        for i in range(1, len(ring)):
            for c in children.get(i, ()):
                _forward_prios[(key, ring[c])] = subtree_prio[c]

    _forward_prios: dict[tuple[DataKey, int], float] = {}

    def release_iterations(time: float) -> None:
        nonlocal released_idx
        while (
            released_idx + 1 < len(iterations)
            and iter_remaining[released_idx] == 0
        ):
            released_idx += 1
            for task in iter_blocked.pop(released_idx, []):
                if missing[task.id] == 0:
                    enqueue_ready(task, time)

    # Kick off: source tasks and transfers of misplaced initial data.
    for t in tasks:
        if missing[t.id] == 0:
            enqueue_ready(t, 0.0)
    for key, home in initial_sources:
        request_transfers(key, home, 0.0)

    while events:
        now, _, kind, payload = heapq.heappop(events)
        if kind == "task":
            task = payload
            done += 1
            n = task.node
            if crash_after is not None and not dead[n]:
                completed_on[n] += 1
                point = crash_after.get(n)
                if point is not None and completed_on[n] >= point:
                    # Fail-stop: in-flight tasks finish (their events are
                    # queued), nothing new starts on this node.
                    dead[n] = True
                    if trace:
                        rec.record_fault("crash", time=now, node=n,
                                         detail=f"after {completed_on[n]} tasks")
            st = nodes[n]
            if dead is not None and dead[n]:
                pass  # no workers left to pick up the next ready task
            else:
                if queue is not None:
                    tid = queue.pop(n)
                    nxt = None if tid is None else tasks[tid]
                else:
                    nxt = st.pop()
                if nxt is not None:
                    start_task(nxt, now)
                else:
                    st.free_workers += 1
            if task.write is not None:
                data_arrived_local(task.write, now)
                request_transfers(task.write, task.node, now)
            if synchronized:
                iter_remaining[iter_pos[task.iteration]] -= 1
                release_iterations(now)
        elif kind == "sent":  # source egress channel freed
            nxt = net.egress_freed(payload.transfer.src, now)
            if nxt is not None:
                launch(nxt)
        elif kind == "retry":  # retransmission of a lost message
            old = payload
            nt = Transfer(old.key, old.src, old.dst, old.nbytes, old.priority)
            nt.keys = list(old.keys)  # preserve aggregated payloads
            if trace:
                rec.record_fault("retry", time=now, src=old.src, dst=old.dst,
                                 key=old.key)
            started = net.submit(nt, now)
            if started is not None:
                launch(started)
        else:  # transfer delivered at the destination
            tr = payload
            if lost_fn is not None and lost_fn(tr.src, tr.dst):
                # Transient loss: the message evaporates in flight; the
                # sender retransmits after the plan's timeout (the lost
                # bytes stayed on the wire and remain counted).
                if trace:
                    rec.record_fault(
                        "loss", time=tr.end, src=tr.src, dst=tr.dst,
                        key=tr.key,
                        detail=f"retry at {tr.end + faults.retransmit_timeout:.6g}",
                    )
                push_event(tr.end + faults.retransmit_timeout, "retry", tr)
                continue
            if trace:
                rec.record_transfer(
                    key=tr.key,
                    src=tr.src,
                    dst=tr.dst,
                    nbytes=tr.nbytes,
                    submitted=tr.submitted,
                    started=first_chunk_start.get((tr.key, tr.dst), tr.submitted),
                    delivered=tr.end,
                )
            for key in tr.keys:
                data_arrived_remote(key, tr.dst, tr.end)
                for child in tree_children.pop((key, tr.dst), ()):
                    _send(
                        key,
                        tr.dst,
                        child,
                        _forward_prios.pop((key, child), tr.priority),
                        tr.end,
                    )

    if done != n_tasks:
        if dead is not None and any(dead):
            crashed = ", ".join(
                f"node {i} after {completed_on[i]} tasks"
                for i in range(num_nodes) if dead[i]
            )
            raise SimulatedFailure(
                f"simulated worker crash ({crashed}): "
                f"{n_tasks - done}/{n_tasks} tasks never ran"
            )
        raise RuntimeError(
            f"simulation deadlock: executed {done}/{n_tasks} tasks "
            f"({sum(len(v) for v in iter_blocked.values())} blocked on barriers)"
        )

    if trace:
        rec.finalize_utilization(busy_time, now, machine.cores)
        rec.metrics.gauge("makespan.seconds", "simulated makespan").set(now)
    return SimReport(
        makespan=now,
        total_flops=graph.total_flops(),
        num_nodes=machine.nodes,
        comm_bytes=net.total_bytes,
        comm_messages=net.total_messages,
        busy_time=busy_time,
        time_by_kind=dict(time_by_kind),
        num_tasks=n_tasks,
        cores_per_node=machine.cores,
        trace=rec.task_events if trace else None,
        transfers=rec.transfer_events if trace else None,
        obs=rec if trace else None,
    )
