"""Discrete-event cluster simulator (StarPU-like runtime timing model)."""

from .engine import SimReport, TaskTrace, TransferTrace, simulate
from .fast_engine import simulate_compiled
from .network import Chunk, NetworkSim, Transfer
from .analysis import (
    CriticalPathBreakdown,
    critical_path_breakdown,
    iteration_profile,
    utilization_timeline,
)

__all__ = [
    "simulate",
    "simulate_compiled",
    "SimReport",
    "TaskTrace",
    "TransferTrace",
    "NetworkSim",
    "Transfer",
    "Chunk",
    "CriticalPathBreakdown",
    "critical_path_breakdown",
    "iteration_profile",
    "utilization_timeline",
]
