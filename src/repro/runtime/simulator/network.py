"""Network model for the runtime simulator.

Each node owns one full-duplex port: an egress channel and an ingress
channel of equal bandwidth, matching the switched point-to-point fabric
(OmniPath) of the paper's platform and its per-tile eager MPI messages.

The egress channel is a *processor-sharing* server with priorities,
approximated by serving messages in fixed-size quanta: the channel always
works on the highest-priority pending message and equal-priority messages
round-robin quantum by quantum.  This models how MPI keeps many
asynchronous sends in flight with the NIC interleaving their DMA — a burst
of bulk broadcasts does not convoy an urgent, critical-path tile behind it
(which a strict FIFO pipe would, grossly overstating the cost of bursts).
Message latency is charged once, on the first quantum.

Arrivals at a node serialize on its ingress channel: each quantum is
delivered at ``max(egress_done, ingress_free + quantum_time)``, so an idle
receiver takes delivery at wire speed while in-cast queues fairly on the
receiving port without stalling senders.  A message is delivered when its
last quantum lands.

With a :class:`repro.topology.CompiledTopology` attached, each quantum
is additionally walked store-and-forward over its pair's static route:
the first hop occupies the source's egress port (plus the route's total
latency on the message's first quantum), every further directed link
serializes quanta on its own free time, every switch with a finite
backplane serializes its contention group, and the final hop serializes
on the destination ingress as before.  On a uniform single-hop topology
the walk degenerates to exactly the arithmetic above — the engines'
bit-equality pin for default (clique) runs.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from heapq import heappop, heappush
from typing import NamedTuple, Optional

from ...config import NetworkSpec

__all__ = ["NetworkSim", "Transfer", "Chunk"]

#: Default service quantum: a quarter of the paper's 2 MB tiles.
DEFAULT_QUANTUM = 512 * 1024

_INF = float("inf")


class Transfer:
    """One point-to-point message (possibly served as several quanta)."""

    __slots__ = ("key", "keys", "src", "dst", "nbytes", "priority", "submitted",
                 "remaining", "started", "end")

    def __init__(self, key, src: int, dst: int, nbytes: int, priority: float):
        self.key = key
        self.keys = [key]  # aggregation may coalesce several tiles
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.priority = priority
        self.submitted = -1.0
        self.remaining = nbytes  # bytes not yet pushed into the egress port
        self.started = False  # first quantum served (latency charged)
        self.end = -1.0  # delivery time of the final quantum


class Chunk(NamedTuple):
    """One served quantum of a transfer."""

    transfer: Transfer
    egress_done: float  # when the source's egress channel frees
    delivery: float  # when this quantum lands at the destination
    final: bool  # True when this quantum completes the message


class NetworkSim:
    """Tracks per-node channel occupancy and schedules transfers."""

    def __init__(self, spec: NetworkSpec, num_nodes: int,
                 quantum: int = DEFAULT_QUANTUM, aggregate: bool = False,
                 wire_factor: Optional[Callable[[int, int, float], float]] = None,
                 topology=None):
        if quantum < 1:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.spec = spec
        self.num_nodes = num_nodes
        self.quantum = quantum
        # Hot-path aliases: _serve runs once per quantum (millions of times
        # at paper scale); avoid the dataclass attribute chain.
        self._bandwidth = spec.bandwidth
        self._latency = spec.latency
        #: Optional :class:`repro.topology.CompiledTopology`: quanta are
        #: then walked over per-pair routes with per-link occupancy and
        #: switch contention instead of the scalar single-hop model.  The
        #: compiled tables are static and shared; the per-run occupancy
        #: state (link/switch free times) lives here.
        self._topo = topology
        if topology is not None:
            if topology.num_nodes != num_nodes:
                raise ValueError(
                    f"topology has {topology.num_nodes} nodes but the "
                    f"network serves {num_nodes}")
            self._link_free = [0.0] * topology.n_edges
            self._switch_free = [0.0] * topology.n_switches
        else:
            self._link_free = None
            self._switch_free = None
        #: Fault-injection hook (repro.runtime.faults): multiplies the wire
        #: time of each quantum served on (src, dst) at a given time.  The
        #: fast engine's inlined _serve transcription does NOT apply it —
        #: when a fault plan is active the engines route every quantum
        #: through this class instead.
        self._wire_factor = wire_factor
        #: Coalesce queued messages sharing (source, destination) into one
        #: wire message (single latency): the aggregation optimization the
        #: paper notes Chameleon does not implement (§V-C).  Bytes moved
        #: are unchanged; the message count drops.
        self.aggregate = aggregate
        self._egress_busy = [False] * num_nodes
        self._ingress_free = [0.0] * num_nodes
        # Per-source priority queues of transfers with bytes left to push.
        self._queues: list[list] = [[] for _ in range(num_nodes)]
        # Aggregation index: per source, the queued-but-unstarted transfer
        # headed to each destination (at most one exists — a second submit
        # to the same destination piggy-backs instead of queueing).  Entries
        # go stale once _serve starts the transfer; submit validates lazily,
        # so _serve stays untouched (the compiled engine inlines it).
        self._unstarted: list[dict] = [{} for _ in range(num_nodes)]
        self._seq = 0
        self.total_bytes = 0
        self.total_messages = 0
        self.busy_time = [0.0] * num_nodes  # egress occupancy per node

    def _push(self, transfer: Transfer) -> None:
        self._seq += 1
        heappush(self._queues[transfer.src],
                 (-transfer.priority, self._seq, transfer))

    def submit(self, transfer: Transfer, now: float) -> Optional[Chunk]:
        """Queue a transfer; returns its first chunk if the port is idle."""
        if not 0 <= transfer.src < self.num_nodes:
            raise ValueError(f"bad source node {transfer.src}")
        if not 0 <= transfer.dst < self.num_nodes:
            raise ValueError(f"bad destination node {transfer.dst}")
        if transfer.src == transfer.dst:
            raise ValueError("local data needs no transfer")
        self.total_bytes += transfer.nbytes
        transfer.submitted = now
        if self.aggregate and self._egress_busy[transfer.src]:
            # Piggy-back on the queued (not yet started) message to the same
            # destination instead of paying another per-message latency.
            # O(1): the _unstarted index replaces a scan of the whole heap
            # (quadratic under broadcast bursts); a stale entry just means
            # _serve started that message since, so a fresh one is queued.
            pending = self._unstarted[transfer.src]
            queued = pending.get(transfer.dst)
            if queued is not None and queued.started:
                del pending[transfer.dst]
                queued = None
            if queued is not None:
                queued.keys.append(transfer.key)
                queued.nbytes += transfer.nbytes
                queued.remaining += transfer.nbytes
                if transfer.priority > queued.priority:
                    # The old heap entry keeps its stale (lower) key;
                    # re-push at the raised priority and let _serve
                    # skip the stale entry when it surfaces.
                    queued.priority = transfer.priority
                    self._push(queued)
                return None
        self.total_messages += 1
        self._push(transfer)
        if self._egress_busy[transfer.src]:
            if self.aggregate:
                self._unstarted[transfer.src][transfer.dst] = transfer
            return None
        return self._serve(transfer.src, now)

    def egress_freed(self, src: int, now: float) -> Optional[Chunk]:
        """A quantum finished pushing; serve the next pending one."""
        return self._serve(src, now)

    def _serve(self, src: int, now: float) -> Optional[Chunk]:
        queue = self._queues[src]
        while queue:
            negprio, _, tr = heappop(queue)
            if negprio == -tr.priority:
                break
            # Stale entry: the transfer's priority was raised after this
            # entry was pushed (aggregation piggy-backing) and a fresh
            # entry with the correct key exists further up the heap.
        else:
            self._egress_busy[src] = False
            return None
        remaining = tr.remaining
        quantum = self.quantum
        size = quantum if quantum < remaining else remaining
        remaining -= size
        tr.remaining = remaining
        dst = tr.dst
        topo = self._topo
        if topo is None:
            wire = size / self._bandwidth
            if self._wire_factor is not None:
                wire *= self._wire_factor(src, dst, now)
            occupancy = wire if tr.started else wire + self._latency
            tr.started = True
            egress_done = now + occupancy
            ingress = self._ingress_free[dst] + wire
            delivery = egress_done if egress_done > ingress else ingress
        else:
            # Store-and-forward walk over the pair's static route.  On a
            # uniform single-hop topology every statement reduces to the
            # scalar branch above (the bit-equality pin for cliques); the
            # serve-loop kernel transcribes this walk statement for
            # statement (minus the fault hook, which keeps such runs off
            # the kernel entirely).
            pi = src * topo.num_nodes + dst
            path_eid = topo.path_eid
            edge_bw = topo.edge_bw
            p0 = topo.path_ptr[pi]
            p1 = topo.path_ptr[pi + 1]
            e0 = path_eid[p0]
            wire = size / edge_bw[e0]
            wf = self._wire_factor
            if wf is not None:
                wire *= wf(topo.edge_u[e0], topo.edge_v[e0], now)
            occupancy = wire if tr.started else wire + topo.pair_lat[pi]
            tr.started = True
            egress_done = now + occupancy
            t = egress_done
            last_wire = wire
            if p1 - p0 > 1:
                edge_sw = topo.edge_sw
                sw_bw = topo.switch_bw
                link_free = self._link_free
                switch_free = self._switch_free
                for k in range(p0 + 1, p1):
                    e = path_eid[k]
                    s = edge_sw[e]
                    if s >= 0:
                        sbw = sw_bw[s]
                        if sbw != _INF:
                            sf = switch_free[s]
                            t = (t if t > sf else sf) + size / sbw
                            switch_free[s] = t
                    hw = size / edge_bw[e]
                    if wf is not None:
                        hw *= wf(topo.edge_u[e], topo.edge_v[e], now)
                    lf = link_free[e]
                    t = (t if t > lf else lf) + hw
                    link_free[e] = t
                    last_wire = hw
            ingress = self._ingress_free[dst] + last_wire
            delivery = t if t > ingress else ingress
        self._ingress_free[dst] = delivery
        self._egress_busy[src] = True
        self.busy_time[src] += occupancy
        if remaining:
            # Equal-priority messages round-robin: continuation quanta go
            # to the back of their priority class.
            seq = self._seq + 1
            self._seq = seq
            heappush(queue, (-tr.priority, seq, tr))
            return Chunk(tr, egress_done, delivery, False)
        tr.end = delivery
        return Chunk(tr, egress_done, delivery, True)
