"""Analytic makespan bounds — full-paper-scale performance estimates.

The discrete-event simulator is event-exact but Python-bound: the paper's
largest runs (n = 300000, 36M tasks) are out of its reach.  This module
computes the three classical lower bounds on any schedule's makespan from
*closed-form* quantities (the O(N^2) traffic counters and per-iteration
durations), which costs milliseconds at any size:

* **work bound** — total flops over the platform's aggregate rate;
* **port bound** — the busiest node's egress/ingress traffic over the
  link bandwidth (this is where SBC's sqrt(2) shows up);
* **spine bound** — the dependency chain POTRF -> TRSM -> SYRK -> POTRF
  through all N iterations, including its two inter-node hops.

``max`` of the three is a valid lower bound on the makespan of *any*
schedule; dividing the flop count by it gives an upper bound on GFlop/s
per node.  The simulator approaches these bounds from above (asserted in
the tests), and at full scale the bounds alone already order the
distributions the way the paper measures — including the Figure 11
headline at n = 200000.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.fast_counter import cholesky_node_traffic
from ..config import MachineSpec
from ..distributions.base import Distribution
from ..kernels.flops import (
    cholesky_flops,
    potrf_flops,
    syrk_flops,
    trsm_flops,
)

__all__ = ["CholeskyBounds", "cholesky_bounds"]


@dataclass(frozen=True)
class CholeskyBounds:
    """Lower bounds on the POTRF makespan under a given distribution."""

    work_bound: float
    port_bound: float
    spine_bound: float
    total_flops: float
    num_nodes: int

    @property
    def makespan_lower_bound(self) -> float:
        return max(self.work_bound, self.port_bound, self.spine_bound)

    @property
    def gflops_per_node_upper_bound(self) -> float:
        return self.total_flops / (self.makespan_lower_bound * self.num_nodes) / 1e9

    @property
    def binding(self) -> str:
        """Which resource binds: 'work', 'port', or 'spine'."""
        best = self.makespan_lower_bound
        if best == self.work_bound:
            return "work"
        if best == self.port_bound:
            return "port"
        return "spine"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"lb {self.makespan_lower_bound:.3f}s ({self.binding}-bound: "
            f"work {self.work_bound:.3f} / port {self.port_bound:.3f} / "
            f"spine {self.spine_bound:.3f}); "
            f"<= {self.gflops_per_node_upper_bound:.0f} GF/s/node"
        )


def cholesky_bounds(dist: Distribution, N: int, b: int,
                    machine: MachineSpec) -> CholeskyBounds:
    """Compute the three bounds for POTRF on ``N x N`` tiles of size ``b``."""
    if machine.nodes < dist.num_nodes:
        raise ValueError(
            f"distribution uses {dist.num_nodes} nodes but machine has "
            f"{machine.nodes}"
        )
    n = N * b
    flops = cholesky_flops(n)
    kernel = machine.kernel

    # Work: the whole platform computing flat out.
    work = flops / (machine.nodes * machine.cores * kernel.rate(b))

    # Ports: the busiest node's one-directional traffic at link speed.
    if dist.num_nodes > 1:
        sent, recv = cholesky_node_traffic(dist, N)
        tile = machine.tile_bytes(b)
        busiest = max(int(sent.max()), int(recv.max()))
        port = busiest * tile / machine.network.bandwidth
    else:
        port = 0.0

    # Spine: POTRF(i) -> TRSM(i+1,i) -> SYRK(i+1,i+1) -> POTRF(i+1), with
    # an inter-node hop after POTRF and after TRSM whenever the owners
    # differ (checked per iteration against the actual distribution).
    hop = machine.network.transfer_time(machine.tile_bytes(b))
    spine = kernel.duration(potrf_flops(b), b) * N
    for i in range(N - 1):
        spine += kernel.duration(trsm_flops(b), b)
        spine += kernel.duration(syrk_flops(b), b)
        if dist.owner(i, i) != dist.owner(i + 1, i):
            spine += hop
        if dist.owner(i + 1, i) != dist.owner(i + 1, i + 1):
            spine += hop

    return CholeskyBounds(
        work_bound=work,
        port_bound=port,
        spine_bound=spine,
        total_flops=flops,
        num_nodes=machine.nodes,
    )
