"""Numeric execution of task graphs: kernel dispatch and data stores.

Maps each task kind to its tile kernel (read inputs in the order the graph
builders declared them, produce the written version) and materializes the
graph's *initial* versions from their descriptors:

* ``"spd"``  — tile (i, j) of the seeded random SPD matrix;
* ``"rhs"``  — tile row i of the seeded right-hand side;
* ``"zero"`` — a zero tile (2.5D partial-update accumulators);
* ``"tri"``  — tile of a seeded lower-triangular matrix (standalone
  TRTRI/LAUUM graphs).

Because initial tiles are derived from a seed, every node of a distributed
runtime can materialize its own tiles without any input communication —
the paper likewise excludes the initial distribution from its measurements.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..kernels import blas
from ..tiles.generation import generate_rhs_tile, generate_spd_tile
from ..tiles.layout import TileGrid
from ..graph.task import DataKey, Task, TaskGraph

__all__ = ["KERNEL_DISPATCH", "apply_task", "materialize_initial", "InitialDataSpec"]


def _reduce(*parts: np.ndarray) -> np.ndarray:
    """2.5D reduction: sum of the target stream and all partial streams."""
    out = parts[0].copy()
    for p in parts[1:]:
        out += p
    return out


def _remap(a: np.ndarray) -> np.ndarray:
    """Redistribution copy: the data is unchanged, only its home moves."""
    return a.copy()


def _gemm_rhs(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Forward-solve update B_j <- B_j - L_{j,i} B_i (no transpose)."""
    return c - a @ b


#: kind -> kernel taking the read arrays (in builder order) -> written array
KERNEL_DISPATCH: dict[str, Callable[..., np.ndarray]] = {
    "POTRF": blas.potrf,
    "TRSM": blas.trsm,
    "SYRK": blas.syrk,
    "GEMM": blas.gemm,
    "TRSM_SOLVE": blas.trsm_solve,
    "TRSM_SOLVE_T": blas.trsm_solve_t,
    "GEMM_RHS": _gemm_rhs,
    "GEMM_RHS_T": blas.gemm_t,  # B_j <- B_j - L_{i,j}^T B_i
    "TRTRI": blas.trtri,
    "TRSM_RINV": blas.trsm_right_inv,
    "TRSM_LINV": blas.trsm_left_inv,
    "GEMM_INV": blas.gemm_inv,
    "TRMM": blas.trmm,
    "LAUUM": blas.lauum,
    "SYRK_T": blas.syrk_t,
    "GEMM_T": blas.gemm_acc_t,
    "GETRF": blas.getrf_nopiv,
    "TRSM_L": blas.trsm_lu_right,
    "TRSM_U": blas.trsm_lu_left,
    "GEMM_LU": blas.gemm_nn,
    "REDUCE": _reduce,
    "REMAP": _remap,
}


def apply_task(task: Task, inputs) -> np.ndarray:
    """Run one task's kernel on its input arrays."""
    try:
        fn = KERNEL_DISPATCH[task.kind]
    except KeyError:
        raise ValueError(f"no kernel registered for task kind {task.kind!r}") from None
    return fn(*inputs)


def _spd_like_square_tile(grid, seed: int, i: int, j: int) -> np.ndarray:
    """Tile (i, j) of a seeded diagonally-dominant nonsymmetric matrix."""
    rng = np.random.default_rng(np.random.SeedSequence((seed ^ 0x1077, i, j)))
    g = rng.standard_normal(grid.tile_shape(i, j))
    if i == j:
        g = g + grid.n * np.eye(g.shape[0])
    return g


class InitialDataSpec:
    """Seeds and geometry needed to materialize any initial version.

    By default tiles come from the seeded generators (so distributed
    workers can build their inputs locally); pass ``matrix`` (a dense
    array or :class:`~repro.tiles.TiledMatrix`) and/or ``rhs`` (a dense
    ``(n, width)`` array) to factor user-provided data instead — the
    arrays then travel with the spec (pickled to distributed workers).
    """

    def __init__(self, grid: TileGrid, seed: int = 0, width: int = 0,
                 matrix=None, rhs=None):
        self.grid = grid
        self.seed = seed
        self.width = width
        if matrix is not None and not hasattr(matrix, "grid"):
            from ..tiles.tiled_matrix import SymmetricTiledMatrix

            matrix = SymmetricTiledMatrix.from_dense(np.asarray(matrix), grid.b)
        if matrix is not None and matrix.grid.n != grid.n:
            raise ValueError(
                f"matrix is {matrix.grid.n}x{matrix.grid.n} but the grid "
                f"expects n={grid.n}"
            )
        self.matrix = matrix
        if rhs is not None:
            rhs = np.asarray(rhs, dtype=np.float64)
            if rhs.shape[0] != grid.n:
                raise ValueError(
                    f"rhs has {rhs.shape[0]} rows but the grid expects n={grid.n}"
                )
            self.width = rhs.shape[1]
        self.rhs = rhs

    def materialize(self, key: DataKey, descriptor: str) -> np.ndarray:
        if descriptor == "spd":
            if self.matrix is not None:
                return np.array(self.matrix[key.i, key.j], dtype=np.float64)
            return generate_spd_tile(self.grid, self.seed, key.i, key.j)
        if descriptor == "rhs":
            if self.rhs is not None:
                return np.array(self.rhs[self.grid.row_span(key.i), :])
            if self.width <= 0:
                raise ValueError("rhs data requested but width is not set")
            return generate_rhs_tile(self.grid, self.seed, key.i, self.width)
        if descriptor == "zero":
            return np.zeros(self.grid.tile_shape(key.i, key.j))
        if descriptor == "lu":
            # A diagonally-dominant square tile grid: LU without pivoting
            # is stable on the assembled matrix.
            g = _spd_like_square_tile(self.grid, self.seed, key.i, key.j)
            return g
        if descriptor == "tri":
            # A well-conditioned lower-triangular tile grid: the lower
            # triangle of the Cholesky factor surrogate — unit-ish diagonal.
            t = generate_spd_tile(self.grid, self.seed, key.i, key.j)
            if key.i == key.j:
                # The SPD diagonal tile is shifted by n*I, so dividing by n
                # leaves a near-unit diagonal: well-conditioned triangle.
                return np.tril(t / self.grid.n)
            return t / self.grid.n
        raise ValueError(f"unknown initial data descriptor {descriptor!r}")


def materialize_initial(graph: TaskGraph, spec: InitialDataSpec) -> dict[DataKey, np.ndarray]:
    """All initial versions of a graph, keyed by their DataKey."""
    return {
        key: spec.materialize(key, descriptor)
        for key, (_home, descriptor) in graph.initial.items()
    }
