"""Local (single-process) execution of task graphs.

This is the numerical backbone of the library: it really runs every tile
kernel, either sequentially (deterministic, used by the test suite) or on
a thread pool with dependency tracking (NumPy's BLAS releases the GIL, so
tile kernels genuinely overlap) — a single-node analogue of StarPU's
dynamic scheduler.

Versions whose every consumer has run are freed eagerly, so peak memory
stays proportional to the matrix, not to the task count.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Optional

import numpy as np

from ..graph.task import DataKey, TaskGraph
from ..obs import Recorder
from ..tiles.layout import TileGrid
from .execution import InitialDataSpec, apply_task

__all__ = [
    "execute_graph",
    "final_versions",
    "assemble_lower",
    "assemble_symmetric",
    "assemble_rhs",
]


def final_versions(graph: TaskGraph) -> dict[tuple[str, int, int], DataKey]:
    """Last-written version of every tile (falling back to initial data).

    In 2.5D graphs the partial streams of non-final slices are dead after
    their REDUCE; the last write to a tile is always the version holding
    its final value, so this map is valid for every builder in the library.
    """
    out: dict[tuple[str, int, int], DataKey] = {}
    for key in graph.initial:
        slot = (key.name, key.i, key.j)
        if slot not in out:
            out[slot] = key
    for t in graph.tasks:
        if t.write is not None:
            out[(t.write.name, t.write.i, t.write.j)] = t.write
    return out


def execute_graph(
    graph: TaskGraph,
    spec: InitialDataSpec,
    num_threads: int = 0,
    recorder: Optional[Recorder] = None,
) -> dict[DataKey, np.ndarray]:
    """Run every task; returns the store restricted to final versions.

    ``num_threads`` <= 1 selects the sequential executor.  Pass a
    :class:`repro.obs.Recorder` to collect wall-clock task events
    (seconds since the run started, node = graph placement) plus a
    ``store.bytes.max`` peak-memory gauge; disabled/None recorders cost
    nothing.
    """
    keep = set(final_versions(graph).values())
    rec = recorder if (recorder is not None and recorder.enabled) else None
    if rec is not None and not rec.source:
        rec.source = "local"
    if num_threads and num_threads > 1:
        return _execute_threaded(graph, spec, num_threads, keep, rec)
    return _execute_sequential(graph, spec, keep, rec)


def _initial_store(graph: TaskGraph, spec: InitialDataSpec) -> dict[DataKey, np.ndarray]:
    return {
        key: spec.materialize(key, descriptor)
        for key, (_home, descriptor) in graph.initial.items()
    }


def _refcounts(graph: TaskGraph) -> dict[DataKey, int]:
    counts: dict[DataKey, int] = {}
    for t in graph.tasks:
        for k in t.reads:
            counts[k] = counts.get(k, 0) + 1
    return counts


def _execute_sequential(
    graph: TaskGraph, spec: InitialDataSpec, keep: set,
    rec: Optional[Recorder] = None,
) -> dict[DataKey, np.ndarray]:
    store = _initial_store(graph, spec)
    refs = _refcounts(graph)
    if rec is not None:
        t0 = time.perf_counter()
        live = sum(v.nbytes for v in store.values())
        peak = rec.metrics.gauge("store.bytes.max", "peak resident tile bytes")
        peak.set_max(live)
    for t in graph.tasks:
        inputs = [store[k] for k in t.reads]
        if rec is not None:
            start = time.perf_counter() - t0
        out = apply_task(t, inputs)
        if rec is not None:
            end = time.perf_counter() - t0
            rec.record_task(t.id, t.kind, t.node, start, start, end, t.flops)
        if t.write is not None:
            store[t.write] = out
            if rec is not None:
                live += out.nbytes
        for k in t.reads:
            refs[k] -= 1
            if refs[k] == 0 and k not in keep:
                if rec is not None:
                    live -= store[k].nbytes
                del store[k]
        if rec is not None:
            peak.set_max(live)
    return {k: v for k, v in store.items() if k in keep}


def _execute_threaded(
    graph: TaskGraph, spec: InitialDataSpec, num_threads: int, keep: set,
    rec: Optional[Recorder] = None,
) -> dict[DataKey, np.ndarray]:
    store = _initial_store(graph, spec)
    refs = _refcounts(graph)
    lock = threading.Lock()
    t0 = time.perf_counter()
    ready_time: dict[int, float] = {}

    # Dependency bookkeeping: indegree = number of reads with a producer.
    indeg = [0] * len(graph.tasks)
    consumers: list = [[] for _ in range(len(graph.tasks))]
    for t in graph.tasks:
        for k in t.reads:
            pid = graph.producer.get(k)
            if pid is not None:
                indeg[t.id] += 1
                consumers[pid].append(t.id)

    def run_one(tid: int) -> int:
        t = graph.tasks[tid]
        with lock:
            inputs = [store[k] for k in t.reads]
        if rec is not None:
            start = time.perf_counter() - t0
        out = apply_task(t, inputs)
        with lock:
            if rec is not None:
                end = time.perf_counter() - t0
                rec.record_task(t.id, t.kind, t.node,
                                ready_time.get(tid, start), start, end, t.flops)
            if t.write is not None:
                store[t.write] = out
            for k in t.reads:
                refs[k] -= 1
                if refs[k] == 0 and k not in keep:
                    del store[k]
        return tid

    def submit(pool, pending, tid: int) -> None:
        if rec is not None:
            ready_time[tid] = time.perf_counter() - t0
        pending.add(pool.submit(run_one, tid))

    ready = [t.id for t in graph.tasks if indeg[t.id] == 0]
    done_count = 0
    with ThreadPoolExecutor(max_workers=num_threads) as pool:
        pending: set = set()
        for tid in ready:
            submit(pool, pending, tid)
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in finished:
                tid = fut.result()  # re-raises kernel errors
                done_count += 1
                for c in consumers[tid]:
                    indeg[c] -= 1
                    if indeg[c] == 0:
                        submit(pool, pending, c)
    if done_count != len(graph.tasks):
        raise RuntimeError(
            f"executed {done_count}/{len(graph.tasks)} tasks: dependency cycle?"
        )
    return {k: v for k, v in store.items() if k in keep}


# -- result assembly ---------------------------------------------------------


def assemble_lower(
    graph: TaskGraph, store: dict[DataKey, np.ndarray], grid: TileGrid
) -> np.ndarray:
    """Assemble the final "A" tiles into a dense lower-triangular matrix."""
    out = np.zeros((grid.n, grid.n))
    for (name, i, j), key in final_versions(graph).items():
        if name != "A":
            continue
        tile = store[key]
        if i == j:
            tile = np.tril(tile)
        out[grid.row_span(i), grid.row_span(j)] = tile
    return out


def assemble_symmetric(
    graph: TaskGraph, store: dict[DataKey, np.ndarray], grid: TileGrid
) -> np.ndarray:
    """Assemble final "A" tiles into a dense symmetric matrix (POTRI result)."""
    out = np.zeros((grid.n, grid.n))
    for (name, i, j), key in final_versions(graph).items():
        if name != "A":
            continue
        out[grid.row_span(i), grid.row_span(j)] = store[key]
    return np.tril(out) + np.tril(out, -1).T


def assemble_rhs(
    graph: TaskGraph, store: dict[DataKey, np.ndarray], grid: TileGrid, width: int
) -> np.ndarray:
    """Assemble the final "B" tiles into a dense (n, width) matrix."""
    out = np.zeros((grid.n, width))
    for (name, i, _j), key in final_versions(graph).items():
        if name != "B":
            continue
        out[grid.row_span(i), :] = store[key]
    return out
