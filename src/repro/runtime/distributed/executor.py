"""Distributed owner-computes execution over real OS processes.

One process per node, point-to-point message passing through per-node
queues: a faithful (laptop-scale) analogue of the paper's MPI + StarPU
deployment.  Each process materializes its own initial tiles from the
shared seed (no input distribution traffic, as in the paper's harness),
executes its tasks in the global submission order, eagerly sends every
produced version to the nodes that will read it, and counts the bytes it
put on the wire.

The measured traffic is exactly the volume predicted by
:func:`repro.comm.count_communications` — the reproduction's "measured
communication volume" (Figure 8) can thus be obtained either way.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...graph.task import DataKey, TaskGraph
from ..execution import KERNEL_DISPATCH, InitialDataSpec
from ..local import final_versions

__all__ = ["DistributedReport", "execute_distributed"]

#: Wire format of one task: (kind, reads, write)
_WireTask = Tuple[str, Tuple[DataKey, ...], Optional[DataKey]]


@dataclass
class DistributedReport:
    """Gathered results of a distributed run."""

    store: Dict[DataKey, np.ndarray]
    sent_bytes: Dict[int, int]
    sent_messages: Dict[int, int]
    num_nodes: int = 0

    @property
    def total_bytes(self) -> int:
        return sum(self.sent_bytes.values())

    @property
    def total_messages(self) -> int:
        return sum(self.sent_messages.values())


def _worker(
    node: int,
    tasks: List[_WireTask],
    initial: List[Tuple[DataKey, str]],
    sends: Dict[DataKey, List[int]],
    local_refs: Dict[DataKey, int],
    finals: List[DataKey],
    spec: InitialDataSpec,
    inbox,
    outboxes,
    result_q,
) -> None:
    try:
        store: Dict[DataKey, np.ndarray] = {}
        refs = dict(local_refs)
        finals_set = set(finals)
        sent_bytes = 0
        sent_messages = 0

        def publish(key: DataKey, arr: np.ndarray) -> None:
            nonlocal sent_bytes, sent_messages
            store[key] = arr
            for dst in sends.get(key, ()):
                outboxes[dst].put((key, arr))
                sent_bytes += arr.nbytes
                sent_messages += 1

        for key, descriptor in initial:
            publish(key, spec.materialize(key, descriptor))

        def consume(key: DataKey) -> np.ndarray:
            while key not in store:
                k2, arr = inbox.get()
                store[k2] = arr
            return store[key]

        for kind, reads, write in tasks:
            inputs = [consume(k) for k in reads]
            out = KERNEL_DISPATCH[kind](*inputs)
            if write is not None:
                publish(write, out)
            for k in reads:
                refs[k] -= 1
                if refs[k] == 0 and k not in finals_set:
                    store.pop(k, None)

        result = {k: store[k] for k in finals_set}
        result_q.put(("ok", node, sent_bytes, sent_messages, result))
    except Exception:  # pragma: no cover - surfaced by the driver
        result_q.put(("error", node, traceback.format_exc(), 0, None))


def execute_distributed(
    graph: TaskGraph,
    spec: InitialDataSpec,
    timeout: float = 300.0,
) -> DistributedReport:
    """Run ``graph`` across one OS process per node; gather final tiles."""
    num_nodes = graph.nodes_used()
    for key, (home, _d) in graph.initial.items():
        num_nodes = max(num_nodes, home + 1)

    # Per-node plans.
    node_tasks: List[List[_WireTask]] = [[] for _ in range(num_nodes)]
    sends: List[Dict[DataKey, List[int]]] = [dict() for _ in range(num_nodes)]
    local_refs: List[Dict[DataKey, int]] = [dict() for _ in range(num_nodes)]
    for t in graph.tasks:
        node_tasks[t.node].append((t.kind, t.reads, t.write))
        for k in t.reads:
            src = graph.source_of(k)
            refs = local_refs[t.node]
            refs[k] = refs.get(k, 0) + 1
            if src != t.node:
                dsts = sends[src].setdefault(k, [])
                if t.node not in dsts:
                    dsts.append(t.node)
    initial: List[List[Tuple[DataKey, str]]] = [[] for _ in range(num_nodes)]
    for key, (home, descriptor) in graph.initial.items():
        initial[home].append((key, descriptor))
    finals: List[List[DataKey]] = [[] for _ in range(num_nodes)]
    for key in final_versions(graph).values():
        finals[graph.source_of(key)].append(key)

    ctx = mp.get_context("fork")
    inboxes = [ctx.Queue() for _ in range(num_nodes)]
    result_q = ctx.Queue()
    procs = []
    for node in range(num_nodes):
        p = ctx.Process(
            target=_worker,
            args=(
                node,
                node_tasks[node],
                initial[node],
                sends[node],
                local_refs[node],
                finals[node],
                spec,
                inboxes[node],
                inboxes,
                result_q,
            ),
        )
        p.daemon = True
        p.start()
        procs.append(p)

    store: Dict[DataKey, np.ndarray] = {}
    sent_bytes: Dict[int, int] = {}
    sent_messages: Dict[int, int] = {}
    error: Optional[str] = None
    try:
        for _ in range(num_nodes):
            status, node, a, b, result = result_q.get(timeout=timeout)
            if status == "error":
                error = f"node {node} failed:\n{a}"
                break
            sent_bytes[node] = a
            sent_messages[node] = b
            store.update(result)
    finally:
        for p in procs:
            p.join(timeout=5.0)
            if p.is_alive():
                p.terminate()
    if error is not None:
        raise RuntimeError(error)
    return DistributedReport(
        store=store,
        sent_bytes=sent_bytes,
        sent_messages=sent_messages,
        num_nodes=num_nodes,
    )
