"""Distributed owner-computes execution over real OS processes.

One process per node, point-to-point message passing through per-node
queues: a faithful (laptop-scale) analogue of the paper's MPI + StarPU
deployment.  Each process materializes its own initial tiles from the
shared seed (no input distribution traffic, as in the paper's harness),
executes its tasks in the global submission order, eagerly sends every
produced version to the nodes that will read it, and counts the bytes it
put on the wire.

The measured traffic is exactly the volume predicted by
:func:`repro.comm.count_communications` — the reproduction's "measured
communication volume" (Figure 8) can thus be obtained either way.

Delivery is acknowledged: every data message carries a unique id, the
receiver acks it back to the sender, and the sender retransmits after an
exponential-backoff timeout (:class:`repro.runtime.faults.RetryPolicy`)
until acked or out of retries.  Retransmissions are counted separately
(``DistributedReport.retransmits``) so the first-transmission byte count
still equals the analytic prediction.  The driver polls worker liveness:
a process that dies without reporting raises a diagnostic
:class:`DeadWorkerError` naming the node, its exit code, its progress and
the final tiles it still owed — instead of wedging until the timeout —
and the deadline itself raises :class:`ExecutionTimeout` naming the
laggards.  Events gathered before a failure are salvaged into the
recorder.  A :class:`repro.runtime.faults.FaultPlan` injects stragglers
(scaled post-kernel sleeps), sender-side message loss (exercising the
retry path) and hard worker crashes (``os._exit`` at a chosen task
index); see ``docs/network-model.md`` ("Fault model").
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_lib
import time
import traceback
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ...graph.task import DataKey, TaskGraph
from ...obs import Recorder
from ..execution import KERNEL_DISPATCH, InitialDataSpec
from ..faults import FaultPlan, RetryPolicy
from ..local import final_versions

__all__ = [
    "DistributedReport",
    "DeadWorkerError",
    "ExecutionTimeout",
    "execute_distributed",
]

#: Wire format of one task: (task id, kind, reads, write, flops)
_WireTask = tuple[int, str, tuple[DataKey, ...], Optional[DataKey], float]

#: Exit code used by injected worker crashes (``FaultPlan.crashes``).
CRASH_EXIT_CODE = 17


class DeadWorkerError(RuntimeError):
    """A worker process died without reporting a result."""


class ExecutionTimeout(RuntimeError):
    """The distributed run exceeded its deadline."""


class _Aborted(Exception):
    """The driver told this worker to stop (another node failed)."""


@dataclass
class DistributedReport:
    """Gathered results of a distributed run."""

    store: dict[DataKey, np.ndarray]
    sent_bytes: dict[int, int]
    sent_messages: dict[int, int]
    num_nodes: int = 0
    #: the recorder that collected per-task / per-send events (None on
    #: un-traced runs); see :mod:`repro.obs`.
    obs: Optional[Recorder] = None
    #: per-node count of retransmitted messages (ack timeout fired);
    #: zero everywhere on a healthy run.  Retransmitted traffic is NOT
    #: included in ``sent_bytes``/``sent_messages``, which count logical
    #: (first-transmission) traffic only.
    retransmits: dict[int, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return sum(self.sent_bytes.values())

    @property
    def total_messages(self) -> int:
        return sum(self.sent_messages.values())

    @property
    def total_retransmits(self) -> int:
        return sum(self.retransmits.values())


def _worker(
    node: int,
    tasks: list[_WireTask],
    initial: list[tuple[DataKey, str]],
    sends: dict[DataKey, list[int]],
    local_refs: dict[DataKey, int],
    finals: list[DataKey],
    spec: InitialDataSpec,
    inbox,
    outboxes,
    result_q,
    trace_base: Optional[float] = None,
    progress=None,
    faults: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
) -> None:
    # Events live outside the try so the error path can salvage whatever
    # was gathered before the exception; times are CLOCK_MONOTONIC seconds
    # relative to the driver's base (system-wide on Linux, so per-node
    # timelines align).
    events: Optional[list] = [] if trace_base is not None else None
    retransmits = 0
    try:
        store: dict[DataKey, np.ndarray] = {}
        refs = dict(local_refs)
        finals_set = set(finals)
        sent_bytes = 0
        sent_messages = 0
        num_nodes = len(outboxes)
        if retry is None:
            retry = RetryPolicy()
        loss = faults.loss_state() if faults is not None else None
        crash_point = faults.crash_after(node) if faults is not None else None
        slow = faults is not None and bool(faults.slowdowns)
        base = trace_base if trace_base is not None else time.monotonic()

        # In-flight sends awaiting an ack: msg id -> [dst, key, arr,
        # attempt, retransmit deadline].  Ids are strided by the node
        # count so they are globally unique without coordination.
        pending: dict[int, list] = {}
        next_msg = node
        seen_msgs = set()  # retransmitted duplicates are acked, not re-stored

        def transmit(msg_id: int, dst: int, key: DataKey, arr, attempt: int) -> None:
            if loss is not None and loss.lost(node, dst):
                # Injected sender-side loss: the message evaporates; the
                # ack timeout below retransmits it.
                if events is not None:
                    events.append(("fault", "loss", node, dst, key,
                                   time.monotonic() - base, ""))
            else:
                outboxes[dst].put(("data", msg_id, node, key, arr))
            pending[msg_id] = [dst, key, arr, attempt,
                               time.monotonic() + retry.delay(attempt)]

        def publish(key: DataKey, arr: np.ndarray) -> None:
            nonlocal sent_bytes, sent_messages, next_msg
            store[key] = arr
            for dst in sends.get(key, ()):
                msg_id = next_msg
                next_msg += num_nodes
                sent_bytes += arr.nbytes
                sent_messages += 1
                if events is not None:
                    events.append(("xfer", key, node, dst, arr.nbytes,
                                   time.monotonic() - base))
                transmit(msg_id, dst, key, arr, 0)

        def handle(msg) -> None:
            tag = msg[0]
            if tag == "data":
                _tag, msg_id, src, key, arr = msg
                outboxes[src].put(("ack", msg_id))
                if msg_id not in seen_msgs:
                    seen_msgs.add(msg_id)
                    store[key] = arr
            elif tag == "ack":
                pending.pop(msg[1], None)
            elif tag == "stop":
                raise _Aborted()

        def retransmit_due() -> None:
            nonlocal retransmits
            t = time.monotonic()
            for msg_id, (dst, key, arr, attempt, deadline) in list(pending.items()):
                if t >= deadline:
                    attempt += 1
                    if attempt > retry.max_retries:
                        raise RuntimeError(
                            f"node {node}: no ack from node {dst} for {key} "
                            f"after {retry.max_retries} retries"
                        )
                    retransmits += 1
                    if events is not None:
                        events.append(("fault", "retry", node, dst, key,
                                       time.monotonic() - base,
                                       f"attempt {attempt}"))
                    del pending[msg_id]
                    transmit(msg_id, dst, key, arr, attempt)

        def pump(block: bool) -> bool:
            """Handle one inbound message; retransmit overdue sends."""
            while True:
                retransmit_due()
                if not block:
                    try:
                        handle(inbox.get_nowait())
                        return True
                    except queue_lib.Empty:
                        return False
                wait = None
                if pending:
                    wait = max(0.01, min(e[4] for e in pending.values())
                               - time.monotonic())
                try:
                    handle(inbox.get(timeout=wait))
                    return True
                except queue_lib.Empty:
                    continue  # a retransmit deadline passed; loop

        def consume(key: DataKey) -> np.ndarray:
            while key not in store:
                pump(block=True)
            return store[key]

        for key, descriptor in initial:
            publish(key, spec.materialize(key, descriptor))

        completed = 0
        for tid, kind, reads, write, flops in tasks:
            while pump(block=False):  # drain acks between tasks
                pass
            inputs = [consume(k) for k in reads]
            start = time.monotonic() - base
            out = KERNEL_DISPATCH[kind](*inputs)
            if slow:
                # Straggler emulation: stretch the kernel to the plan's
                # factor by sleeping the extra time.
                factor = faults.compute_factor(node, time.monotonic() - base)
                if factor > 1.0:
                    time.sleep((time.monotonic() - base - start) * (factor - 1.0))
            if events is not None:
                events.append(("task", tid, kind, start,
                               time.monotonic() - base, flops))
            if write is not None:
                publish(write, out)
            for k in reads:
                refs[k] -= 1
                if refs[k] == 0 and k not in finals_set:
                    store.pop(k, None)
            completed += 1
            if progress is not None:
                progress[node] = completed
            if crash_point is not None and completed >= crash_point:
                # Injected fail-stop: flush messages already on the wire,
                # then die without reporting (the driver's liveness check
                # must diagnose it).
                for q in outboxes:
                    q.close()
                for q in outboxes:
                    q.join_thread()
                os._exit(CRASH_EXIT_CODE)

        while pending:  # every send must be acked before we report
            pump(block=True)

        result = {k: store[k] for k in finals_set}
        result_q.put(("ok", node, sent_bytes, sent_messages, result, events,
                      retransmits))
    except _Aborted:
        pass  # the driver already knows the run is over
    except Exception:  # pragma: no cover - surfaced by the driver
        result_q.put(("error", node, traceback.format_exc(), 0, None, events,
                      retransmits))


def _event_time(item) -> float:
    e = item[1]
    if e[0] == "task":
        return e[4]  # completion time
    return e[5]  # "xfer" and "fault" both carry their timestamp at [5]


def _merge_events(rec: Recorder, all_events: list) -> None:
    """Replay worker event tuples into the recorder in time order."""
    for node, e in sorted(all_events, key=_event_time):
        if e[0] == "task":
            _tag, tid, kind, start, end, flops = e
            rec.record_task(tid, kind, node, start, start, end, flops)
        elif e[0] == "xfer":
            _tag, key, src, dst, nbytes, t = e
            rec.record_transfer(key, src, dst, nbytes, t, t, t)
        else:
            _tag, op, src, dst, key, t, detail = e
            rec.record_fault(op, time=t, src=src, dst=dst, key=key,
                             detail=detail)


def execute_distributed(
    graph: TaskGraph,
    spec: InitialDataSpec,
    timeout: float = 300.0,
    recorder: Optional[Recorder] = None,
    faults: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
    poll_interval: float = 0.25,
) -> DistributedReport:
    """Run ``graph`` across one OS process per node; gather final tiles.

    Pass a :class:`repro.obs.Recorder` to collect wall-clock task events
    and per-send transfer events from every worker process (merged into
    the recorder when the run completes — or whatever was gathered before
    a failure; for sends, the recorded ``submitted == started ==
    delivered`` timestamp is the moment the message entered the
    destination's queue).

    ``faults`` injects a :class:`repro.runtime.faults.FaultPlan`:
    slowdown windows stretch kernels with post-kernel sleeps, ``loss_rate``
    drops sends before they reach the destination queue (the ack timeout
    retransmits them), and crashes hard-kill a worker after its chosen
    task — the driver then raises :class:`DeadWorkerError` naming the
    node.  ``retry`` tunes the ack timeout/backoff.  A run that exceeds
    ``timeout`` raises :class:`ExecutionTimeout` naming each node that
    had not reported and its task progress.
    """
    num_nodes = graph.nodes_used()
    for key, (home, _d) in graph.initial.items():
        num_nodes = max(num_nodes, home + 1)
    rec = recorder if (recorder is not None and recorder.enabled) else None
    if rec is not None and not rec.source:
        rec.source = "distributed"

    # Per-node plans.
    node_tasks: list[list[_WireTask]] = [[] for _ in range(num_nodes)]
    sends: list[dict[DataKey, list[int]]] = [dict() for _ in range(num_nodes)]
    local_refs: list[dict[DataKey, int]] = [dict() for _ in range(num_nodes)]
    for t in graph.tasks:
        node_tasks[t.node].append((t.id, t.kind, t.reads, t.write, t.flops))
        for k in t.reads:
            src = graph.source_of(k)
            refs = local_refs[t.node]
            refs[k] = refs.get(k, 0) + 1
            if src != t.node:
                dsts = sends[src].setdefault(k, [])
                if t.node not in dsts:
                    dsts.append(t.node)
    initial: list[list[tuple[DataKey, str]]] = [[] for _ in range(num_nodes)]
    for key, (home, descriptor) in graph.initial.items():
        initial[home].append((key, descriptor))
    finals: list[list[DataKey]] = [[] for _ in range(num_nodes)]
    for key in final_versions(graph).values():
        finals[graph.source_of(key)].append(key)

    ctx = mp.get_context("fork")
    inboxes = [ctx.Queue() for _ in range(num_nodes)]
    result_q = ctx.Queue()
    # Per-node completed-task counters, readable by the driver for crash /
    # timeout diagnostics (single writer per slot, so no lock needed).
    progress = ctx.Array("l", num_nodes, lock=False)
    trace_base = time.monotonic() if rec is not None else None
    procs = []
    for node in range(num_nodes):
        p = ctx.Process(
            target=_worker,
            args=(
                node,
                node_tasks[node],
                initial[node],
                sends[node],
                local_refs[node],
                finals[node],
                spec,
                inboxes[node],
                inboxes,
                result_q,
                trace_base,
                progress,
                faults,
                retry,
            ),
        )
        p.daemon = True
        p.start()
        procs.append(p)

    store: dict[DataKey, np.ndarray] = {}
    sent_bytes: dict[int, int] = {}
    sent_messages: dict[int, int] = {}
    retransmits: dict[int, int] = {}
    all_events: list = []
    reported = set()
    error: Optional[str] = None
    failure: Optional[Exception] = None
    deadline = time.monotonic() + timeout

    def take(msg) -> None:
        status, node, a, b, result, events, rtx = msg
        nonlocal error
        reported.add(node)
        if events:
            all_events.extend((node, e) for e in events)
        if status == "error":
            if error is None:
                error = f"node {node} failed:\n{a}"
            return
        sent_bytes[node] = a
        sent_messages[node] = b
        retransmits[node] = rtx
        store.update(result)

    try:
        while len(reported) < num_nodes and error is None:
            try:
                take(result_q.get(timeout=poll_interval))
                continue
            except queue_lib.Empty:
                pass
            # Liveness: a worker that died without reporting will never
            # send a result — fail loudly instead of idling to the
            # deadline.  Grace-drain first: its result may be in flight.
            dead = [n for n, p in enumerate(procs)
                    if n not in reported and not p.is_alive()]
            if dead:
                grace = time.monotonic() + 1.0
                while time.monotonic() < grace and any(
                    n not in reported for n in dead
                ):
                    try:
                        take(result_q.get(timeout=0.1))
                    except queue_lib.Empty:
                        pass
                dead = [n for n in dead if n not in reported]
            if dead and error is None:
                n0 = dead[0]
                if rec is not None:
                    rec.record_fault(
                        "crash", time=time.monotonic() - trace_base, node=n0,
                        detail=f"exitcode {procs[n0].exitcode}")
                owed = finals[n0]
                owed_s = ", ".join(str(k) for k in owed[:6])
                if len(owed) > 6:
                    owed_s += f", ... ({len(owed)} total)"
                failure = DeadWorkerError(
                    f"worker for node {n0} died (exit code "
                    f"{procs[n0].exitcode}) after completing "
                    f"{progress[n0]}/{len(node_tasks[n0])} tasks; "
                    f"still owed final tiles: {owed_s or 'none'}"
                )
                break
            if time.monotonic() > deadline:
                missing = [n for n in range(num_nodes) if n not in reported]
                detail = ", ".join(
                    f"node {n}: {progress[n]}/{len(node_tasks[n])} tasks done"
                    for n in missing
                )
                if rec is not None:
                    rec.record_fault(
                        "timeout", time=time.monotonic() - trace_base,
                        detail=detail)
                failure = ExecutionTimeout(
                    f"distributed run exceeded {timeout:.1f}s; "
                    f"{len(missing)} node(s) never reported ({detail})"
                )
                break
    finally:
        # Tell surviving workers the run is over (they may be blocked on
        # their inbox), then reap.
        for box in inboxes:
            try:
                box.put(("stop",))
            except Exception:
                pass
        # On a failure the stragglers are by definition wedged or dead —
        # don't spend the full grace period waiting for each of them.
        join_timeout = 5.0 if (error is None and failure is None) else 1.0
        for p in procs:
            p.join(timeout=join_timeout)
            if p.is_alive():
                p.terminate()
    if rec is not None:
        # Partial-trace salvage: merge whatever the workers shipped, even
        # when the run failed — the healthy prefix is the diagnostic.
        _merge_events(rec, all_events)
    if failure is not None:
        raise failure
    if error is not None:
        raise RuntimeError(error)
    return DistributedReport(
        store=store,
        sent_bytes=sent_bytes,
        sent_messages=sent_messages,
        num_nodes=num_nodes,
        obs=rec,
        retransmits=retransmits,
    )
