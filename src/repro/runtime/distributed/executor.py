"""Distributed owner-computes execution over real OS processes.

One process per node, point-to-point message passing through per-node
queues: a faithful (laptop-scale) analogue of the paper's MPI + StarPU
deployment.  Each process materializes its own initial tiles from the
shared seed (no input distribution traffic, as in the paper's harness),
executes its tasks in the global submission order, eagerly sends every
produced version to the nodes that will read it, and counts the bytes it
put on the wire.

The measured traffic is exactly the volume predicted by
:func:`repro.comm.count_communications` — the reproduction's "measured
communication volume" (Figure 8) can thus be obtained either way.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...graph.task import DataKey, TaskGraph
from ...obs import Recorder
from ..execution import KERNEL_DISPATCH, InitialDataSpec
from ..local import final_versions

__all__ = ["DistributedReport", "execute_distributed"]

#: Wire format of one task: (task id, kind, reads, write, flops)
_WireTask = Tuple[int, str, Tuple[DataKey, ...], Optional[DataKey], float]


@dataclass
class DistributedReport:
    """Gathered results of a distributed run."""

    store: Dict[DataKey, np.ndarray]
    sent_bytes: Dict[int, int]
    sent_messages: Dict[int, int]
    num_nodes: int = 0
    #: the recorder that collected per-task / per-send events (None on
    #: un-traced runs); see :mod:`repro.obs`.
    obs: Optional[Recorder] = None

    @property
    def total_bytes(self) -> int:
        return sum(self.sent_bytes.values())

    @property
    def total_messages(self) -> int:
        return sum(self.sent_messages.values())


def _worker(
    node: int,
    tasks: List[_WireTask],
    initial: List[Tuple[DataKey, str]],
    sends: Dict[DataKey, List[int]],
    local_refs: Dict[DataKey, int],
    finals: List[DataKey],
    spec: InitialDataSpec,
    inbox,
    outboxes,
    result_q,
    trace_base: Optional[float] = None,
) -> None:
    try:
        store: Dict[DataKey, np.ndarray] = {}
        refs = dict(local_refs)
        finals_set = set(finals)
        sent_bytes = 0
        sent_messages = 0
        # When tracing, event tuples shipped back with the result; times
        # are CLOCK_MONOTONIC seconds relative to the driver's base
        # (system-wide on Linux, so per-node timelines align).
        events: Optional[list] = [] if trace_base is not None else None

        def publish(key: DataKey, arr: np.ndarray) -> None:
            nonlocal sent_bytes, sent_messages
            store[key] = arr
            for dst in sends.get(key, ()):
                outboxes[dst].put((key, arr))
                sent_bytes += arr.nbytes
                sent_messages += 1
                if events is not None:
                    events.append(("xfer", key, node, dst, arr.nbytes,
                                   time.monotonic() - trace_base))

        for key, descriptor in initial:
            publish(key, spec.materialize(key, descriptor))

        def consume(key: DataKey) -> np.ndarray:
            while key not in store:
                k2, arr = inbox.get()
                store[k2] = arr
            return store[key]

        for tid, kind, reads, write, flops in tasks:
            inputs = [consume(k) for k in reads]
            if events is not None:
                start = time.monotonic() - trace_base
            out = KERNEL_DISPATCH[kind](*inputs)
            if events is not None:
                events.append(("task", tid, kind, start,
                               time.monotonic() - trace_base, flops))
            if write is not None:
                publish(write, out)
            for k in reads:
                refs[k] -= 1
                if refs[k] == 0 and k not in finals_set:
                    store.pop(k, None)

        result = {k: store[k] for k in finals_set}
        result_q.put(("ok", node, sent_bytes, sent_messages, result, events))
    except Exception:  # pragma: no cover - surfaced by the driver
        result_q.put(("error", node, traceback.format_exc(), 0, None, None))


def execute_distributed(
    graph: TaskGraph,
    spec: InitialDataSpec,
    timeout: float = 300.0,
    recorder: Optional[Recorder] = None,
) -> DistributedReport:
    """Run ``graph`` across one OS process per node; gather final tiles.

    Pass a :class:`repro.obs.Recorder` to collect wall-clock task events
    and per-send transfer events from every worker process (merged into
    the recorder when the run completes; for sends, the recorded
    ``submitted == started == delivered`` timestamp is the moment the
    message entered the destination's queue).
    """
    num_nodes = graph.nodes_used()
    for key, (home, _d) in graph.initial.items():
        num_nodes = max(num_nodes, home + 1)
    rec = recorder if (recorder is not None and recorder.enabled) else None
    if rec is not None and not rec.source:
        rec.source = "distributed"

    # Per-node plans.
    node_tasks: List[List[_WireTask]] = [[] for _ in range(num_nodes)]
    sends: List[Dict[DataKey, List[int]]] = [dict() for _ in range(num_nodes)]
    local_refs: List[Dict[DataKey, int]] = [dict() for _ in range(num_nodes)]
    for t in graph.tasks:
        node_tasks[t.node].append((t.id, t.kind, t.reads, t.write, t.flops))
        for k in t.reads:
            src = graph.source_of(k)
            refs = local_refs[t.node]
            refs[k] = refs.get(k, 0) + 1
            if src != t.node:
                dsts = sends[src].setdefault(k, [])
                if t.node not in dsts:
                    dsts.append(t.node)
    initial: List[List[Tuple[DataKey, str]]] = [[] for _ in range(num_nodes)]
    for key, (home, descriptor) in graph.initial.items():
        initial[home].append((key, descriptor))
    finals: List[List[DataKey]] = [[] for _ in range(num_nodes)]
    for key in final_versions(graph).values():
        finals[graph.source_of(key)].append(key)

    ctx = mp.get_context("fork")
    inboxes = [ctx.Queue() for _ in range(num_nodes)]
    result_q = ctx.Queue()
    trace_base = time.monotonic() if rec is not None else None
    procs = []
    for node in range(num_nodes):
        p = ctx.Process(
            target=_worker,
            args=(
                node,
                node_tasks[node],
                initial[node],
                sends[node],
                local_refs[node],
                finals[node],
                spec,
                inboxes[node],
                inboxes,
                result_q,
                trace_base,
            ),
        )
        p.daemon = True
        p.start()
        procs.append(p)

    store: Dict[DataKey, np.ndarray] = {}
    sent_bytes: Dict[int, int] = {}
    sent_messages: Dict[int, int] = {}
    all_events: list = []
    error: Optional[str] = None
    try:
        for _ in range(num_nodes):
            status, node, a, b, result, events = result_q.get(timeout=timeout)
            if status == "error":
                error = f"node {node} failed:\n{a}"
                break
            sent_bytes[node] = a
            sent_messages[node] = b
            store.update(result)
            if events:
                all_events.extend((node, e) for e in events)
    finally:
        for p in procs:
            p.join(timeout=5.0)
            if p.is_alive():
                p.terminate()
    if error is not None:
        raise RuntimeError(error)
    if rec is not None:
        # Merge worker events on the shared time axis, in time order.
        def event_time(item):
            return item[1][-1] if item[1][0] == "xfer" else item[1][4]

        for node, e in sorted(all_events, key=event_time):
            if e[0] == "task":
                _tag, tid, kind, start, end, flops = e
                rec.record_task(tid, kind, node, start, start, end, flops)
            else:
                _tag, key, src, dst, nbytes, t = e
                rec.record_transfer(key, src, dst, nbytes, t, t, t)
    return DistributedReport(
        store=store,
        sent_bytes=sent_bytes,
        sent_messages=sent_messages,
        num_nodes=num_nodes,
        obs=rec,
    )
