"""Multiprocessing owner-computes executor with real message passing."""

from .executor import DistributedReport, execute_distributed

__all__ = ["execute_distributed", "DistributedReport"]
