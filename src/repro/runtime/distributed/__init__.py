"""Multiprocessing owner-computes executor with real message passing."""

from .executor import (
    DeadWorkerError,
    DistributedReport,
    ExecutionTimeout,
    execute_distributed,
)

__all__ = [
    "execute_distributed",
    "DistributedReport",
    "DeadWorkerError",
    "ExecutionTimeout",
]
