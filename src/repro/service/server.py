"""Asyncio sweep server: dedup, memoize, shard, stream.

:class:`SweepServer` is the service core (the HTTP front-end in
:mod:`repro.service.http` and the CLI are thin wrappers over it).  One
``submit()`` walks the pipeline::

    canonicalize -> config digest
      -> join in-flight duplicate, if any          (dedup)
      -> structure-hash memo -> point hash -> store lookup   (cache)
      -> dispatch run_point to the worker executor           (simulate)
      -> persist record, resolve every joined waiter

* **Dedup** keys on the config digest, which is computable without
  building the graph, so N clients submitting the same point while it
  runs all await one simulation.
* **Memoization** keys on the content hash of
  :mod:`repro.service.hashing`; hits are re-verified by comparing the
  stored spec's canonical form (hash collisions aside, this catches
  hand-edited stores).
* **Sharding** uses a ``ProcessPoolExecutor`` when ``workers > 0``
  (independent sweep points are embarrassingly parallel); ``workers=0``
  runs points on the default thread executor — simulation releases
  little of the GIL, but submission stays async and tests stay
  single-process.
* **Streaming**: every lifecycle transition is pushed to subscriber
  queues as a :class:`SweepEvent` and counted in the server's
  ``repro.obs`` :class:`~repro.obs.metrics.MetricsRegistry` — the
  ``service.simulations`` counter is the ground truth the cache tests
  assert on (a cache hit or dedup join never increments it).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from collections.abc import Sequence
from typing import Any, Optional

from ..obs.metrics import MetricsRegistry
from .hashing import config_digest, point_hash, structure_key
from .jobs import JobSpec
from .runner import report_from_dict, run_point
from .store import ResultStore

__all__ = ["SweepEvent", "JobResult", "SweepServer"]

#: Lifecycle ops a job can emit, in order of appearance.
EVENT_OPS = ("submitted", "dedup", "cache-hit", "started", "completed",
             "failed")


@dataclass(frozen=True)
class SweepEvent:
    """One job lifecycle transition, streamed to subscribers."""

    op: str  # one of EVENT_OPS
    key: str  # config digest of the point
    time: float  # wall-clock seconds (time.monotonic reference)
    detail: str = ""


@dataclass
class JobResult:
    """Outcome of one submitted point (see ``docs/service.md``)."""

    hash: str
    spec: JobSpec
    status: str  # "ok" | "failed"
    cached: bool  # True when no new simulation ran for this submit
    report: Optional[Any]  # SimReport (None on failed runs)
    timings: dict[str, float]
    metrics: Optional[dict[str, Any]] = None
    error: Optional[str] = None
    #: RSS high-water mark (MiB) of the worker that simulated the point —
    #: measured inside :func:`repro.service.runner.run_point`, so it is
    #: meaningful even when points run in executor processes.  None for
    #: records stored before this field existed.
    peak_rss_mb: Optional[float] = None
    #: True when the worker reused its cached compiled graph for this
    #: point (incremental re-simulation) instead of rebuilding.
    graph_reused: bool = False

    def raise_for_status(self) -> JobResult:
        if self.status != "ok":
            raise RuntimeError(f"sweep point failed: {self.error}")
        return self


def _result_from_record(spec: JobSpec, record: dict[str, Any],
                        cached: bool) -> JobResult:
    report = record.get("report")
    return JobResult(
        hash=record["hash"],
        spec=spec,
        status=record["status"],
        cached=cached,
        report=None if report is None else report_from_dict(report),
        timings=dict(record.get("timings", {})),
        metrics=record.get("metrics"),
        error=record.get("error"),
        peak_rss_mb=record.get("peak_rss_mb"),
        graph_reused=bool(record.get("graph_reused", False)),
    )


class SweepServer:
    """Long-running job server over one :class:`ResultStore`."""

    def __init__(
        self,
        store: ResultStore,
        workers: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.store = store
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._inflight: dict[str, asyncio.Future[dict[str, Any]]] = {}
        self._subscribers: list[asyncio.Queue[SweepEvent]] = []
        self._pool: Optional[ProcessPoolExecutor] = (
            ProcessPoolExecutor(max_workers=workers) if workers > 0 else None
        )
        # Store appends fsync; a dedicated single-thread executor keeps
        # that disk wait off the event loop (concurrent submits and the
        # HTTP front-end stay responsive) while preserving the store's
        # single-writer contract — one thread, appends in submit order.
        self._io = ThreadPoolExecutor(max_workers=1,
                                      thread_name_prefix="sweep-store-io")
        self._t0 = time.monotonic()

    # -- events --------------------------------------------------------------

    def subscribe(self, maxsize: int = 0) -> asyncio.Queue[SweepEvent]:
        """A queue receiving every :class:`SweepEvent` from now on.

        ``maxsize`` bounds the queue (0 = unbounded, the historical
        behaviour).  A bounded queue sheds load with drop-*oldest*
        semantics: when a slow consumer falls ``maxsize`` events behind,
        the oldest pending event is discarded to admit the new one —
        stalled HTTP streamers see a gap, not unbounded server memory.
        Dropped events are counted in the ``service.events.dropped``
        metric.
        """
        q: asyncio.Queue[SweepEvent] = asyncio.Queue(maxsize=maxsize)
        self._subscribers.append(q)
        return q

    def unsubscribe(self, q: asyncio.Queue[SweepEvent]) -> None:
        if q in self._subscribers:
            self._subscribers.remove(q)

    def _emit(self, op: str, key: str, detail: str = "") -> None:
        ev = SweepEvent(op, key, time.monotonic() - self._t0, detail)
        self.metrics.counter("service.events", "job lifecycle events per op") \
            .inc(labels=(op,))
        for q in self._subscribers:
            try:
                q.put_nowait(ev)
            except asyncio.QueueFull:
                # Drop-oldest: make room, then retry once.  Everything
                # here runs on the event loop, so get/put cannot race a
                # consumer mid-sequence.
                try:
                    q.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover - maxsize=0
                    pass
                try:
                    q.put_nowait(ev)
                except asyncio.QueueFull:  # pragma: no cover - defensive
                    pass
                self.metrics.counter(
                    "service.events.dropped",
                    "subscriber events shed by bounded queues (drop-oldest)",
                ).inc(labels=(op,))

    # -- counters ------------------------------------------------------------

    def _count(self, name: str, help_: str) -> None:
        self.metrics.counter(name, help_).inc()

    def simulations(self) -> int:
        """Simulations actually executed by this server (not cache hits)."""
        c = self.metrics.get("service.simulations")
        return int(c.total()) if c is not None else 0

    # -- the pipeline --------------------------------------------------------

    def _lookup(self, spec: JobSpec, ckey: str) -> Optional[dict[str, Any]]:
        """Store lookup via the structure-hash memo; None on any miss."""
        struct = self.store.get_structure(structure_key(spec))
        if struct is None:
            return None
        record = self.store.get(point_hash(struct, ckey))
        if record is None:
            return None
        # Paranoia over hand-edited stores: the cached spec must be the
        # very spec we were asked about.
        if record.get("spec") != spec.to_dict():
            return None
        return record

    async def submit(self, spec: JobSpec) -> JobResult:
        """Resolve one point: dedup, then cache, then simulate + persist."""
        ckey = config_digest(spec)
        self._count("service.jobs", "points submitted")
        self._emit("submitted", ckey, str(spec))

        # 1. join an identical in-flight point (registered synchronously
        #    below, before any await — concurrent submits cannot race past
        #    this check in one event loop).
        pending = self._inflight.get(ckey)
        if pending is not None:
            self._count("service.dedup.joined", "submits joined in-flight work")
            self._emit("dedup", ckey)
            record = await asyncio.shield(pending)
            return _result_from_record(spec, record, cached=True)

        # 2. memoized result?
        record = self._lookup(spec, ckey)
        if record is not None:
            self._count("service.cache.hits", "points served from the store")
            self._emit("cache-hit", ckey)
            return _result_from_record(spec, record, cached=True)
        self._count("service.cache.misses", "points not found in the store")

        # 3. simulate on the worker executor.
        loop = asyncio.get_running_loop()
        future: asyncio.Future[dict[str, Any]] = loop.create_future()
        self._inflight[ckey] = future
        self._emit("started", ckey)
        try:
            record = await loop.run_in_executor(
                self._pool, run_point, spec.to_dict()
            )
            self._count("service.simulations", "simulations actually executed")
            if record["status"] != "ok":
                self._count("service.failures", "deterministically failed points")
            await loop.run_in_executor(
                self._io, self._persist, structure_key(spec), record
            )
            self._emit("completed" if record["status"] == "ok" else "failed",
                       ckey, record.get("error") or "")
            future.set_result(record)
        except BaseException as exc:
            future.set_exception(exc)
            # Joined waiters observe the exception through the shield;
            # quiet the "exception never retrieved" warning for our copy.
            future.exception()
            self._emit("failed", ckey, repr(exc))
            raise
        finally:
            del self._inflight[ckey]
        return _result_from_record(spec, record, cached=False)

    def _persist(self, skey: str, record: dict[str, Any]) -> None:
        """Append one record + its structure memo (runs on ``self._io``)."""
        self.store.put_structure(skey, record["structure"])
        self.store.put(record)

    async def sweep(self, specs: Sequence[JobSpec]) -> list[JobResult]:
        """Submit many points concurrently; results in input order.

        One point raising (a bad spec, an executor crash) must not
        discard every other point's result, so per-point exceptions are
        captured and surfaced as ``status="failed"`` results with an
        empty hash (nothing was simulated or stored for them).
        Cancellation still propagates: cancelling the sweep cancels
        every point.
        """
        outcomes = await asyncio.gather(
            *(self.submit(s) for s in specs), return_exceptions=True
        )
        results: list[JobResult] = []
        for spec, out in zip(specs, outcomes):
            if isinstance(out, BaseException):
                if not isinstance(out, Exception):
                    raise out  # CancelledError / KeyboardInterrupt / ...
                self._count("service.sweep.errors",
                            "sweep points lost to raised exceptions")
                results.append(JobResult(
                    hash="", spec=spec, status="failed", cached=False,
                    report=None, timings={},
                    error=f"{type(out).__name__}: {out}",
                ))
            else:
                results.append(out)
        return results

    def status(self, spec: JobSpec) -> str:
        """'cached' | 'running' | 'unknown' for one point."""
        ckey = config_digest(spec)
        if ckey in self._inflight:
            return "running"
        if self._lookup(spec, ckey) is not None:
            return "cached"
        return "unknown"

    def result_by_hash(self, point: str) -> Optional[dict[str, Any]]:
        """Raw stored record for a point hash (None when absent)."""
        return self.store.get(point)

    async def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._io.shutdown(wait=True)
