"""Content addressing for sweep points.

A point's identity is the pair

    point hash = H(schema version, structure hash, config digest)

* the **config digest** hashes the canonical JSON of the *full*
  :class:`repro.service.jobs.JobSpec` — any field change (tile count,
  distribution parameter, network constant, fault seed, engine, ...)
  yields a new digest;
* the **structure hash** hashes the raw bytes of the compiled graph's
  arrays (kinds, placements, CSR read adjacency, writer table, data
  sizes, flop counts) — it pins the cache to the *actual* task graph,
  so a change in a graph builder that alters dependencies or placement
  invalidates entries even if the spec text is unchanged.

The structure hash requires building the graph, which is the expensive
step the cache exists to avoid; the store therefore memoizes
``structure key -> structure hash`` (the key being the canonical JSON of
:meth:`JobSpec.structure_fields`), and :data:`SCHEMA_VERSION` salts both
hashes so bumping it invalidates every prior entry at once.  See
``docs/service.md`` ("Content hash") for the invalidation matrix.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..graph.compiled import CompiledGraph
from .jobs import JobSpec, canonical_json

__all__ = [
    "SCHEMA_VERSION",
    "config_digest",
    "structure_key",
    "structure_hash",
    "point_hash",
]

#: Bump to invalidate every cached result (graph-builder or engine
#: changes that alter semantics without changing specs or array layouts).
#: v2: JobSpec grew the ``policy`` field (scheduler framework) — old
#: entries hashed a spec without it.
#: v3: JobSpec grew the ``kernel`` field, and the structure hash now
#: canonicalizes the kind table (codes remapped through sorted used-kind
#: names) — old structure hashes depended on kind registration order.
#: v4: machine specs grew the ``topology`` key (routed interconnect +
#: per-node heterogeneity, ``None`` for the historic clique) — it feeds
#: the config digest, since topology changes simulated timings but not
#: the task graph.
SCHEMA_VERSION = 4


def _h(*parts: bytes) -> str:
    h = hashlib.sha256()
    for p in parts:
        h.update(p)
        h.update(b"\x00")
    return h.hexdigest()


def config_digest(spec: JobSpec) -> str:
    """Digest of the full canonical spec (any field change changes it)."""
    return _h(b"config", str(SCHEMA_VERSION).encode(),
              spec.canonical().encode())


def structure_key(spec: JobSpec) -> str:
    """Canonical JSON of the fields the graph structure depends on."""
    return canonical_json(spec.structure_fields())


def structure_hash(cg: CompiledGraph) -> str:
    """Hash of the compiled graph's structural arrays.

    Includes every array that defines tasks, placement, dependencies and
    data sizes; excludes derived state (priorities, cached comm plan) and
    provenance extras (``data_keys``, ``level_ranges``) so the direct
    compilers and the generic :func:`repro.graph.compiled.compile_graph`
    lowering of the same graph hash identically — the same equality the
    property suite pins for the engines.

    The kind table is hashed in *canonical* form: ``compile_graph``
    appends unknown kinds to the global table in first-seen order, so raw
    ``kind_codes`` (and the table itself) depend on what was lowered
    earlier in the process.  Codes are remapped through the sorted table
    of kinds actually used by this graph — two registrations of the same
    graph under permuted kind tables hash identically, and unused table
    entries never leak into the hash.
    """
    h = hashlib.sha256()
    h.update(b"structure")
    h.update(str(SCHEMA_VERSION).encode())
    codes = np.ascontiguousarray(cg.kind_codes)
    used = np.unique(codes)
    used_names = [cg.kind_names[int(c)] for c in used]
    rank = {name: k for k, name in enumerate(sorted(used_names))}
    lut = np.zeros((int(used.max()) + 1) if len(used) else 1, dtype=np.int16)
    for c, name in zip(used, used_names):
        lut[int(c)] = rank[name]
    canon_codes = lut[codes]
    meta = (cg.b, cg.width, cg.element_size, cg.n_init,
            tuple(sorted(used_names)))
    h.update(repr(meta).encode())
    # ``a.data`` feeds the array's buffer to sha256 without the
    # ``.tobytes()`` copy — at paper scale the arrays total ~600 MB and
    # the copy nearly doubled the hash time (and its transient peak).
    for arr in (canon_codes, cg.node, cg.flops, cg.iteration,
                cg.write_id, cg.read_ptr, cg.read_ids,
                cg.data_producer, cg.data_source_node, cg.data_nbytes):
        a = np.ascontiguousarray(arr)
        h.update(a.dtype.str.encode())
        h.update(a.data)
    return h.hexdigest()


def point_hash(structure: str, config: str) -> str:
    """The content address of one (graph structure, configuration) point."""
    return _h(b"point", str(SCHEMA_VERSION).encode(),
              structure.encode(), config.encode())
