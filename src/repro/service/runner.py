"""Worker-side execution of one sweep point.

:func:`run_point` is a pure top-level function — (spec dict in, result
dict out) — so the server can ship it to a ``ProcessPoolExecutor``
unchanged.  It builds the task graph for the requested engine, computes
the structure hash (:mod:`repro.service.hashing`), simulates, and
returns a JSON-ready record: status, point hash, per-phase timings
(build / plan / simulate), the serialized :class:`SimReport`, and an
optional ``repro.obs`` metrics summary.

Determinism contract: the record is a function of the spec alone.  Both
engines are deterministic (the fault plans are seeded; see
:mod:`repro.runtime.faults`), so a memoized report is bit-identical to a
fresh run — the test suite asserts this for both engines, and it is what
makes content-addressed caching sound.  A seeded worker *crash* is also
deterministic, so failed runs are memoized too (status ``"failed"``
with the diagnostic message) instead of being retried forever.

Serialized reports drop the per-event trace (``SimReport.trace`` /
``transfers`` — unbounded at paper scale); summaries and metrics are
kept.  Submit with ``collect_metrics=True`` to store the run's
metric registry dump alongside the report.
"""

from __future__ import annotations

import resource
import threading
import time
from collections.abc import Callable, Mapping
from typing import Any, Optional

from ..graph import (
    build_cholesky_graph,
    build_cholesky_graph_25d,
    build_lu_graph,
    build_lu_graph_25d,
    compile_cholesky,
    compile_graph,
    compile_lu,
)
from ..graph.compiled import CompiledGraph
from ..graph.task import TaskGraph
from ..obs import Recorder
from ..runtime.faults import SimulatedFailure
from ..runtime.simulator import SimReport, simulate, simulate_compiled
from .hashing import config_digest, point_hash, structure_hash, structure_key
from .jobs import JobSpec

__all__ = [
    "run_point",
    "report_to_dict",
    "report_from_dict",
]


def report_to_dict(rep: SimReport) -> dict[str, Any]:
    """Lossless JSON form of a :class:`SimReport` (event traces dropped).

    ``json`` serializes floats via ``repr``, which round-trips doubles
    exactly — a reloaded report is bit-identical to the original.
    """
    return {
        "makespan": rep.makespan,
        "total_flops": rep.total_flops,
        "num_nodes": rep.num_nodes,
        "comm_bytes": rep.comm_bytes,
        "comm_messages": rep.comm_messages,
        "busy_time": list(rep.busy_time),
        "time_by_kind": dict(rep.time_by_kind),
        "num_tasks": rep.num_tasks,
        "cores_per_node": rep.cores_per_node,
    }


def report_from_dict(d: Mapping[str, Any]) -> SimReport:
    """Rebuild a :class:`SimReport` from :func:`report_to_dict` output."""
    return SimReport(
        makespan=d["makespan"],
        total_flops=d["total_flops"],
        num_nodes=d["num_nodes"],
        comm_bytes=d["comm_bytes"],
        comm_messages=d["comm_messages"],
        busy_time=list(d["busy_time"]),
        time_by_kind=dict(d["time_by_kind"]),
        num_tasks=d["num_tasks"],
        cores_per_node=d["cores_per_node"],
    )


def _build_object_graph(spec: JobSpec) -> TaskGraph:
    dist = spec.distribution()
    from ..distributions import TwoDotFiveD

    if isinstance(dist, TwoDotFiveD):
        builder = (build_cholesky_graph_25d if spec.algorithm == "cholesky"
                   else build_lu_graph_25d)
        return builder(spec.ntiles, spec.b, dist)
    builder = (build_cholesky_graph if spec.algorithm == "cholesky"
               else build_lu_graph)
    return builder(spec.ntiles, spec.b, dist)


def _compile(spec: JobSpec) -> CompiledGraph:
    """Compiled graph for the spec (direct compiler when one exists)."""
    dist = spec.distribution()
    from ..distributions import TwoDotFiveD

    if not isinstance(dist, TwoDotFiveD):
        direct = compile_cholesky if spec.algorithm == "cholesky" else compile_lu
        return direct(spec.ntiles, spec.b, dist)
    # 2.5D graphs have no direct compiler yet: lower the object graph.
    return compile_graph(_build_object_graph(spec))


# --------------------------------------------------------------------------
# incremental re-simulation: worker-side compiled-graph cache
# --------------------------------------------------------------------------
# Sweeps routinely vary only network/machine constants, fault seeds or
# scheduler policies across points — the graph structure (and hence the
# expensive build + comm plan) is identical.  Each worker keeps the last
# compiled graph keyed by the spec's structure key and hands it to the
# next matching point instead of rebuilding.  The cache is *checkout-
# based*: a graph is removed while in use and returned afterwards, so two
# thread-executor points can never simulate the same (mutable) instance
# concurrently — the loser of the race compiles fresh, last check-in
# wins.  Reuse resets the priority column: simulate's auto-priority sweep
# keys on ``priority.any()``, and a stale plan's priorities must not leak
# into the next point (scheduler policies and machine constants change
# the sweep's input).

_graph_cache_lock = threading.Lock()
_graph_cache: Optional[tuple[str, CompiledGraph]] = None


def _checkout_graph(spec: JobSpec, skey: str) -> tuple[CompiledGraph, bool]:
    """(compiled graph, reused?) — reuse only on an exact structure match."""
    global _graph_cache
    with _graph_cache_lock:
        cached = _graph_cache
        if cached is not None and cached[0] == skey:
            _graph_cache = None
            cg = cached[1]
            cg.priority[:] = 0.0
            return cg, True
        # A structure mismatch means the cached graph is about to be
        # replaced anyway — evict it *before* compiling so the old
        # graph's memory does not inflate the new build's peak RSS
        # (ascending-N sweeps would otherwise hold both at once).
        _graph_cache = None
    return _compile(spec), False


def _checkin_graph(skey: str, cg: CompiledGraph) -> None:
    global _graph_cache
    with _graph_cache_lock:
        _graph_cache = (skey, cg)


def run_point(spec_dict: Mapping[str, Any]) -> dict[str, Any]:
    """Execute one sweep point; returns the store-ready record body."""
    spec = JobSpec.from_dict(dict(spec_dict))
    faults = spec.fault_plan()
    machine = spec.machine_spec()
    recorder = Recorder(source="service") if spec.collect_metrics else None

    graph_reused = False
    checkin: Optional[Callable[[], None]] = None

    t0 = time.perf_counter()
    if spec.engine == "compiled":
        skey = structure_key(spec)
        cg, graph_reused = _checkout_graph(spec, skey)
        # The hash covers only structural arrays (not priorities), so a
        # reused graph's memoized hash is still exact.
        memo = cg._structure_hash
        if memo is None:
            memo = structure_hash(cg)
            cg._structure_hash = memo
        struct = memo
        t1 = time.perf_counter()
        cg.comm_plan()
        t2 = time.perf_counter()
        checkin = lambda: _checkin_graph(skey, cg)  # noqa: E731
        runner = lambda: simulate_compiled(  # noqa: E731
            cg, machine,
            synchronized=spec.synchronized,
            broadcast=spec.broadcast,
            aggregate=spec.aggregate,
            recorder=recorder,
            faults=faults,
            scheduler=spec.policy,
            kernel=spec.kernel,
        )
    else:
        graph = _build_object_graph(spec)
        struct = structure_hash(compile_graph(graph))
        t1 = time.perf_counter()
        t2 = t1
        runner = lambda: simulate(  # noqa: E731
            graph, machine,
            synchronized=spec.synchronized,
            broadcast=spec.broadcast,
            aggregate=spec.aggregate,
            recorder=recorder,
            faults=faults,
            scheduler=spec.policy,
        )

    status = "ok"
    error: Optional[str] = None
    report: Optional[dict[str, Any]] = None
    try:
        rep = runner()
        report = report_to_dict(rep)
    except SimulatedFailure as exc:
        # Seeded crash plans fail deterministically: memoize the outcome.
        status = "failed"
        error = str(exc)
    finally:
        if checkin is not None:
            checkin()
    t3 = time.perf_counter()

    metrics = None
    if recorder is not None:
        metrics = recorder.metrics.as_dict()

    return {
        "hash": point_hash(struct, config_digest(spec)),
        "structure": struct,
        "spec": spec.to_dict(),
        "status": status,
        "error": error,
        "report": report,
        "metrics": metrics,
        # This process's RSS high-water mark (MiB).  run_point executes in
        # the worker (executor process or thread), so unlike a parent-side
        # RUSAGE_SELF read this actually covers the simulation; it is
        # monotone per worker, hence an upper bound when workers are
        # reused across points.
        "peak_rss_mb":
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
        "graph_reused": graph_reused,
        "timings": {
            "build_seconds": t1 - t0,
            "plan_seconds": t2 - t1,
            "sim_seconds": t3 - t2,
        },
    }
