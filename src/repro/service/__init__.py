"""Simulation-as-a-service: async sweep server with content-addressed caching.

The experiment entry points used to be one-shot scripts that re-built and
re-simulated identical points on every invocation.  This package turns
them into replayable traffic against a long-running (or in-process)
service:

* :mod:`~repro.service.jobs` — :class:`JobSpec`, the canonical
  JSON-serializable description of one simulation point;
* :mod:`~repro.service.hashing` — the content hash: compiled-graph
  structure hash + full-config digest, schema-versioned;
* :mod:`~repro.service.store` — :class:`ResultStore`, an append-only
  checksummed JSONL store keyed by point hash (corruption is detected
  and recomputed, never served);
* :mod:`~repro.service.runner` — :func:`run_point`, the pure worker
  function (deterministic: memoized reports are bit-identical to fresh
  runs on both engines);
* :mod:`~repro.service.server` — :class:`SweepServer`, the asyncio
  pipeline: in-flight dedup, memoization, process-pool sharding,
  progress-event streaming, ``repro.obs`` counters;
* :mod:`~repro.service.client` — :class:`SweepClient`, the synchronous
  API the benchmarks use (in-process or HTTP);
* :mod:`~repro.service.http` — optional stdlib HTTP front-end behind
  ``python -m repro.service serve``.

See ``docs/service.md`` (job schema, hash semantics, store layout) and
``docs/architecture.md`` (where the service sits in the stack).
"""

from .client import SweepClient, default_store_path
from .hashing import (
    SCHEMA_VERSION,
    config_digest,
    point_hash,
    structure_hash,
    structure_key,
)
from .jobs import (
    JobSpec,
    dist_from_spec,
    dist_to_spec,
    faults_from_spec,
    faults_to_spec,
    machine_from_spec,
    machine_to_spec,
)
from .runner import report_from_dict, report_to_dict, run_point
from .server import JobResult, SweepEvent, SweepServer
from .store import ResultStore

__all__ = [
    "JobSpec",
    "JobResult",
    "SweepEvent",
    "SweepServer",
    "SweepClient",
    "ResultStore",
    "run_point",
    "report_to_dict",
    "report_from_dict",
    "default_store_path",
    "SCHEMA_VERSION",
    "config_digest",
    "structure_key",
    "structure_hash",
    "point_hash",
    "dist_to_spec",
    "dist_from_spec",
    "machine_to_spec",
    "machine_from_spec",
    "faults_to_spec",
    "faults_from_spec",
]
