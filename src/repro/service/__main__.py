"""Command-line front door of the sweep service.

::

    python -m repro.service serve  --store DIR [--host H] [--port P] [--workers K]
    python -m repro.service submit (--store DIR | --server URL) [job flags]
    python -m repro.service status (--store DIR | --server URL) [job flags]
    python -m repro.service result (--store DIR | --server URL) HASH

``serve`` runs the asyncio server behind the stdlib HTTP front-end
(:mod:`repro.service.http`) until interrupted.  The other subcommands
act as clients: with ``--server`` they talk to a running instance over
HTTP; with ``--store`` they operate in-process against the store
directory directly (no daemon needed — handy for scripts and CI).

Job flags (submit/status) mirror the :class:`repro.service.jobs.JobSpec`
fields; ``--dist`` uses a compact syntax::

    --dist sbc:r=8              SymmetricBlockCyclic(8)
    --dist sbc:r=4,variant=basic
    --dist bc2d:7x4             BlockCyclic2D(7, 4)
    --dist row1d:12             RowCyclic1D(12)

or pass a full spec as JSON with ``--spec-json FILE`` (``-`` = stdin).
A worked end-to-end example lives in ``docs/service.md``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from collections.abc import Sequence
from typing import Any, Optional

from ..config import bora
from .client import SweepClient
from .http import serve_http
from .jobs import JobSpec, machine_to_spec
from .server import SweepServer
from .store import ResultStore

__all__ = ["main"]


def parse_dist(text: str) -> dict[str, Any]:
    """Parse the compact ``--dist`` syntax into a dist spec dict."""
    kind, _, rest = text.partition(":")
    if kind == "sbc":
        fields = dict(kv.split("=", 1) for kv in rest.split(",") if kv)
        return {"kind": "sbc", "r": int(fields["r"]),
                "variant": fields.get("variant", "extended")}
    if kind == "bc2d":
        p, _, q = rest.partition("x")
        return {"kind": "bc2d", "p": int(p), "q": int(q)}
    if kind == "row1d":
        return {"kind": "row1d", "P": int(rest)}
    raise argparse.ArgumentTypeError(
        f"unknown --dist {text!r}; use sbc:r=8 / bc2d:7x4 / row1d:12"
    )


def _spec_from_args(args: argparse.Namespace) -> JobSpec:
    if args.spec_json is not None:
        fh = sys.stdin if args.spec_json == "-" else open(args.spec_json)
        try:
            return JobSpec.from_dict(json.load(fh))
        finally:
            if fh is not sys.stdin:
                fh.close()
    if args.dist is None:
        raise SystemExit("either --dist or --spec-json is required")
    from ..distributions import TwoDotFiveD
    from .jobs import dist_from_spec

    dist = dist_from_spec(args.dist)
    nodes = args.nodes or (dist.num_nodes if not isinstance(dist, TwoDotFiveD)
                           else dist.num_nodes)
    machine = machine_to_spec(bora(nodes))
    if args.cores:
        machine["cores"] = args.cores
    if args.bandwidth:
        machine["bandwidth"] = args.bandwidth
    if args.latency:
        machine["latency"] = args.latency
    faults = None
    if args.faults_json:
        with open(args.faults_json) as fh:
            faults = json.load(fh)
    return JobSpec.make(
        algorithm=args.algorithm,
        ntiles=args.ntiles,
        b=args.b,
        dist=args.dist,
        machine=machine,
        engine=args.engine,
        synchronized=args.synchronized,
        broadcast=args.broadcast,
        aggregate=args.aggregate,
        faults=faults,
        collect_metrics=args.collect_metrics,
        policy=args.policy,
    )


def _client(args: argparse.Namespace) -> SweepClient:
    if args.server:
        return SweepClient(url=args.server)
    if args.store:
        return SweepClient(store=args.store, workers=args.workers)
    raise SystemExit("pass --server URL or --store DIR")


def _add_endpoint_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--server", default=None, metavar="URL",
                   help="running service (http://host:port)")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="operate in-process on this store directory")
    p.add_argument("--workers", type=int, default=0,
                   help="worker processes for --store mode (0 = in-process)")


def _add_job_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--algorithm", choices=["cholesky", "lu"],
                   default="cholesky")
    p.add_argument("--ntiles", type=int, default=20, help="tile count N")
    p.add_argument("--b", type=int, default=512, help="tile size")
    p.add_argument("--dist", type=parse_dist, default=None,
                   help="sbc:r=8 | bc2d:7x4 | row1d:12")
    p.add_argument("--engine", choices=["compiled", "object"],
                   default="compiled")
    p.add_argument("--nodes", type=int, default=0,
                   help="machine nodes (default: the distribution's)")
    p.add_argument("--cores", type=int, default=0)
    p.add_argument("--bandwidth", type=float, default=0.0)
    p.add_argument("--latency", type=float, default=0.0)
    p.add_argument("--synchronized", action="store_true")
    p.add_argument("--broadcast", choices=["direct", "tree"], default="direct")
    p.add_argument("--policy", default="critical-path", metavar="NAME",
                   help="scheduler policy (see repro.schedulers.POLICIES; "
                        "default: critical-path)")
    p.add_argument("--aggregate", action="store_true")
    p.add_argument("--collect-metrics", action="store_true")
    p.add_argument("--faults-json", default=None, metavar="FILE",
                   help="FaultPlan spec JSON (see docs/service.md)")
    p.add_argument("--spec-json", default=None, metavar="FILE",
                   help="full JobSpec JSON ('-' = stdin); overrides job flags")


async def _serve(args: argparse.Namespace) -> int:
    store = ResultStore(args.store, max_bytes=args.max_store_bytes or None)
    server = SweepServer(store, workers=args.workers)
    svc = await serve_http(server, args.host, args.port)
    print(f"sweep service on http://{svc.host}:{svc.port} "
          f"(store {store.root}, {len(store)} cached points, "
          f"{args.workers} workers)", flush=True)
    try:
        await svc.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - shutdown path
        pass
    finally:
        await svc.close()
        await server.close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Simulation sweep service with content-addressed caching.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="run the HTTP service")
    p_serve.add_argument("--store", required=True, metavar="DIR")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642)
    p_serve.add_argument("--workers", type=int, default=0)
    p_serve.add_argument("--max-store-bytes", type=int, default=0,
                         metavar="N",
                         help="LRU-evict cached results past N bytes "
                              "(0 = unbounded)")

    p_submit = sub.add_parser("submit", help="submit one point, print result")
    _add_endpoint_flags(p_submit)
    _add_job_flags(p_submit)

    p_status = sub.add_parser("status", help="cache state of one point")
    _add_endpoint_flags(p_status)
    _add_job_flags(p_status)

    p_result = sub.add_parser("result", help="print a stored record by hash")
    _add_endpoint_flags(p_result)
    p_result.add_argument("hash", help="point hash (from submit output)")

    args = parser.parse_args(argv)

    if args.command == "serve":
        try:
            return asyncio.run(_serve(args))
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0

    if args.command == "submit":
        spec = _spec_from_args(args)
        with _client(args) as client:
            res = client.submit(spec)
            print(f"hash: {res.hash}")
            print(f"status: {res.status}")
            print(f"cached: {str(res.cached).lower()}")
            if res.report is not None:
                print(f"makespan_seconds: {res.report.makespan!r}")
                print(f"comm_bytes: {res.report.comm_bytes}")
                print(f"comm_messages: {res.report.comm_messages}")
                print(f"gflops_per_node: {res.report.gflops_per_node:.3f}")
            if res.error:
                print(f"error: {res.error}")
            return 0 if res.status == "ok" else 1

    if args.command == "status":
        spec = _spec_from_args(args)
        with _client(args) as client:
            print(client.status(spec))
        return 0

    if args.command == "result":
        with _client(args) as client:
            record = client.result_by_hash(args.hash)
        if record is None:
            print(f"no stored result for {args.hash}", file=sys.stderr)
            return 1
        json.dump(record, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0

    return 2  # pragma: no cover - argparse guards choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
