"""Persistent content-addressed result store (append-only JSONL).

Layout of a store directory::

    store/
      results.jsonl      one record per completed point, keyed by hash
      structures.jsonl   structure-key -> structure-hash memo

Both files are append-only logs of single-line JSON envelopes::

    {"schema": 1, "sha": "<sha256 of payload>", ...payload...}

``sha`` is the SHA-256 of the canonical JSON of the envelope minus the
``sha`` field itself, so any torn write, truncation or bit-rot is
detected at load time: a line that fails to parse, carries the wrong
schema version, or mismatches its checksum is *skipped* (and counted in
``corrupt_entries``) — the server then treats the point as uncached and
recomputes it, appending a fresh valid record.  Served results are
re-verified on every read, never trusted from a stale in-memory index.

Appends are last-wins per key, which is what makes recovery and
re-runs idempotent; :meth:`ResultStore.compact` rewrites each file with
one line per live key.  Concurrent *processes* should not share a store
directory for writing (the service owns its store); concurrent readers
are safe.

An optional size cap (``max_bytes=``) bounds the live result payload:
when an append pushes past it, least-recently-used records are evicted
(reads refresh recency, so a warm sweep's working set survives) and the
log is compacted so the evicted lines physically disappear.  The log is
also compacted opportunistically once dead appends (last-wins
duplicates) dominate the file.  Evicting a record only costs a future
recompute — the store is a cache, not the system of record.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Iterator, Mapping
from pathlib import Path
from typing import Any, Optional, Union

from .hashing import SCHEMA_VERSION
from .jobs import canonical_json

__all__ = ["ResultStore"]


def _checksum(payload: Mapping[str, Any]) -> str:
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def _seal(payload: dict[str, Any]) -> str:
    """Envelope one payload as a JSONL line with schema + checksum."""
    body = dict(payload)
    body["schema"] = SCHEMA_VERSION
    body["sha"] = _checksum(body)
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _open_valid(line: str) -> Optional[dict[str, Any]]:
    """Parse + verify one envelope line; None when corrupt/foreign."""
    try:
        body = json.loads(line)
    except ValueError:
        return None
    if not isinstance(body, dict) or body.get("schema") != SCHEMA_VERSION:
        return None
    sha = body.pop("sha", None)
    if sha != _checksum(body):
        return None
    return body


class ResultStore:
    """On-disk memo of completed sweep points (see module docstring)."""

    RESULTS = "results.jsonl"
    STRUCTURES = "structures.jsonl"

    #: Durability modes: "always" fsyncs every append (a completed point
    #: survives an immediate power cut); "batch" only flushes to the OS on
    #: append and fsyncs at :meth:`sync`/:meth:`compact` — far cheaper
    #: under sweep bursts, at the cost of possibly recomputing the last
    #: few points after a crash (appends are idempotent, so that is safe).
    FSYNC_MODES = ("always", "batch")

    def __init__(self, root: Union[str, os.PathLike[str]],
                 fsync: str = "always",
                 max_bytes: Optional[int] = None) -> None:
        if fsync not in self.FSYNC_MODES:
            raise ValueError(
                f"fsync must be one of {self.FSYNC_MODES}, got {fsync!r}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        #: Cap on the live result payload (sealed-line bytes); None =
        #: unbounded (the historic behaviour).
        self.max_bytes = max_bytes
        #: envelope lines skipped at load time (corruption indicator)
        self.corrupt_entries = 0
        #: records dropped by the LRU cap over this store's lifetime
        self.evictions = 0
        # Insertion order doubles as the LRU order: get() re-inserts on
        # hit, so the first key is always the coldest.
        self._results: dict[str, dict[str, Any]] = {}
        self._structures: dict[str, str] = {}
        # Sealed-line size per live record (+1 for the newline) and the
        # running totals used by the cap / compaction heuristics.
        self._sizes: dict[str, int] = {}
        self._live_bytes = 0
        self._log_bytes = 0
        self._load()
        if max_bytes is not None:
            self._enforce_cap()

    # -- loading ------------------------------------------------------------

    def _lines(self, name: str) -> Iterator[str]:
        path = self.root / name
        if not path.exists():
            return
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield line

    def _load(self) -> None:
        for line in self._lines(self.RESULTS):
            self._log_bytes += len(line) + 1
            body = _open_valid(line)
            if body is None or "hash" not in body:
                self.corrupt_entries += 1
                continue
            h = body["hash"]
            old = self._sizes.get(h)
            if old is not None:
                self._live_bytes -= old
                self._results.pop(h, None)  # last-wins refreshes recency
            self._sizes[h] = len(line) + 1
            self._live_bytes += len(line) + 1
            self._results[h] = body
        for line in self._lines(self.STRUCTURES):
            body = _open_valid(line)
            if body is None or "key" not in body or "structure" not in body:
                self.corrupt_entries += 1
                continue
            self._structures[body["key"]] = body["structure"]

    # -- results ------------------------------------------------------------

    def get(self, point_hash: str) -> Optional[dict[str, Any]]:
        """The stored record for ``point_hash``, or None when uncached."""
        body = self._results.get(point_hash)
        if body is not None:
            # Refresh LRU recency: re-insert at the warm end.
            self._results[point_hash] = self._results.pop(point_hash)
        return body

    def put(self, record: Mapping[str, Any]) -> None:
        """Append one completed-point record (must carry ``hash``)."""
        if "hash" not in record:
            raise ValueError("result record needs a 'hash' field")
        body = dict(record)
        line = _seal(body)
        self._append(self.RESULTS, line)
        body["schema"] = SCHEMA_VERSION
        h = body["hash"]
        old = self._sizes.get(h)
        if old is not None:
            self._live_bytes -= old
            self._results.pop(h, None)
        self._sizes[h] = len(line) + 1
        self._live_bytes += len(line) + 1
        self._results[h] = body
        if self.max_bytes is not None:
            self._enforce_cap()

    # -- structure-hash memo -------------------------------------------------

    def get_structure(self, key: str) -> Optional[str]:
        """Memoized structure hash for a structure key, or None."""
        return self._structures.get(key)

    def put_structure(self, key: str, structure: str) -> None:
        if self._structures.get(key) == structure:
            return
        self._append(self.STRUCTURES, _seal({"key": key, "structure": structure}))
        self._structures[key] = structure

    # -- maintenance ---------------------------------------------------------

    def _append(self, name: str, line: str) -> None:
        with open(self.root / name, "a") as fh:
            fh.write(line + "\n")
            fh.flush()
            if self.fsync == "always":
                os.fsync(fh.fileno())
        if name == self.RESULTS:
            self._log_bytes += len(line) + 1

    def _enforce_cap(self) -> None:
        """Evict cold records past ``max_bytes``; compact once dead
        appends dominate the log (amortized O(1) per put)."""
        cap = self.max_bytes
        if cap is None:
            return
        evicted = False
        while self._live_bytes > cap and len(self._results) > 1:
            h = next(iter(self._results))  # coldest entry
            del self._results[h]
            self._live_bytes -= self._sizes.pop(h)
            self.evictions += 1
            evicted = True
        # Eviction is in-memory; the dead lines stay on disk until the
        # log doubles past the live payload (so compaction cost spreads
        # over at least as many appends as records kept).
        if evicted and self._log_bytes > max(2 * self._live_bytes, cap):
            self.compact()

    def sync(self) -> None:
        """Force both logs to stable storage (a no-op worth calling only
        in ``fsync="batch"`` mode, where appends skip the per-line fsync)."""
        for name in (self.RESULTS, self.STRUCTURES):
            path = self.root / name
            if path.exists():
                with open(path, "a") as fh:
                    os.fsync(fh.fileno())

    def compact(self) -> None:
        """Rewrite both logs with one line per live key (LRU order for
        results, so a reload reconstructs the same eviction order)."""
        for name, items in (
            (self.RESULTS, list(self._results.values())),
            (self.STRUCTURES, [
                {"key": k, "structure": v} for k, v in self._structures.items()
            ]),
        ):
            tmp = self.root / (name + ".tmp")
            with open(tmp, "w") as fh:
                for body in items:
                    payload = {k: v for k, v in body.items()
                               if k not in ("schema", "sha")}
                    fh.write(_seal(payload) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.root / name)
        self._log_bytes = self._live_bytes

    def __len__(self) -> int:
        return len(self._results)

    def hashes(self) -> list[str]:
        return list(self._results)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ResultStore {self.root} results={len(self._results)} "
                f"structures={len(self._structures)} "
                f"corrupt={self.corrupt_entries}>")
