"""Thin stdlib HTTP front-end for the sweep server (optional).

A deliberately small HTTP/1.1 layer over ``asyncio.start_server`` — no
framework, no third-party dependency — exposing the
:class:`repro.service.server.SweepServer` pipeline to remote clients:

=======  =================  ==============================================
method   path               semantics
=======  =================  ==============================================
POST     ``/submit``        body = job-spec JSON; runs the full pipeline
                            and returns the record (blocks until done)
POST     ``/status``        body = job-spec JSON; ``cached`` / ``running``
                            / ``unknown`` without triggering work
GET      ``/result/<hash>`` raw stored record for a point hash
GET      ``/metrics``       the server's metrics registry (JSON)
GET      ``/healthz``       liveness probe
=======  =================  ==============================================

Every response is JSON.  ``POST /submit`` responses carry ``"cached"``
so clients (and the CI smoke job) can assert cache behaviour end to
end.  The transport is line-protocol simple by design: one request per
connection, ``Content-Length`` framing, no keep-alive — sweep traffic
is few-large-requests, not chatty.  See ``docs/service.md``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Optional

from .jobs import JobSpec
from .server import SweepServer

__all__ = ["serve_http", "HttpSweepService"]

_MAX_BODY = 16 * 1024 * 1024


def _json_bytes(obj: Any) -> bytes:
    return json.dumps(obj, sort_keys=True).encode()


def _response(status: str, body: bytes,
              content_type: str = "application/json") -> bytes:
    head = (f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode() + body


class HttpSweepService:
    """One listening socket bound to one :class:`SweepServer`."""

    def __init__(self, server: SweepServer, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.server = server
        self.host = host
        self.port = port
        self._asyncio_server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the (host, actual port) pair."""
        self._asyncio_server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._asyncio_server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._asyncio_server is not None, "call start() first"
        async with self._asyncio_server:
            await self._asyncio_server.serve_forever()

    async def close(self) -> None:
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None

    # -- request handling ----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            out = await self._dispatch(reader)
        except Exception as exc:  # defensive: never kill the listener
            out = _response("500 Internal Server Error",
                            _json_bytes({"error": repr(exc)}))
        try:
            writer.write(out)
            await writer.drain()
        finally:
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            raise ValueError(f"malformed request line {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if length > _MAX_BODY:
            raise ValueError(f"request body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _dispatch(self, reader: asyncio.StreamReader) -> bytes:
        try:
            method, path, body = await self._read_request(reader)
        except (ValueError, asyncio.IncompleteReadError) as exc:
            return _response("400 Bad Request", _json_bytes({"error": str(exc)}))

        if method == "GET" and path == "/healthz":
            return _response("200 OK", _json_bytes({"ok": True}))
        if method == "GET" and path == "/metrics":
            return _response("200 OK", _json_bytes(self.server.metrics.as_dict()))
        if method == "GET" and path.startswith("/result/"):
            record = self.server.result_by_hash(path[len("/result/"):])
            if record is None:
                return _response("404 Not Found",
                                 _json_bytes({"error": "unknown hash"}))
            return _response("200 OK", _json_bytes(record))
        if method == "POST" and path in ("/submit", "/status"):
            try:
                spec = JobSpec.from_dict(json.loads(body.decode()))
            except (ValueError, KeyError, TypeError) as exc:
                return _response("400 Bad Request",
                                 _json_bytes({"error": f"bad job spec: {exc}"}))
            if path == "/status":
                return _response("200 OK",
                                 _json_bytes({"status": self.server.status(spec)}))
            result = await self.server.submit(spec)
            doc: dict[str, Any] = dict(
                self.server.result_by_hash(result.hash) or {}
            )
            doc["cached"] = result.cached
            return _response("200 OK", _json_bytes(doc))
        return _response("404 Not Found", _json_bytes({"error": "no such route"}))


async def serve_http(server: SweepServer, host: str = "127.0.0.1",
                     port: int = 8642) -> HttpSweepService:
    """Start an HTTP front-end; caller keeps the loop alive."""
    svc = HttpSweepService(server, host, port)
    await svc.start()
    return svc
