"""Synchronous client API over the sweep service.

:class:`SweepClient` is what benchmarks and notebooks use.  Two modes:

* **in-process** (default): the client owns a private event loop, a
  :class:`~repro.service.store.ResultStore` and a
  :class:`~repro.service.server.SweepServer` — submitting is a plain
  function call, no sockets, and a warm store makes re-runs
  near-instant.  ``benchmarks/bench_resilience.py`` and
  ``bench_engine_scale.py`` are thin clients in this mode.
* **remote**: pass ``url="http://host:port"`` to talk to a running
  ``python -m repro.service serve`` over the stdlib ``http.client``.

Both modes return :class:`~repro.service.server.JobResult` objects whose
``report`` is a fully reconstructed
:class:`~repro.runtime.simulator.SimReport` — bit-identical to a fresh
run (the determinism contract of :mod:`repro.service.runner`).
``simulations_run`` exposes the server's ``service.simulations`` obs
counter so callers can assert "zero new simulations" on warm caches.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
from collections.abc import Sequence
from typing import Any, Optional, Union, cast
from urllib.parse import urlsplit

from .jobs import JobSpec
from .runner import report_from_dict
from .server import JobResult, SweepServer
from .store import ResultStore

__all__ = ["SweepClient", "default_store_path"]

#: Environment variable naming a persistent store directory for the
#: thin-client benchmarks (unset -> a fresh per-process temp store).
STORE_ENV = "REPRO_SWEEP_STORE"


def default_store_path() -> str:
    """``$REPRO_SWEEP_STORE`` or a fresh temp directory (cold cache)."""
    path = os.environ.get(STORE_ENV)
    if path:
        return path
    return tempfile.mkdtemp(prefix="repro-sweep-")


class SweepClient:
    """Submit sweep points and read results, synchronously."""

    def __init__(
        self,
        store: Union[ResultStore, os.PathLike[str], str, None] = None,
        url: Optional[str] = None,
        workers: int = 0,
    ) -> None:
        self.url = url
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.server: Optional[SweepServer] = None
        if url is None:
            if not isinstance(store, ResultStore):
                store = ResultStore(store if store is not None
                                    else default_store_path())
            self.server = SweepServer(store, workers=workers)
            self._loop = asyncio.new_event_loop()

    # -- core calls ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobResult:
        """Resolve one point (cache hit or fresh simulation)."""
        if self.url is not None:
            return self._http_submit(spec)
        assert self._loop is not None and self.server is not None
        return self._loop.run_until_complete(self.server.submit(spec))

    def sweep(self, specs: Sequence[JobSpec]) -> list[JobResult]:
        """Resolve many points; in-process mode runs them concurrently."""
        if self.url is not None:
            return [self._http_submit(s) for s in specs]
        assert self._loop is not None and self.server is not None
        return self._loop.run_until_complete(self.server.sweep(specs))

    def status(self, spec: JobSpec) -> str:
        if self.url is not None:
            doc = self._http_json("POST", "/status",
                                  json.dumps(spec.to_dict()).encode())
            return str(doc["status"])
        assert self.server is not None
        return self.server.status(spec)

    def result_by_hash(self, point_hash: str) -> Optional[dict[str, Any]]:
        if self.url is not None:
            try:
                return self._http_json("GET", f"/result/{point_hash}")
            except LookupError:
                return None
        assert self.server is not None
        return self.server.result_by_hash(point_hash)

    def simulations_run(self) -> int:
        """Simulations the backing server actually executed (obs counter)."""
        if self.url is not None:
            doc = self._http_json("GET", "/metrics")
            values = doc.get("service.simulations", {}).get("values", {})
            return int(sum(values.values()))
        assert self.server is not None
        return self.server.simulations()

    def close(self) -> None:
        if self._loop is not None:
            if self.server is not None:
                self._loop.run_until_complete(self.server.close())
            self._loop.close()
            self._loop = None

    def __enter__(self) -> SweepClient:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- HTTP transport ------------------------------------------------------

    def _http_json(self, method: str, path: str,
                   body: Optional[bytes] = None) -> dict[str, Any]:
        import http.client

        assert self.url is not None
        parts = urlsplit(self.url)
        conn = http.client.HTTPConnection(parts.hostname,
                                          parts.port or 80, timeout=600)
        try:
            headers = {"Content-Type": "application/json"}
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            payload = resp.read()
            if resp.status == 404:
                raise LookupError(path)
            if resp.status != 200:
                raise RuntimeError(
                    f"{method} {path} -> {resp.status}: {payload[:200]!r}"
                )
            return cast("dict[str, Any]", json.loads(payload.decode()))
        finally:
            conn.close()

    def _http_submit(self, spec: JobSpec) -> JobResult:
        doc = self._http_json("POST", "/submit",
                              json.dumps(spec.to_dict()).encode())
        report = doc.get("report")
        return JobResult(
            hash=doc["hash"],
            spec=spec,
            status=doc["status"],
            cached=bool(doc.get("cached")),
            report=None if report is None else report_from_dict(report),
            timings=dict(doc.get("timings", {})),
            metrics=doc.get("metrics"),
            error=doc.get("error"),
        )
