"""Job specifications for the sweep service.

A :class:`JobSpec` is the *complete*, JSON-serializable description of one
simulation point: algorithm, problem size, distribution, machine model,
engine choice, simulator options and (optionally) a seeded fault plan.
Two specs that serialize to the same canonical JSON are the same point —
the canonical form is the input of the content hash
(:mod:`repro.service.hashing`), so every field here participates in cache
invalidation.  See ``docs/service.md`` ("Job schema").

Distributions, machines and fault plans travel as plain dicts with a
``kind``/flat-field layout rather than pickled objects: the store must be
readable across processes and sessions, and the hash must not depend on
interpreter details.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, Optional, Union

from ..config import KernelModel, MachineSpec, NetworkSpec
from ..distributions import (
    BlockCyclic2D,
    Distribution,
    RowCyclic1D,
    SymmetricBlockCyclic,
    TwoDotFiveD,
)
from ..topology import topology_from_spec, topology_to_spec
from ..runtime.faults import (
    FaultPlan,
    LinkDegradation,
    SlowdownWindow,
    WorkerCrash,
)

__all__ = [
    "JobSpec",
    "canonical_json",
    "dist_to_spec",
    "dist_from_spec",
    "machine_to_spec",
    "machine_from_spec",
    "faults_to_spec",
    "faults_from_spec",
]

#: Algorithms the runner knows how to build graphs for.
ALGORITHMS = ("cholesky", "lu")
ENGINES = ("compiled", "object")
#: Serve-loop kernels of the compiled engine (see
#: :func:`repro.runtime.simulator.simulate_compiled`).  "auto" resolves
#: per worker — numba-jitted when importable, numpy otherwise — with
#: bit-identical results either way, so it is safe inside content-
#: addressed caching.
KERNELS = ("auto", "numpy", "jit", "interp")


def _policy_names() -> tuple[str, ...]:
    # Deferred import: repro.schedulers pulls in the graph/compiled stack,
    # which this module must not load at import time (the service CLI
    # imports jobs for --help before any heavy work).
    from ..schedulers import POLICIES

    return tuple(sorted(POLICIES))


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, repr-exact floats."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# --------------------------------------------------------------------------
# distribution <-> spec dict
# --------------------------------------------------------------------------

def dist_to_spec(dist: Union[Distribution, TwoDotFiveD]) -> dict[str, Any]:
    """Serialize a distribution to a plain, canonical dict."""
    if isinstance(dist, SymmetricBlockCyclic):
        return {"kind": "sbc", "r": dist.r, "variant": dist.variant}
    if isinstance(dist, BlockCyclic2D):
        return {"kind": "bc2d", "p": dist.p, "q": dist.q}
    if isinstance(dist, RowCyclic1D):
        return {"kind": "row1d", "P": dist.num_nodes}
    if isinstance(dist, TwoDotFiveD):
        return {"kind": "2.5d", "base": dist_to_spec(dist.base), "c": dist.c}
    raise TypeError(
        f"cannot serialize distribution {dist!r}; supported kinds: "
        "sbc, bc2d, row1d, 2.5d"
    )


def dist_from_spec(spec: Mapping[str, Any]) -> Union[Distribution, TwoDotFiveD]:
    """Rebuild a distribution from its spec dict."""
    kind = spec.get("kind")
    if kind == "sbc":
        return SymmetricBlockCyclic(int(spec["r"]),
                                    variant=str(spec.get("variant", "extended")))
    if kind == "bc2d":
        return BlockCyclic2D(int(spec["p"]), int(spec["q"]))
    if kind == "row1d":
        return RowCyclic1D(int(spec["P"]))
    if kind == "2.5d":
        base = dist_from_spec(spec["base"])
        if isinstance(base, TwoDotFiveD):
            raise ValueError("2.5d base must be a 2D distribution")
        return TwoDotFiveD(base, int(spec["c"]))
    raise ValueError(f"unknown distribution kind {kind!r}")


# --------------------------------------------------------------------------
# machine <-> spec dict
# --------------------------------------------------------------------------

def machine_to_spec(machine: MachineSpec) -> dict[str, Any]:
    """Flatten a :class:`repro.config.MachineSpec` to a canonical dict.

    The interconnect topology (when attached) is embedded under
    ``"topology"`` via :func:`repro.topology.topology_to_spec` — it
    changes simulated timings, so it must reach the config digest;
    ``topology=None`` serializes as ``None`` and reproduces the historic
    spec shape plus one constant key.
    """
    return {
        "nodes": machine.nodes,
        "cores": machine.cores,
        "bandwidth": machine.network.bandwidth,
        "latency": machine.network.latency,
        "peak_flops": machine.kernel.peak_flops,
        "efficiency": machine.kernel.efficiency,
        "b_half": machine.kernel.b_half,
        "overhead": machine.kernel.overhead,
        "element_size": machine.element_size,
        "topology": (None if machine.topology is None
                     else topology_to_spec(machine.topology)),
    }


def machine_from_spec(spec: Mapping[str, Any]) -> MachineSpec:
    """Rebuild a :class:`MachineSpec` from its flattened dict."""
    tspec = spec.get("topology")
    return MachineSpec(
        nodes=int(spec["nodes"]),
        cores=int(spec["cores"]),
        network=NetworkSpec(bandwidth=float(spec["bandwidth"]),
                            latency=float(spec["latency"])),
        kernel=KernelModel(peak_flops=float(spec["peak_flops"]),
                           efficiency=float(spec["efficiency"]),
                           b_half=float(spec["b_half"]),
                           overhead=float(spec["overhead"])),
        element_size=int(spec["element_size"]),
        topology=None if tspec is None else topology_from_spec(tspec),
    )


# --------------------------------------------------------------------------
# fault plan <-> spec dict
# --------------------------------------------------------------------------

def faults_to_spec(plan: Optional[FaultPlan]) -> Optional[dict[str, Any]]:
    """Serialize a :class:`FaultPlan` (None stays None)."""
    if plan is None:
        return None
    return {
        "seed": plan.seed,
        "loss_rate": plan.loss_rate,
        "retransmit_timeout": plan.retransmit_timeout,
        "slowdowns": [
            {"node": w.node, "factor": w.factor, "start": w.start, "end": w.end}
            for w in plan.slowdowns
        ],
        "links": [
            {"factor": ln.factor, "src": ln.src, "dst": ln.dst,
             "start": ln.start, "end": ln.end}
            for ln in plan.links
        ],
        "crashes": [
            {"node": c.node, "after_tasks": c.after_tasks} for c in plan.crashes
        ],
    }


def faults_from_spec(spec: Optional[Mapping[str, Any]]) -> Optional[FaultPlan]:
    """Rebuild a :class:`FaultPlan` from its spec dict (None stays None)."""
    if spec is None:
        return None
    return FaultPlan(
        seed=int(spec.get("seed", 0)),
        loss_rate=float(spec.get("loss_rate", 0.0)),
        retransmit_timeout=float(spec.get("retransmit_timeout", 1e-3)),
        slowdowns=tuple(
            SlowdownWindow(node=int(w["node"]), factor=float(w["factor"]),
                           start=float(w.get("start", 0.0)),
                           end=float(w.get("end", float("inf"))))
            for w in spec.get("slowdowns", ())
        ),
        links=tuple(
            LinkDegradation(factor=float(ln["factor"]),
                            src=int(ln.get("src", -1)),
                            dst=int(ln.get("dst", -1)),
                            start=float(ln.get("start", 0.0)),
                            end=float(ln.get("end", float("inf"))))
            for ln in spec.get("links", ())
        ),
        crashes=tuple(
            WorkerCrash(node=int(c["node"]), after_tasks=int(c["after_tasks"]))
            for c in spec.get("crashes", ())
        ),
    )


# --------------------------------------------------------------------------
# the job spec itself
# --------------------------------------------------------------------------

def _freeze(obj: Any) -> Any:
    """Recursively convert dicts/lists to hashable tuples (for frozen specs)."""
    if isinstance(obj, Mapping):
        return tuple(sorted((k, _freeze(v)) for k, v in obj.items()))
    if isinstance(obj, (list, tuple)):
        return tuple(_freeze(v) for v in obj)
    return obj


def _thaw(obj: Any) -> Any:
    """Inverse of :func:`_freeze` for the dict/list shapes specs use."""
    if isinstance(obj, tuple):
        if obj and all(isinstance(kv, tuple) and len(kv) == 2
                       and isinstance(kv[0], str) for kv in obj):
            return {k: _thaw(v) for k, v in obj}
        return [_thaw(v) for v in obj]
    return obj


@dataclass(frozen=True)
class JobSpec:
    """One simulation point, fully described (see the module docstring).

    Build instances with :meth:`make` (accepts live ``Distribution`` /
    ``MachineSpec`` / ``FaultPlan`` objects) or :meth:`from_dict` (plain
    JSON data).  The frozen dataclass stores the dict-shaped fields in a
    frozen (tuple) form so specs are hashable; :meth:`to_dict` returns
    the canonical plain-JSON shape.
    """

    algorithm: str
    ntiles: int
    b: int
    dist: tuple[Any, ...]  # frozen dist spec
    machine: tuple[Any, ...]  # frozen machine spec
    engine: str = "compiled"
    synchronized: bool = False
    broadcast: str = "direct"
    aggregate: bool = False
    faults: Optional[tuple[Any, ...]] = None
    collect_metrics: bool = False
    #: Scheduling policy (a :data:`repro.schedulers.POLICIES` name).  Part
    #: of the config digest — sweeping policies re-simulates each point —
    #: but NOT of the structure hash: policies act at simulation time, the
    #: built graph is the same.
    policy: str = "critical-path"
    #: Compiled-engine serve-loop kernel (one of :data:`KERNELS`).  Like
    #: ``policy`` it is simulation-time only: part of the config digest,
    #: not the structure hash.  Ignored by the object engine.
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; use one of {ALGORITHMS}"
            )
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; use one of {ENGINES}"
            )
        if self.broadcast not in ("direct", "tree"):
            raise ValueError(f"unknown broadcast mode {self.broadcast!r}")
        if self.ntiles < 1 or self.b < 1:
            raise ValueError("ntiles and b must be positive")
        names = _policy_names()
        if self.policy not in names:
            raise ValueError(
                f"unknown scheduler policy {self.policy!r}; "
                f"use one of {names}"
            )
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; use one of {KERNELS}"
            )

    # -- construction -------------------------------------------------------

    @classmethod
    def make(
        cls,
        algorithm: str,
        ntiles: int,
        b: int,
        dist: Union[Distribution, TwoDotFiveD, Mapping[str, Any]],
        machine: Union[MachineSpec, Mapping[str, Any]],
        engine: str = "compiled",
        synchronized: bool = False,
        broadcast: str = "direct",
        aggregate: bool = False,
        faults: Union[FaultPlan, Mapping[str, Any], None] = None,
        collect_metrics: bool = False,
        policy: str = "critical-path",
        kernel: str = "auto",
    ) -> JobSpec:
        """Build a spec from live objects or plain dicts."""
        dspec = dist if isinstance(dist, Mapping) else dist_to_spec(dist)
        mspec = (machine if isinstance(machine, Mapping)
                 else machine_to_spec(machine))
        fspec = (faults_to_spec(faults) if isinstance(faults, FaultPlan)
                 else faults)
        return cls(
            algorithm=algorithm,
            ntiles=int(ntiles),
            b=int(b),
            dist=_freeze(dspec),
            machine=_freeze(mspec),
            engine=engine,
            synchronized=bool(synchronized),
            broadcast=broadcast,
            aggregate=bool(aggregate),
            faults=None if fspec is None else _freeze(fspec),
            collect_metrics=bool(collect_metrics),
            policy=policy,
            kernel=kernel,
        )

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> JobSpec:
        """Rebuild a spec from :meth:`to_dict` output (JSON data)."""
        return cls.make(
            algorithm=d["algorithm"],
            ntiles=d["ntiles"],
            b=d["b"],
            dist=d["dist"],
            machine=d["machine"],
            engine=d.get("engine", "compiled"),
            synchronized=d.get("synchronized", False),
            broadcast=d.get("broadcast", "direct"),
            aggregate=d.get("aggregate", False),
            faults=d.get("faults"),
            collect_metrics=d.get("collect_metrics", False),
            policy=d.get("policy", "critical-path"),
            kernel=d.get("kernel", "auto"),
        )

    # -- canonical views ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON shape; the canonical serialization of the point."""
        return {
            "algorithm": self.algorithm,
            "ntiles": self.ntiles,
            "b": self.b,
            "dist": _thaw(self.dist),
            "machine": _thaw(self.machine),
            "engine": self.engine,
            "synchronized": self.synchronized,
            "broadcast": self.broadcast,
            "aggregate": self.aggregate,
            "faults": None if self.faults is None else _thaw(self.faults),
            "collect_metrics": self.collect_metrics,
            "policy": self.policy,
            "kernel": self.kernel,
        }

    def canonical(self) -> str:
        """Canonical JSON of the full spec (the config-digest input)."""
        return canonical_json(self.to_dict())

    def structure_fields(self) -> dict[str, Any]:
        """The subset of fields the task-graph *structure* depends on.

        Everything else (machine constants, engine, simulator options,
        fault plan, scheduler policy) changes timing but not the graph's
        tasks/edges; see ``docs/service.md`` ("Content hash").
        """
        machine = _thaw(self.machine)
        return {
            "algorithm": self.algorithm,
            "ntiles": self.ntiles,
            "b": self.b,
            "dist": _thaw(self.dist),
            "element_size": machine["element_size"],
        }

    # -- live objects -------------------------------------------------------

    def distribution(self) -> Union[Distribution, TwoDotFiveD]:
        return dist_from_spec(_thaw(self.dist))

    def machine_spec(self) -> MachineSpec:
        return machine_from_spec(_thaw(self.machine))

    def fault_plan(self) -> Optional[FaultPlan]:
        return faults_from_spec(None if self.faults is None
                                else _thaw(self.faults))

    def with_(self, **changes: Any) -> JobSpec:
        """Copy with plain-field changes (dist/machine/faults take dicts)."""
        d = self.to_dict()
        d.update(changes)
        return JobSpec.from_dict(d)

    # avoid accidental use of dataclasses.replace on frozen-tuple fields
    replace = with_

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dist = _thaw(self.dist)
        return (f"JobSpec({self.algorithm} N={self.ntiles} b={self.b} "
                f"dist={dist.get('kind')} engine={self.engine})")
