"""Programmatic and command-line access to the paper's experiment sweeps.

The bench suite (``benchmarks/``) asserts the paper's claims; this module
exposes the same sweeps as plain functions returning data (for notebooks
and downstream studies) and as a small CLI:

    python -m repro.experiments list
    python -m repro.experiments fig8 --sizes 50 100 200
    python -m repro.experiments fig9 --sizes 30 60
    python -m repro.experiments theorem1 --ntiles 240
    python -m repro.experiments scaling --ntiles 72
    python -m repro.experiments breakdown --r 8 --ntiles 60
    python -m repro.experiments trace --r 8 --ntiles 40 --trace-path run.json
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .comm import (
    bc2d_cholesky_volume,
    cholesky_message_count,
    cholesky_volume_exact,
    sbc_cholesky_volume,
)
from .config import bora
from .distributions import BlockCyclic2D, SymmetricBlockCyclic, TwoDotFiveD
from .graph import build_cholesky_graph
from .runtime import critical_path_breakdown, simulate

__all__ = [
    "fig8_volumes",
    "fig9_performance",
    "theorem1_table",
    "strong_scaling",
    "spine_breakdown",
    "trace_run",
    "main",
]

B_DEFAULT = 500


def fig8_volumes(
    sizes: Sequence[int] = (25, 50, 100, 200, 400, 600), b: int = B_DEFAULT
) -> dict[str, list[float]]:
    """Figure 8 series: exact POTRF volume (GB) per tile count."""
    dists = {
        "SBC r=7": SymmetricBlockCyclic(7),
        "2DBC 5x4": BlockCyclic2D(5, 4),
        "2DBC 7x3": BlockCyclic2D(7, 3),
    }
    return {
        name: [cholesky_volume_exact(d, N, b) / 1e9 for N in sizes]
        for name, d in dists.items()
    }


def fig9_performance(
    sizes: Sequence[int] = (30, 60, 100), b: int = B_DEFAULT,
    store=None,
) -> dict[str, list[float]]:
    """Figure 9 series: simulated GFlop/s per node for the P~28 configs.

    Runs as a thin client of the sweep service
    (:class:`repro.service.SweepClient`): every point is a content-
    addressed :class:`~repro.service.JobSpec`, so re-runs against the
    same ``store`` (a path, a ``ResultStore``, or None for
    ``$REPRO_SWEEP_STORE`` / a temp directory) are pure cache hits — 0
    simulations.  Results are bit-identical to the direct ``simulate``
    calls this replaced (the engines are equality-pinned).
    """
    from .service import JobSpec, SweepClient

    configs = [
        ("2D SBC r=8", 28, SymmetricBlockCyclic(8), {}),
        ("2DBC 7x4", 28, BlockCyclic2D(7, 4), {}),
        ("2.5D SBC c=3", 24,
         TwoDotFiveD(SymmetricBlockCyclic(4, variant="basic"), 3), {}),
        ("2.5D BC c=3", 27, TwoDotFiveD(BlockCyclic2D(3, 3), 3), {}),
        ("COnfCHOX-like", 32, BlockCyclic2D(8, 4), {"synchronized": True}),
    ]
    specs = [
        JobSpec.make(algorithm="cholesky", ntiles=N, b=b, dist=dist,
                     machine=bora(P), **kw)
        for _name, P, dist, kw in configs
        for N in sizes
    ]
    client = SweepClient(store=store)
    try:
        results = client.sweep(specs)
    finally:
        client.close()
    out: dict[str, list[float]] = {}
    it = iter(results)
    for name, _P, _dist, _kw in configs:
        out[name] = [
            next(it).raise_for_status().report.gflops_per_node for _ in sizes
        ]
    return out


def theorem1_table(ntiles: int = 240) -> list[tuple[str, int, int, float]]:
    """(name, counted, formula, ratio) rows for the Theorem 1 comparison."""
    rows = []
    for r in (6, 7, 8, 9):
        d = SymmetricBlockCyclic(r)
        counted = cholesky_message_count(d, ntiles)
        formula = sbc_cholesky_volume(ntiles, r)
        rows.append((d.name, counted, int(formula), counted / formula))
    for p, q in ((5, 4), (7, 4), (6, 6)):
        d = BlockCyclic2D(p, q)
        counted = cholesky_message_count(d, ntiles)
        formula = bc2d_cholesky_volume(ntiles, p, q)
        rows.append((d.name, counted, int(formula), counted / formula))
    return rows


def strong_scaling(ntiles: int = 72, b: int = B_DEFAULT,
                   store=None) -> list[tuple[str, int, float]]:
    """Figure 11 rows: (config, P, GFlop/s per node) at fixed matrix size.

    A sweep-service thin client like :func:`fig9_performance`: pass
    ``store=`` (or set ``$REPRO_SWEEP_STORE``) to make repeat runs pure
    cache hits.
    """
    from .service import JobSpec, SweepClient

    dists = [SymmetricBlockCyclic(r) for r in (6, 7, 8, 9)]
    dists += [BlockCyclic2D(p, q) for p, q in ((4, 4), (5, 4), (7, 4), (6, 6))]
    specs = [
        JobSpec.make(algorithm="cholesky", ntiles=ntiles, b=b, dist=d,
                     machine=bora(d.num_nodes))
        for d in dists
    ]
    client = SweepClient(store=store)
    try:
        results = client.sweep(specs)
    finally:
        client.close()
    return [
        (d.name, d.num_nodes, res.raise_for_status().report.gflops_per_node)
        for d, res in zip(dists, results)
    ]


def spine_breakdown(r: int = 8, ntiles: int = 60, b: int = B_DEFAULT):
    """Realized-critical-path breakdown for SBC vs the matched 2DBC."""
    from .distributions import best_rectangle

    sbc = SymmetricBlockCyclic(r)
    bc = best_rectangle(sbc.num_nodes)
    out = {}
    for d in (sbc, bc):
        g = build_cholesky_graph(ntiles, b, d)
        rep = simulate(g, bora(d.num_nodes), trace=True)
        out[d.name] = critical_path_breakdown(g, rep)
    return out


def trace_run(r: int = 8, ntiles: int = 40, b: int = B_DEFAULT,
              trace_path: str = None):
    """One traced SBC simulation; optionally export a Perfetto JSON.

    Returns the :class:`~repro.runtime.simulator.SimReport` whose ``obs``
    attribute carries the event trace and metrics registry (see
    ``docs/observability.md``).
    """
    from .obs import write_chrome_trace

    d = SymmetricBlockCyclic(r)
    rep = simulate(build_cholesky_graph(ntiles, b, d), bora(d.num_nodes),
                   trace=True)
    if trace_path:
        write_chrome_trace(rep.obs, trace_path)
    return rep


def _print_series(series: dict[str, list[float]], sizes: Sequence[int], b: int,
                  unit: str) -> None:
    names = list(series)
    print(f"{'n':>8} " + " ".join(f"{n:>14}" for n in names))
    for i, N in enumerate(sizes):
        print(f"{N * b:>8} " + " ".join(f"{series[n][i]:>14.1f}" for n in names))
    print(f"({unit})")


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper's experiment sweeps from the command line.",
    )
    parser.add_argument("experiment",
                        choices=["list", "fig8", "fig9", "theorem1", "scaling",
                                 "breakdown", "trace"])
    parser.add_argument("--sizes", type=int, nargs="+", default=None,
                        help="tile counts N to sweep")
    parser.add_argument("--ntiles", type=int, default=None, help="tile count N")
    parser.add_argument("--b", type=int, default=B_DEFAULT, help="tile size")
    parser.add_argument("--r", type=int, default=8, help="SBC parameter r")
    parser.add_argument("--trace-path", default=None, metavar="PATH",
                        help="write a Perfetto/chrome://tracing JSON of the "
                             "traced run (trace experiment)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="sweep-service result store for fig9/scaling "
                             "(default: $REPRO_SWEEP_STORE or a temp dir)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("fig8      exact communication volumes (SBC r=7 vs 2DBC)")
        print("fig9      simulated performance at P ~ 28 (2D/2.5D, baseline)")
        print("theorem1  counted volumes vs the closed forms")
        print("scaling   strong scaling across P = 15..36")
        print("breakdown realized-critical-path analysis, SBC vs 2DBC")
        print("trace     traced simulation: metrics summary + optional "
              "--trace-path Perfetto export")
        return 0
    if args.experiment == "fig8":
        sizes = args.sizes or [25, 50, 100, 200, 400, 600]
        _print_series(fig8_volumes(sizes, args.b), sizes, args.b, "GB")
        return 0
    if args.experiment == "fig9":
        sizes = args.sizes or [30, 60]
        _print_series(fig9_performance(sizes, args.b, store=args.store),
                      sizes, args.b, "GFlop/s per node")
        return 0
    if args.experiment == "theorem1":
        for name, counted, formula, ratio in theorem1_table(args.ntiles or 240):
            print(f"{name:>20} counted {counted:>9} formula {formula:>9} "
                  f"ratio {ratio:.3f}")
        return 0
    if args.experiment == "scaling":
        for name, P, gf in strong_scaling(args.ntiles or 72, args.b,
                                          store=args.store):
            print(f"{name:>18} P={P:<3} {gf:>8.1f} GFlop/s/node")
        return 0
    if args.experiment == "breakdown":
        for name, bd in spine_breakdown(args.r, args.ntiles or 60, args.b).items():
            print(f"{name}: {bd}")
        return 0
    if args.experiment == "trace":
        rep = trace_run(args.r, args.ntiles or 40, args.b, args.trace_path)
        print(rep)
        print(rep.obs.metrics.summary())
        if args.trace_path:
            print(f"wrote {args.trace_path} — open it at https://ui.perfetto.dev "
                  "or chrome://tracing")
        return 0
    return 1  # pragma: no cover - argparse guards choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
