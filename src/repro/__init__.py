"""repro — reproduction of "Symmetric Block-Cyclic Distribution: Fewer
Communications Leads to Faster Dense Cholesky Factorization" (SC 2022).

Public surface:

* distributions: :class:`BlockCyclic2D`, :class:`SymmetricBlockCyclic`,
  :class:`TwoDotFiveD`, :class:`RowCyclic1D`;
* task graphs for POTRF / POSV / POTRI (2D and 2.5D);
* exact communication counting plus the paper's closed forms and bounds;
* three runtimes: numeric local execution, a discrete-event cluster
  simulator, and a multiprocessing distributed executor;
* the high-level helpers in :mod:`repro.api`.
"""

from . import (
    comm,
    config,
    distributions,
    graph,
    kernels,
    obs,
    ooc,
    runtime,
    service,
    tiles,
)
from .api import (
    cholesky,
    lu,
    communication_volume,
    inverse,
    simulate_cholesky,
    solve,
)
from .config import KernelModel, MachineSpec, NetworkSpec, bora, laptop
from .distributions import (
    BlockCyclic2D,
    Distribution,
    RowCyclic1D,
    SymmetricBlockCyclic,
    TwoDotFiveD,
    best_rectangle,
)
from .tiles import TileGrid

__version__ = "1.0.0"

__all__ = [
    "comm",
    "config",
    "distributions",
    "graph",
    "kernels",
    "obs",
    "ooc",
    "runtime",
    "service",
    "tiles",
    "cholesky",
    "lu",
    "solve",
    "inverse",
    "communication_volume",
    "simulate_cholesky",
    "MachineSpec",
    "NetworkSpec",
    "KernelModel",
    "bora",
    "laptop",
    "Distribution",
    "BlockCyclic2D",
    "SymmetricBlockCyclic",
    "TwoDotFiveD",
    "RowCyclic1D",
    "best_rectangle",
    "TileGrid",
    "__version__",
]
