"""Machine and network models used by the runtime simulator.

The paper's experiments run on the *bora* cluster of PlaFRIM: 42 nodes of
36 Intel Xeon Skylake Gold 6240 cores, connected with a 100 Gb/s OmniPath
network.  Per-core double-precision peak is estimated in the paper as
2.6 GHz x 8 DP flop/cycle x 2 (FMA) = 41.6 GFlop/s, i.e. 1497.6 GFlop/s per
36-core node.  StarPU reserves one core for task management and one for MPI
communications, leaving 34 cores for computation (1414.4 GFlop/s).

This module provides dataclasses describing such a platform, a ``bora()``
preset matching those constants, and the tile-kernel efficiency model used
to turn flop counts into simulated task durations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from .topology import Topology

__all__ = [
    "NetworkSpec",
    "BORA_EFFECTIVE_NETWORK",
    "BORA_WIRE_NETWORK",
    "KernelModel",
    "MachineSpec",
    "bora",
    "laptop",
]


@dataclass(frozen=True)
class NetworkSpec:
    """Point-to-point network model.

    Each node owns one full-duplex port: an egress channel and an ingress
    channel, each of bandwidth ``bandwidth`` bytes/s.  A transfer of ``s``
    bytes from node A to node B occupies A's egress and B's ingress channels
    for ``s / bandwidth`` seconds after a fixed ``latency``.  Transfers
    through distinct (source, destination) pairs proceed in parallel; this
    is the classical one-port (per direction) bandwidth model and matches
    the per-tile point-to-point MPI transfers performed by StarPU in the
    paper (no collectives, no aggregation).
    """

    bandwidth: float = 12.5e9  # bytes/s (100 Gb/s OmniPath)
    latency: float = 1.5e-6  # seconds per message

    def transfer_time(self, nbytes: float) -> float:
        """Occupancy time of one channel for a message of ``nbytes``:
        ``latency + nbytes / bandwidth``, the analytic single-message
        cost (the simulator serves messages in quanta, charging the
        latency once, on the first quantum — same total).

        Which *constants* feed this model is a per-experiment choice:
        :data:`BORA_EFFECTIVE_NETWORK` (4 GB/s, 30 us — what StarPU-MPI
        actually achieves end to end, the default of :func:`bora`) for
        reproducing the paper's measured regime, or
        :data:`BORA_WIRE_NETWORK` (12.5 GB/s, 1.5 us — the raw OmniPath
        fabric) for wire-level what-if studies via
        ``bora(P, effective_network=False)``.  See
        ``docs/network-model.md`` ("Calibration").
        """
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class KernelModel:
    """Converts per-tile flop counts into task durations.

    A tile kernel of tile size ``b`` does not reach the core's peak rate:
    small tiles pay a relatively larger O(b^2) memory-traffic and call
    overhead.  We model the achieved rate with a surface-to-volume
    correction,

        rate(b) = peak * efficiency / (1 + b_half / b),

    which saturates for large ``b`` and collapses for small ``b`` --
    reproducing the shape of the paper's Figure 7 (near-peak performance
    as soon as b >= 500 on bora).  ``overhead`` adds a fixed per-task cost
    (runtime submission/scheduling), which penalizes very small tiles.
    """

    peak_flops: float = 41.6e9  # per-core DP peak (bora: 2.6 GHz * 16)
    efficiency: float = 0.92  # large-tile fraction of peak (MKL DGEMM-like)
    b_half: float = 55.0  # tile size at which rate halves vs. asymptote
    overhead: float = 4e-6  # per-task fixed runtime cost (seconds)

    def rate(self, b: int) -> float:
        """Achieved flop rate (flop/s) for a kernel on a ``b x b`` tile."""
        if b <= 0:
            raise ValueError(f"tile size must be positive, got {b}")
        return self.peak_flops * self.efficiency / (1.0 + self.b_half / b)

    def duration(self, flops: float, b: int) -> float:
        """Simulated duration of a task performing ``flops`` on tiles of size ``b``."""
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        return self.overhead + flops / self.rate(b)


@dataclass(frozen=True)
class MachineSpec:
    """A cluster of ``nodes`` nodes with ``cores`` workers each.

    By default the interconnect is the scalar clique of ``network``
    (uniform bandwidth/latency between every pair) and every node is
    identical.  An optional :class:`repro.topology.Topology` replaces
    the clique with an arbitrary routed interconnect and may overlay
    per-node speed/core heterogeneity; ``topology=None`` keeps today's
    behaviour bit-exactly.  ``network`` stays authoritative for the
    kernel/efficiency model either way.
    """

    nodes: int
    cores: int = 34
    network: NetworkSpec = field(default_factory=NetworkSpec)
    kernel: KernelModel = field(default_factory=KernelModel)
    element_size: int = 8  # double precision
    #: Optional interconnect topology + heterogeneity (None = the scalar
    #: clique model of ``network``, bit-identical to the pre-topology
    #: engines).
    topology: Optional[Topology] = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"need at least one node, got {self.nodes}")
        if self.cores < 1:
            raise ValueError(f"need at least one core per node, got {self.cores}")
        if self.topology is not None and self.topology.num_nodes != self.nodes:
            raise ValueError(
                f"topology has {self.topology.num_nodes} nodes "
                f"but machine has {self.nodes}")

    def cores_for(self, node: int) -> int:
        """Worker count of ``node`` (topology override or the uniform value)."""
        t = self.topology
        if t is not None and t.cores:
            return t.cores[node]
        return self.cores

    def speed_for(self, node: int) -> float:
        """Compute-speed multiplier of ``node`` (1.0 when homogeneous)."""
        t = self.topology
        if t is not None and t.speed:
            return t.speed[node]
        return 1.0

    @property
    def heterogeneous(self) -> bool:
        """True when the topology declares per-node speed/core overrides."""
        t = self.topology
        return t is not None and (bool(t.speed) or bool(t.cores))

    def with_nodes(self, nodes: int) -> "MachineSpec":
        """Copy of this spec with a different node count."""
        return replace(self, nodes=nodes)

    @property
    def node_peak_flops(self) -> float:
        """Aggregate peak of the compute workers of one node."""
        return self.cores * self.kernel.peak_flops

    def tile_bytes(self, b: int) -> int:
        """Size in bytes of one ``b x b`` tile."""
        return b * b * self.element_size

    def gflops_per_node(self, flops: float, seconds: float) -> float:
        """The paper's figure of merit: F = #flops / (t * P), in GFlop/s."""
        if seconds <= 0:
            raise ValueError(f"duration must be positive, got {seconds}")
        return flops / (seconds * self.nodes) / 1e9


#: Effective per-node point-to-point throughput achieved by StarPU-MPI on
#: a 100 Gb/s link.  The wire moves 12.5 GB/s, but the single communication
#: core, per-message processing, rendezvous handshakes and memory copies
#: derate the achieved rate by roughly 3x; the 30 us latency is likewise an
#: end-to-end software figure, not the fabric's 1 us.  Calibrated so the
#: simulated 2DBC baseline tracks the paper's per-node GFlop/s regime
#: (see EXPERIMENTS.md for the calibration discussion).
BORA_EFFECTIVE_NETWORK = NetworkSpec(bandwidth=4e9, latency=30e-6)

#: The raw fabric numbers, for wire-level what-if studies.
BORA_WIRE_NETWORK = NetworkSpec(bandwidth=12.5e9, latency=1.5e-6)


def bora(nodes: int, effective_network: bool = True) -> MachineSpec:
    """The paper's *bora* platform with ``nodes`` nodes.

    36 cores per node, 2 reserved by StarPU (1 task management + 1 MPI), so
    34 compute workers; 41.6 GFlop/s per-core peak.  By default the network
    uses :data:`BORA_EFFECTIVE_NETWORK` (what StarPU-MPI actually achieves);
    pass ``effective_network=False`` for raw 100 Gb/s wire parameters.
    """
    net = BORA_EFFECTIVE_NETWORK if effective_network else BORA_WIRE_NETWORK
    return MachineSpec(nodes=nodes, cores=34, network=net)


def laptop(nodes: int = 4, cores: int = 4) -> MachineSpec:
    """A small platform preset convenient for tests and examples."""
    return MachineSpec(
        nodes=nodes,
        cores=cores,
        network=NetworkSpec(bandwidth=1e9, latency=10e-6),
        kernel=KernelModel(peak_flops=5e9),
    )
