"""High-level one-call API.

Convenience front-end tying together the tile layer, graph builders,
communication counters and runtimes:

>>> import repro
>>> dist = repro.SymmetricBlockCyclic(r=4)
>>> L, info = repro.cholesky(n=256, b=32, dist=dist)          # real numerics
>>> gb = repro.communication_volume(dist, ntiles=64, b=500)   # counted volume
>>> rep = repro.simulate_cholesky(ntiles=32, b=500, dist=dist,
...                               machine=repro.bora(dist.num_nodes))
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .config import MachineSpec, bora
from .comm.counter import CommStats, count_communications
from .comm.fast_counter import cholesky_volume_exact
from .distributions.base import Distribution
from .obs import Recorder, write_chrome_trace
from .distributions.row_cyclic import RowCyclic1D
from .distributions.twod5 import TwoDotFiveD
from .graph.cholesky import build_cholesky_graph, build_cholesky_graph_25d
from .graph.lu import build_lu_graph
from .graph.inversion import build_potri_graph
from .graph.solve import build_posv_graph
from .runtime.execution import InitialDataSpec
from .runtime.local import (
    assemble_lower,
    assemble_rhs,
    assemble_symmetric,
    execute_graph,
)
from .runtime.distributed import execute_distributed
from .runtime.simulator import SimReport, simulate
from .tiles.generation import random_rhs_dense, random_spd_dense
from .tiles.layout import TileGrid

__all__ = [
    "cholesky",
    "solve",
    "inverse",
    "lu",
    "communication_volume",
    "simulate_cholesky",
]


def _grid(n: int, b: int) -> TileGrid:
    grid = TileGrid(n=n, b=b)
    if not grid.is_uniform():
        raise ValueError(
            f"tile size {b} must divide n={n} (the paper's algorithms use "
            "uniform tiles; pad the matrix or adjust b)"
        )
    return grid


def _run(graph, spec: InitialDataSpec, runtime: str, num_threads: int,
         recorder: Optional[Recorder] = None):
    if runtime == "local":
        return execute_graph(graph, spec, recorder=recorder)
    if runtime == "threads":
        return execute_graph(graph, spec, num_threads=num_threads or 4,
                             recorder=recorder)
    if runtime == "distributed":
        return execute_distributed(graph, spec, recorder=recorder).store
    raise ValueError(f"unknown runtime {runtime!r}; use local/threads/distributed")


def cholesky(
    n: int,
    b: int,
    dist: Distribution,
    seed: int = 0,
    runtime: str = "local",
    num_threads: int = 0,
    a: Optional[np.ndarray] = None,
    recorder: Optional[Recorder] = None,
) -> tuple[np.ndarray, dict]:
    """Factor an SPD matrix; returns (L, info).

    By default a seeded random SPD matrix is generated (and returned in
    ``info["a"]``); pass ``a`` to factor your own dense SPD matrix.
    ``info`` also carries the task count and the exact communication stats
    of the run under ``dist``.  Pass a :class:`repro.obs.Recorder` as
    ``recorder`` to collect wall-clock task events from the runtime.
    """
    grid = _grid(n, b)
    graph = build_cholesky_graph(grid.ntiles, b, dist)
    spec = InitialDataSpec(grid, seed=seed, matrix=a)
    store = _run(graph, spec, runtime, num_threads, recorder)
    L = assemble_lower(graph, store, grid)
    info = {
        "a": np.asarray(a, dtype=np.float64) if a is not None
        else random_spd_dense(n, seed=seed, b=b),
        "num_tasks": len(graph),
        "comm": count_communications(graph),
    }
    return L, info


def solve(
    n: int,
    b: int,
    dist: Distribution,
    rhs_dist: Optional[Distribution] = None,
    width: int = 0,
    seed: int = 0,
    runtime: str = "local",
    num_threads: int = 0,
    a: Optional[np.ndarray] = None,
    rhs: Optional[np.ndarray] = None,
    recorder: Optional[Recorder] = None,
) -> tuple[np.ndarray, dict]:
    """POSV: solve A x = B for SPD A; returns (x, info).

    Seeded random A and B by default; pass ``a`` (dense SPD) and/or
    ``rhs`` (dense ``(n, width)``) to solve your own system.
    """
    grid = _grid(n, b)
    if rhs is not None:
        width = np.asarray(rhs).shape[1]
    width = width if width > 0 else b
    if rhs_dist is None:
        rhs_dist = RowCyclic1D(dist.num_nodes)
    graph = build_posv_graph(grid.ntiles, b, dist, rhs_dist, width=width)
    spec = InitialDataSpec(grid, seed=seed, width=width, matrix=a, rhs=rhs)
    store = _run(graph, spec, runtime, num_threads, recorder)
    x = assemble_rhs(graph, store, grid, width)
    info = {
        "a": np.asarray(a, dtype=np.float64) if a is not None
        else random_spd_dense(n, seed=seed, b=b),
        "b": np.asarray(rhs, dtype=np.float64) if rhs is not None
        else random_rhs_dense(n, width, seed=seed, b=b),
        "num_tasks": len(graph),
        "comm": count_communications(graph),
    }
    return x, info


def inverse(
    n: int,
    b: int,
    dist: Distribution,
    trtri_dist: Optional[Distribution] = None,
    seed: int = 0,
    runtime: str = "local",
    num_threads: int = 0,
    a: Optional[np.ndarray] = None,
    recorder: Optional[Recorder] = None,
) -> tuple[np.ndarray, dict]:
    """POTRI: invert the seeded SPD matrix; returns (A^{-1}, info).

    Pass ``trtri_dist`` to use the paper's remapping strategy (TRTRI under
    a different distribution, with redistribution before and after).
    """
    grid = _grid(n, b)
    graph = build_potri_graph(grid.ntiles, b, dist, trtri_dist=trtri_dist)
    spec = InitialDataSpec(grid, seed=seed, matrix=a)
    store = _run(graph, spec, runtime, num_threads, recorder)
    inv = assemble_symmetric(graph, store, grid)
    info = {
        "a": np.asarray(a, dtype=np.float64) if a is not None
        else random_spd_dense(n, seed=seed, b=b),
        "num_tasks": len(graph),
        "comm": count_communications(graph),
    }
    return inv, info


def lu(
    n: int,
    b: int,
    dist: Distribution,
    seed: int = 0,
    runtime: str = "local",
    num_threads: int = 0,
    recorder: Optional[Recorder] = None,
) -> tuple[np.ndarray, dict]:
    """LU factorization without pivoting of a seeded diagonally-dominant
    matrix; returns (packed LU, info).  The packed result holds the strict
    lower part of the unit L factor and the full U factor, LAPACK-style.
    """
    grid = _grid(n, b)
    graph = build_lu_graph(grid.ntiles, b, dist)
    spec = InitialDataSpec(grid, seed=seed)
    store = _run(graph, spec, runtime, num_threads, recorder)
    from .runtime.local import final_versions

    packed = np.zeros((n, n))
    for (_name, i, j), key in final_versions(graph).items():
        packed[grid.row_span(i), grid.row_span(j)] = store[key]
    a = np.zeros((n, n))
    for key, (_home, desc) in graph.initial.items():
        if desc == "lu":
            a[grid.row_span(key.i), grid.row_span(key.j)] = spec.materialize(key, desc)
    info = {
        "a": a,
        "num_tasks": len(graph),
        "comm": count_communications(graph),
    }
    return packed, info


def communication_volume(dist: Distribution, ntiles: int, b: int) -> float:
    """Exact POTRF communication volume in GB for ``ntiles`` tiles of size b."""
    return cholesky_volume_exact(dist, ntiles, b) / 1e9


def simulate_cholesky(
    ntiles: int,
    b: int,
    dist=None,
    dist25: Optional[TwoDotFiveD] = None,
    machine: Optional[MachineSpec] = None,
    synchronized: bool = False,
    broadcast: str = "direct",
    aggregate: bool = False,
    trace: bool = False,
    trace_path: Optional[str] = None,
    recorder: Optional[Recorder] = None,
) -> SimReport:
    """Simulated POTRF run; pass either a 2D ``dist`` or a ``dist25``.

    ``broadcast`` / ``aggregate`` select the simulator's communication
    optimizations (see :func:`repro.runtime.simulator.simulate`).

    Observability (see ``docs/observability.md``): ``trace=True`` records
    per-task and per-message events, returned on ``SimReport.obs``
    together with the run's metrics; ``trace_path=`` additionally writes
    a Perfetto/``chrome://tracing``-loadable JSON there (and implies
    ``trace``); ``recorder=`` supplies your own
    :class:`repro.obs.Recorder` to accumulate across runs.
    """
    if (dist is None) == (dist25 is None):
        raise ValueError("pass exactly one of dist / dist25")
    if dist25 is not None:
        graph = build_cholesky_graph_25d(ntiles, b, dist25)
        P = dist25.num_nodes
    else:
        graph = build_cholesky_graph(ntiles, b, dist)
        P = dist.num_nodes
    if machine is None:
        machine = bora(P)
    report = simulate(
        graph,
        machine,
        synchronized=synchronized,
        broadcast=broadcast,
        aggregate=aggregate,
        trace=trace or trace_path is not None,
        recorder=recorder,
    )
    if trace_path is not None:
        write_chrome_trace(report.obs, trace_path)
    return report
