"""Dense (non-tiled) reference implementations.

Used by the test suite to validate every tiled algorithm and runtime: the
tiled result, assembled back to a dense array, must match these references
computed with SciPy on the full matrix.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

__all__ = [
    "cholesky_reference",
    "posv_reference",
    "trtri_reference",
    "potri_reference",
]


def cholesky_reference(a: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor of a dense SPD matrix."""
    return scipy.linalg.cholesky(a, lower=True, check_finite=False)


def posv_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solution of A x = B for SPD A."""
    c, low = scipy.linalg.cho_factor(a, lower=True, check_finite=False)
    return scipy.linalg.cho_solve((c, low), b, check_finite=False)


def trtri_reference(l: np.ndarray) -> np.ndarray:
    """Inverse of a dense lower-triangular matrix."""
    n = l.shape[0]
    return scipy.linalg.solve_triangular(
        np.tril(l), np.eye(n), lower=True, check_finite=False
    )


def potri_reference(a: np.ndarray) -> np.ndarray:
    """Inverse of a dense SPD matrix via its Cholesky factorization."""
    l = cholesky_reference(a)
    linv = trtri_reference(l)
    return linv.T @ linv
