"""Floating-point operation counts.

Per-kernel counts follow the standard LAPACK working notes conventions
(real double precision).  The per-operation totals are the quantities used
in the paper's figure of merit ``F = #flops / (t * P)``.
"""

from __future__ import annotations

__all__ = [
    "KERNEL_FLOPS",
    "kernel_flops",
    "potrf_flops",
    "trsm_flops",
    "syrk_flops",
    "gemm_flops",
    "trtri_flops",
    "lauum_flops",
    "trmm_flops",
    "cholesky_flops",
    "lu_total_flops",
    "posv_flops",
    "potri_flops",
]


def potrf_flops(b: int) -> float:
    """Cholesky of a b x b tile: b^3/3 + b^2/2 + b/6."""
    return b**3 / 3.0 + b**2 / 2.0 + b / 6.0


def trsm_flops(b: int, w: int = 0) -> float:
    """Triangular solve of a (b x w) block against a b x b triangle: b^2 w."""
    return float(b * b * (w if w > 0 else b))


def syrk_flops(b: int) -> float:
    """Symmetric rank-b update of a b x b tile: b^2 (b + 1)."""
    return float(b * b * (b + 1))


def gemm_flops(b: int, w: int = 0) -> float:
    """General b x b x w tile multiply-accumulate: 2 b^2 w."""
    return float(2 * b * b * (w if w > 0 else b))


def trtri_flops(b: int) -> float:
    """Inversion of a b x b triangular tile: b^3/3 + 2b/3 (LAWN 41)."""
    return b**3 / 3.0 + 2.0 * b / 3.0


def lauum_flops(b: int) -> float:
    """L^T L product of a b x b triangular tile: b^3/3 + b^2/2 + b/6."""
    return b**3 / 3.0 + b**2 / 2.0 + b / 6.0


def trmm_flops(b: int, w: int = 0) -> float:
    """Triangular b x b times (b x w) multiply: b^2 w."""
    return float(b * b * (w if w > 0 else b))


#: Flop count per kernel name as used by the task graphs; each maps
#: (tile size b, rhs width w) -> flops.
KERNEL_FLOPS = {
    "POTRF": lambda b, w=0: potrf_flops(b),
    "TRSM": lambda b, w=0: trsm_flops(b),
    "SYRK": lambda b, w=0: syrk_flops(b),
    "GEMM": lambda b, w=0: gemm_flops(b),
    "TRSM_SOLVE": lambda b, w=0: trsm_flops(b, w),
    "TRSM_SOLVE_T": lambda b, w=0: trsm_flops(b, w),
    "GEMM_RHS": lambda b, w=0: gemm_flops(b, w),
    "GEMM_RHS_T": lambda b, w=0: gemm_flops(b, w),
    "TRTRI": lambda b, w=0: trtri_flops(b),
    "TRSM_RINV": lambda b, w=0: trsm_flops(b),
    "TRSM_LINV": lambda b, w=0: trsm_flops(b),
    "GEMM_INV": lambda b, w=0: gemm_flops(b),
    "TRMM": lambda b, w=0: trmm_flops(b),
    "LAUUM": lambda b, w=0: lauum_flops(b),
    "SYRK_T": lambda b, w=0: syrk_flops(b),
    "GEMM_T": lambda b, w=0: gemm_flops(b),
    # LU (no pivoting) kernels.
    "GETRF": lambda b, w=0: 2.0 * potrf_flops(b),
    "TRSM_L": lambda b, w=0: trsm_flops(b),
    "TRSM_U": lambda b, w=0: trsm_flops(b),
    "GEMM_LU": lambda b, w=0: gemm_flops(b),
    # 2.5D reduction: one tile addition per contribution.
    "REDUCE": lambda b, w=0: float(b * b),
    # Redistribution copies move data but perform no arithmetic.
    "REMAP": lambda b, w=0: 0.0,
}


def kernel_flops(kind: str, b: int, w: int = 0) -> float:
    """Flops of one task of the given kernel ``kind`` on tile size ``b``."""
    try:
        return KERNEL_FLOPS[kind](b, w)
    except KeyError:
        raise ValueError(f"unknown kernel kind {kind!r}") from None


def lu_total_flops(n: int) -> float:
    """Total flops of an n x n LU factorization without pivoting."""
    return 2.0 * n**3 / 3.0 - n**2 / 2.0 - n / 6.0


def cholesky_flops(n: int) -> float:
    """Total flops of an n x n Cholesky factorization: n^3/3 + n^2/2 + n/6."""
    return n**3 / 3.0 + n**2 / 2.0 + n / 6.0


def posv_flops(n: int, nrhs: int) -> float:
    """POSV = POTRF + two triangular solves (n^2 flops per rhs column each)."""
    return cholesky_flops(n) + 2.0 * n * n * nrhs


def potri_flops(n: int) -> float:
    """POTRI = POTRF + TRTRI + LAUUM ~= n^3 in total."""
    return cholesky_flops(n) + (n**3 / 3.0 + 2.0 * n / 3.0) + (n**3 / 3.0 + n**2 / 2.0 + n / 6.0)
