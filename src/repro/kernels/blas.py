"""Tile-level kernels for the tiled Cholesky family of algorithms.

These are the sequential per-tile operations that Chameleon dispatches to
BLAS/LAPACK (the paper's Algorithm 1 plus the TRTRI/LAUUM/TRMM kernels of
the POTRI workflow).  Here they are implemented with NumPy/SciPy; each
function returns a *new* array (functional style) so the runtimes can
version tile data explicitly.

Conventions match the paper: the factor is lower triangular, tiles below
the diagonal are full ``b x b`` blocks, diagonal tiles hold their lower
triangle (upper part is ignored by the kernels that consume them).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

__all__ = [
    "potrf",
    "trsm",
    "syrk",
    "gemm",
    "trsm_solve",
    "trsm_solve_t",
    "trtri",
    "trsm_right_inv",
    "trsm_left_inv",
    "gemm_inv",
    "trmm",
    "lauum",
    "syrk_t",
    "gemm_t",
    "gemm_acc_t",
    "getrf_nopiv",
    "trsm_lu_right",
    "trsm_lu_left",
    "gemm_nn",
]


def potrf(a: np.ndarray) -> np.ndarray:
    """Cholesky factor of a diagonal tile: returns lower-triangular L with A = L L^T."""
    return scipy.linalg.cholesky(a, lower=True, check_finite=False)


def trsm(a: np.ndarray, l_diag: np.ndarray) -> np.ndarray:
    """Panel update A_{j,i} <- A_{j,i} * L_{i,i}^{-T} (BLAS trsm: right, lower, trans).

    Solves X L^T = A for X, the TRSM of Algorithm 1 line 4.
    """
    return scipy.linalg.solve_triangular(
        l_diag, a.T, lower=True, trans="N", check_finite=False
    ).T


def syrk(c: np.ndarray, a: np.ndarray) -> np.ndarray:
    """Symmetric rank-k update C <- C - A A^T (Algorithm 1 line 6)."""
    return c - a @ a.T


def gemm(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Trailing update C <- C - A B^T (Algorithm 1 line 8)."""
    return c - a @ b.T


# --- POSV (triangular solves against a right-hand side) -------------------


def trsm_solve(b: np.ndarray, l_diag: np.ndarray) -> np.ndarray:
    """Forward-substitution tile op: B_i <- L_{i,i}^{-1} B_i."""
    return scipy.linalg.solve_triangular(l_diag, b, lower=True, check_finite=False)


def trsm_solve_t(b: np.ndarray, l_diag: np.ndarray) -> np.ndarray:
    """Backward-substitution tile op: B_i <- L_{i,i}^{-T} B_i."""
    return scipy.linalg.solve_triangular(
        l_diag, b, lower=True, trans="T", check_finite=False
    )


def gemm_t(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Update C <- C - A^T B (used in the backward sweep of POSV)."""
    return c - a.T @ b


# --- POTRI kernels (TRTRI then LAUUM) --------------------------------------


def trtri(a: np.ndarray) -> np.ndarray:
    """Inverse of a lower-triangular diagonal tile."""
    n = a.shape[0]
    return scipy.linalg.solve_triangular(
        np.tril(a), np.eye(n), lower=True, check_finite=False
    )


def trsm_right_inv(a: np.ndarray, l_diag: np.ndarray) -> np.ndarray:
    """TRTRI panel op: A_{m,k} <- -A_{m,k} * L_{k,k}^{-1} (right, lower, alpha=-1)."""
    return -scipy.linalg.solve_triangular(
        l_diag, a.T, lower=True, trans="T", check_finite=False
    ).T


def trsm_left_inv(a: np.ndarray, l_diag: np.ndarray) -> np.ndarray:
    """TRTRI row op: A_{k,n} <- L_{k,k}^{-1} * A_{k,n} (left, lower)."""
    return scipy.linalg.solve_triangular(l_diag, a, lower=True, check_finite=False)


def gemm_inv(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """TRTRI interior update C_{m,n} <- C_{m,n} + A_{m,k} B_{k,n}."""
    return c + a @ b


def trmm(b: np.ndarray, l_diag: np.ndarray) -> np.ndarray:
    """LAUUM row op: B <- L^T B with L the (lower-triangular) diagonal tile."""
    return np.tril(l_diag).T @ b


def lauum(a: np.ndarray) -> np.ndarray:
    """Diagonal tile op: A <- L^T L for the lower triangle L stored in A."""
    low = np.tril(a)
    return low.T @ low


def syrk_t(c: np.ndarray, a: np.ndarray) -> np.ndarray:
    """LAUUM symmetric update C <- C + A^T A."""
    return c + a.T @ a


def gemm_acc_t(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """LAUUM interior update C <- C + A^T B."""
    return c + a.T @ b


# --- LU (no pivoting) kernels ----------------------------------------------


def getrf_nopiv(a: np.ndarray) -> np.ndarray:
    """LU factorization of a tile without pivoting, packed L and U.

    Returns a single tile holding the strictly-lower part of the unit
    lower factor and the upper factor (Doolittle), as LAPACK does.
    """
    lu = np.array(a, dtype=np.float64)
    n = lu.shape[0]
    for k in range(n - 1):
        piv = lu[k, k]
        if piv == 0.0:
            raise ZeroDivisionError(f"zero pivot at position {k} (no pivoting)")
        lu[k + 1 :, k] /= piv
        lu[k + 1 :, k + 1 :] -= np.outer(lu[k + 1 :, k], lu[k, k + 1 :])
    return lu


def trsm_lu_right(a: np.ndarray, lu_diag: np.ndarray) -> np.ndarray:
    """LU column-panel op: A <- A * U^{-1} with U from the packed diagonal."""
    u = np.triu(lu_diag)
    return scipy.linalg.solve_triangular(
        u, a.T, lower=False, trans="T", check_finite=False
    ).T


def trsm_lu_left(a: np.ndarray, lu_diag: np.ndarray) -> np.ndarray:
    """LU row-panel op: A <- L^{-1} * A with unit-lower L from the packed tile."""
    return scipy.linalg.solve_triangular(
        lu_diag, a, lower=True, unit_diagonal=True, check_finite=False
    )


def gemm_nn(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """LU trailing update C <- C - A B (no transposes)."""
    return c - a @ b
