"""Sequential tile kernels, flop counts, and dense references."""

from . import blas, flops, reference
from .blas import (
    gemm,
    gemm_acc_t,
    gemm_inv,
    gemm_t,
    lauum,
    potrf,
    syrk,
    syrk_t,
    trmm,
    trsm,
    trsm_left_inv,
    trsm_right_inv,
    trsm_solve,
    trsm_solve_t,
    trtri,
)
from .flops import (
    KERNEL_FLOPS,
    cholesky_flops,
    kernel_flops,
    posv_flops,
    potri_flops,
)
from .reference import (
    cholesky_reference,
    posv_reference,
    potri_reference,
    trtri_reference,
)

__all__ = [
    "blas",
    "flops",
    "reference",
    "potrf",
    "trsm",
    "syrk",
    "gemm",
    "trsm_solve",
    "trsm_solve_t",
    "gemm_t",
    "gemm_acc_t",
    "trtri",
    "trsm_right_inv",
    "trsm_left_inv",
    "gemm_inv",
    "trmm",
    "lauum",
    "syrk_t",
    "KERNEL_FLOPS",
    "kernel_flops",
    "cholesky_flops",
    "posv_flops",
    "potri_flops",
    "cholesky_reference",
    "posv_reference",
    "trtri_reference",
    "potri_reference",
]
