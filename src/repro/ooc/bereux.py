"""Out-of-core Cholesky transfer-volume simulation (Béreux [14], §III-E).

Three sequential out-of-core strategies are modeled, all counting exact
element transfers between slow and fast memory of size ``M``:

* :func:`block_left_looking_volume` — Béreux's recursive/"narrow blocks"
  strategy: a square ``q x q`` target block is held resident while the two
  row panels it depends on are streamed through narrow buffers.  With
  ``q ~ sqrt(M)`` this achieves the ``n^3 / (3 sqrt(M))`` leading term.
* :func:`panel_left_looking_volume` — the naive loop-based variant
  holding full column panels: ``Theta(n^4 / M)``, asymptotically worse.
* :func:`simulate_tiled_right_looking` — an explicit cache-driven
  simulation of the tiled right-looking algorithm (Algorithm 1 order) with
  an LRU fast memory, cross-checking the analytic counting style against a
  genuinely executed access trace.

These give the sequential reference points the paper connects to the
parallel distributions: SBC matches Béreux's arithmetic intensity
``sqrt(M)`` (times the 2/3 trailing-matrix factor), while 2DBC is stuck at
``sqrt(M)/sqrt(2)`` for Cholesky.
"""

from __future__ import annotations

import math
from typing import Optional

from .cache import TileCache

__all__ = [
    "choose_block_size",
    "block_left_looking_volume",
    "panel_left_looking_volume",
    "simulate_tiled_right_looking",
]


def choose_block_size(M: int, stream_width: int = 1) -> int:
    """Largest q with q^2 + 2*q*stream_width <= M (block + two stream buffers)."""
    if M < 3:
        raise ValueError(f"memory must hold at least 3 elements, got {M}")
    w = stream_width
    # Solve q^2 + 2wq - M = 0.
    q = int((-2 * w + math.sqrt(4 * w * w + 4 * M)) // 2)
    while q * q + 2 * q * w > M:
        q -= 1
    return max(q, 1)


def block_left_looking_volume(n: int, M: int, q: Optional[int] = None) -> int:
    """Exact transfers of the square-block left-looking OOC Cholesky.

    For each target block (I, J) of the q-grid (I >= J): load the block,
    stream the two row panels L[I, :Jq] and L[J, :Jq] (one panel when
    I == J), load the previously computed diagonal factor for the TRSM
    (off-diagonal blocks), and store the result.
    """
    if n < 1:
        raise ValueError(f"matrix dimension must be positive, got {n}")
    if q is None:
        q = choose_block_size(M)
    nb = -(-n // q)

    def hgt(I: int) -> int:
        return min(q, n - I * q)

    total = 0
    for J in range(nb):
        wj = hgt(J)
        cols_before = J * q
        for I in range(J, nb):
            hi = hgt(I)
            total += hi * wj  # load target block
            total += hi * cols_before  # stream panel L[I, :Jq]
            if I != J:
                total += wj * cols_before  # stream panel L[J, :Jq]
                total += wj * wj  # reload diagonal factor L[J, J] for TRSM
            total += hi * wj  # store result
    return total


def panel_left_looking_volume(n: int, M: int, w: Optional[int] = None) -> int:
    """Exact transfers of the loop-based full-panel left-looking algorithm.

    Panel J (w columns, held resident) is updated by streaming the
    sub-panels L[Jw:, :Jw] of all previous panels; memory must hold one
    full panel plus a streaming buffer, so w ~ M / (2n).  This is the
    Theta(n^4 / M) strategy Béreux's recursive blocks improve on.
    """
    if n < 1:
        raise ValueError(f"matrix dimension must be positive, got {n}")
    if w is None:
        w = max(1, M // (2 * n))
    if w * n > M:
        raise ValueError(f"panel of width {w} does not fit in memory {M}")
    np_ = -(-n // w)
    total = 0
    for J in range(np_):
        wj = min(w, n - J * w)
        height = n - J * w
        total += height * wj  # load panel
        total += height * (J * w)  # stream previously computed columns
        total += height * wj  # store factored panel
    return total


def simulate_tiled_right_looking(N: int, b: int, M: int) -> int:
    """Cache-simulated tiled right-looking Cholesky; returns element transfers.

    Runs Algorithm 1's access trace against an LRU fast memory of ``M``
    elements (tiles of b^2 elements; the three tiles touched by the active
    kernel are pinned).  This is how a naive out-of-core port of the tiled
    algorithm behaves — far from Béreux's bound unless M is huge.
    """
    cache = TileCache(M)
    sz = b * b

    def use(*keys) -> None:
        for k in keys:
            cache.load(k, sz, pin=True)

    def done(*keys) -> None:
        for k in keys:
            cache.unpin(k)

    for i in range(N):
        use((i, i))
        cache.touch_dirty((i, i))
        done((i, i))
        for j in range(i + 1, N):
            use((j, i), (i, i))
            cache.touch_dirty((j, i))
            done((j, i), (i, i))
        for k in range(i + 1, N):
            use((k, k), (k, i))
            cache.touch_dirty((k, k))
            done((k, k), (k, i))
            for j in range(k + 1, N):
                use((j, k), (j, i), (k, i))
                cache.touch_dirty((j, k))
                done((j, k), (j, i), (k, i))
    cache.flush()
    return cache.stats.total
