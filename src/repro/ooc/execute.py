"""Numerically-executed out-of-core Cholesky (blocked left-looking).

:mod:`repro.ooc.bereux` *counts* the transfers of the blocked left-looking
algorithm; this module actually *runs* it: slow memory is an explicit
block store, fast memory a strictly-accounted working set, and every load
and store moves real matrix data.  The result is validated against SciPy
and the element traffic matches :func:`block_left_looking_volume` exactly
— the algorithm whose leading term is Béreux's ``n^3 / (3 sqrt(M))``.

The schedule, for each target block (I, J) of the q-grid, I >= J:

1. load the target block;
2. stream the row panels ``L[I, :Jq]`` and (off-diagonal) ``L[J, :Jq]``
   in q-column slices, applying the SYRK/GEMM updates;
3. finish with POTRF (diagonal) or a TRSM against the reloaded diagonal
   factor (off-diagonal), and store the result.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import scipy.linalg

from .bereux import choose_block_size

__all__ = ["OutOfCoreResult", "execute_block_left_looking"]


class OutOfCoreResult:
    """Factor plus the exact traffic of the out-of-core execution."""

    def __init__(self, factor: np.ndarray, loaded: int, stored: int, q: int):
        self.factor = factor
        self.loaded = loaded
        self.stored = stored
        self.q = q

    @property
    def total_transfers(self) -> int:
        return self.loaded + self.stored


class _FastMemory:
    """Strict element-count accounting for the resident working set."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.used = 0
        self.loaded = 0
        self.stored = 0

    def load(self, block: np.ndarray) -> np.ndarray:
        size = block.size
        self.used += size
        if self.used > self.capacity:
            raise MemoryError(
                f"working set of {self.used} elements exceeds fast memory "
                f"of {self.capacity}"
            )
        self.loaded += size
        return block.copy()

    def discard(self, block: np.ndarray) -> None:
        self.used -= block.size

    def store(self, block: np.ndarray) -> None:
        self.stored += block.size
        self.used -= block.size


def execute_block_left_looking(
    a: np.ndarray, M: int, q: Optional[int] = None
) -> OutOfCoreResult:
    """Factor a dense SPD matrix with fast memory of ``M`` elements.

    ``q`` defaults to the largest block with 3 q^2 <= M (one target and
    two streaming buffers).  Returns the lower factor and exact traffic.
    """
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    if a.ndim != 2 or a.shape[1] != n:
        raise ValueError(f"expected a square matrix, got shape {a.shape}")
    if q is None:
        q = max(1, int((M / 3) ** 0.5))
    if 3 * q * q > M:
        raise ValueError(f"block size {q} needs 3q^2 = {3 * q * q} > M = {M}")

    nb = -(-n // q)
    # "Slow memory": the factored blocks live here after being stored.
    slow: Dict[Tuple[int, int], np.ndarray] = {}
    fast = _FastMemory(M)

    def span(I: int) -> slice:
        return slice(I * q, min((I + 1) * q, n))

    for J in range(nb):
        for I in range(J, nb):
            target = fast.load(a[span(I), span(J)])
            # Stream the two row panels in q-column slices.
            for K in range(J):
                left = fast.load(slow[(I, K)])
                if I == J:
                    target -= left @ left.T
                else:
                    right = fast.load(slow[(J, K)])
                    target -= left @ right.T
                    fast.discard(right)
                fast.discard(left)
            if I == J:
                target = scipy.linalg.cholesky(target, lower=True, check_finite=False)
            else:
                diag = fast.load(slow[(J, J)])
                target = scipy.linalg.solve_triangular(
                    diag, target.T, lower=True, check_finite=False
                ).T
                fast.discard(diag)
            slow[(I, J)] = target
            fast.store(target)

    out = np.zeros((n, n))
    for (I, J), block in slow.items():
        blk = np.tril(block) if I == J else block
        out[span(I), span(J)] = blk
    return OutOfCoreResult(out, fast.loaded, fast.stored, q)
