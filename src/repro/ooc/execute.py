"""Numerically-executed out-of-core Cholesky (blocked left-looking).

:mod:`repro.ooc.bereux` *counts* the transfers of the blocked left-looking
algorithm; this module actually *runs* it: slow memory is an explicit
block store, fast memory a strictly-accounted working set, and every load
and store moves real matrix data.  The result is validated against SciPy
and the element traffic matches :func:`block_left_looking_volume` exactly
— the algorithm whose leading term is Béreux's ``n^3 / (3 sqrt(M))``.

The schedule, for each target block (I, J) of the q-grid, I >= J:

1. load the target block;
2. stream the row panels ``L[I, :Jq]`` and (off-diagonal) ``L[J, :Jq]``
   in q-column slices, applying the SYRK/GEMM updates;
3. finish with POTRF (diagonal) or a TRSM against the reloaded diagonal
   factor (off-diagonal), and store the result.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.linalg

from ..obs import Recorder
from .bereux import choose_block_size

__all__ = ["OutOfCoreResult", "execute_block_left_looking"]


class OutOfCoreResult:
    """Factor plus the exact traffic of the out-of-core execution."""

    def __init__(self, factor: np.ndarray, loaded: int, stored: int, q: int):
        self.factor = factor
        self.loaded = loaded
        self.stored = stored
        self.q = q

    @property
    def total_transfers(self) -> int:
        return self.loaded + self.stored


class _FastMemory:
    """Strict element-count accounting for the resident working set.

    With a recorder attached, every load/store emits one io event whose
    ``nbytes`` is the element count times 8 (float64) and whose ``time``
    is a logical tick (the running transfer count).
    """

    def __init__(self, capacity: int, recorder: Optional[Recorder] = None):
        self.capacity = capacity
        self.used = 0
        self.loaded = 0
        self.stored = 0
        self._rec = recorder if (recorder is not None and recorder.enabled) else None
        if self._rec is not None and not self._rec.source:
            self._rec.source = "ooc"
        self._tick = 0

    def _record(self, op: str, key, size: int) -> None:
        self._tick += 1
        if self._rec is not None:
            self._rec.record_io(op, key, size * 8, float(self._tick))

    def load(self, block: np.ndarray, key=None) -> np.ndarray:
        size = block.size
        self.used += size
        if self.used > self.capacity:
            raise MemoryError(
                f"working set of {self.used} elements exceeds fast memory "
                f"of {self.capacity}"
            )
        self.loaded += size
        self._record("load", key, size)
        return block.copy()

    def discard(self, block: np.ndarray) -> None:
        self.used -= block.size

    def store(self, block: np.ndarray, key=None) -> None:
        self.stored += block.size
        self.used -= block.size
        self._record("store", key, size=block.size)


def execute_block_left_looking(
    a: np.ndarray, M: int, q: Optional[int] = None,
    recorder: Optional[Recorder] = None,
) -> OutOfCoreResult:
    """Factor a dense SPD matrix with fast memory of ``M`` elements.

    ``q`` defaults to the largest block with 3 q^2 <= M (one target and
    two streaming buffers).  Returns the lower factor and exact traffic.
    Pass a :class:`repro.obs.Recorder` to log every slow-memory transfer
    as an io event (keyed by the (I, J) block coordinates).
    """
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    if a.ndim != 2 or a.shape[1] != n:
        raise ValueError(f"expected a square matrix, got shape {a.shape}")
    if q is None:
        q = max(1, int((M / 3) ** 0.5))
    if 3 * q * q > M:
        raise ValueError(f"block size {q} needs 3q^2 = {3 * q * q} > M = {M}")

    nb = -(-n // q)
    # "Slow memory": the factored blocks live here after being stored.
    slow: dict[tuple[int, int], np.ndarray] = {}
    fast = _FastMemory(M, recorder)

    def span(I: int) -> slice:
        return slice(I * q, min((I + 1) * q, n))

    for J in range(nb):
        for I in range(J, nb):
            target = fast.load(a[span(I), span(J)], key=(I, J))
            # Stream the two row panels in q-column slices.
            for K in range(J):
                left = fast.load(slow[(I, K)], key=(I, K))
                if I == J:
                    target -= left @ left.T
                else:
                    right = fast.load(slow[(J, K)], key=(J, K))
                    target -= left @ right.T
                    fast.discard(right)
                fast.discard(left)
            if I == J:
                target = scipy.linalg.cholesky(target, lower=True, check_finite=False)
            else:
                diag = fast.load(slow[(J, J)], key=(J, J))
                target = scipy.linalg.solve_triangular(
                    diag, target.T, lower=True, check_finite=False
                ).T
                fast.discard(diag)
            slow[(I, J)] = target
            fast.store(target, key=(I, J))

    out = np.zeros((n, n))
    for (I, J), block in slow.items():
        blk = np.tril(block) if I == J else block
        out[span(I), span(J)] = blk
    return OutOfCoreResult(out, fast.loaded, fast.stored, q)
