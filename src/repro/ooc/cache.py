"""Fast-memory (cache) model for out-of-core algorithm simulation.

The two-level memory model of §II: a fast memory of ``capacity`` elements
and an unlimited slow memory.  Algorithms explicitly ``load`` tiles before
using them and may ``pin`` tiles to protect them from eviction; evicting a
dirty tile counts as a store.  The counters give the exact transfer volume
of a simulated out-of-core execution.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable
from typing import Optional

from ..obs import Recorder

__all__ = ["TileCache", "CacheStats"]


class CacheStats:
    """Transfer counters of one out-of-core simulation."""

    __slots__ = ("loaded", "stored")

    def __init__(self) -> None:
        self.loaded = 0
        self.stored = 0

    @property
    def total(self) -> int:
        return self.loaded + self.stored

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CacheStats(loaded={self.loaded}, stored={self.stored})"


class TileCache:
    """LRU cache of variably-sized tiles with pinning and dirty tracking.

    Pass a :class:`repro.obs.Recorder` to emit one cache event per
    hit/miss/create/eviction, flushes included (the event's ``nbytes``
    is the tile's element
    count times 8, i.e. float64 bytes; its ``time`` is a logical tick —
    the running count of cache operations).
    """

    def __init__(self, capacity: int, recorder: Optional[Recorder] = None):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.used = 0
        self.stats = CacheStats()
        self._rec = recorder if (recorder is not None and recorder.enabled) else None
        if self._rec is not None and not self._rec.source:
            self._rec.source = "ooc"
        self._tick = 0
        # key -> (size, pinned, dirty); OrderedDict gives LRU order.
        self._entries: "OrderedDict[Hashable, tuple[int, bool, bool]]" = OrderedDict()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def _record(self, op: str, key: Hashable, size: int, dirty: bool = False) -> None:
        self._tick += 1
        if self._rec is not None:
            self._rec.record_cache(op, key, size * 8, float(self._tick), dirty)

    def _evict_for(self, size: int) -> None:
        while self.used + size > self.capacity:
            victim = None
            for k, (sz, pinned, dirty) in self._entries.items():
                if not pinned:
                    victim = (k, sz, dirty)
                    break
            if victim is None:
                raise MemoryError(
                    f"cannot fit {size} elements: all {self.used} resident "
                    f"elements are pinned (capacity {self.capacity})"
                )
            k, sz, dirty = victim
            del self._entries[k]
            self.used -= sz
            if dirty:
                self.stats.stored += sz
            self._record("evict", k, sz, dirty)

    def load(self, key: Hashable, size: int, pin: bool = False) -> bool:
        """Ensure a tile is resident; returns True if a transfer happened."""
        if size > self.capacity:
            raise MemoryError(f"tile of {size} elements exceeds capacity {self.capacity}")
        if key in self._entries:
            sz, _pinned, dirty = self._entries.pop(key)
            self._entries[key] = (sz, pin or _pinned, dirty)
            self._record("hit", key, sz)
            return False
        self._evict_for(size)
        self._entries[key] = (size, pin, False)
        self.used += size
        self.stats.loaded += size
        self._record("miss", key, size)
        return True

    def create(self, key: Hashable, size: int, pin: bool = False) -> None:
        """Allocate a new (dirty) tile without loading it from slow memory."""
        if key in self._entries:
            raise KeyError(f"tile {key} already resident")
        self._evict_for(size)
        self._entries[key] = (size, pin, True)
        self.used += size
        self._record("create", key, size, dirty=True)

    def touch_dirty(self, key: Hashable) -> None:
        """Mark a resident tile as modified (must be stored on eviction)."""
        size, pinned, _ = self._entries.pop(key)
        self._entries[key] = (size, pinned, True)

    def unpin(self, key: Hashable) -> None:
        if key in self._entries:
            size, _pinned, dirty = self._entries.pop(key)
            self._entries[key] = (size, False, dirty)

    def flush(self) -> None:
        """Write back every dirty tile and empty the cache.

        Emits one ``evict`` event per resident tile (advancing the
        logical clock), so flushed write-backs appear in traces exactly
        like capacity evictions.
        """
        for k, (sz, _pinned, dirty) in self._entries.items():
            if dirty:
                self.stats.stored += sz
            self._record("evict", k, sz, dirty)
        self._entries.clear()
        self.used = 0
