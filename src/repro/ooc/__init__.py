"""Sequential out-of-core Cholesky models (two-level memory, §II/§III-E)."""

from .cache import CacheStats, TileCache
from .bereux import (
    block_left_looking_volume,
    choose_block_size,
    panel_left_looking_volume,
    simulate_tiled_right_looking,
)
from .execute import OutOfCoreResult, execute_block_left_looking

__all__ = [
    "TileCache",
    "CacheStats",
    "choose_block_size",
    "block_left_looking_volume",
    "panel_left_looking_volume",
    "simulate_tiled_right_looking",
    "OutOfCoreResult",
    "execute_block_left_looking",
]
