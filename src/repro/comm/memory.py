"""Per-node memory footprint accounting (§IV's storage trade-off).

2.5D algorithms buy communication with memory: each of the ``c`` slices
stores a full copy of the matrix.  These helpers compute exact per-node
storage for the library's distributions so the trade-off can be reported
next to the volumes — including the paper's §IV-B observation that the
optimal SBC configuration needs a factor cbrt(2) *less* memory than the
optimal 2.5D block-cyclic one.
"""

from __future__ import annotations

import numpy as np

from ..distributions.analysis import lower_tile_counts
from ..distributions.base import Distribution
from ..distributions.twod5 import TwoDotFiveD

__all__ = [
    "max_tiles_per_node",
    "memory_per_node_bytes",
    "replication_factor",
]


def max_tiles_per_node(dist, N: int) -> int:
    """Largest number of lower-triangle tiles any node stores.

    For a :class:`TwoDotFiveD` distribution each slice holds a full copy
    laid out with the base distribution, so the per-node maximum equals
    the base distribution's.
    """
    if isinstance(dist, TwoDotFiveD):
        return max_tiles_per_node(dist.base, N)
    counts = lower_tile_counts(dist, N)
    return int(counts.max())


def memory_per_node_bytes(dist, N: int, b: int, element_size: int = 8) -> int:
    """Peak per-node storage for the symmetric operand, in bytes."""
    return max_tiles_per_node(dist, N) * b * b * element_size


def replication_factor(dist, N: int) -> float:
    """Total stored tiles across the platform / tiles of the matrix.

    1.0 for any 2D distribution; ``c`` for a 2.5D distribution with ``c``
    slices (every slice stores the whole matrix).
    """
    S = N * (N + 1) / 2
    if isinstance(dist, TwoDotFiveD):
        return dist.c * 1.0
    counts = lower_tile_counts(dist, N)
    return float(counts.sum() / S)
