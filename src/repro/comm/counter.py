"""Exact communication-volume counting on task graphs.

Mirrors the runtime behaviour described in §V-C: each tile needed by a
remote task is sent once per (version, destination node) pair — StarPU
caches received data, so several tasks on the same node reading the same
version trigger a single transfer — and every transfer is a point-to-point
message of one tile.

This counter is the ground truth the analytic formulas and the fast
vectorized counters are validated against, and the simulator's transferred
byte count must match it exactly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..graph.task import TaskGraph

__all__ = ["CommStats", "count_communications"]


@dataclass
class CommStats:
    """Result of exact communication counting on one task graph."""

    total_bytes: int = 0
    num_messages: int = 0
    #: bytes sent, per source node
    sent_bytes: dict[int, int] = field(default_factory=dict)
    #: bytes received, per destination node
    recv_bytes: dict[int, int] = field(default_factory=dict)
    #: messages per kernel kind of the consuming task
    messages_by_kind: dict[str, int] = field(default_factory=dict)

    @property
    def total_gbytes(self) -> float:
        return self.total_bytes / 1e9

    def max_node_traffic(self) -> int:
        """Largest per-node total (sent + received) — the bottleneck node."""
        nodes = set(self.sent_bytes) | set(self.recv_bytes)
        if not nodes:
            return 0
        return max(self.sent_bytes.get(n, 0) + self.recv_bytes.get(n, 0) for n in nodes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.total_gbytes:.3f} GB in {self.num_messages} messages "
            f"({len(self.sent_bytes)} sending nodes)"
        )


def count_communications(graph: TaskGraph) -> CommStats:
    """Count every inter-node transfer implied by the graph, exactly once
    per (data version, destination node) pair."""
    stats = CommStats()
    sent: Counter = Counter()
    recv: Counter = Counter()
    kinds: Counter = Counter()
    seen: set = set()
    for t in graph.tasks:
        for k in t.reads:
            src = graph.source_of(k)
            if src == t.node:
                continue
            tag: tuple = (k, t.node)
            if tag in seen:
                continue
            seen.add(tag)
            nbytes = graph.data_bytes(k)
            stats.total_bytes += nbytes
            stats.num_messages += 1
            sent[src] += nbytes
            recv[t.node] += nbytes
            kinds[t.kind] += 1
    stats.sent_bytes = dict(sent)
    stats.recv_bytes = dict(recv)
    stats.messages_by_kind = dict(kinds)
    return stats
