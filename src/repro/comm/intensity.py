"""Arithmetic-intensity analysis of §III-E.

The arithmetic intensity of a node is its flop count divided by its
communication volume (elements).  §III-E compares, as a function of the
per-node memory M:

* LU with 2DBC: first iteration sqrt(M), whole factorization (2/3) sqrt(M);
* Cholesky with 2DBC: first iteration sqrt(M)/sqrt(2) — the distribution
  cannot exploit symmetry;
* Cholesky with SBC: first iteration sqrt(M), whole run (2/3) sqrt(M) —
  matching Béreux's sequential algorithm;
* the true Cholesky optimum is sqrt(2M) [13], leaving a sqrt(2) gap open.

Functions mirror those derivations and also compute *measured* intensities
from counted volumes, so the asymptotic claims can be checked numerically.
"""

from __future__ import annotations

import math

from ..distributions.base import Distribution
from ..kernels.flops import cholesky_flops, lu_total_flops
from .fast_counter import cholesky_message_count, lu_message_count

__all__ = [
    "lu_2dbc_first_iteration_intensity",
    "cholesky_2dbc_first_iteration_intensity",
    "cholesky_sbc_first_iteration_intensity",
    "average_intensity_factor",
    "measured_cholesky_intensity",
    "measured_lu_intensity",
]


def _check_memory(M: float) -> None:
    if M <= 0:
        raise ValueError(f"memory size must be positive, got {M}")


def lu_2dbc_first_iteration_intensity(M: float) -> float:
    """LU + 2DBC, first iteration: 2k^2 flops for 2k transfers with
    k = sqrt(M) tiles stored per node -> sqrt(M) (optimal for LU)."""
    _check_memory(M)
    return math.sqrt(M)


def cholesky_2dbc_first_iteration_intensity(M: float) -> float:
    """Cholesky + 2DBC: half the flops (k^2) for the same 2k transfers,
    with k = sqrt(2M) -> sqrt(M)/sqrt(2): 2DBC wastes the symmetry."""
    _check_memory(M)
    return math.sqrt(M) / math.sqrt(2.0)


def cholesky_sbc_first_iteration_intensity(M: float) -> float:
    """Cholesky + SBC: 2k^2 flops for 2k transfers with k = sqrt(M)
    -> sqrt(M), recovering Béreux's out-of-core intensity."""
    _check_memory(M)
    return math.sqrt(M)


def average_intensity_factor() -> float:
    """The shrinking trailing matrix degrades the average intensity by 2/3
    for both LU+2DBC and Cholesky+SBC."""
    return 2.0 / 3.0


def measured_cholesky_intensity(dist: Distribution, N: int, b: int) -> float:
    """Measured whole-run intensity: total flops / transferred elements.

    Uses the exact counted volume; as N grows with P fixed this converges
    to (2/3) sqrt(M) for SBC and (2/3) sqrt(M/2) ... for square 2DBC, per
    §III-E.
    """
    volume_elements = cholesky_message_count(dist, N) * b * b
    if volume_elements == 0:
        raise ValueError("no communication: intensity undefined (single node?)")
    return cholesky_flops(N * b) / volume_elements


def measured_lu_intensity(dist: Distribution, N: int, b: int) -> float:
    """Measured whole-run LU intensity: total flops / transferred elements.

    With square 2DBC this converges to (2/3) sqrt(M) (M = N^2 b^2 / P for
    the full, nonsymmetric matrix) — the reference point SBC lifts
    Cholesky to (§III-E).
    """
    volume_elements = lu_message_count(dist, N) * b * b
    if volume_elements == 0:
        raise ValueError("no communication: intensity undefined (single node?)")
    return lu_total_flops(N * b) / volume_elements
