"""Per-iteration communication and intensity profiles.

§III-E explains the 2/3 factor between the first-iteration arithmetic
intensity (sqrt(M)) and the whole-run average: the trailing matrix
shrinks, so later iterations move (relatively) more data per flop.  These
helpers expose that structure measurably: the communication volume, flop
count, and intensity of each iteration of a task graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.task import TaskGraph

__all__ = ["IterationProfile", "communication_profile"]


@dataclass(frozen=True)
class IterationProfile:
    """Traffic and work of one iteration (outer panel index)."""

    iteration: int
    messages: int
    bytes: int
    flops: float

    @property
    def intensity(self) -> float:
        """Flops per transferred byte (``inf`` for communication-free ones)."""
        if self.bytes == 0:
            return float("inf")
        return self.flops / self.bytes


def communication_profile(graph: TaskGraph) -> list[IterationProfile]:
    """Exact per-iteration traffic of a task graph.

    A transfer is attributed to the iteration of the (first) consuming
    task, matching when the runtime actually needs the data on the wire.
    The totals equal :func:`repro.comm.count_communications` by
    construction; the per-iteration flop counts sum to the graph's total.
    """
    seen = set()
    stats = {}

    def slot(it: int):
        if it not in stats:
            stats[it] = [0, 0, 0.0]  # messages, bytes, flops
        return stats[it]

    for t in graph.tasks:
        slot(t.iteration)[2] += t.flops
        for k in t.reads:
            src = graph.source_of(k)
            if src == t.node or (k, t.node) in seen:
                continue
            seen.add((k, t.node))
            s = slot(t.iteration)
            s[0] += 1
            s[1] += graph.data_bytes(k)
    return [
        IterationProfile(iteration=it, messages=m, bytes=b, flops=f)
        for it, (m, b, f) in sorted(stats.items())
    ]
