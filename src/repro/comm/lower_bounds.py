"""Communication lower bounds and reference algorithm volumes (§II).

All bounds are for the Cholesky factorization of an ``n x n`` matrix with
fast/local memory of ``M`` elements, counted in *elements transferred*:

* Olivry et al. [8]:      n^3 / (6 sqrt(M))      (automated cDAG analysis)
* Beaumont et al. [13]:   n^3 / (3 sqrt(2) sqrt(M))   (tight: matching algorithm exists)
* Béreux [14]:            n^3 / (3 sqrt(M)) + O(n^2)  (out-of-core algorithm)
* COnfCHOX [9]:           n^3 / sqrt(M) + O(n^2)      (2.5D parallel algorithm)
* SBC 2.5D (this paper):  n^3 / (2 sqrt(M)) + o(n^3)

Helpers also convert between the parallel setting (P nodes, memory M each)
and the sequential out-of-core one, following §III-E.
"""

from __future__ import annotations

import math

__all__ = [
    "olivry_lower_bound",
    "beaumont_lower_bound",
    "bereux_volume",
    "confchox_volume",
    "sbc25d_volume_elements",
    "memory_per_node_2d",
    "max_arithmetic_intensity_lu",
    "max_arithmetic_intensity_cholesky",
]


def _check(n: float, M: float) -> None:
    if n <= 0:
        raise ValueError(f"matrix dimension must be positive, got {n}")
    if M <= 0:
        raise ValueError(f"memory size must be positive, got {M}")


def olivry_lower_bound(n: float, M: float) -> float:
    """Lower bound n^3 / (6 sqrt(M)) from automated cDAG analysis [8]."""
    _check(n, M)
    return n**3 / (6.0 * math.sqrt(M))


def beaumont_lower_bound(n: float, M: float) -> float:
    """Tight symmetric-aware lower bound n^3 / (3 sqrt(2) sqrt(M)) [13]."""
    _check(n, M)
    return n**3 / (3.0 * math.sqrt(2.0) * math.sqrt(M))


def bereux_volume(n: float, M: float) -> float:
    """Leading term of Béreux's out-of-core algorithm: n^3 / (3 sqrt(M))."""
    _check(n, M)
    return n**3 / (3.0 * math.sqrt(M))


def confchox_volume(n: float, M: float) -> float:
    """Leading term of COnfCHOX's 2.5D algorithm: n^3 / sqrt(M) [9]."""
    _check(n, M)
    return n**3 / math.sqrt(M)


def sbc25d_volume_elements(n: float, M: float) -> float:
    """Leading term of this paper's 2.5D SBC: n^3 / (2 sqrt(M)) (§IV-A)."""
    _check(n, M)
    return n**3 / (2.0 * math.sqrt(M))


def memory_per_node_2d(n: float, P: float, symmetric: bool = True) -> float:
    """Elements stored per node by a balanced 2D distribution.

    M = n^2 / (2P) when only the lower triangle is stored (Cholesky),
    n^2 / P otherwise (LU).
    """
    if P <= 0:
        raise ValueError(f"node count must be positive, got {P}")
    return n * n / ((2.0 if symmetric else 1.0) * P)


def max_arithmetic_intensity_lu(M: float) -> float:
    """Upper bound on flops per transferred element for LU: sqrt(M) [8]."""
    if M <= 0:
        raise ValueError(f"memory size must be positive, got {M}")
    return math.sqrt(M)


def max_arithmetic_intensity_cholesky(M: float) -> float:
    """Upper bound for Cholesky: sqrt(2M) [13] — sqrt(2) above Béreux."""
    if M <= 0:
        raise ValueError(f"memory size must be positive, got {M}")
    return math.sqrt(2.0 * M)
