"""Closed-form communication volumes from the paper.

These are the leading-order expressions of §III-D, §IV and §V-F.2; the
exact counted volumes are slightly smaller because broadcasts near the end
of the matrix reach fewer than a full pattern of nodes (an O(N^2 r^2)
correction on O(N^2 r) totals).  Volumes are in *tiles*: multiply by
``b*b*element_size`` for bytes.  ``S = N(N+1)/2`` is the tile count of the
stored lower triangle.
"""

from __future__ import annotations

import math

__all__ = [
    "storage_tiles",
    "bc2d_cholesky_volume",
    "sbc_cholesky_volume",
    "bc25d_cholesky_volume",
    "sbc25d_cholesky_volume",
    "optimal_sbc25d_parameters",
    "optimal_bc25d_parameters",
    "trtri_volume_bc2d",
    "trtri_volume_sbc",
    "potri_volume_bc2d",
    "potri_volume_sbc_remap",
    "asymptotic_ratio_2d",
    "asymptotic_ratio_25d",
]


def storage_tiles(N: int) -> int:
    """S: tiles needed to store the symmetric matrix (lower triangle)."""
    return N * (N + 1) // 2


def bc2d_cholesky_volume(N: int, p: int, q: int) -> float:
    """2DBC POTRF volume, leading order: each tile is broadcast once to the
    p nodes of its pattern row and q of its pattern column: S*(p + q - 2)."""
    return storage_tiles(N) * (p + q - 2)


def sbc_cholesky_volume(N: int, r: int, variant: str = "extended") -> float:
    """Theorem 1: S*(r-2) for extended SBC, S*(r-1) for basic SBC."""
    fanout = r - 2 if variant == "extended" else r - 1
    return storage_tiles(N) * fanout


def bc25d_cholesky_volume(N: int, p: int, q: int, c: int) -> float:
    """2.5D block-cyclic: in-slice broadcasts + (c-1) reduction transfers
    per tile: S*(p + q + c - 3)."""
    return storage_tiles(N) * (p + q + c - 3)


def sbc25d_cholesky_volume(N: int, r: int, c: int, variant: str = "basic") -> float:
    """§IV-A: D = D1 + D2 = S*(r + c - 2) for basic SBC slices
    (S*(r + c - 3) with extended slices)."""
    fanout = r - 1 if variant == "basic" else r - 2
    return storage_tiles(N) * (fanout + c - 1)


def optimal_sbc25d_parameters(P: int) -> tuple:
    """§IV-B: minimize r + c subject to r^2 c = 2P — KKT gives r = 2c.

    Returns the real-valued optimum (r, c) = (2 * cbrt(P/2), cbrt(P/2));
    integer deployments round these.
    """
    if P < 1:
        raise ValueError(f"node count must be positive, got {P}")
    c = (P / 2.0) ** (1.0 / 3.0)
    return (2.0 * c, c)


def optimal_bc25d_parameters(P: int) -> tuple:
    """2.5D block-cyclic optimum: p = q = c = cbrt(P)."""
    if P < 1:
        raise ValueError(f"node count must be positive, got {P}")
    s = P ** (1.0 / 3.0)
    return (s, s, s)


def trtri_volume_bc2d(N: int, p: int, q: int) -> float:
    """TRTRI under 2DBC: independent row and column broadcasts, S*(p+q-2)."""
    return storage_tiles(N) * (p + q - 2)


def trtri_volume_sbc(N: int, r: int) -> float:
    """TRTRI under extended SBC: rows and columns each hit r-1 nodes and the
    sets no longer coincide (nonsymmetric reads): S*(2r - 2)."""
    return storage_tiles(N) * (2 * r - 2)


def potri_volume_bc2d(N: int, p: int, q: int) -> float:
    """POTRI = POTRF + TRTRI + LAUUM all under 2DBC: 3*S*(p+q-2)."""
    return 3.0 * storage_tiles(N) * (p + q - 2)


def potri_volume_sbc_remap(N: int, r: int, p: int, q: int) -> float:
    """The paper's mixed strategy: POTRF and LAUUM under extended SBC,
    TRTRI under 2DBC, with two full remaps: S*(2(r-2) + (p+q-2) + 2) =
    S*(2r + p + q - 4)."""
    return storage_tiles(N) * (2 * r + p + q - 4)


def asymptotic_ratio_2d() -> float:
    """Volume ratio square-2DBC / extended-SBC as P -> infinity: sqrt(2)."""
    return math.sqrt(2.0)


def asymptotic_ratio_25d() -> float:
    """Volume ratio optimal 2.5D-BC / optimal 2.5D-SBC: cbrt(2) ~ 1.26."""
    return 2.0 ** (1.0 / 3.0)
