"""Vectorized exact communication counting for the Cholesky graph.

Counting transfers on the explicit task graph is O(N^3) tasks; for the
paper's largest runs (N = 600 tiles) that is 36M tasks — too slow to build
in Python.  This module computes the *same exact count* in O(N^2) numpy
work, using the structure of Algorithm 1:

* the POTRF result (i, i) is read by the TRSM tasks of column ``i``;
* the TRSM result (j, i) is read by the GEMMs of row ``j`` (columns
  ``i+1 .. j-1``), the SYRK on (j, j), and the GEMMs of column ``j``
  (rows ``j+1 .. N-1``).

Each produced tile is therefore sent to ``popcount(owners-of-consumers
minus its own owner)``.  Owner sets are represented as node bitmasks —
one uint64 *word* per 64 nodes, so platforms of any size work (the paper
never exceeds P = 36, but 2.5D sweeps at large ``r * c`` routinely pass
64) — and segment unions become prefix/suffix bitwise ORs.  Equality
with the generic graph counter is property-tested.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from ..distributions.base import Distribution

__all__ = [
    "cholesky_volume_exact",
    "cholesky_message_count",
    "cholesky_node_traffic",
    "lu_message_count",
    "lu_volume_exact",
]

_POP8 = np.array([bin(v).count("1") for v in range(256)], dtype=np.int64)


def _popcount(arr: npt.NDArray[np.uint64]) -> npt.NDArray[np.int64]:
    """Per-mask population count; masks live on the trailing word axis."""
    b = arr.view(np.uint8).reshape(arr.shape[:-1] + (arr.shape[-1] * 8,))
    return _POP8[b].sum(axis=-1)


def _num_words(owners: npt.NDArray[np.integer]) -> int:
    """Mask words needed for this owner map (one uint64 per 64 nodes)."""
    if owners.size and owners.min() < 0:
        raise ValueError("owner map contains negative node ids")
    top = int(owners.max()) if owners.size else 0
    return top // 64 + 1


def _masks(
    owners: npt.NDArray[np.integer], words: int
) -> npt.NDArray[np.uint64]:
    """Per-entry one-hot bitmasks, shape ``owners.shape + (words,)``."""
    out = np.zeros(owners.shape + (words,), dtype=np.uint64)
    word = owners // 64
    bit = (np.uint64(1) << (owners % 64).astype(np.uint64)).astype(np.uint64)
    np.put_along_axis(out, word[..., None], bit[..., None], axis=-1)
    return out


def _suffix_or(
    masks: npt.NDArray[np.uint64], axis: int
) -> npt.NDArray[np.uint64]:
    """``out[t] = OR of masks[t:]`` along ``axis``, with a zero row appended.

    The result has one extra entry along ``axis`` (the empty suffix).
    """
    flipped = np.flip(masks, axis=axis)
    acc = np.flip(np.bitwise_or.accumulate(flipped, axis=axis), axis=axis)
    pad_shape = list(masks.shape)
    pad_shape[axis] = 1
    zero = np.zeros(pad_shape, dtype=np.uint64)
    return np.concatenate([acc, zero], axis=axis)


def _destination_masks(
    owners: npt.NDArray[np.integer],
) -> npt.NDArray[np.uint64]:
    """Per-tile destination bitmasks for POTRF under owner map ``owners``.

    Returns an (N, N, W) uint64 array D where D[j, i] (j > i) has bit ``n``
    set iff node ``n`` receives the TRSM result (j, i), and D[i, i] the
    receivers of the POTRF result (the producing node's bit is cleared).
    """
    N = owners.shape[0]
    W = _num_words(owners)
    masks = _masks(owners, W)
    dests = np.zeros((N, N, W), dtype=np.uint64)

    # Column suffix ORs: colsuf[t, j] = OR of masks[t:, j]  (colsuf[N, j] = 0).
    colsuf = _suffix_or(masks, axis=0)

    # POTRF results: diagonal tile (i, i) feeds the TRSMs of column i.
    diag_masks = masks[np.arange(N), np.arange(N)]
    trsm_sets = colsuf[np.arange(1, N + 1), np.arange(N)]  # owners of rows > i in col i
    dests[np.arange(N), np.arange(N)] = trsm_sets & ~diag_masks

    # TRSM results: tile (j, i), i < j.
    for j in range(1, N):
        row = masks[j, :j]
        # rowsuf[t] = OR of row[t:]; consumers in row j are columns i+1..j-1.
        rowsuf = _suffix_or(row, axis=0)
        row_sets = rowsuf[1 : j + 1]  # index i -> OR of masks[j, i+1..j-1]
        col_const = colsuf[j + 1, j] | masks[j, j]  # SYRK (j,j) + column below
        combined = row_sets | col_const
        dests[j, :j] = combined & ~masks[j, :j]
    return dests


def _transfer_counts(
    owners: npt.NDArray[np.integer],
) -> npt.NDArray[np.int64]:
    """Per-tile transfer counts for POTRF under owner map ``owners``."""
    return _popcount(_destination_masks(owners))


def cholesky_message_count(dist: Distribution, N: int) -> int:
    """Total number of tile messages for POTRF on N x N tiles."""
    return int(_transfer_counts(dist.owner_map(N)).sum())


def cholesky_node_traffic(
    dist: Distribution, N: int
) -> "tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]":
    """Exact per-node (sent, received) message counts for POTRF.

    Returns two ``num_nodes``-long int arrays; ``sent.sum() ==
    recv.sum() == cholesky_message_count(dist, N)``.  This is the input
    of the per-port bandwidth bounds (:mod:`repro.runtime.bounds`).
    """
    owners = dist.owner_map(N)
    dests = _destination_masks(owners)
    counts = _popcount(dests)
    P = dist.num_nodes
    sent = np.zeros(P, dtype=np.int64)
    tril = np.tril_indices(N)
    tile_owners = owners[tril]
    tile_counts = counts[tril]
    tile_dests = dests[tril]  # (T, W) masks of the lower-triangle tiles
    np.add.at(sent, tile_owners, tile_counts)
    # One popcount-by-node pass: unpack every mask into per-node bit
    # columns and sum over tiles (little-endian bit order matches bit n
    # of word n // 64 == node n).
    bits = np.unpackbits(
        tile_dests.view(np.uint8), axis=-1, bitorder="little"
    )
    recv = bits.sum(axis=0, dtype=np.int64)[:P]
    assert sent.sum() == recv.sum(), (
        f"per-node message accounting out of balance: "
        f"sent {int(sent.sum())} != received {int(recv.sum())}"
    )
    return sent, recv


def cholesky_volume_exact(
    dist: Distribution, N: int, b: int, element_size: int = 8
) -> int:
    """Exact POTRF communication volume in bytes (matches the graph counter)."""
    return cholesky_message_count(dist, N) * b * b * element_size


def lu_message_count(dist: Distribution, N: int) -> int:
    """Total tile messages for the tiled LU without pivoting.

    Consumers (see :mod:`repro.graph.lu`): the GETRF result (i, i) feeds
    the two panels of step i; an L-panel tile (j, i) feeds the GEMMs of
    row j right of column i; a U-panel tile (i, k) feeds the GEMMs of
    column k below row i.  LU has no symmetric reuse, which is why 2DBC is
    already communication-optimal for it (§III-E).
    """
    owners = dist.owner_map(N)
    W = _num_words(owners)
    masks = _masks(owners, W)
    total = 0

    # Suffix ORs along rows and columns.
    rowsuf = _suffix_or(masks, axis=1)
    colsuf = _suffix_or(masks, axis=0)

    diag_idx = np.arange(N)
    # GETRF (i, i) -> both panels of step i.
    panels = rowsuf[diag_idx, diag_idx + 1] | colsuf[diag_idx + 1, diag_idx]
    total += int(_popcount(panels & ~masks[diag_idx, diag_idx]).sum())
    # L-panel tiles (j, i), j > i -> row j, columns i+1..N-1.
    for i in range(N):
        col = masks[i + 1 :, i]
        sets = rowsuf[np.arange(i + 1, N), i + 1]
        total += int(_popcount(sets & ~col).sum())
        # U-panel tiles (i, k), k > i -> column k, rows i+1..N-1.
        row = masks[i, i + 1 :]
        sets = colsuf[i + 1, np.arange(i + 1, N)]
        total += int(_popcount(sets & ~row).sum())
    return total


def lu_volume_exact(dist: Distribution, N: int, b: int, element_size: int = 8) -> int:
    """Exact LU communication volume in bytes (matches the graph counter)."""
    return lu_message_count(dist, N) * b * b * element_size
