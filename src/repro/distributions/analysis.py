"""Load-balance and structural analysis of distributions.

The paper's motivation for block-cyclic-style schemes is load balance, both
globally and *over time* as the trailing matrix shrinks.  These helpers
quantify that: tile counts per node over the (lower-triangular) matrix,
imbalance ratios, and per-iteration trailing-matrix balance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Distribution

__all__ = [
    "lower_tile_counts",
    "load_imbalance",
    "trailing_imbalance_profile",
    "BalanceReport",
    "balance_report",
]


def _lower_owner_lists(dist: Distribution, N: int) -> np.ndarray:
    owners = dist.owner_map(N)
    return owners[np.tril_indices(N)]


def lower_tile_counts(dist: Distribution, N: int) -> np.ndarray:
    """Number of lower-triangle tiles owned by each node."""
    return np.bincount(_lower_owner_lists(dist, N), minlength=dist.num_nodes)


def load_imbalance(dist: Distribution, N: int) -> float:
    """max/mean ratio of per-node tile counts (1.0 = perfectly balanced)."""
    counts = lower_tile_counts(dist, N)
    mean = counts.mean()
    if mean == 0:
        raise ValueError("empty matrix")
    return float(counts.max() / mean)


def trailing_imbalance_profile(dist: Distribution, N: int) -> np.ndarray:
    """max/mean imbalance of the trailing submatrix at each iteration.

    At iteration ``i`` of the factorization, the remaining work lives in
    tiles (j, k) with ``j >= k >= i``.  Block-cyclic-type distributions
    keep this balanced for every ``i``; this profile quantifies it.
    """
    owners = dist.owner_map(N)
    P = dist.num_nodes
    out = np.empty(N)
    for i in range(N):
        sub = owners[i:, i:][np.tril_indices(N - i)]
        counts = np.bincount(sub, minlength=P)
        out[i] = counts.max() / max(counts.mean(), 1e-300)
    return out


@dataclass(frozen=True)
class BalanceReport:
    """Summary of the load-balance quality of a distribution at size N."""

    name: str
    num_nodes: int
    ntiles: int
    min_tiles: int
    max_tiles: int
    mean_tiles: float
    imbalance: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: P={self.num_nodes}, tiles/node in "
            f"[{self.min_tiles}, {self.max_tiles}] (mean {self.mean_tiles:.1f}, "
            f"imbalance {self.imbalance:.3f})"
        )


def balance_report(dist: Distribution, N: int) -> BalanceReport:
    """Compute a :class:`BalanceReport` for ``dist`` on an N x N tile grid."""
    counts = lower_tile_counts(dist, N)
    return BalanceReport(
        name=dist.name,
        num_nodes=dist.num_nodes,
        ntiles=N,
        min_tiles=int(counts.min()),
        max_tiles=int(counts.max()),
        mean_tiles=float(counts.mean()),
        imbalance=float(counts.max() / counts.mean()),
    )
