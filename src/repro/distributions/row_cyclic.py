"""1D row-cyclic distribution for right-hand-side panels.

The paper's POSV experiments distribute the (one tile wide) right-hand
side B with a 1D row-cyclic allocation regardless of the distribution of A
(§V-F.1): tile row ``i`` of B goes to node ``i mod P``.  This minimizes the
dominant communication of the triangular solves, which broadcasts tiles of
A's column ``i`` to the owners of B's row tiles.
"""

from __future__ import annotations

import numpy as np

from .base import Distribution

__all__ = ["RowCyclic1D"]


class RowCyclic1D(Distribution):
    """Row-cyclic distribution over ``P`` nodes (columns are ignored)."""

    def __init__(self, P: int):
        if P < 1:
            raise ValueError(f"node count must be positive, got {P}")
        self.P = P

    @property
    def num_nodes(self) -> int:
        return self.P

    @property
    def name(self) -> str:
        return f"1DRC(P={self.P})"

    def owner(self, i: int, j: int = 0) -> int:
        if i < 0:
            raise IndexError(f"tile row must be non-negative, got {i}")
        return i % self.P

    def owner_map(self, N: int) -> np.ndarray:
        return np.repeat((np.arange(N) % self.P)[:, None], N, axis=1)
