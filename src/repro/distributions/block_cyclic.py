"""Classical 2D block-cyclic distribution (the paper's **2DBC** baseline).

A ``p x q`` pattern of ``P = p*q`` nodes is repeated over the tile grid:
tile (i, j) belongs to node ``(i mod p) * q + (j mod q)``.  This is the
default distribution of ScaLAPACK and Chameleon.  With it, a tile produced
by a TRSM is needed by the ``p`` nodes of its pattern row and the ``q``
nodes of its pattern column, i.e. sent to ``p + q - 2`` other nodes -- the
quantity SBC improves on.
"""

from __future__ import annotations

import math

import numpy as np

from .base import Distribution

__all__ = ["BlockCyclic2D", "best_rectangle"]


class BlockCyclic2D(Distribution):
    """Block-cyclic distribution over a ``p x q`` node grid."""

    def __init__(self, p: int, q: int):
        if p < 1 or q < 1:
            raise ValueError(f"grid dimensions must be positive, got {p}x{q}")
        self.p = p
        self.q = q

    @property
    def num_nodes(self) -> int:
        return self.p * self.q

    @property
    def name(self) -> str:
        return f"2DBC({self.p}x{self.q})"

    def owner(self, i: int, j: int) -> int:
        if i < 0 or j < 0:
            raise IndexError(f"tile indices must be non-negative, got ({i}, {j})")
        return (i % self.p) * self.q + (j % self.q)

    def owner_map(self, N: int) -> np.ndarray:
        rows = (np.arange(N) % self.p)[:, None]
        cols = (np.arange(N) % self.q)[None, :]
        return rows * self.q + cols

    def broadcast_fanout(self) -> int:
        """Nodes a full-row TRSM result is sent to: p + q - 2 (§III-A)."""
        return self.p + self.q - 2


def best_rectangle(P: int) -> "BlockCyclic2D":
    """The most square ``p x q`` factorization of ``P`` (fewest broadcasts).

    The communication volume of 2DBC grows with ``p + q``, minimized by the
    factor pair closest to ``sqrt(P)``; this is how the paper picks the
    fairest 2DBC competitor for each node count (Table I).
    """
    if P < 1:
        raise ValueError(f"node count must be positive, got {P}")
    best = (1, P)
    for p in range(1, int(math.isqrt(P)) + 1):
        if P % p == 0:
            best = (p, P // p)
    p, q = best
    # Convention: p >= q like the paper's tables (7x4, 6x5, ...).
    return BlockCyclic2D(max(p, q), min(p, q))
