"""Symmetric Block-Cyclic (SBC) distribution — the paper's contribution.

The generic pattern is an ``r x r`` grid in which each node is a *pair*
``{x, y}`` with ``0 <= x < y < r``, placed at the two symmetric positions
``(x, y)`` and ``(y, x)``.  Repeating the pattern over the tile grid makes
the set of nodes appearing in pattern row ``d`` equal to the set appearing
in pattern column ``d`` (all pairs containing ``d``), so the row broadcast
and the column broadcast of a TRSM result hit the *same* ``r - 1`` nodes
instead of ``p + q - 1`` distinct ones — the source of the sqrt(2)
communication reduction.

Two policies allocate the pattern's diagonal positions (§III-C):

* **basic** (even ``r`` only): ``r/2`` extra nodes are added and assigned
  round-robin on the diagonal, giving ``P = r^2/2`` nodes and a broadcast
  fan-out of ``r - 1``.
* **extended** (any ``r >= 2``): the existing ``P = r(r-1)/2`` pair-nodes
  also cover the diagonal, using a family of diagonal *patterns* cycled
  round-robin over block columns.  Every diagonal entry at position ``d``
  is a pair containing ``d`` (hence already part of row/column ``d``'s
  broadcast set), so the fan-out drops to ``r - 2``.

The diagonal-pattern families follow the paper exactly: for odd ``r``,
``(r-1)/2`` patterns built from gap-``l`` pair groups; for even ``r``,
``r - 1`` patterns assembled from left/right *packs* plus the *bonus pack*
of gap-``r/2`` pairs.
"""

from __future__ import annotations


import numpy as np

from .base import Distribution

__all__ = ["SymmetricBlockCyclic", "pair_index", "pair_from_index", "sbc_num_nodes"]


def pair_index(x: int, y: int) -> int:
    """Node id of the pair {x, y} (x != y): colexicographic numbering.

    Matches the paper's figures: (0,1)->0, (0,2)->1, (1,2)->2, (0,3)->3, ...
    """
    if x == y:
        raise ValueError(f"a pair needs two distinct indices, got ({x}, {y})")
    lo, hi = (x, y) if x < y else (y, x)
    if lo < 0:
        raise ValueError(f"pair indices must be non-negative, got ({x}, {y})")
    return hi * (hi - 1) // 2 + lo


def pair_from_index(node: int) -> tuple:
    """Inverse of :func:`pair_index`."""
    if node < 0:
        raise ValueError(f"node id must be non-negative, got {node}")
    hi = 1
    while hi * (hi + 1) // 2 <= node:
        hi += 1
    lo = node - hi * (hi - 1) // 2
    return (lo, hi)


def sbc_num_nodes(r: int, variant: str = "extended") -> int:
    """Number of nodes used by SBC with parameter ``r``."""
    if variant == "extended":
        return r * (r - 1) // 2
    if variant == "basic":
        if r % 2:
            raise ValueError(f"basic SBC requires even r, got {r}")
        return r * r // 2
    raise ValueError(f"unknown SBC variant {variant!r}")


def _odd_diagonal_patterns(r: int) -> list[list[int]]:
    """The (r-1)/2 diagonal patterns for odd r (§III-C.2, Figure 4).

    Pattern ``l`` places the gap-``l`` pairs (d, d+l) at positions
    ``0 .. r-l-1`` (first group: node shares its *row*) and the gap-(r-l)
    pairs (j, r-l+j) at positions ``r-l .. r-1`` (second group: node shares
    its *column*).
    """
    patterns = []
    for l in range(1, (r - 1) // 2 + 1):
        diag = [0] * r
        for d in range(r - l):
            diag[d] = pair_index(d, d + l)
        for j in range(l):
            diag[r - l + j] = pair_index(j, r - l + j)
        patterns.append(diag)
    return patterns


def _even_diagonal_patterns(r: int) -> list[list[int]]:
    """The r-1 diagonal patterns for even r (§III-C.2, Figures 5-6).

    The first ``r/2 - 1`` patterns are built like in the odd case and split
    into a *left pack* (positions 0..r/2-1) and a *right pack* (positions
    r/2..r-1).  The *bonus pack* holds the gap-r/2 pairs (i, i+r/2); placed
    on the left it puts pair (i, i+r/2) at position i (same row), on the
    right at position r/2+i (same column).  ``r/2`` additional patterns are
    formed by prepending the bonus pack to the list of left packs and
    appending it to the list of right packs, then combining the lists
    index-wise.
    """
    half = r // 2
    lefts: list[list[int]] = []
    rights: list[list[int]] = []
    for l in range(1, half):
        diag = [0] * r
        for d in range(r - l):
            diag[d] = pair_index(d, d + l)
        for j in range(l):
            diag[r - l + j] = pair_index(j, r - l + j)
        lefts.append(diag[:half])
        rights.append(diag[half:])
    bonus = [pair_index(i, i + half) for i in range(half)]

    patterns = [lefts[k] + rights[k] for k in range(half - 1)]
    shifted_lefts = [bonus] + lefts
    shifted_rights = rights + [bonus]
    patterns += [shifted_lefts[k] + shifted_rights[k] for k in range(half)]
    return patterns


class SymmetricBlockCyclic(Distribution):
    """The SBC distribution with parameter ``r`` (pattern side length)."""

    def __init__(self, r: int, variant: str = "extended"):
        if r < 2:
            raise ValueError(f"SBC requires r >= 2, got {r}")
        if variant not in ("basic", "extended"):
            raise ValueError(f"unknown SBC variant {variant!r}")
        if variant == "basic" and r % 2:
            raise ValueError(f"basic SBC requires even r, got {r}")
        self.r = r
        self.variant = variant
        self._P = sbc_num_nodes(r, variant)
        if variant == "basic":
            # One pattern; diagonal position d gets extra node d mod r/2.
            base = r * (r - 1) // 2
            self._diag_patterns = [
                [base + (d % (r // 2)) for d in range(r)]
            ]
        else:
            if r == 2:
                # Single pair-node owns everything, including the diagonal.
                self._diag_patterns = [[0, 0]]
            elif r % 2:
                self._diag_patterns = _odd_diagonal_patterns(r)
            else:
                self._diag_patterns = _even_diagonal_patterns(r)
        self._diag_array = np.asarray(self._diag_patterns, dtype=np.int64)

    @property
    def num_nodes(self) -> int:
        return self._P

    @property
    def name(self) -> str:
        return f"SBC-{self.variant}(r={self.r})"

    @property
    def num_diag_patterns(self) -> int:
        return len(self._diag_patterns)

    def diagonal_patterns(self) -> list[list[int]]:
        """Copy of the diagonal pattern family (one list of r entries each)."""
        return [list(p) for p in self._diag_patterns]

    def owner(self, i: int, j: int) -> int:
        if i < 0 or j < 0:
            raise IndexError(f"tile indices must be non-negative, got ({i}, {j})")
        if i < j:
            # Symmetric canonicalization: only the lower triangle is stored.
            i, j = j, i
        x, y = i % self.r, j % self.r
        if x != y:
            return pair_index(x, y)
        # Diagonal pattern position; patterns cycle round-robin column-wise.
        pattern = (j // self.r) % len(self._diag_patterns)
        return self._diag_patterns[pattern][x]

    def owner_map(self, N: int) -> np.ndarray:
        idx = np.arange(N)
        x = idx % self.r
        lo = np.minimum(x[:, None], x[None, :])
        hi = np.maximum(x[:, None], x[None, :])
        out = hi * (hi - 1) // 2 + lo
        # Overwrite pattern-diagonal positions (x == y), choosing the
        # diagonal pattern from the *column* block index of the
        # lower-triangle representative of each tile.
        col_block = np.minimum(idx[:, None], idx[None, :]) // self.r
        pattern = col_block % len(self._diag_patterns)
        diag_mask = x[:, None] == x[None, :]
        out = np.where(diag_mask, self._diag_array[pattern, x[:, None]], out)
        return out

    def broadcast_fanout(self) -> int:
        """Nodes a full-row TRSM result is sent to (Theorem 1)."""
        return self.r - 1 if self.variant == "basic" else self.r - 2

    def validate(self) -> None:
        """Structural invariants of the pattern construction."""
        r = self.r
        for diag in self._diag_patterns:
            if len(diag) != r:
                raise AssertionError("diagonal pattern has wrong length")
            for d, node in enumerate(diag):
                if self.variant == "basic":
                    if not r * (r - 1) // 2 <= node < self._P:
                        raise AssertionError(
                            f"basic diagonal entry {node} is not an extra node"
                        )
                elif r > 2:
                    lo, hi = pair_from_index(node)
                    if d not in (lo, hi):
                        raise AssertionError(
                            f"diagonal entry at position {d} is pair {(lo, hi)}, "
                            f"which does not contain {d}: broadcast sets would grow"
                        )
        if self.variant == "extended" and r > 2:
            # Balance: over the whole family, each node appears the same
            # number of times on the diagonal (once for odd r, twice for even).
            counts = np.bincount(
                self._diag_array.ravel(), minlength=self._P
            )
            expected = 1 if r % 2 else 2
            if not np.all(counts == expected):
                raise AssertionError(
                    f"diagonal appearance counts {counts} != {expected}"
                )
