"""Static tile-to-node distributions: 2DBC, SBC, 1D row-cyclic, 2.5D."""

from .base import Distribution
from .block_cyclic import BlockCyclic2D, best_rectangle
from .row_cyclic import RowCyclic1D
from .sbc import SymmetricBlockCyclic, pair_from_index, pair_index, sbc_num_nodes
from .twod5 import TwoDotFiveD
from .visualize import (
    render_diagonal_patterns,
    render_owner_grid,
    render_pattern,
)
from .analysis import (
    BalanceReport,
    balance_report,
    load_imbalance,
    lower_tile_counts,
    trailing_imbalance_profile,
)

__all__ = [
    "Distribution",
    "BlockCyclic2D",
    "best_rectangle",
    "SymmetricBlockCyclic",
    "pair_index",
    "pair_from_index",
    "sbc_num_nodes",
    "RowCyclic1D",
    "TwoDotFiveD",
    "BalanceReport",
    "balance_report",
    "load_imbalance",
    "lower_tile_counts",
    "trailing_imbalance_profile",
    "render_owner_grid",
    "render_pattern",
    "render_diagonal_patterns",
]
