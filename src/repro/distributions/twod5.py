"""2.5D distributions: replication of a 2D distribution over ``c`` slices.

Following §IV of the paper, ``P = c * Q`` nodes are partitioned into ``c``
slices of ``Q`` nodes; each slice stores a full copy of the matrix laid out
with the same base 2D distribution.  Iteration ``i`` of the factorization
is performed entirely by slice ``i mod c``; the partial GEMM/SYRK updates
a tile accumulates on its ``c`` owner copies are combined by an explicit
reduction onto the slice that runs the tile's TRSM/POTRF iteration.

This module only provides the *geometry* (which global node owns the copy
of tile (i, j) held by slice ``s``); the reduction tasks themselves are
inserted by the graph builders (:mod:`repro.graph.cholesky`).
"""

from __future__ import annotations

from .base import Distribution

__all__ = ["TwoDotFiveD"]


class TwoDotFiveD:
    """Replicates ``base`` over ``c`` slices; node ids are ``s*Q + base_id``."""

    def __init__(self, base: Distribution, c: int):
        if c < 1:
            raise ValueError(f"slice count must be positive, got {c}")
        self.base = base
        self.c = c

    @property
    def num_nodes(self) -> int:
        return self.c * self.base.num_nodes

    @property
    def slice_size(self) -> int:
        return self.base.num_nodes

    @property
    def name(self) -> str:
        return f"2.5D[{self.base.name}, c={self.c}]"

    def slice_of_iteration(self, i: int) -> int:
        """Slice performing iteration ``i`` (round-robin, §IV)."""
        if i < 0:
            raise IndexError(f"iteration must be non-negative, got {i}")
        return i % self.c

    def owner(self, s: int, i: int, j: int) -> int:
        """Global node id of slice ``s``'s copy of tile (i, j)."""
        if not 0 <= s < self.c:
            raise IndexError(f"slice {s} out of range [0, {self.c})")
        return s * self.base.num_nodes + self.base.owner(i, j)

    def node_slice(self, node: int) -> int:
        """Slice a global node id belongs to."""
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} out of range [0, {self.num_nodes})")
        return node // self.base.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TwoDotFiveD {self.name} P={self.num_nodes}>"
