"""Text rendering of tile-to-node allocations (the paper's Figures 1-6).

``render_owner_grid`` draws the owner of every tile of an ``N x N`` grid;
``render_pattern`` draws one pattern period; ``render_diagonal_patterns``
lists an SBC distribution's diagonal-pattern family.  Useful both for
documentation and for eyeballing that a distribution does what its figure
in the paper shows — the test suite checks the renderings of the paper's
exact examples.
"""

from __future__ import annotations

from typing import Optional

from .base import Distribution
from .sbc import SymmetricBlockCyclic

__all__ = ["render_owner_grid", "render_pattern", "render_diagonal_patterns"]


def _cell(value: int, width: int) -> str:
    return str(value).rjust(width)


def render_owner_grid(
    dist: Distribution,
    N: int,
    lower_only: bool = False,
    block: Optional[int] = None,
) -> str:
    """Owners of the N x N tile grid, one row per line.

    ``lower_only`` blanks the upper triangle (symmetric storage view);
    ``block`` inserts separators every ``block`` tiles to make the
    repeating pattern visible.
    """
    if N < 1:
        raise ValueError(f"need at least one tile, got N={N}")
    owners = dist.owner_map(N)
    width = max(2, len(str(int(owners.max()))) + 1)
    lines: list[str] = []
    hsep = None
    if block:
        cells = ("-" * width + "-") * block
        groups = -(-N // block)
        hsep = "+".join([cells] * groups)
    for i in range(N):
        row = []
        for j in range(N):
            if lower_only and j > i:
                row.append(" " * width)
            else:
                row.append(_cell(int(owners[i, j]), width))
            if block and (j + 1) % block == 0 and j + 1 < N:
                row.append(" |")
        lines.append(" ".join(row))
        if block and (i + 1) % block == 0 and i + 1 < N and hsep:
            lines.append(hsep)
    return "\n".join(lines)


def render_pattern(dist: Distribution, period: int) -> str:
    """One pattern period of a distribution (e.g. r x r for SBC)."""
    return render_owner_grid(dist, period)


def render_diagonal_patterns(dist: SymmetricBlockCyclic) -> str:
    """The diagonal-pattern family of an SBC distribution, one per line."""
    if not isinstance(dist, SymmetricBlockCyclic):
        raise TypeError("diagonal patterns only exist for SymmetricBlockCyclic")
    lines = []
    for idx, pattern in enumerate(dist.diagonal_patterns()):
        entries = " ".join(str(node) for node in pattern)
        lines.append(f"pattern {idx}: [{entries}]")
    return "\n".join(lines)
