"""Abstract interface for static tile-to-node distributions.

A distribution assigns each tile (i, j) of the tiled matrix to one of
``num_nodes`` computing nodes.  Following the paper, distributions are
static: ownership never changes during an operation (redistribution between
operations is expressed explicitly with remap tasks, see
:mod:`repro.graph.redistribution`).

All tasks that *modify* a tile run on its owner (the *owner computes* rule),
so the distribution fully determines task placement and, with it, the
communication volume of the algorithm.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Distribution"]


class Distribution(abc.ABC):
    """Maps tile coordinates to node identifiers in ``range(num_nodes)``."""

    @property
    @abc.abstractmethod
    def num_nodes(self) -> int:
        """Total number of computing nodes used by this distribution."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short human-readable identifier (used in reports and plots)."""

    @abc.abstractmethod
    def owner(self, i: int, j: int) -> int:
        """Node owning tile (i, j).

        Symmetric distributions may canonicalize to the lower triangle
        (``owner(i, j) == owner(j, i)``); the block-cyclic family does not.
        """

    def owner_map(self, N: int) -> np.ndarray:
        """Dense ``N x N`` int array of owners; subclasses may vectorize.

        The default implementation loops over :meth:`owner`, which is
        adequate for correctness tests; performance-critical counters use
        the vectorized overrides.
        """
        out = np.empty((N, N), dtype=np.int64)
        for i in range(N):
            for j in range(N):
                out[i, j] = self.owner(i, j)
        return out

    def validate(self) -> None:
        """Hook for structural self-checks; raises on inconsistency."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} P={self.num_nodes}>"
