#!/usr/bin/env python
"""Scaling study: SBC vs 2DBC performance across matrix and cluster sizes.

Reproduces the shape of the paper's Figures 10 and 11 with the runtime
simulator: per-node GFlop/s as the matrix grows (for each r in 6..9) and a
strong-scaling comparison at fixed matrix size.  Matrix sizes are scaled
down from the paper's (which reach n = 300000) to keep the simulated task
graphs tractable in pure Python; the qualitative picture — SBC above 2DBC
everywhere, with the gap widest in the communication-bound regime — is
scale-independent.

Usage:  python examples/scaling_study.py [--full]
"""

import sys

from repro.config import bora
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
from repro.graph import build_cholesky_graph
from repro.runtime import simulate

# (r, 2DBC option) pairs from Table I.
CONFIGS = [
    (6, (5, 3)),
    (7, (7, 3)),
    (8, (7, 4)),
    (9, (6, 6)),
]


def perf(dist, N, b=500):
    graph = build_cholesky_graph(N, b, dist)
    return simulate(graph, bora(dist.num_nodes)).gflops_per_node


def growth_curves(sizes) -> None:
    print("=== Per-node performance vs matrix size (cf. Figure 10) ===")
    for r, (p, q) in CONFIGS:
        sbc = SymmetricBlockCyclic(r)
        bc = BlockCyclic2D(p, q)
        print(f"\nP = {sbc.num_nodes} ({sbc.name}) vs P = {bc.num_nodes} ({bc.name})")
        print(f"{'n':>10} {'SBC GF/s/node':>15} {'2DBC GF/s/node':>15} {'gain':>7}")
        for N in sizes:
            g_sbc = perf(sbc, N)
            g_bc = perf(bc, N)
            print(f"{N * 500:>10} {g_sbc:>15.1f} {g_bc:>15.1f} "
                  f"{(g_sbc / g_bc - 1) * 100:>6.1f}%")


def strong_scaling(N) -> None:
    print(f"\n=== Strong scaling at n = {N * 500} (cf. Figure 11) ===")
    print(f"{'config':>14} {'P':>4} {'GF/s/node':>11} {'total GF/s':>11}")
    for r, (p, q) in CONFIGS:
        for dist in (SymmetricBlockCyclic(r), BlockCyclic2D(p, q)):
            g = perf(dist, N)
            print(f"{dist.name:>14} {dist.num_nodes:>4} {g:>11.1f} "
                  f"{g * dist.num_nodes:>11.0f}")


def main() -> None:
    full = "--full" in sys.argv
    sizes = (20, 40, 60, 90) if not full else (25, 50, 100, 150, 200)
    growth_curves(sizes)
    strong_scaling(60 if not full else 120)
    print("\nSBC keeps more of the per-node throughput as P grows: its "
          "broadcasts hit r-2 ~ sqrt(2P) nodes instead of p+q-2 ~ 2 sqrt(P).")


if __name__ == "__main__":
    main()
