#!/usr/bin/env python
"""POSV and POTRI workflows: SBC beyond the factorization itself.

Reproduces the paper's §V-F at example scale:

* POSV — Cholesky + two triangular solves against a one-tile-wide RHS held
  in a 1D row-cyclic layout; the gain from SBC is diluted by the
  distribution-independent solve phase.
* POTRI — Cholesky + TRTRI + LAUUM.  TRTRI's nonsymmetric dependencies
  favour 2DBC, so the paper's mixed strategy remaps the matrix to 2DBC for
  TRTRI and back to SBC for LAUUM; all three variants are compared by
  exact counted communication volume, and the mixed strategy is validated
  numerically.

Usage:  python examples/solve_and_invert.py
"""

import numpy as np

import repro
from repro.comm import count_communications
from repro.distributions import BlockCyclic2D, RowCyclic1D, SymmetricBlockCyclic
from repro.graph import build_posv_graph, build_potri_graph
from repro.kernels.reference import posv_reference, potri_reference


def posv_demo() -> None:
    print("=== POSV: solve A x = B (cf. Figure 13) ===")
    sbc = SymmetricBlockCyclic(4)
    x, info = repro.solve(n=256, b=32, dist=sbc, width=32)
    err = np.abs(x - posv_reference(info["a"], info["b"])).max()
    print(f"solution error vs SciPy: {err:.2e}")

    # Communication of the full POSV graph: SBC vs 2DBC for A.
    N, b = 40, 500
    for dist in (sbc, BlockCyclic2D(3, 2)):
        g = build_posv_graph(N, b, dist, RowCyclic1D(dist.num_nodes))
        c = count_communications(g)
        print(f"  {dist.name:>12}: {c.total_bytes / 1e9:6.2f} GB "
              f"({c.num_messages} messages)")
    print("The solve phases communicate the same volume under both layouts,"
          "\nso SBC's relative gain is smaller than for POTRF alone.\n")


def potri_demo() -> None:
    print("=== POTRI: invert A (cf. Figure 14) ===")
    sbc = SymmetricBlockCyclic(4)
    bc = BlockCyclic2D(3, 2)
    inv, info = repro.inverse(n=256, b=32, dist=sbc, trtri_dist=bc)
    err = np.abs(inv - potri_reference(info["a"])).max()
    print(f"inverse error vs SciPy (SBC remap 2DBC strategy): {err:.2e}")

    N, b = 40, 500
    variants = {
        "pure 2DBC": build_potri_graph(N, b, bc),
        "pure SBC": build_potri_graph(N, b, sbc),
        "SBC remap 2DBC": build_potri_graph(N, b, sbc, trtri_dist=bc),
    }
    print(f"POTRI communication at N={N} tiles, P={sbc.num_nodes}:")
    for name, g in variants.items():
        c = count_communications(g)
        kinds = c.messages_by_kind
        remaps = kinds.get("REMAP", 0)
        print(f"  {name:>15}: {c.total_bytes / 1e9:6.2f} GB "
              f"(REMAP messages: {remaps})")
    print("TRTRI broadcasts along rows AND columns independently, which "
          "\nfavours 2DBC; remapping pays off once P is large (paper: P >= 28).")


if __name__ == "__main__":
    posv_demo()
    potri_demo()
