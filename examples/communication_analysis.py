#!/usr/bin/env python
"""Communication analysis: counted volumes, bounds and out-of-core models.

Walks through the paper's analytical story without running any simulation:

1. exact counted POTRF volume vs the closed forms of Theorem 1 (Figure 8);
2. the sqrt(2) asymptotic gap between SBC and square 2DBC (§III-D);
3. arithmetic intensities and the connection to sequential out-of-core
   algorithms (§III-E), including Béreux's blocked algorithm simulated
   against an explicit memory model;
4. 2.5D volumes and the optimal slice count r = 2c (§IV).

Usage:  python examples/communication_analysis.py
"""

import math

from repro.comm import (
    bc2d_cholesky_volume,
    beaumont_lower_bound,
    bereux_volume,
    cholesky_message_count,
    confchox_volume,
    measured_cholesky_intensity,
    memory_per_node_2d,
    optimal_sbc25d_parameters,
    sbc25d_volume_elements,
    sbc_cholesky_volume,
    storage_tiles,
)
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
from repro.ooc import block_left_looking_volume, panel_left_looking_volume


def counted_vs_formula() -> None:
    print("=== Counted volume vs Theorem 1 (messages, in tiles) ===")
    r = 7
    sbc = SymmetricBlockCyclic(r)
    bc = BlockCyclic2D(5, 4)
    print(f"{'N':>6} {'SBC counted':>12} {'S(r-2)':>10} {'2DBC counted':>13} {'S(p+q-2)':>10}")
    for N in (30, 60, 120, 240):
        print(f"{N:>6} {cholesky_message_count(sbc, N):>12} "
              f"{int(sbc_cholesky_volume(N, r)):>10} "
              f"{cholesky_message_count(bc, N):>13} "
              f"{int(bc2d_cholesky_volume(N, 5, 4)):>10}")
    print("Counted volumes converge to the theorem's leading terms from below\n"
          "(broadcasts near the matrix edge reach fewer nodes).\n")


def intensity_story() -> None:
    print("=== Arithmetic intensity (flops per transferred element) ===")
    b, N = 8, 192
    sbc = SymmetricBlockCyclic(8, variant="basic")  # P = 32
    bc = BlockCyclic2D(6, 5)  # P = 30
    for d in (sbc, bc):
        M = memory_per_node_2d(N * b, d.num_nodes)
        rho = measured_cholesky_intensity(d, N, b)
        print(f"  {d.name:>16}: rho = {rho:8.1f}   "
              f"(2/3)sqrt(M) = {2 / 3 * math.sqrt(M):8.1f}   "
              f"rho/sqrt(M) = {rho / math.sqrt(M):.3f}")
    print("SBC reaches the (2/3)sqrt(M) of Béreux's sequential algorithm;\n"
          "2DBC is stuck a factor sqrt(2) lower for Cholesky (§III-E).\n")


def out_of_core() -> None:
    print("=== Sequential out-of-core Cholesky (elements transferred) ===")
    n, M = 16000, 100_000
    print(f"n = {n}, fast memory M = {M}")
    rows = [
        ("lower bound n^3/(3 sqrt(2) sqrt(M))", beaumont_lower_bound(n, M)),
        ("Béreux leading term n^3/(3 sqrt(M))", bereux_volume(n, M)),
        ("blocked left-looking (simulated)", block_left_looking_volume(n, M)),
        ("naive panel left-looking (simulated)", panel_left_looking_volume(n, M)),
        ("COnfCHOX-style n^3/sqrt(M)", confchox_volume(n, M)),
        ("2.5D SBC n^3/(2 sqrt(M)) [this paper]", sbc25d_volume_elements(n, M)),
    ]
    for name, v in rows:
        print(f"  {name:>40}: {v / 1e9:9.3f} G elements")
    print()


def twofive_d() -> None:
    print("=== 2.5D: optimal replication (§IV-B) ===")
    for P in (128, 1024, 8192):
        r, c = optimal_sbc25d_parameters(P)
        S = storage_tiles(100)
        vol = S * (r + c - 2)
        vol_bc = S * (3 * P ** (1 / 3) - 3)
        print(f"  P = {P:5}: r = {r:6.1f}, c = {c:5.1f} (r = 2c), "
              f"volume ratio 2.5D-BC / 2.5D-SBC = {vol_bc / vol:.3f}")
    print(f"  asymptotic ratio: cbrt(2) = {2 ** (1 / 3):.3f}")


if __name__ == "__main__":
    counted_vs_formula()
    intensity_story()
    out_of_core()
    twofive_d()
