#!/usr/bin/env python
"""Distributed Cholesky over real OS processes with measured traffic.

Launches one process per node (the paper uses one MPI rank per node), each
owning its tiles under the chosen distribution.  Tiles produced by TRSM and
POTRF travel between processes as real messages; every process counts the
bytes it sends.  The run is validated against SciPy and the measured
traffic is compared with the analytic prediction — they must agree exactly,
which is the reproduction of the paper's Figure 8 "measured volume" claim
at laptop scale.

Usage:  python examples/distributed_cholesky.py [r]
"""

import sys

import numpy as np
import scipy.linalg

from repro.comm import count_communications
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic, best_rectangle
from repro.graph import build_cholesky_graph
from repro.runtime import InitialDataSpec, assemble_lower, execute_distributed
from repro.tiles import TileGrid, random_spd_dense


def run_one(dist, N, b, seed=0):
    grid = TileGrid(n=N * b, b=b)
    graph = build_cholesky_graph(N, b, dist)
    report = execute_distributed(graph, InitialDataSpec(grid, seed=seed), timeout=300)

    L = assemble_lower(graph, report.store, grid)
    ref = scipy.linalg.cholesky(random_spd_dense(N * b, seed=seed, b=b), lower=True)
    err = np.abs(L - ref).max()

    predicted = count_communications(graph)
    print(f"\n{dist.name}: P = {dist.num_nodes} processes, n = {N * b} (N = {N} tiles)")
    print(f"  numerical error vs SciPy : {err:.2e}")
    print(f"  measured traffic         : {report.total_bytes / 1e6:.2f} MB "
          f"in {report.total_messages} messages")
    print(f"  predicted traffic        : {predicted.total_bytes / 1e6:.2f} MB "
          f"in {predicted.num_messages} messages")
    assert report.total_bytes == predicted.total_bytes, "prediction mismatch!"
    busiest = max(report.sent_bytes.items(), key=lambda kv: kv[1])
    print(f"  busiest sender           : node {busiest[0]} "
          f"({busiest[1] / 1e6:.2f} MB)")
    return report


def main() -> None:
    r = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    N, b = 12, 32

    sbc = SymmetricBlockCyclic(r)
    rep_sbc = run_one(sbc, N, b)

    bc = best_rectangle(sbc.num_nodes)
    rep_bc = run_one(bc, N, b)

    ratio = rep_bc.total_bytes / max(rep_sbc.total_bytes, 1)
    print(f"\nSBC moved {ratio:.2f}x less data than {bc.name} at equal node count")
    print("(the ratio approaches sqrt(2) ~ 1.41 as the matrix grows — Theorem 1).")


if __name__ == "__main__":
    main()
