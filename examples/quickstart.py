#!/usr/bin/env python
"""Quickstart: factor a matrix with SBC and see why it communicates less.

Runs a real tiled Cholesky factorization under the Symmetric Block-Cyclic
distribution, validates it against SciPy, then compares the exact counted
communication volume of SBC and 2D block-cyclic at equal node counts and
simulates both on the paper's *bora* cluster model.

Usage:  python examples/quickstart.py
"""

import numpy as np
import scipy.linalg

import repro


def main() -> None:
    # --- 1. Real numerics: factor a 512x512 SPD matrix on P=21 "nodes" ----
    r = 7
    sbc = repro.SymmetricBlockCyclic(r)  # P = r(r-1)/2 = 21 nodes
    print(f"Distribution: {sbc.name}, P = {sbc.num_nodes} nodes")

    L, info = repro.cholesky(n=512, b=64, dist=sbc)
    err = np.abs(L - scipy.linalg.cholesky(info["a"], lower=True)).max()
    print(f"Factorization of a 512x512 SPD matrix: max |L - L_ref| = {err:.2e}")
    print(f"Tasks executed: {info['num_tasks']}, "
          f"communication: {info['comm'].total_gbytes * 1e3:.2f} MB\n")

    # --- 2. Communication volume: SBC vs 2DBC at the paper's scale --------
    b = 500  # the paper's tile size (2 MB per tile)
    bc_best = repro.BlockCyclic2D(5, 4)   # P = 20, the paper's fair option
    bc_same = repro.BlockCyclic2D(7, 3)   # P = 21, exact same node count
    print(f"POTRF communication volume (GB), tile size b={b}:")
    print(f"{'n':>10} {'SBC r=7':>12} {'2DBC 5x4':>12} {'2DBC 7x3':>12}")
    for N in (50, 100, 200, 400):
        row = [repro.communication_volume(d, N, b) for d in (sbc, bc_best, bc_same)]
        print(f"{N * b:>10} {row[0]:>12.1f} {row[1]:>12.1f} {row[2]:>12.1f}")
    print("SBC transfers ~sqrt(2) fewer bytes than the best 2DBC (Theorem 1).\n")

    # --- 3. Simulated time on the paper's platform ------------------------
    N = 60  # n = 30000
    machine = repro.bora(21)
    rep_sbc = repro.simulate_cholesky(ntiles=N, b=b, dist=sbc, machine=machine)
    rep_bc = repro.simulate_cholesky(ntiles=N, b=b, dist=bc_same, machine=machine)
    print(f"Simulated POTRF, n = {N * b}, P = 21 (34 cores/node, 100 Gb/s):")
    print(f"  SBC  r=7 : {rep_sbc.gflops_per_node:7.1f} GFlop/s/node "
          f"({rep_sbc.comm_bytes / 1e9:.1f} GB moved)")
    print(f"  2DBC 7x3 : {rep_bc.gflops_per_node:7.1f} GFlop/s/node "
          f"({rep_bc.comm_bytes / 1e9:.1f} GB moved)")
    gain = rep_sbc.gflops_per_node / rep_bc.gflops_per_node - 1
    print(f"  -> SBC is {gain * 100:.0f}% faster in the communication-bound regime")


if __name__ == "__main__":
    main()
