#!/usr/bin/env python
"""Anatomy of a simulated run: critical path, utilization, comm options.

Uses the simulator's tracing tools to show *why* SBC runs faster than
2DBC — not just that it does:

1. realized critical-path breakdown (compute vs transfer queue vs wire);
2. worker-utilization timeline (ramp-up, plateau, endgame starvation);
3. per-iteration communication intensity (§III-E's shrinking domain);
4. what-if runs with the communication optimizations the paper notes
   Chameleon lacks: binomial broadcast trees and message aggregation.

Usage:  python examples/runtime_anatomy.py
"""

from repro.comm import communication_profile
from repro.config import bora
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
from repro.graph import build_cholesky_graph
from repro.runtime import (
    critical_path_breakdown,
    simulate,
    utilization_timeline,
)

N, B = 48, 500


def spark(fracs) -> str:
    blocks = " .:-=+*#%@"
    return "".join(blocks[min(int(f * (len(blocks) - 1)), len(blocks) - 1)] for f in fracs)


def main() -> None:
    sbc = SymmetricBlockCyclic(8)
    bc = BlockCyclic2D(7, 4)

    print(f"=== Critical path: where does the makespan go? (n={N * B}, P=28) ===")
    reports = {}
    for dist in (sbc, bc):
        g = build_cholesky_graph(N, B, dist)
        rep = simulate(g, bora(dist.num_nodes), trace=True)
        reports[dist.name] = (g, rep)
        bd = critical_path_breakdown(g, rep)
        print(f"{dist.name:>18}: {bd}")
    print("SBC's critical path spends less time on the wire: each panel tile"
          "\ncrosses to r-2 = 6 nodes instead of p+q-2 = 9.\n")

    print("=== Worker utilization over time (34 cores x 28 nodes) ===")
    for name, (g, rep) in reports.items():
        tl = utilization_timeline(rep, buckets=60)
        print(f"{name:>18}: [{spark([u for _t, u in tl])}]")
    print("Ramp-up, plateau, endgame: the endgame is where communication"
          "\nlatency decides who finishes first.\n")

    print("=== Per-iteration arithmetic intensity (flops per byte moved) ===")
    g, _ = reports[sbc.name]
    prof = [p for p in communication_profile(g) if p.bytes > 0]
    marks = [prof[0], prof[len(prof) // 2], prof[-2]]
    for p in marks:
        print(f"  iteration {p.iteration:>3}: {p.intensity:8.1f} flop/B "
              f"({p.bytes / 1e9:.2f} GB moved)")
    print("The trailing matrix shrinks, dropping the intensity — the 2/3"
          "\nfactor of §III-E.\n")

    print("=== What-if: the optimizations the paper says Chameleon lacks ===")
    g = build_cholesky_graph(N, B, sbc)
    base = simulate(g, bora(28))
    tree = simulate(g, bora(28), broadcast="tree")
    aggr = simulate(g, bora(28), aggregate=True)
    print(f"  point-to-point (paper's setup): {base.makespan:.3f}s "
          f"({base.comm_messages} messages)")
    print(f"  + binomial broadcast trees    : {tree.makespan:.3f}s "
          f"({tree.comm_messages} messages)")
    print(f"  + message aggregation         : {aggr.makespan:.3f}s "
          f"({aggr.comm_messages} messages)")
    print("Trees spread the fan-out load and help; naive aggregation saves"
          "\nmessages but delays critical tiles inside larger blobs.")


if __name__ == "__main__":
    main()
