#!/usr/bin/env python
"""Writing your own distribution: a row-cycled SBC variant.

The paper closes by noting that a sqrt(2) gap remains between SBC and the
Cholesky lower bound, inviting new distribution designs.  This example
shows the full workflow for experimenting with one:

1. subclass ``repro.distributions.Distribution``;
2. check its structural invariants and load balance;
3. count its exact communication volume against SBC and 2DBC;
4. simulate it on the paper's platform.

The variant implemented here keeps SBC's generic pattern but cycles the
diagonal-pattern family by block *row* instead of block column.  The
communication volume is exactly SBC's (the Theorem 1 clique invariant only
needs the diagonal entry at position d to be a pair containing d), but the
diagonal tiles of a panel column spread over several owners instead of
landing on one — removing a per-panel hot sender (see DESIGN.md §5).

Usage:  python examples/custom_distribution.py
"""

import numpy as np

from repro.comm import cholesky_volume_exact, count_communications
from repro.config import bora
from repro.distributions import (
    BlockCyclic2D,
    SymmetricBlockCyclic,
    lower_tile_counts,
)
from repro.distributions.sbc import pair_from_index, pair_index
from repro.graph import build_cholesky_graph
from repro.runtime import simulate


class RowCycledSBC(SymmetricBlockCyclic):
    """SBC with the diagonal-pattern choice cycled by block row."""

    @property
    def name(self) -> str:
        return f"SBC-rowcycle(r={self.r})"

    def owner(self, i: int, j: int) -> int:
        if i < j:
            i, j = j, i
        x, y = i % self.r, j % self.r
        if x != y:
            return pair_index(x, y)
        pattern = (i // self.r) % self.num_diag_patterns
        return self._diag_patterns[pattern][x]

    def owner_map(self, N: int) -> np.ndarray:
        out = np.empty((N, N), dtype=np.int64)
        for i in range(N):
            for j in range(N):
                out[i, j] = self.owner(i, j)
        return out


def main() -> None:
    r = 8
    candidates = [RowCycledSBC(r), SymmetricBlockCyclic(r), BlockCyclic2D(7, 4)]

    print("=== 1. Structural invariants ===")
    custom = candidates[0]
    for pattern in custom.diagonal_patterns():
        for d, node in enumerate(pattern):
            assert d in pair_from_index(node), "clique invariant broken!"
    print("every diagonal entry at position d is a pair containing d: "
          "Theorem 1's r-2 fan-out is preserved\n")

    N = 120
    print(f"=== 2. Load balance over {N}x{N} tiles ===")
    for dist in candidates:
        counts = lower_tile_counts(dist, N)
        print(f"  {dist.name:>20}: tiles/node in [{counts.min()}, {counts.max()}] "
              f"(imbalance {counts.max() / counts.mean():.3f})")
    print()

    print("=== 3. Exact communication volume (GB at b=500) ===")
    for dist in candidates:
        vol = cholesky_volume_exact(dist, N, 500) / 1e9
        print(f"  {dist.name:>20}: {vol:8.1f} GB")
    print("the row-cycled variant moves exactly SBC's bytes\n")

    print("=== 4. Simulated performance on bora (n=30000, P=28) ===")
    for dist in candidates:
        g = build_cholesky_graph(60, 500, dist)
        rep = simulate(g, bora(dist.num_nodes))
        print(f"  {dist.name:>20}: {rep.gflops_per_node:7.1f} GFlop/s/node")
    print("\nSame volume, slightly different schedule: distribution design"
          "\nchanges both what moves and when — measure both.")


if __name__ == "__main__":
    main()
