#!/usr/bin/env python
"""Figure 7 with *real* execution: tile-size tuning on this machine.

The other benches time a simulated bora node; this example actually runs
the tiled Cholesky through the threaded local runtime for several tile
sizes and measures wall-clock time on YOUR machine — the experiment the
paper performs (at n=50000 on 36 cores) to pick b=500.

Expect the same tradeoff, shifted by your BLAS and core count: small
tiles drown in per-task overhead, huge tiles leave threads idle, and a
sweet spot sits in between.  Every run is validated against SciPy.

Usage:  python examples/real_tile_size.py [n] [threads]
"""

import sys
import time

import numpy as np
import scipy.linalg

import repro


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    threads = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    dist = repro.BlockCyclic2D(1, 1)  # single "node": pure tile-size study

    a = repro.tiles.random_spd_dense(n, seed=0, b=64)
    t0 = time.perf_counter()
    scipy.linalg.cholesky(a, lower=True)
    t_ref = time.perf_counter() - t0
    flops = repro.kernels.cholesky_flops(n)
    print(f"n = {n}, {threads} worker threads "
          f"(SciPy dense reference: {t_ref:.2f}s, "
          f"{flops / t_ref / 1e9:.1f} GFlop/s)\n")
    print(f"{'b':>6} {'tiles':>6} {'tasks':>8} {'time':>8} {'GFlop/s':>9} {'vs best':>8}")

    tile_sizes = [b for b in (32, 64, 128, 256, 512) if n % b == 0 and n // b >= 1]
    results = []
    for b in tile_sizes:
        t0 = time.perf_counter()
        L, info = repro.cholesky(n=n, b=b, dist=dist, runtime="threads",
                                 num_threads=threads)
        dt = time.perf_counter() - t0
        # The seeded matrix depends on the tile size: validate per run.
        err = np.abs(L - scipy.linalg.cholesky(info["a"], lower=True)).max()
        assert err < 1e-8, f"numerical mismatch at b={b}: {err}"
        results.append((b, info["num_tasks"], dt))
    best = min(dt for _b, _t, dt in results)
    for b, ntasks, dt in results:
        print(f"{b:>6} {n // b:>6} {ntasks:>8} {dt:>7.2f}s "
              f"{flops / dt / 1e9:>9.1f} {dt / best:>7.2f}x")
    print("\nSmall tiles pay Python/task overhead; large tiles starve the "
          "pool.\n(The paper's MKL-backed sweet spot is b=500 at n=50000.)")


if __name__ == "__main__":
    main()
