"""Cross-cutting property-based tests (hypothesis).

These sweep randomized configurations through whole pipelines: graph
builders stay structurally valid, every runtime computes the same numbers,
the simulator conserves work and traffic, and the distributions keep their
invariants under arbitrary sizes.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import cholesky_message_count, count_communications
from repro.config import KernelModel, MachineSpec, NetworkSpec
from repro.distributions import (
    BlockCyclic2D,
    RowCyclic1D,
    SymmetricBlockCyclic,
    TwoDotFiveD,
)
from repro.graph import (
    build_cholesky_graph,
    build_cholesky_graph_25d,
    build_posv_graph,
    expected_cholesky_counts,
    kind_counts,
    validate_graph,
)
from repro.runtime import InitialDataSpec, execute_graph, simulate
from repro.runtime.local import final_versions
from repro.tiles import TileGrid


def dist_strategy():
    """Random small distributions of every family."""
    bc = st.tuples(st.integers(1, 4), st.integers(1, 4)).map(
        lambda pq: BlockCyclic2D(*pq)
    )
    sbc = st.integers(3, 7).map(SymmetricBlockCyclic)
    sbc_basic = st.sampled_from([4, 6, 8]).map(
        lambda r: SymmetricBlockCyclic(r, variant="basic")
    )
    return st.one_of(bc, sbc, sbc_basic)


@settings(max_examples=40, deadline=None)
@given(dist=dist_strategy(), N=st.integers(1, 12))
def test_cholesky_builder_always_valid(dist, N):
    g = build_cholesky_graph(N, 8, dist)
    validate_graph(g)
    assert kind_counts(g) == {
        k: v for k, v in expected_cholesky_counts(N).items() if v > 0
    }
    for t in g.tasks:
        assert 0 <= t.node < dist.num_nodes


@settings(max_examples=25, deadline=None)
@given(dist=dist_strategy(), N=st.integers(1, 10), c=st.integers(1, 3))
def test_25d_builder_always_valid(dist, N, c):
    d25 = TwoDotFiveD(dist, c)
    g = build_cholesky_graph_25d(N, 8, d25)
    validate_graph(g)
    for t in g.tasks:
        assert 0 <= t.node < d25.num_nodes


@settings(max_examples=15, deadline=None)
@given(dist=dist_strategy(), N=st.integers(2, 7), seed=st.integers(0, 100))
def test_runtimes_agree_numerically(dist, N, seed):
    """Sequential and threaded execution produce identical final tiles."""
    b = 8
    g = build_cholesky_graph(N, b, dist)
    grid = TileGrid(n=N * b, b=b)
    s1 = execute_graph(g, InitialDataSpec(grid, seed=seed))
    s2 = execute_graph(g, InitialDataSpec(grid, seed=seed), num_threads=4)
    for key in final_versions(g).values():
        np.testing.assert_allclose(s1[key], s2[key], atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(dist=dist_strategy(), N=st.integers(1, 12))
def test_simulator_conservation(dist, N):
    """Traffic equals the exact counter; busy time equals summed durations."""
    b = 32
    g = build_cholesky_graph(N, b, dist)
    m = MachineSpec(
        nodes=dist.num_nodes,
        cores=2,
        network=NetworkSpec(bandwidth=1e9, latency=1e-5),
        kernel=KernelModel(peak_flops=1e9),
    )
    rep = simulate(g, m)
    assert rep.comm_bytes == count_communications(g).total_bytes
    expected_busy = sum(m.kernel.duration(t.flops, b) for t in g.tasks)
    assert sum(rep.busy_time) == pytest.approx(expected_busy, rel=1e-9)
    assert rep.makespan >= max(
        (m.kernel.duration(t.flops, b) for t in g.tasks), default=0.0
    )


@settings(max_examples=20, deadline=None)
@given(
    dist=dist_strategy(),
    N=st.integers(1, 12),
    mode=st.sampled_from(["direct", "tree"]),
    aggregate=st.booleans(),
)
def test_simulator_bytes_invariant_under_comm_options(dist, N, mode, aggregate):
    """Broadcast trees and aggregation never change the bytes moved."""
    g = build_cholesky_graph(N, 32, dist)
    m = MachineSpec(nodes=dist.num_nodes, cores=2,
                    network=NetworkSpec(bandwidth=1e9, latency=1e-5))
    rep = simulate(g, m, broadcast=mode, aggregate=aggregate)
    assert rep.comm_bytes == count_communications(g).total_bytes


@settings(max_examples=30, deadline=None)
@given(dist=dist_strategy(), N=st.integers(1, 14), width=st.integers(1, 3))
def test_posv_builder_always_valid(dist, N, width):
    g = build_posv_graph(N, 8, dist, RowCyclic1D(dist.num_nodes), width=width)
    validate_graph(g)


@settings(max_examples=30, deadline=None)
@given(N=st.integers(1, 40), r=st.integers(3, 8))
def test_sbc_volume_bound_holds_universally(N, r):
    """Theorem 1's bound is a true upper bound at every size."""
    d = SymmetricBlockCyclic(r)
    assert cholesky_message_count(d, N) <= N * (N + 1) // 2 * (r - 2)


@settings(max_examples=30, deadline=None)
@given(N=st.integers(1, 40), p=st.integers(1, 6), q=st.integers(1, 6))
def test_bc_volume_bound_holds_universally(N, p, q):
    d = BlockCyclic2D(p, q)
    assert cholesky_message_count(d, N) <= N * (N + 1) // 2 * (p + q - 2)


@settings(max_examples=10, deadline=None)
@given(N=st.integers(2, 10), seed=st.integers(0, 50))
def test_simulation_is_deterministic(N, seed):
    """Two simulations of the same graph agree to the last event."""
    rng = np.random.default_rng(seed)
    dist = SymmetricBlockCyclic(int(rng.integers(3, 6)))
    g = build_cholesky_graph(N, 32, dist)
    m = MachineSpec(nodes=dist.num_nodes, cores=2)
    r1 = simulate(g, m)
    r2 = simulate(g, m)
    assert r1.makespan == r2.makespan
    assert r1.comm_messages == r2.comm_messages


@settings(max_examples=15, deadline=None)
@given(
    nb=st.integers(2, 6),
    q=st.integers(4, 12),
    ragged=st.integers(0, 3),
    seed=st.integers(0, 20),
)
def test_ooc_execution_matches_analytic_traffic(nb, q, ragged, seed):
    """The executed out-of-core Cholesky always moves exactly the elements
    the analytic Béreux counter predicts, for any block geometry."""
    import scipy.linalg

    from repro.ooc import block_left_looking_volume, execute_block_left_looking
    from repro.tiles import random_spd_dense

    n = nb * q - min(ragged, q - 1)  # possibly ragged last block
    a = random_spd_dense(n, seed=seed, b=max(2, n // 2))
    res = execute_block_left_looking(a, M=3 * q * q, q=q)
    assert res.total_transfers == block_left_looking_volume(n, 3 * q * q, q=q)
    np.testing.assert_allclose(
        res.factor, scipy.linalg.cholesky(a, lower=True), atol=1e-8
    )
