"""Tests for the high-level repro.api facade."""

import numpy as np
import pytest
import scipy.linalg

import repro
from repro.kernels.reference import posv_reference, potri_reference


class TestCholeskyApi:
    def test_returns_factor_and_info(self):
        L, info = repro.cholesky(n=64, b=16, dist=repro.SymmetricBlockCyclic(3))
        np.testing.assert_allclose(
            L, scipy.linalg.cholesky(info["a"], lower=True), atol=1e-9
        )
        assert info["num_tasks"] > 0
        assert info["comm"].total_bytes >= 0

    def test_threads_runtime(self):
        L, info = repro.cholesky(
            n=64, b=16, dist=repro.BlockCyclic2D(2, 2), runtime="threads"
        )
        np.testing.assert_allclose(
            L, scipy.linalg.cholesky(info["a"], lower=True), atol=1e-9
        )

    def test_rejects_non_dividing_tile(self):
        with pytest.raises(ValueError):
            repro.cholesky(n=65, b=16, dist=repro.BlockCyclic2D(2, 2))

    def test_rejects_unknown_runtime(self):
        with pytest.raises(ValueError):
            repro.cholesky(n=32, b=16, dist=repro.BlockCyclic2D(1, 1), runtime="mpi")


class TestSolveApi:
    def test_solution(self):
        x, info = repro.solve(n=64, b=16, dist=repro.SymmetricBlockCyclic(3), width=4)
        np.testing.assert_allclose(x, posv_reference(info["a"], info["b"]), atol=1e-9)

    def test_default_width_is_tile(self):
        x, _ = repro.solve(n=48, b=16, dist=repro.BlockCyclic2D(2, 2))
        assert x.shape == (48, 16)


class TestInverseApi:
    def test_inverse(self):
        inv, info = repro.inverse(n=64, b=16, dist=repro.SymmetricBlockCyclic(3))
        np.testing.assert_allclose(inv, potri_reference(info["a"]), atol=1e-8)

    def test_inverse_with_remap(self):
        inv, info = repro.inverse(
            n=64,
            b=16,
            dist=repro.SymmetricBlockCyclic(4),
            trtri_dist=repro.BlockCyclic2D(3, 2),
        )
        np.testing.assert_allclose(inv, potri_reference(info["a"]), atol=1e-8)


class TestAnalysisApi:
    def test_communication_volume_gb(self):
        v_sbc = repro.communication_volume(repro.SymmetricBlockCyclic(7), ntiles=60, b=500)
        v_bc = repro.communication_volume(repro.BlockCyclic2D(7, 3), ntiles=60, b=500)
        assert 0 < v_sbc < v_bc

    def test_simulate_cholesky_2d(self):
        rep = repro.simulate_cholesky(ntiles=16, b=500, dist=repro.SymmetricBlockCyclic(4))
        assert rep.makespan > 0
        assert rep.gflops_per_node > 0

    def test_simulate_cholesky_25d(self):
        d = repro.TwoDotFiveD(repro.SymmetricBlockCyclic(4, variant="basic"), 2)
        rep = repro.simulate_cholesky(ntiles=12, b=500, dist25=d)
        assert rep.makespan > 0

    def test_simulate_requires_exactly_one_dist(self):
        with pytest.raises(ValueError):
            repro.simulate_cholesky(ntiles=8, b=500)
        with pytest.raises(ValueError):
            d = repro.TwoDotFiveD(repro.BlockCyclic2D(2, 2), 2)
            repro.simulate_cholesky(
                ntiles=8, b=500, dist=repro.BlockCyclic2D(2, 2), dist25=d
            )

    def test_version(self):
        assert repro.__version__
