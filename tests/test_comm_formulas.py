"""Tests for closed-form volumes, including TRTRI/POTRI (§V-F.2)."""

import pytest

from repro.comm import (
    bc25d_cholesky_volume,
    bc2d_cholesky_volume,
    count_communications,
    potri_volume_bc2d,
    potri_volume_sbc_remap,
    sbc_cholesky_volume,
    storage_tiles,
    trtri_volume_bc2d,
    trtri_volume_sbc,
)
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
from repro.graph import build_lauum_graph, build_potri_graph, build_trtri_graph


class TestStorage:
    @pytest.mark.parametrize("N", [1, 2, 10])
    def test_storage_tiles(self, N):
        assert storage_tiles(N) == N * (N + 1) // 2


class TestTrtriVolumes:
    def test_2dbc_counted_below_formula(self):
        p, q, N = 3, 2, 36
        g = build_trtri_graph(N, 8, BlockCyclic2D(p, q))
        counted = count_communications(g).num_messages
        assert counted <= trtri_volume_bc2d(N, p, q)
        assert counted == pytest.approx(trtri_volume_bc2d(N, p, q), rel=0.30)

    def test_sbc_counted_below_formula(self):
        r, N = 4, 36
        g = build_trtri_graph(N, 8, SymmetricBlockCyclic(r))
        counted = count_communications(g).num_messages
        assert counted <= trtri_volume_sbc(N, r)

    def test_2dbc_beats_sbc_on_trtri(self):
        """§V-F.2: TRTRI's nonsymmetric reads favour 2DBC over SBC at
        equal node count (P=6: 3x2 vs r=4)."""
        N = 48
        g_bc = build_trtri_graph(N, 8, BlockCyclic2D(3, 2))
        g_sbc = build_trtri_graph(N, 8, SymmetricBlockCyclic(4))
        assert (
            count_communications(g_bc).total_bytes
            < count_communications(g_sbc).total_bytes
        )

    def test_sbc_beats_2dbc_on_lauum(self):
        """LAUUM has POTRF's symmetric pattern, so SBC wins there."""
        N = 48
        g_bc = build_lauum_graph(N, 8, BlockCyclic2D(3, 2))
        g_sbc = build_lauum_graph(N, 8, SymmetricBlockCyclic(4))
        assert (
            count_communications(g_sbc).total_bytes
            < count_communications(g_bc).total_bytes
        )


class TestPotriVolumes:
    def test_remap_strategy_beats_pure_2dbc_at_scale(self):
        """Leading terms: S(2r+p+q-4) < 3S(p+q-2) for the paper's regime."""
        # Paper's example r=8 (P=28), p=7, q=4: ratio 27/23 ~ 1.17.
        N = 100
        v_bc = potri_volume_bc2d(N, 7, 4)
        v_remap = potri_volume_sbc_remap(N, 8, 7, 4)
        assert v_bc / v_remap == pytest.approx(27 / 23, rel=1e-9)

    def test_counted_potri_remap_below_pure_2dbc(self):
        """The counted volumes of full POTRI graphs reproduce the paper's
        ordering: remapped SBC < pure 2DBC (equal node counts P=6)."""
        N = 36
        g_bc = build_potri_graph(N, 8, BlockCyclic2D(3, 2))
        g_remap = build_potri_graph(
            N, 8, SymmetricBlockCyclic(4), trtri_dist=BlockCyclic2D(3, 2)
        )
        v_bc = count_communications(g_bc).total_bytes
        v_remap = count_communications(g_remap).total_bytes
        assert v_remap < v_bc

    def test_remap_crossover(self):
        """§V-F.2: the remap strategy only pays off once P is large enough
        for the broadcast savings to cover the two full redistributions.
        At P=6 the overhead dominates (pure SBC wins); the leading-order
        formulas show remap winning at the paper's P=28.

        (A counted check at N=72, r=8 confirms the large-P ordering:
        remap 57643 < pure SBC 58872 < 2DBC 64830 messages — too slow for
        a unit test, recorded in EXPERIMENTS.md.)
        """
        N = 36
        g_sbc = build_potri_graph(N, 8, SymmetricBlockCyclic(4))
        g_remap = build_potri_graph(
            N, 8, SymmetricBlockCyclic(4), trtri_dist=BlockCyclic2D(3, 2)
        )
        assert (
            count_communications(g_sbc).total_bytes
            <= count_communications(g_remap).total_bytes
        )
        # Leading-order terms at the paper's scale: remap < pure SBC < 2DBC.
        r, p, q = 8, 7, 4
        S = storage_tiles(1000)
        pure_sbc = S * (3 * (r - 2) + r)  # POTRF + LAUUM at r-2, TRTRI at 2r-2
        assert potri_volume_sbc_remap(1000, r, p, q) < pure_sbc < potri_volume_bc2d(1000, p, q)


class Test25DFormula:
    def test_bc25d_formula(self):
        assert bc25d_cholesky_volume(10, 3, 3, 2) == storage_tiles(10) * 5

    def test_sbc25d_vs_2d_consistency(self):
        """c=1 degenerates to the 2D formulas."""
        from repro.comm import sbc25d_cholesky_volume

        assert sbc25d_cholesky_volume(20, 6, 1, variant="basic") == sbc_cholesky_volume(
            20, 6, variant="basic"
        )

    def test_bc2d_square_leading(self):
        N, p = 50, 4
        assert bc2d_cholesky_volume(N, p, p) == storage_tiles(N) * (2 * p - 2)
