"""Tests for the extended API surface: lu(), distributed runtime, options."""

import numpy as np
import pytest

import repro


class TestLuApi:
    def test_lu_reconstructs(self):
        packed, info = repro.lu(n=64, b=16, dist=repro.BlockCyclic2D(2, 2))
        n = 64
        L = np.tril(packed, -1) + np.eye(n)
        U = np.triu(packed)
        np.testing.assert_allclose(L @ U, info["a"], atol=1e-9)

    def test_lu_threads_runtime(self):
        packed, info = repro.lu(
            n=48, b=16, dist=repro.BlockCyclic2D(2, 2), runtime="threads"
        )
        n = 48
        L = np.tril(packed, -1) + np.eye(n)
        np.testing.assert_allclose(L @ np.triu(packed), info["a"], atol=1e-9)

    def test_lu_comm_counted(self):
        _packed, info = repro.lu(n=48, b=16, dist=repro.BlockCyclic2D(3, 2))
        assert info["comm"].total_bytes > 0


class TestDistributedRuntimeApi:
    def test_cholesky_distributed(self):
        import scipy.linalg

        L, info = repro.cholesky(
            n=80, b=16, dist=repro.SymmetricBlockCyclic(3), runtime="distributed"
        )
        np.testing.assert_allclose(
            L, scipy.linalg.cholesky(info["a"], lower=True), atol=1e-9
        )


class TestSimulateOptions:
    def test_broadcast_and_aggregate_preserve_bytes(self):
        d = repro.SymmetricBlockCyclic(4)
        base = repro.simulate_cholesky(ntiles=16, b=500, dist=d)
        tree = repro.simulate_cholesky(ntiles=16, b=500, dist=d, broadcast="tree")
        aggr = repro.simulate_cholesky(ntiles=16, b=500, dist=d, aggregate=True)
        assert base.comm_bytes == tree.comm_bytes == aggr.comm_bytes
        assert aggr.comm_messages <= base.comm_messages

    def test_synchronized_option(self):
        d = repro.SymmetricBlockCyclic(4)
        free = repro.simulate_cholesky(ntiles=16, b=500, dist=d)
        sync = repro.simulate_cholesky(ntiles=16, b=500, dist=d, synchronized=True)
        assert sync.makespan >= free.makespan


class TestUserProvidedData:
    def _spd(self, n, seed=9):
        rng = np.random.default_rng(seed)
        g = rng.standard_normal((n, n))
        return g @ g.T + n * np.eye(n)

    def test_cholesky_user_matrix(self):
        import scipy.linalg

        a = self._spd(96)
        L, info = repro.cholesky(n=96, b=16, dist=repro.SymmetricBlockCyclic(4), a=a)
        np.testing.assert_allclose(
            L, scipy.linalg.cholesky(a, lower=True), atol=1e-9
        )
        np.testing.assert_array_equal(info["a"], a)

    def test_cholesky_user_matrix_distributed(self):
        import scipy.linalg

        a = self._spd(64)
        L, _info = repro.cholesky(
            n=64, b=16, dist=repro.SymmetricBlockCyclic(3), a=a,
            runtime="distributed",
        )
        np.testing.assert_allclose(
            L, scipy.linalg.cholesky(a, lower=True), atol=1e-9
        )

    def test_solve_user_system(self):
        import scipy.linalg

        a = self._spd(64)
        rhs = np.random.default_rng(1).standard_normal((64, 5))
        x, info = repro.solve(
            n=64, b=16, dist=repro.SymmetricBlockCyclic(3), a=a, rhs=rhs
        )
        np.testing.assert_allclose(a @ x, rhs, atol=1e-8)
        assert x.shape == (64, 5)

    def test_inverse_user_matrix(self):
        a = self._spd(64)
        inv, _info = repro.inverse(n=64, b=16, dist=repro.SymmetricBlockCyclic(4), a=a)
        np.testing.assert_allclose(inv @ a, np.eye(64), atol=1e-7)

    def test_rejects_wrong_size_matrix(self):
        with pytest.raises(ValueError):
            repro.cholesky(n=64, b=16, dist=repro.BlockCyclic2D(2, 2),
                           a=self._spd(32))

    def test_rejects_asymmetric_matrix(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            repro.cholesky(n=32, b=16, dist=repro.BlockCyclic2D(2, 2),
                           a=rng.standard_normal((32, 32)))

    def test_rejects_wrong_size_rhs(self):
        with pytest.raises(ValueError):
            repro.solve(n=64, b=16, dist=repro.BlockCyclic2D(2, 2),
                        rhs=np.zeros((32, 4)))
