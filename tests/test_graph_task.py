"""Tests for the task/data-version core."""

import pytest

from repro.graph import DataKey, GraphBuilder, TaskGraph


@pytest.fixture
def graph():
    return TaskGraph(b=16)


class TestTaskGraph:
    def test_initial_declaration(self, graph):
        k = graph.add_initial(DataKey("A", 0, 0, 0), home=2, descriptor="spd")
        assert graph.source_of(k) == 2
        assert graph.initial[k] == (2, "spd")

    def test_duplicate_initial_rejected(self, graph):
        k = DataKey("A", 0, 0, 0)
        graph.add_initial(k, 0, "spd")
        with pytest.raises(ValueError):
            graph.add_initial(k, 1, "spd")

    def test_task_reading_undeclared_data_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add_task("POTRF", 0, (0,), (DataKey("A", 0, 0, 0),), None, 1.0, 0)

    def test_double_producer_rejected(self, graph):
        k0 = graph.add_initial(DataKey("A", 0, 0, 0), 0, "spd")
        k1 = DataKey("A", 0, 0, 1)
        graph.add_task("POTRF", 0, (0,), (k0,), k1, 1.0, 0)
        with pytest.raises(ValueError):
            graph.add_task("POTRF", 0, (0,), (k0,), k1, 1.0, 0)

    def test_source_of_produced(self, graph):
        k0 = graph.add_initial(DataKey("A", 0, 0, 0), 3, "spd")
        k1 = DataKey("A", 0, 0, 1)
        graph.add_task("POTRF", 5, (0,), (k0,), k1, 1.0, 0)
        assert graph.source_of(k1) == 5

    def test_source_of_unknown_raises(self, graph):
        with pytest.raises(KeyError):
            graph.source_of(DataKey("Z", 9, 9, 9))

    def test_dependency_edges(self, graph):
        k0 = graph.add_initial(DataKey("A", 0, 0, 0), 0, "spd")
        k1 = DataKey("A", 0, 0, 1)
        t1 = graph.add_task("POTRF", 0, (0,), (k0,), k1, 1.0, 0)
        k2 = DataKey("A", 1, 0, 1)
        graph.add_initial(DataKey("A", 1, 0, 0), 0, "spd")
        t2 = graph.add_task("TRSM", 0, (1, 0), (DataKey("A", 1, 0, 0), k1), k2, 1.0, 0)
        assert list(graph.dependency_edges()) == [(t1.id, t2.id)]

    def test_data_bytes_square_vs_rhs(self):
        g = TaskGraph(b=16, width=4)
        assert g.data_bytes(DataKey("A", 0, 0, 0)) == 16 * 16 * 8
        assert g.data_bytes(DataKey("B", 0, 0, 0)) == 16 * 4 * 8

    def test_total_flops(self, graph):
        k0 = graph.add_initial(DataKey("A", 0, 0, 0), 0, "spd")
        graph.add_task("POTRF", 0, (0,), (k0,), DataKey("A", 0, 0, 1), 10.0, 0)
        graph.add_task("FOO", 0, (0,), (), None, 5.0, 0)
        assert graph.total_flops() == 15.0


class TestGraphBuilder:
    def test_version_bumping(self, graph):
        bld = GraphBuilder(graph)
        bld.declare("A", 0, 0, home=1, descriptor="spd")
        assert bld.current("A", 0, 0) == DataKey("A", 0, 0, 0)
        nxt = bld.bump("A", 0, 0)
        assert nxt.ver == 1
        assert bld.current("A", 0, 0).ver == 1

    def test_parts_are_independent_streams(self, graph):
        bld = GraphBuilder(graph)
        bld.declare("A", 0, 0, home=0, descriptor="spd", part=0)
        bld.declare("A", 0, 0, home=1, descriptor="zero", part=1)
        bld.bump("A", 0, 0, part=1)
        assert bld.current("A", 0, 0, part=0).ver == 0
        assert bld.current("A", 0, 0, part=1).ver == 1

    def test_exists(self, graph):
        bld = GraphBuilder(graph)
        assert not bld.exists("A", 2, 1)
        bld.declare("A", 2, 1, home=0, descriptor="spd")
        assert bld.exists("A", 2, 1)

    def test_current_of_undeclared_raises(self, graph):
        with pytest.raises(KeyError):
            GraphBuilder(graph).current("A", 0, 0)
