"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import (
    BlockCyclic2D,
    RowCyclic1D,
    SymmetricBlockCyclic,
)


def make_distributions():
    """A representative zoo of small distributions for parametrized tests."""
    return [
        BlockCyclic2D(1, 1),
        BlockCyclic2D(2, 3),
        BlockCyclic2D(3, 3),
        BlockCyclic2D(5, 4),
        SymmetricBlockCyclic(3),
        SymmetricBlockCyclic(4),
        SymmetricBlockCyclic(5),
        SymmetricBlockCyclic(6),
        SymmetricBlockCyclic(7),
        SymmetricBlockCyclic(4, variant="basic"),
        SymmetricBlockCyclic(6, variant="basic"),
        RowCyclic1D(5),
    ]


@pytest.fixture(params=make_distributions(), ids=lambda d: d.name)
def any_dist(request):
    return request.param


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
