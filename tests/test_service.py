"""Sweep-service contract tests: cache keys, store durability, dedup.

The load-bearing guarantees of ``repro.service`` (see ``docs/service.md``):

* one configuration simulates exactly **once** — re-submits are cache
  hits, asserted through the server's ``service.simulations`` obs
  counter, never inferred from timing;
* *every* :class:`JobSpec` field participates in the content hash —
  changing the fault seed or a network constant is a different point;
* the store survives a process restart and detects (then recomputes,
  never serves) corrupt entries;
* a memoized :class:`SimReport` is bit-identical to a fresh run on both
  engines;
* concurrent submits of one point join a single in-flight simulation.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.config import bora
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
from repro.graph import build_cholesky_graph, compile_cholesky
from repro.runtime.faults import FaultPlan, SlowdownWindow, WorkerCrash
from repro.runtime.simulator import simulate, simulate_compiled
from repro.service import (
    JobSpec,
    ResultStore,
    SweepClient,
    SweepServer,
    config_digest,
    report_to_dict,
    run_point,
    structure_hash,
    structure_key,
)
from repro.service.__main__ import main as service_main

NT, B = 6, 128
DIST = SymmetricBlockCyclic(2)  # 2 nodes: the smallest extended layout
MACHINE = bora(nodes=DIST.num_nodes)


def spec(**overrides) -> JobSpec:
    base = dict(algorithm="cholesky", ntiles=NT, b=B, dist=DIST,
                machine=MACHINE, engine="compiled")
    base.update(overrides)
    return JobSpec.make(**base)


# --------------------------------------------------------------------------
# memoization: one simulation per configuration
# --------------------------------------------------------------------------

def test_same_config_simulates_exactly_once(tmp_path):
    with SweepClient(store=tmp_path / "store") as client:
        first = client.submit(spec()).raise_for_status()
        assert not first.cached
        assert client.simulations_run() == 1
        second = client.submit(spec()).raise_for_status()
        assert second.cached
        assert client.simulations_run() == 1, \
            "identical configuration must be served from the cache"
        assert second.hash == first.hash
        assert report_to_dict(second.report) == report_to_dict(first.report)


def test_store_survives_restart(tmp_path):
    store = tmp_path / "store"
    with SweepClient(store=store) as client:
        cold = client.submit(spec()).raise_for_status()
        assert client.simulations_run() == 1
    # A brand-new client (fresh process, in spirit) on the same directory.
    with SweepClient(store=store) as client:
        warm = client.submit(spec()).raise_for_status()
        assert warm.cached
        assert client.simulations_run() == 0, \
            "restart must not lose memoized results"
        assert warm.hash == cold.hash
        assert report_to_dict(warm.report) == report_to_dict(cold.report)


def test_corrupt_entry_is_detected_and_recomputed(tmp_path):
    store_dir = tmp_path / "store"
    with SweepClient(store=store_dir) as client:
        original = client.submit(spec()).raise_for_status()

    # Bit-rot one byte inside the record's payload: the envelope checksum
    # must catch it at load time.
    path = store_dir / ResultStore.RESULTS
    line = path.read_text().rstrip("\n")
    assert '"status":"ok"' in line
    path.write_text(line.replace('"status":"ok"', '"status":"OK"') + "\n")

    reopened = ResultStore(store_dir)
    assert reopened.corrupt_entries == 1
    assert reopened.get(original.hash) is None, \
        "a corrupt record must never be served"

    with SweepClient(store=ResultStore(store_dir)) as client:
        redone = client.submit(spec()).raise_for_status()
        assert not redone.cached
        assert client.simulations_run() == 1
        assert report_to_dict(redone.report) == report_to_dict(original.report)


def test_truncated_store_line_is_skipped(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.put({"hash": "abc", "status": "ok"})
    path = store.root / ResultStore.RESULTS
    path.write_text(path.read_text()[:-20])  # torn final write
    reopened = ResultStore(tmp_path / "store")
    assert reopened.corrupt_entries == 1
    assert reopened.get("abc") is None


def test_store_last_wins_and_compact(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.put({"hash": "h", "status": "failed"})
    store.put({"hash": "h", "status": "ok"})
    assert store.get("h")["status"] == "ok"
    store.compact()
    reopened = ResultStore(tmp_path / "store")
    assert len(reopened) == 1 and reopened.get("h")["status"] == "ok"
    assert reopened.corrupt_entries == 0


# --------------------------------------------------------------------------
# cache keys: every field change is a distinct point
# --------------------------------------------------------------------------

def test_every_field_change_changes_the_hash():
    base = spec(faults=FaultPlan(seed=1, loss_rate=0.05))
    machine = base.to_dict()["machine"]
    variants = {
        "ntiles": spec(ntiles=NT + 1),
        "b": spec(b=B * 2),
        "dist.r": spec(dist=SymmetricBlockCyclic(3),
                       machine=bora(nodes=SymmetricBlockCyclic(3).num_nodes)),
        "dist.variant": spec(dist=SymmetricBlockCyclic(2, variant="basic")),
        "dist.kind": spec(dist=BlockCyclic2D(1, 2)),
        "algorithm": spec(algorithm="lu"),
        "engine": spec(engine="object"),
        "synchronized": spec(synchronized=True),
        "broadcast": spec(broadcast="tree"),
        "aggregate": spec(aggregate=True),
        "collect_metrics": spec(collect_metrics=True),
        "policy": spec(policy="bytes-critical-path"),
        "faults.none-vs-plan": spec(),
        "faults.seed": base.with_(faults=dict(base.to_dict()["faults"],
                                              seed=2)),
        "faults.loss_rate": base.with_(faults=dict(base.to_dict()["faults"],
                                                   loss_rate=0.06)),
        "faults.slowdown": spec(
            faults=FaultPlan(seed=1, loss_rate=0.05,
                             slowdowns=(SlowdownWindow(node=0, factor=2.0),))),
        "machine.bandwidth": base.with_(machine=dict(machine,
                                                     bandwidth=machine["bandwidth"] * 2)),
        "machine.latency": base.with_(machine=dict(machine, latency=1e-3)),
        "machine.cores": base.with_(machine=dict(machine,
                                                 cores=machine["cores"] + 1)),
        "machine.element_size": base.with_(machine=dict(machine,
                                                        element_size=4)),
    }
    digests = {"base": config_digest(base)}
    for name, variant in variants.items():
        digests[name] = config_digest(variant)
    values = list(digests.values())
    assert len(set(values)) == len(values), (
        "config digests collided: " + repr(
            [k for k, v in digests.items() if values.count(v) > 1])
    )
    # The point hash is H(schema, structure, config digest), so distinct
    # digests imply distinct point hashes; structural fields must ALSO
    # rotate the structure key (and only they should).
    for name in ("ntiles", "b", "dist.r", "dist.variant", "dist.kind",
                 "algorithm", "machine.element_size"):
        assert structure_key(variants[name]) != structure_key(base), name
    for name in ("engine", "synchronized", "broadcast", "faults.seed",
                 "machine.bandwidth", "machine.latency", "policy"):
        assert structure_key(variants[name]) == structure_key(base), name


def test_spec_round_trips_through_json():
    s = spec(faults=FaultPlan(seed=7, loss_rate=0.01,
                              crashes=(WorkerCrash(node=1, after_tasks=3),)))
    again = JobSpec.from_dict(json.loads(json.dumps(s.to_dict())))
    assert again == s
    assert config_digest(again) == config_digest(s)


def test_structure_hash_ignores_kind_registration_order():
    """Regression: ``compile_graph`` assigns kind codes in first-seen
    order, so the raw code table depends on what was lowered earlier in
    the process.  The structure hash must be invariant under any
    permutation of the table (and must ignore unused entries)."""
    import dataclasses

    import numpy as np

    cg = compile_cholesky(NT, B, DIST)
    names = list(cg.kind_names)
    # Reverse the table (plus a never-used entry) and remap the codes.
    permuted_names = list(reversed(names)) + ["never-used-kind"]
    remap = np.array([permuted_names.index(n) for n in names],
                     dtype=cg.kind_codes.dtype)
    permuted = dataclasses.replace(
        cg,
        kind_names=permuted_names,
        kind_codes=remap[cg.kind_codes],
    )
    assert structure_hash(permuted) == structure_hash(cg)
    # Sanity: a *semantic* kind change still rotates the hash.
    flipped = dataclasses.replace(
        cg, kind_codes=cg.kind_codes[::-1].copy())
    assert structure_hash(flipped) != structure_hash(cg)


def test_kernel_field_rotates_config_but_not_structure():
    base = spec()
    explicit = spec(kernel="numpy")
    assert config_digest(explicit) != config_digest(base)
    assert structure_key(explicit) == structure_key(base)
    with pytest.raises(ValueError, match="kernel"):
        spec(kernel="cython")


# --------------------------------------------------------------------------
# determinism: memoized reports are bit-identical to fresh runs
# --------------------------------------------------------------------------

def test_memoized_report_bit_identical_compiled(tmp_path):
    with SweepClient(store=tmp_path / "store") as client:
        client.submit(spec())
        cached = client.submit(spec())
        assert cached.cached
    cg = compile_cholesky(NT, B, DIST)
    fresh = simulate_compiled(cg, MACHINE)
    assert report_to_dict(cached.report) == report_to_dict(fresh)


def test_memoized_report_bit_identical_object(tmp_path):
    with SweepClient(store=tmp_path / "store") as client:
        client.submit(spec(engine="object"))
        cached = client.submit(spec(engine="object"))
        assert cached.cached
    fresh = simulate(build_cholesky_graph(NT, B, DIST), MACHINE)
    assert report_to_dict(cached.report) == report_to_dict(fresh)


def test_failed_crash_plan_is_memoized(tmp_path):
    crashing = spec(faults=FaultPlan(seed=3,
                                     crashes=(WorkerCrash(node=0,
                                                          after_tasks=2),)))
    with SweepClient(store=tmp_path / "store") as client:
        first = client.submit(crashing)
        assert first.status == "failed" and first.report is None
        assert first.error
        with pytest.raises(RuntimeError, match="sweep point failed"):
            first.raise_for_status()
        # Seeded crashes are deterministic: the failure is cached, not
        # retried forever.
        second = client.submit(crashing)
        assert second.cached and second.status == "failed"
        assert client.simulations_run() == 1
        assert second.error == first.error


def test_run_point_is_a_pure_function_of_the_spec():
    a = run_point(spec().to_dict())
    b = run_point(spec().to_dict())
    assert a["hash"] == b["hash"]
    assert a["structure"] == b["structure"]
    assert a["report"] == b["report"]


def test_worker_reuses_graph_across_structure_matched_points(tmp_path):
    """Incremental re-simulation: two points sharing a structure key must
    build the compiled graph once — and the reused run must stay
    bit-identical to a from-scratch simulation."""
    # A tile count no other test uses, so this process's worker cache
    # cannot already hold the structure.
    import dataclasses

    nt = 9
    fast = bora(nodes=DIST.num_nodes)
    slow = dataclasses.replace(fast, network=dataclasses.replace(
        fast.network, bandwidth=fast.network.bandwidth / 2))
    with SweepClient(store=tmp_path / "store") as client:
        cold = client.submit(spec(ntiles=nt, machine=fast)).raise_for_status()
        warm = client.submit(spec(ntiles=nt, machine=slow)).raise_for_status()
    assert not cold.graph_reused
    assert warm.graph_reused, \
        "same structure key must reuse the worker's cached graph"
    assert not warm.cached and warm.hash != cold.hash
    fresh = simulate_compiled(compile_cholesky(nt, B, DIST), slow)
    assert report_to_dict(warm.report) == report_to_dict(fresh)


def test_result_records_worker_peak_rss(tmp_path):
    with SweepClient(store=tmp_path / "store") as client:
        res = client.submit(spec()).raise_for_status()
    assert res.peak_rss_mb is not None and res.peak_rss_mb > 0.0
    record = run_point(spec().to_dict())
    assert record["peak_rss_mb"] > 0.0


# --------------------------------------------------------------------------
# server pipeline: dedup, events, status
# --------------------------------------------------------------------------

def test_concurrent_submits_join_one_simulation(tmp_path):
    async def scenario():
        server = SweepServer(ResultStore(tmp_path / "store"))
        try:
            results = await server.sweep([spec()] * 4)
        finally:
            await server.close()
        return server, results

    server, results = asyncio.new_event_loop().run_until_complete(scenario())
    assert server.simulations() == 1, \
        "identical in-flight submits must share one simulation"
    assert sum(not r.cached for r in results) == 1
    assert len({r.hash for r in results}) == 1
    assert all(report_to_dict(r.report) == report_to_dict(results[0].report)
               for r in results)


def test_event_stream_and_status(tmp_path):
    async def scenario():
        server = SweepServer(ResultStore(tmp_path / "store"))
        queue = server.subscribe()
        assert server.status(spec()) == "unknown"
        await server.submit(spec())
        assert server.status(spec()) == "cached"
        await server.submit(spec())
        await server.close()
        events = []
        while not queue.empty():
            events.append(queue.get_nowait())
        return events

    events = asyncio.new_event_loop().run_until_complete(scenario())
    assert [e.op for e in events] == [
        "submitted", "started", "completed",  # cold
        "submitted", "cache-hit",             # warm
    ]
    assert len({e.key for e in events}) == 1  # all about one config digest


def test_bounded_subscriber_drops_oldest(tmp_path):
    """A stalled subscriber with ``maxsize`` set must see the *newest*
    events (a gap, not unbounded memory), and the shed events must be
    counted."""

    async def scenario():
        server = SweepServer(ResultStore(tmp_path / "store"))
        bounded = server.subscribe(maxsize=2)
        firehose = server.subscribe()  # unbounded control
        await server.submit(spec())                 # 3 events
        await server.submit(spec())                 # 2 more
        await server.close()
        return server, bounded, firehose

    server, bounded, firehose = \
        asyncio.new_event_loop().run_until_complete(scenario())
    kept = []
    while not bounded.empty():
        kept.append(bounded.get_nowait())
    everything = []
    while not firehose.empty():
        everything.append(firehose.get_nowait())
    assert [e.op for e in everything] == [
        "submitted", "started", "completed", "submitted", "cache-hit"]
    # The bounded queue holds exactly the last two events.
    assert [e.op for e in kept] == ["submitted", "cache-hit"]
    dropped = server.metrics.get("service.events.dropped")
    assert dropped is not None and int(dropped.total()) == 3


def test_sweep_survives_a_raising_point(tmp_path):
    # This spec passes JobSpec validation but raises ValueError inside
    # run_point (the graph needs 6 nodes, the machine has 2); only
    # SimulatedFailure is memoized, so the exception escapes submit().
    bad = JobSpec.make("cholesky", NT, B, SymmetricBlockCyclic(4),
                       bora(nodes=2))

    async def scenario():
        server = SweepServer(ResultStore(tmp_path / "store"))
        try:
            results = await server.sweep([spec(), bad, spec(ntiles=NT + 1)])
        finally:
            await server.close()
        return server, results

    server, results = asyncio.new_event_loop().run_until_complete(scenario())
    ok_a, failed, ok_b = results
    assert ok_a.status == "ok" and ok_b.status == "ok", \
        "one bad point must not discard the healthy points' results"
    assert server.simulations() == 2
    assert failed.status == "failed" and not failed.cached
    assert failed.hash == "" and failed.report is None
    assert "ValueError" in failed.error
    with pytest.raises(RuntimeError, match="sweep point failed"):
        failed.raise_for_status()
    # The failure is infrastructure, not simulation: nothing was stored,
    # so a corrected sweep later recomputes only that point.
    assert len(ResultStore(tmp_path / "store")) == 2


def test_store_appends_run_off_the_event_loop(tmp_path):
    """fsync-ing appends must not run on the loop thread (they would
    stall every concurrent submit and the HTTP front-end)."""
    append_threads = []

    class SpyStore(ResultStore):
        def put(self, record):
            append_threads.append(threading.get_ident())
            super().put(record)

        def put_structure(self, key, structure):
            append_threads.append(threading.get_ident())
            super().put_structure(key, structure)

    async def scenario():
        server = SweepServer(SpyStore(tmp_path / "store"))
        try:
            (await server.submit(spec())).raise_for_status()
        finally:
            await server.close()

    asyncio.new_event_loop().run_until_complete(scenario())
    loop_thread = threading.get_ident()  # run_until_complete ran here
    assert append_threads, "the store was never written"
    assert all(t != loop_thread for t in append_threads)
    assert len(set(append_threads)) == 1, "store writes must stay single-owner"


def test_store_fsync_modes(tmp_path):
    batch = ResultStore(tmp_path / "store", fsync="batch")
    batch.put({"hash": "h", "status": "ok"})
    batch.sync()
    reopened = ResultStore(tmp_path / "store")
    assert reopened.get("h")["status"] == "ok"
    with pytest.raises(ValueError, match="fsync"):
        ResultStore(tmp_path / "other", fsync="sometimes")


# --------------------------------------------------------------------------
# front doors: CLI and HTTP
# --------------------------------------------------------------------------

def test_cli_submit_twice_is_cache_hit(tmp_path, capsys):
    argv = ["submit", "--store", str(tmp_path / "store"),
            "--dist", "sbc:r=2", "--ntiles", str(NT), "--b", str(B)]
    assert service_main(argv) == 0
    assert "cached: false" in capsys.readouterr().out
    assert service_main(argv) == 0
    out = capsys.readouterr().out
    assert "cached: true" in out
    assert "makespan_seconds:" in out


def test_cli_status_and_result(tmp_path, capsys):
    store = str(tmp_path / "store")
    job = ["--dist", "sbc:r=2", "--ntiles", str(NT), "--b", str(B)]
    assert service_main(["status", "--store", store] + job) == 0
    assert capsys.readouterr().out.strip() == "unknown"
    assert service_main(["submit", "--store", store] + job) == 0
    point = next(ln.split()[1] for ln in capsys.readouterr().out.splitlines()
                 if ln.startswith("hash:"))
    assert service_main(["status", "--store", store] + job) == 0
    assert capsys.readouterr().out.strip() == "cached"
    assert service_main(["result", "--store", store, point]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["hash"] == point and record["status"] == "ok"
    assert service_main(["result", "--store", store, "deadbeef"]) == 1


def test_http_round_trip(tmp_path):
    from repro.service.http import serve_http

    loop = asyncio.new_event_loop()
    server = SweepServer(ResultStore(tmp_path / "store"))
    try:
        svc = loop.run_until_complete(serve_http(server, "127.0.0.1", 0))
    except (PermissionError, OSError) as exc:  # sandboxed runners
        loop.close()
        pytest.skip(f"cannot bind a localhost socket here: {exc}")
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    try:
        with SweepClient(url=f"http://127.0.0.1:{svc.port}") as client:
            cold = client.submit(spec()).raise_for_status()
            assert not cold.cached
            warm = client.submit(spec()).raise_for_status()
            assert warm.cached
            assert client.simulations_run() == 1
            assert client.status(spec()) == "cached"
            record = client.result_by_hash(cold.hash)
            assert record["status"] == "ok"
            assert client.result_by_hash("deadbeef") is None
    finally:
        asyncio.run_coroutine_threadsafe(svc.close(), loop).result(10)
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


# --------------------------------------------------------------------------
# size cap: LRU eviction and opportunistic compaction
# --------------------------------------------------------------------------


def _rec(i, pad=200):
    return {"hash": f"h{i:04d}", "status": "ok", "pad": "x" * pad}


def test_store_cap_evicts_least_recently_used(tmp_path):
    store = ResultStore(tmp_path / "store", max_bytes=1200)
    for i in range(8):
        store.put(_rec(i))
    assert len(store) < 8 and store.evictions > 0
    assert store.get("h0000") is None  # coldest went first
    assert store.get(f"h{7:04d}") is not None  # warmest survived


def test_store_get_refreshes_recency(tmp_path):
    store = ResultStore(tmp_path / "store", max_bytes=1200)
    store.put(_rec(0))
    store.put(_rec(1))
    assert store.get("h0000") is not None  # warm h0000 back up
    i = 2
    while store.evictions == 0:
        store.put(_rec(i))
        i += 1
    assert store.get("h0000") is not None, \
        "a read must protect the record from eviction"
    assert store.get("h0001") is None, "the cold record goes first"


def test_store_cap_survives_reload(tmp_path):
    root = tmp_path / "store"
    store = ResultStore(root, max_bytes=1200)
    for i in range(8):
        store.put(_rec(i))
    live = sorted(store.hashes())
    # The capped log physically dropped evicted lines via compaction, so
    # a reload (even uncapped) sees only the live working set.
    reopened = ResultStore(root, max_bytes=1200)
    assert sorted(reopened.hashes()) == live
    assert reopened.corrupt_entries == 0


def test_store_cap_validation_and_unbounded_default(tmp_path):
    with pytest.raises(ValueError):
        ResultStore(tmp_path / "a", max_bytes=0)
    store = ResultStore(tmp_path / "b")
    for i in range(50):
        store.put(_rec(i))
    assert len(store) == 50 and store.evictions == 0


def test_store_cap_never_evicts_the_only_record(tmp_path):
    store = ResultStore(tmp_path / "store", max_bytes=16)
    store.put(_rec(0, pad=500))  # one oversized record stays usable
    assert len(store) == 1 and store.get("h0000") is not None


# --------------------------------------------------------------------------
# topology participates in the content hash
# --------------------------------------------------------------------------


def test_topology_rotates_config_digest_not_structure():
    from dataclasses import replace

    from repro.topology import chain

    m_chain = replace(MACHINE, topology=chain(
        MACHINE.nodes, MACHINE.network.bandwidth, MACHINE.network.latency))
    a, b = spec(), spec(machine=m_chain)
    assert structure_key(a) == structure_key(b), \
        "topology must not invalidate structure-level memoization"
    assert config_digest(a) != config_digest(b)


def test_topology_spec_round_trips_through_json(tmp_path):
    from dataclasses import replace

    from repro.topology import Heterogeneity, star

    topo = star(MACHINE.nodes, switch_bandwidth=2e9,
                hetero=Heterogeneity(speed=(0.5,) * MACHINE.nodes))
    s = spec(machine=replace(MACHINE, topology=topo))
    text = json.dumps(s.to_dict())
    assert "Infinity" not in text
    back = JobSpec.from_dict(json.loads(text))
    assert back == s
    assert back.machine_spec().topology == topo


def test_topology_point_is_cached_like_any_other(tmp_path):
    from dataclasses import replace

    from repro.topology import chain

    m = replace(MACHINE, topology=chain(
        MACHINE.nodes, MACHINE.network.bandwidth, MACHINE.network.latency))
    with SweepClient(store=tmp_path / "store") as client:
        cold = client.submit(spec(machine=m)).raise_for_status()
        assert not cold.cached and client.simulations_run() == 1
        warm = client.submit(spec(machine=m)).raise_for_status()
        assert warm.cached and client.simulations_run() == 1
        assert report_to_dict(warm.report) == report_to_dict(cold.report)
