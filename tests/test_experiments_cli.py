"""Tests for the repro.experiments sweeps and CLI."""

import pytest

from repro import experiments


class TestSweepFunctions:
    def test_fig8_volumes_ordering(self):
        series = experiments.fig8_volumes(sizes=(25, 50), b=500)
        assert set(series) == {"SBC r=7", "2DBC 5x4", "2DBC 7x3"}
        for i in range(2):
            assert series["SBC r=7"][i] < series["2DBC 5x4"][i] < series["2DBC 7x3"][i]

    def test_theorem1_rows(self):
        rows = experiments.theorem1_table(ntiles=60)
        assert len(rows) == 7
        for _name, counted, formula, ratio in rows:
            assert counted <= formula
            assert 0.85 < ratio <= 1.0

    def test_fig9_performance_small(self):
        series = experiments.fig9_performance(sizes=(16,), b=500)
        assert series["2D SBC r=8"][0] > 0
        assert series["COnfCHOX-like"][0] < series["2DBC 7x4"][0]

    def test_strong_scaling_rows(self):
        rows = experiments.strong_scaling(ntiles=24)
        assert len(rows) == 8
        per_node = {name: gf for name, _P, gf in rows}
        # Smaller platforms get more per-node throughput on a fixed matrix.
        assert per_node["SBC-extended(r=6)"] > per_node["SBC-extended(r=9)"]

    def test_spine_breakdown(self):
        out = experiments.spine_breakdown(r=6, ntiles=20)
        assert len(out) == 2
        for bd in out.values():
            assert bd.makespan > 0
            assert bd.hops > 0


class TestCli:
    def test_list(self, capsys):
        assert experiments.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "theorem1" in out

    def test_fig8(self, capsys):
        assert experiments.main(["fig8", "--sizes", "25", "50"]) == 0
        out = capsys.readouterr().out
        assert "SBC r=7" in out and "(GB)" in out

    def test_theorem1(self, capsys):
        assert experiments.main(["theorem1", "--ntiles", "48"]) == 0
        out = capsys.readouterr().out
        assert "SBC-extended(r=8)" in out

    def test_scaling(self, capsys):
        assert experiments.main(["scaling", "--ntiles", "16"]) == 0
        out = capsys.readouterr().out
        assert "GFlop/s/node" in out

    def test_breakdown(self, capsys):
        assert experiments.main(["breakdown", "--r", "6", "--ntiles", "16"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            experiments.main(["figZ"])
