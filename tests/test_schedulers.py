"""Unit tests for the pluggable scheduler framework (repro.schedulers).

The cross-engine equality of every policy is pinned in
``tests/test_compiled_engine.py`` (TestPolicyConformance); this file
covers the framework pieces in isolation: the graph views feeding
policies identical columns on both planes, the plan contract, queue
determinism, and the SCHED-PLACE analyzer rule.
"""

import numpy as np
import pytest

from repro.analyze.schedule import verify_policy_placement
from repro.config import laptop
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
from repro.graph import build_cholesky_graph
from repro.graph.compiled import compile_graph
from repro.runtime.simulator import simulate, simulate_compiled
from repro.schedulers import (
    DEFAULT_POLICY,
    POLICIES,
    CompiledGraphView,
    ObjectGraphView,
    SchedulePlan,
    SchedulerInterface,
    WorkStealingQueues,
    get_policy,
)

DIST = SymmetricBlockCyclic(4)
N, B = 10, 32


def _views():
    g = build_cholesky_graph(N, B, DIST)
    cg = compile_graph(g)
    m = laptop(nodes=DIST.num_nodes, cores=2)
    kernel = m.kernel
    duration_fn = lambda t: kernel.duration(t.flops, g.b)  # noqa: E731
    durations = kernel.overhead + cg.flops / kernel.rate(cg.b)
    return ObjectGraphView(g, m, duration_fn), CompiledGraphView(cg, m, durations)


# --------------------------------------------------------------------------
# the views: both planes expose bit-identical columns
# --------------------------------------------------------------------------

class TestGraphViews:
    def test_scalar_columns_match(self):
        ov, cv = _views()
        assert ov.n_tasks == cv.n_tasks
        assert ov.num_nodes == cv.num_nodes
        assert ov.cores == cv.cores
        assert ov.bandwidth == cv.bandwidth
        assert ov.latency == cv.latency

    def test_array_columns_bit_identical(self):
        ov, cv = _views()
        assert list(ov.node) == list(cv.node)
        assert list(ov.kinds) == list(cv.kinds)
        assert list(ov.iterations) == list(cv.iterations)
        assert list(ov.out_bytes) == list(cv.out_bytes)
        # Durations must be IEEE-identical, not merely close: policies
        # fold them into priorities that break scheduling ties.
        assert list(ov.durations) == list(cv.durations)

    def test_consumers_and_inputs_identical(self):
        ov, cv = _views()
        assert [list(c) for c in ov.consumers] == [list(c) for c in cv.consumers]
        assert [list(i) for i in ov.inputs] == [list(i) for i in cv.inputs]

    def test_consumers_are_sorted_with_duplicates_kept(self):
        """A consumer reading two outputs of the same task appears once
        per read, ascending — both planes agree on the convention."""
        _, cv = _views()
        for cons in cv.consumers:
            assert list(cons) == sorted(cons)

    def test_comm_cost_is_latency_plus_wire_time(self):
        ov, _ = _views()
        nbytes = 8192
        assert ov.comm_cost(nbytes) == ov.latency + nbytes / ov.bandwidth


# --------------------------------------------------------------------------
# the registry and the plan contract
# --------------------------------------------------------------------------

class TestRegistry:
    def test_registry_has_the_zoo(self):
        assert len(POLICIES) >= 5
        assert DEFAULT_POLICY == "critical-path"
        for name, cls in POLICIES.items():
            assert cls.name == name
            assert cls.description

    def test_get_policy_resolution(self):
        assert get_policy(None).name == DEFAULT_POLICY
        assert get_policy("fork-join").name == "fork-join"
        inst = POLICIES["work-stealing"]()
        assert get_policy(inst) is inst
        with pytest.raises(ValueError, match="unknown scheduler policy"):
            get_policy("does-not-exist")

    def test_default_policy_plan_is_native(self):
        _, cv = _views()
        plan = get_policy(None).plan(cv)
        assert plan.is_native()
        assert not plan.synchronized

    def test_plans_are_deterministic(self):
        ov, cv = _views()
        for name in POLICIES:
            p1 = get_policy(name).plan(cv)
            p2 = get_policy(name).plan(ov)
            if p1.priorities is None:
                assert p2.priorities is None
            else:
                assert list(p1.priorities) == list(p2.priorities), name
            if p1.assignment is None:
                assert p2.assignment is None
            else:
                assert list(p1.assignment) == list(p2.assignment), name

    def test_only_heft_migrates(self):
        migrating = {n for n, c in POLICIES.items() if c.migrates}
        assert migrating == {"heft-lookahead"}

    def test_fork_join_equals_synchronized_flag(self):
        g = build_cholesky_graph(N, B, DIST)
        m = laptop(nodes=DIST.num_nodes, cores=2)
        assert (simulate(g, m, scheduler="fork-join").makespan
                == simulate(g, m, synchronized=True).makespan)

    def test_bad_priority_length_rejected(self):
        class Short(SchedulerInterface):
            name = "short"
            description = "returns too few priorities"

            def plan(self, view):
                return SchedulePlan(priorities=[1.0])

        g = build_cholesky_graph(6, B, BlockCyclic2D(2, 2))
        cg = compile_graph(g)
        m = laptop(nodes=4, cores=2)
        with pytest.raises(ValueError, match="priorities"):
            simulate(g, m, scheduler=Short())
        with pytest.raises(ValueError, match="priorities"):
            simulate_compiled(cg, m, scheduler=Short())

    def test_out_of_range_assignment_rejected(self):
        class Offworld(SchedulerInterface):
            name = "offworld"
            description = "assigns tasks to a node the machine lacks"
            migrates = True

            def plan(self, view):
                return SchedulePlan(assignment=[view.num_nodes] * view.n_tasks)

        g = build_cholesky_graph(6, B, BlockCyclic2D(2, 2))
        cg = compile_graph(g)
        m = laptop(nodes=4, cores=2)
        with pytest.raises(ValueError, match="outside"):
            simulate(g, m, scheduler=Offworld())
        with pytest.raises(ValueError, match="outside"):
            simulate_compiled(cg, m, scheduler=Offworld())


# --------------------------------------------------------------------------
# the work-stealing queue discipline
# --------------------------------------------------------------------------

class TestWorkStealingQueues:
    def test_lifo_own_then_fifo_steal(self):
        q = WorkStealingQueues(num_nodes=1, cores=2)
        # core 0 gets tasks 0, 2; core 1 gets 1, 3
        for t in range(4):
            q.push(0, t, 0.0)
        assert q.total() == 4
        assert q.pop(0) == 2   # core 0's turn: LIFO of [0, 2]
        assert q.pop(0) == 3   # core 1's turn: LIFO of [1, 3]
        assert q.pop(0) == 0   # core 0 again
        assert q.pop(0) == 1
        assert q.pop(0) is None
        assert q.total() == 0

    def test_steals_from_longest_sibling(self):
        q = WorkStealingQueues(num_nodes=1, cores=2)
        q.push(0, 1, 0.0)  # -> core 1
        q.push(0, 3, 0.0)  # -> core 1
        assert q.pop(0) == 1  # core 0 empty: steal FIFO end of core 1
        assert q.pop(0) == 3

    def test_depth_is_per_node(self):
        q = WorkStealingQueues(num_nodes=2, cores=2)
        q.push(0, 0, 0.0)
        q.push(1, 1, 0.0)
        q.push(1, 2, 0.0)
        assert q.depth(0) == 1
        assert q.depth(1) == 2
        assert q.total() == 3


# --------------------------------------------------------------------------
# the SCHED-PLACE analyzer rule
# --------------------------------------------------------------------------

class TestPlacementRule:
    def _cg_and_machine(self):
        cg = compile_graph(build_cholesky_graph(N, B, DIST))
        return cg, laptop(nodes=DIST.num_nodes, cores=2)

    def test_zoo_is_clean(self):
        cg, m = self._cg_and_machine()
        for name in POLICIES:
            rep = verify_policy_placement(cg, m, name)
            assert rep.ok(), name

    def test_undeclared_migration_is_flagged(self):
        class Sneaky(SchedulerInterface):
            name = "sneaky"
            description = "migrates without declaring it"
            # migrates stays False

            def plan(self, view):
                moved = [(n + 1) % view.num_nodes for n in view.node]
                return SchedulePlan(assignment=moved)

        cg, m = self._cg_and_machine()
        rep = verify_policy_placement(cg, m, Sneaky())
        assert not rep.ok()
        assert any(f.rule == "SCHED-PLACE" for f in rep)

    def test_declared_migration_passes_in_range(self):
        class Honest(SchedulerInterface):
            name = "honest"
            description = "migrates and says so"
            migrates = True

            def plan(self, view):
                moved = [(n + 1) % view.num_nodes for n in view.node]
                return SchedulePlan(assignment=moved)

        cg, m = self._cg_and_machine()
        assert verify_policy_placement(cg, m, Honest()).ok()

    def test_out_of_range_flagged_even_when_migrating(self):
        class Offworld(SchedulerInterface):
            name = "offworld2"
            description = "assigns outside the machine"
            migrates = True

            def plan(self, view):
                return SchedulePlan(
                    assignment=[view.num_nodes] * view.n_tasks)

        cg, m = self._cg_and_machine()
        rep = verify_policy_placement(cg, m, Offworld())
        assert not rep.ok()


# --------------------------------------------------------------------------
# ranking sanity: the tournament's headline orderings hold at small N
# --------------------------------------------------------------------------

def test_policies_differentiate_makespan():
    """The zoo must actually explore the schedule space: at least three
    distinct makespans across policies, with fork-join strictly worse
    than the default (the paper's asynchronous-beats-synchronized
    claim, restated per policy)."""
    g = build_cholesky_graph(12, B, DIST)
    m = laptop(nodes=DIST.num_nodes, cores=2)
    spans = {name: simulate(g, m, scheduler=name).makespan
             for name in POLICIES}
    assert len(set(spans.values())) >= 3
    assert spans["fork-join"] > spans["critical-path"]
