"""Tests for the binomial-tree broadcast mode of the simulator."""

import pytest

from repro.comm import count_communications
from repro.config import MachineSpec, NetworkSpec, laptop
from repro.distributions import BlockCyclic2D, RowCyclic1D, SymmetricBlockCyclic
from repro.graph import build_cholesky_graph, build_posv_graph
from repro.runtime import simulate


class TestTreeBroadcast:
    def test_volume_is_unchanged(self, any_dist):
        """Tree forwarding relays the same messages: bytes are identical."""
        g = build_cholesky_graph(10, 32, any_dist)
        m = laptop(nodes=any_dist.num_nodes, cores=2)
        direct = simulate(g, m)
        tree = simulate(g, m, broadcast="tree")
        assert direct.comm_bytes == tree.comm_bytes
        assert direct.comm_messages == tree.comm_messages
        assert tree.comm_bytes == count_communications(g).total_bytes

    def test_all_tasks_complete(self):
        g = build_cholesky_graph(12, 32, SymmetricBlockCyclic(4))
        rep = simulate(g, laptop(nodes=6, cores=2), broadcast="tree")
        assert rep.num_tasks == len(g.tasks)

    def test_tree_helps_under_tight_bandwidth(self):
        """Splitting a fan-out across forwarders relieves the producer's
        port, so tree broadcasts win when egress bandwidth binds (the
        collective-detection optimization §V-C says Chameleon lacks)."""
        from repro.config import bora

        g = build_cholesky_graph(40, 500, BlockCyclic2D(7, 4))
        m = bora(28)
        direct = simulate(g, m)
        tree = simulate(g, m, broadcast="tree")
        assert tree.makespan < direct.makespan

    def test_tree_with_posv_and_initial_transfers(self):
        """Graphs with misplaced initial data (RHS tiles) also work."""
        g = build_posv_graph(8, 32, SymmetricBlockCyclic(4), RowCyclic1D(6))
        m = laptop(nodes=6, cores=2)
        rep = simulate(g, m, broadcast="tree")
        assert rep.comm_bytes == count_communications(g).total_bytes

    def test_rejects_unknown_mode(self):
        g = build_cholesky_graph(4, 32, BlockCyclic2D(2, 2))
        with pytest.raises(ValueError):
            simulate(g, laptop(nodes=4, cores=2), broadcast="gossip")

    def test_tracing_in_tree_mode(self):
        # Fan-outs must exceed 2 for the binomial tree to actually relay
        # (with k <= 2 every destination is a direct child of the root).
        g = build_cholesky_graph(12, 32, BlockCyclic2D(4, 4))
        rep = simulate(g, laptop(nodes=16, cores=2), broadcast="tree", trace=True)
        assert len(rep.transfers) == rep.comm_messages
        # Forwarded messages originate at nodes other than the producer:
        # at least one transfer's source differs from the version's home.
        g_sources = {t.write: t.node for t in g.tasks if t.write is not None}
        forwarded = [
            tr for tr in rep.transfers
            if tr.key in g_sources and tr.src != g_sources[tr.key]
        ]
        assert forwarded, "tree mode should relay through intermediate nodes"


class TestTreeWithAggregation:
    """aggregate=True + broadcast="tree": delivered transfers may carry
    several piggy-backed keys, and each of those keys can trigger its own
    ``tree_children`` forwarding — the interaction is easy to get subtly
    wrong (double forwards, lost keys), so pin it down."""

    def _recording_netsim(self):
        """A NetworkSim subclass that logs every submitted (key, src, dst)."""
        from repro.runtime.simulator.network import NetworkSim

        log = []

        class RecordingNet(NetworkSim):
            def submit(self, transfer, now):
                log.append((transfer.key, transfer.src, transfer.dst))
                return super().submit(transfer, now)

        return RecordingNet, log

    @pytest.mark.parametrize("dist", [BlockCyclic2D(4, 4),
                                      SymmetricBlockCyclic(5)],
                             ids=lambda d: d.name)
    def test_bytes_match_counter_and_no_duplicate_sends(self, dist,
                                                        monkeypatch):
        from repro.runtime.simulator import engine as engine_mod

        RecordingNet, log = self._recording_netsim()
        monkeypatch.setattr(engine_mod, "NetworkSim", RecordingNet)

        g = build_cholesky_graph(14, 32, dist)
        m = laptop(nodes=dist.num_nodes, cores=2)
        rep = simulate(g, m, broadcast="tree", aggregate=True)
        stats = count_communications(g)

        # Aggregation never changes the bytes moved, only the number of
        # wire messages (piggy-backed keys share one message + latency).
        assert rep.comm_bytes == stats.total_bytes
        assert rep.comm_messages <= stats.num_messages

        # Every (key, destination) pair is submitted exactly once: a key
        # delivered inside a multi-key aggregate must not be forwarded to
        # the same child again by a later delivery.
        pairs = [(key, dst) for key, _src, dst in log]
        assert len(pairs) == len(set(pairs)), "a key was sent twice"

        # ...and the submissions cover exactly the counter's messages.
        assert len(pairs) == stats.num_messages

    def test_aggregation_actually_coalesces_in_tree_mode(self, monkeypatch):
        """The guard above is only meaningful if multi-key transfers do
        occur: check aggregation fires under tree broadcast."""
        from repro.runtime.simulator import engine as engine_mod

        RecordingNet, log = self._recording_netsim()
        monkeypatch.setattr(engine_mod, "NetworkSim", RecordingNet)

        g = build_cholesky_graph(14, 32, BlockCyclic2D(4, 4))
        m = laptop(nodes=16, cores=2)
        rep = simulate(g, m, broadcast="tree", aggregate=True)
        # More submissions than wire messages == some were piggy-backed.
        assert len(log) > rep.comm_messages

    def test_compiled_engine_agrees_under_aggregation_and_tree(self):
        from repro.graph import compile_graph
        from repro.runtime.simulator import simulate_compiled

        g = build_cholesky_graph(14, 32, SymmetricBlockCyclic(5))
        cg = compile_graph(g)
        m = laptop(nodes=15, cores=2)
        ref = simulate(g, m, broadcast="tree", aggregate=True)
        fast = simulate_compiled(cg, m, broadcast="tree", aggregate=True)
        assert fast.makespan == ref.makespan
        assert fast.comm_bytes == ref.comm_bytes
        assert fast.comm_messages == ref.comm_messages


class TestAggregationIndex:
    """The piggy-back lookup in ``NetworkSim.submit`` is an O(1) per-
    (src, dst) index of queued-unstarted transfers.  It must behave
    exactly like the legacy full-heap scan it replaced — under
    aggregation at most one unstarted transfer per (src, dst) ever
    exists, so "first match in heap order" and "the indexed transfer"
    are the same message.  Pin the equivalence bit-for-bit."""

    def _legacy_scan_netsim(self):
        from repro.runtime.simulator.network import NetworkSim

        class LegacyScanNet(NetworkSim):
            """The pre-index submit: walk the whole per-source heap."""

            def submit(self, transfer, now):
                if not 0 <= transfer.src < self.num_nodes:
                    raise ValueError(f"bad source node {transfer.src}")
                if not 0 <= transfer.dst < self.num_nodes:
                    raise ValueError(f"bad destination node {transfer.dst}")
                if transfer.src == transfer.dst:
                    raise ValueError("local data needs no transfer")
                self.total_bytes += transfer.nbytes
                transfer.submitted = now
                if self.aggregate and self._egress_busy[transfer.src]:
                    for _nprio, _seq, queued in self._queues[transfer.src]:
                        if queued.dst == transfer.dst and not queued.started:
                            queued.keys.append(transfer.key)
                            queued.nbytes += transfer.nbytes
                            queued.remaining += transfer.nbytes
                            if transfer.priority > queued.priority:
                                queued.priority = transfer.priority
                                self._push(queued)
                            return None
                self.total_messages += 1
                self._push(transfer)
                if self._egress_busy[transfer.src]:
                    return None
                return self._serve(transfer.src, now)

        return LegacyScanNet

    @pytest.mark.parametrize("broadcast", ["direct", "tree"])
    @pytest.mark.parametrize("dist", [BlockCyclic2D(4, 4),
                                      SymmetricBlockCyclic(5)],
                             ids=lambda d: d.name)
    def test_bit_equal_with_legacy_scan(self, dist, broadcast, monkeypatch):
        from repro.runtime.simulator import engine as engine_mod

        g = build_cholesky_graph(14, 32, dist)
        m = laptop(nodes=dist.num_nodes, cores=2)
        new = simulate(g, m, broadcast=broadcast, aggregate=True)

        LegacyScanNet = self._legacy_scan_netsim()
        monkeypatch.setattr(engine_mod, "NetworkSim", LegacyScanNet)
        old = simulate(g, m, broadcast=broadcast, aggregate=True)

        assert new.makespan == old.makespan
        assert new.comm_bytes == old.comm_bytes
        assert new.comm_messages == old.comm_messages

    def test_index_entries_invalidate_lazily(self):
        """A started transfer's stale index entry must not absorb keys."""
        from repro.config import NetworkSpec
        from repro.runtime.simulator.network import NetworkSim, Transfer

        net = NetworkSim(NetworkSpec(bandwidth=1e9, latency=1e-6),
                         num_nodes=3, aggregate=True, quantum=1 << 30)
        # First transfer starts immediately (port idle) — not indexed.
        chunk = net.submit(Transfer("a", 0, 1, 100, 1.0), 0.0)
        assert chunk is not None and chunk.transfer.started
        # Queued behind it: indexed as the unstarted (0, 1) transfer.
        assert net.submit(Transfer("b", 0, 1, 100, 1.0), 0.0) is None
        # Same destination again: must piggy-back onto "b", not "a".
        assert net.submit(Transfer("c", 0, 1, 100, 2.0), 0.0) is None
        pending = net._unstarted[0][1]
        assert pending.keys == ["b", "c"]
        assert pending.nbytes == 200
        assert net.total_messages == 2
