"""Tests for the binomial-tree broadcast mode of the simulator."""

import pytest

from repro.comm import count_communications
from repro.config import MachineSpec, NetworkSpec, laptop
from repro.distributions import BlockCyclic2D, RowCyclic1D, SymmetricBlockCyclic
from repro.graph import build_cholesky_graph, build_posv_graph
from repro.runtime import simulate


class TestTreeBroadcast:
    def test_volume_is_unchanged(self, any_dist):
        """Tree forwarding relays the same messages: bytes are identical."""
        g = build_cholesky_graph(10, 32, any_dist)
        m = laptop(nodes=any_dist.num_nodes, cores=2)
        direct = simulate(g, m)
        tree = simulate(g, m, broadcast="tree")
        assert direct.comm_bytes == tree.comm_bytes
        assert direct.comm_messages == tree.comm_messages
        assert tree.comm_bytes == count_communications(g).total_bytes

    def test_all_tasks_complete(self):
        g = build_cholesky_graph(12, 32, SymmetricBlockCyclic(4))
        rep = simulate(g, laptop(nodes=6, cores=2), broadcast="tree")
        assert rep.num_tasks == len(g.tasks)

    def test_tree_helps_under_tight_bandwidth(self):
        """Splitting a fan-out across forwarders relieves the producer's
        port, so tree broadcasts win when egress bandwidth binds (the
        collective-detection optimization §V-C says Chameleon lacks)."""
        from repro.config import bora

        g = build_cholesky_graph(40, 500, BlockCyclic2D(7, 4))
        m = bora(28)
        direct = simulate(g, m)
        tree = simulate(g, m, broadcast="tree")
        assert tree.makespan < direct.makespan

    def test_tree_with_posv_and_initial_transfers(self):
        """Graphs with misplaced initial data (RHS tiles) also work."""
        g = build_posv_graph(8, 32, SymmetricBlockCyclic(4), RowCyclic1D(6))
        m = laptop(nodes=6, cores=2)
        rep = simulate(g, m, broadcast="tree")
        assert rep.comm_bytes == count_communications(g).total_bytes

    def test_rejects_unknown_mode(self):
        g = build_cholesky_graph(4, 32, BlockCyclic2D(2, 2))
        with pytest.raises(ValueError):
            simulate(g, laptop(nodes=4, cores=2), broadcast="gossip")

    def test_tracing_in_tree_mode(self):
        # Fan-outs must exceed 2 for the binomial tree to actually relay
        # (with k <= 2 every destination is a direct child of the root).
        g = build_cholesky_graph(12, 32, BlockCyclic2D(4, 4))
        rep = simulate(g, laptop(nodes=16, cores=2), broadcast="tree", trace=True)
        assert len(rep.transfers) == rep.comm_messages
        # Forwarded messages originate at nodes other than the producer:
        # at least one transfer's source differs from the version's home.
        g_sources = {t.write: t.node for t in g.tasks if t.write is not None}
        forwarded = [
            tr for tr in rep.transfers
            if tr.key in g_sources and tr.src != g_sources[tr.key]
        ]
        assert forwarded, "tree mode should relay through intermediate nodes"
