"""Tests for tiled matrix containers."""

import numpy as np
import pytest

from repro.tiles import SymmetricTiledMatrix, TiledMatrix, TileGrid


class TestTiledMatrix:
    def test_roundtrip_dense(self, rng):
        a = rng.standard_normal((48, 48))
        m = TiledMatrix.from_dense(a, b=16)
        np.testing.assert_array_equal(m.to_dense(), a)

    def test_roundtrip_ragged(self, rng):
        a = rng.standard_normal((50, 50))
        m = TiledMatrix.from_dense(a, b=16)
        np.testing.assert_array_equal(m.to_dense(), a)

    def test_rejects_non_square(self, rng):
        with pytest.raises(ValueError):
            TiledMatrix.from_dense(rng.standard_normal((4, 5)), b=2)

    def test_set_wrong_shape(self):
        m = TiledMatrix(TileGrid(n=32, b=16))
        with pytest.raises(ValueError):
            m[0, 0] = np.zeros((8, 8))

    def test_tiles_are_copies(self, rng):
        a = rng.standard_normal((32, 32))
        m = TiledMatrix.from_dense(a, b=16)
        m[0, 0][0, 0] = 99.0
        assert a[0, 0] != 99.0

    def test_copy_is_deep(self, rng):
        m = TiledMatrix.from_dense(rng.standard_normal((32, 32)), b=16)
        m2 = m.copy()
        m2[0, 0][0, 0] = 42.0
        assert m[0, 0][0, 0] != 42.0

    def test_contains_and_index_check(self):
        m = TiledMatrix(TileGrid(n=32, b=16))
        m[1, 0] = np.ones((16, 16))
        assert (1, 0) in m
        assert (0, 0) not in m
        with pytest.raises(IndexError):
            m[5, 0]


class TestSymmetricTiledMatrix:
    def _sym(self, rng, n=48, b=16):
        a = rng.standard_normal((n, n))
        a = (a + a.T) / 2
        return a, SymmetricTiledMatrix.from_dense(a, b=b)

    def test_roundtrip(self, rng):
        a, m = self._sym(rng)
        np.testing.assert_allclose(m.to_dense(), a)

    def test_upper_read_is_transpose(self, rng):
        a, m = self._sym(rng)
        np.testing.assert_array_equal(m[0, 2], m[2, 0].T)

    def test_upper_write_rejected(self, rng):
        _, m = self._sym(rng)
        with pytest.raises(KeyError):
            m[0, 1] = np.zeros((16, 16))

    def test_rejects_asymmetric(self, rng):
        a = rng.standard_normal((32, 32))
        with pytest.raises(ValueError):
            SymmetricTiledMatrix.from_dense(a, b=16)

    def test_stores_only_lower_triangle(self, rng):
        _, m = self._sym(rng)
        keys = set(m.keys())
        assert all(i >= j for i, j in keys)
        assert len(keys) == m.grid.num_lower_tiles
