"""Tests of the dataflow linter (FLOW-*) and the scheduler model
checker (MC-*), plus the report-v2 / SARIF serialization they ride on.

The two acceptance-critical regressions live here:

* a revert-style test that re-introduces the PR 7 fsync-on-event-loop
  defect into the *real* ``repro/service/server.py`` source and proves
  FLOW-BLOCK catches it;
* a seeded deadlocking scheduler (a queue discipline that hides its
  backlog) that the model checker must convict with MC-DEADLOCK.
"""

import json
from pathlib import Path

import pytest

from repro.analyze import (
    REPORT_VERSION,
    Report,
    Severity,
    certify_policies,
    flow_module,
    flow_sources,
    model_check,
    require_certificates,
    severity_rank,
    small_scope_cases,
    to_sarif,
    verify_certificate,
    write_sarif,
)
from repro.analyze.mutate import (
    _FLOW_SNIPPETS,
    _HiddenBacklogQueue,
    _UndeclaredMigrator,
    _queue_policy,
)
from repro.config import laptop
from repro.distributions.block_cyclic import BlockCyclic2D
from repro.graph.compiled import compile_cholesky
from repro.schedulers import POLICIES

ROOT = Path(__file__).resolve().parents[1]
SERVER = ROOT / "src" / "repro" / "service" / "server.py"


@pytest.fixture(scope="module")
def tiny_case():
    cg = compile_cholesky(4, 32, BlockCyclic2D(2, 2))
    return cg, laptop(nodes=4, cores=1)


# ---------------------------------------------------------------------------
# FLOW: the revert-style PR 7 regression
# ---------------------------------------------------------------------------

#: The executor hand-off PR 7 introduced; reverting it re-creates the
#: fsync-on-the-event-loop defect the flow pass exists to catch.
_EXECUTOR_HANDOFF = (
    "await loop.run_in_executor(\n"
    "                self._io, self._persist, structure_key(spec), record\n"
    "            )"
)


def test_flow_block_catches_reverted_fsync_defect():
    src = SERVER.read_text(encoding="utf-8")
    assert _EXECUTOR_HANDOFF in src, (
        "server.py no longer hands _persist to the executor the way this "
        "regression test expects; update _EXECUTOR_HANDOFF"
    )
    reverted = src.replace(
        _EXECUTOR_HANDOFF, "self._persist(structure_key(spec), record)")
    rep = flow_module(reverted, "repro/service/server.py")
    hits = rep.by_rule("FLOW-BLOCK")
    assert hits, "reverting the executor hand-off must trip FLOW-BLOCK"
    assert all(f.severity == Severity.ERROR for f in hits)
    # Location formatting: a real file:line inside the async submit path.
    assert all(f.location.startswith("repro/service/server.py:")
               for f in hits)


def test_flow_clean_on_current_server():
    rep = flow_module(SERVER.read_text(encoding="utf-8"),
                      "repro/service/server.py")
    assert rep.ok(strict=True), rep.render()


def test_flow_clean_on_whole_tree():
    rep = flow_sources(src_root=ROOT / "src")
    assert rep.ok(strict=True), rep.render()
    assert rep.passes.get("flow", 0) > 50


# ---------------------------------------------------------------------------
# FLOW: every rule fires on its mutant snippet, never on the clean twin
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "name,rule,clean_src,bad_src,rel",
    _FLOW_SNIPPETS,
    ids=[s[0] for s in _FLOW_SNIPPETS],
)
def test_flow_snippet_pairs(name, rule, clean_src, bad_src, rel):
    assert rule in flow_module(bad_src, rel).rules_hit()
    assert flow_module(clean_src, rel).ok(strict=True)


def test_flow_shutdown_exemption():
    src = (
        "class Server:\n"
        "    async def stop(self):\n"
        "        self._io.shutdown()\n"
    )
    assert flow_module(src, "repro/service/x.py").ok(strict=True)


def test_flow_npovf_scoped_to_hot_files():
    src = "def f(cg, n):\n    return cg.node * n\n"
    assert "FLOW-NPOVF" in flow_module(
        src, "repro/graph/compiled.py").rules_hit()
    # The same arithmetic outside the int32 hot paths is fine.
    assert flow_module(src, "repro/service/x.py").ok(strict=True)


# ---------------------------------------------------------------------------
# MC: seeded deadlock + the certificate machinery
# ---------------------------------------------------------------------------

def test_mc_convicts_seeded_deadlocking_scheduler(tiny_case):
    cg, machine = tiny_case
    policy = _queue_policy("seeded-deadlock", _HiddenBacklogQueue)
    result, rep = model_check(cg, machine, policy, label="seeded")
    assert "MC-DEADLOCK" in rep.rules_hit()
    assert result.properties["deadlock_free"] is False
    assert not result.ok()
    # Location formatting: mc:<label>[<policy>].
    assert rep.by_rule("MC-DEADLOCK")[0].location == \
        "mc:seeded[seeded-deadlock]"


def test_mc_convicts_undeclared_migrator(tiny_case):
    cg, machine = tiny_case
    _, rep = model_check(cg, machine, _UndeclaredMigrator(), label="seeded")
    assert "MC-PLACE" in rep.rules_hit()


def test_mc_clean_policy_proves_all_properties(tiny_case):
    cg, machine = tiny_case
    result, rep = model_check(cg, machine, "critical-path", label="tiny")
    assert rep.ok(strict=True), rep.render()
    assert result.ok()
    assert set(result.properties) == {
        "deadlock_free", "starvation_free", "queue_consistent",
        "placement_safe", "exhaustive",
    }
    assert all(result.properties.values())
    assert result.states > 0 and result.transitions > 0


def test_small_scope_matrix_shape():
    cases = small_scope_cases()
    assert len(cases) >= 3
    for label, cg, machine in cases:
        assert cg.n_tasks <= 60
        assert machine.nodes <= 4
    # clique, chain and grid topologies are all represented.
    kinds = {label.rsplit("/", 1)[-1] for label, _, _ in cases}
    assert {"clique", "chain", "grid"} <= {k.split("-")[0] for k in kinds}


def test_certificates_roundtrip_verify_and_tamper(tmp_path, tiny_case):
    cg, machine = tiny_case
    cases = [("tiny/clique", cg, machine)]
    certs, rep = certify_policies(
        policies=["critical-path", "fork-join"],
        out_dir=tmp_path, cases=cases)
    assert rep.ok(strict=True), rep.render()
    for name in ("critical-path", "fork-join"):
        path = tmp_path / f"{name}.cert.json"
        doc = json.loads(path.read_text())
        assert doc == certs[name]
        assert verify_certificate(doc)
        # Any tampering breaks the digest.
        tampered = dict(doc)
        tampered["cases"] = [dict(c, states=0) for c in doc["cases"]]
        assert not verify_certificate(tampered)
        forged = dict(doc)
        forged["digest"] = "0" * 64
        assert not verify_certificate(forged)


def test_require_certificates_gates_the_zoo(tiny_case):
    cg, machine = tiny_case
    certs = require_certificates(policies=["critical-path"],
                                 cases=[("tiny/clique", cg, machine)])
    assert set(certs) == {"critical-path"}
    assert verify_certificate(certs["critical-path"])


def test_every_zoo_policy_is_certifiable_on_one_small_case(tiny_case):
    # The full small-scope sweep runs in CI / --mc; suite-side we prove
    # every registered policy certifies on one exhaustive case.
    cg, machine = tiny_case
    certs, rep = certify_policies(cases=[("tiny/clique", cg, machine)])
    assert rep.ok(strict=True), rep.render()
    assert set(certs) == set(POLICIES)
    assert all(verify_certificate(c) for c in certs.values())


# ---------------------------------------------------------------------------
# Findings report v2 + SARIF
# ---------------------------------------------------------------------------

def _sample_report():
    rep = Report()
    rep.note_pass("flow", 88)
    rep.note_pass("model-check", 24)
    rep.add("SCHED-THM1", Severity.INFO, "margin 7", "g:N=8")
    rep.add("FLOW-DICTORD", Severity.WARNING, "set feeds schedule",
            "repro/service/server.py:41", "sorted(...)")
    rep.add("FLOW-BLOCK", Severity.ERROR, "fsync on loop",
            "repro/service/server.py:238", "run_in_executor")
    rep.add("MC-DEADLOCK", Severity.ERROR, "stranded tasks",
            "mc:tiny[critical-path]")
    return rep


def test_report_v2_roundtrip_with_new_rule_ids():
    rep = _sample_report()
    doc = rep.to_dict()
    assert doc["version"] == REPORT_VERSION == 2
    assert [r["id"] for r in doc["rules"]] == [
        "FLOW-BLOCK", "FLOW-DICTORD", "MC-DEADLOCK", "SCHED-THM1"]
    assert {r["id"]: r["max_severity"] for r in doc["rules"]} == {
        "FLOW-BLOCK": "error", "FLOW-DICTORD": "warning",
        "MC-DEADLOCK": "error", "SCHED-THM1": "info"}
    back = Report.from_dict(doc)
    assert [f.rule for f in back] == [f.rule for f in rep]
    assert back.passes == rep.passes
    assert back.to_dict() == doc


def test_report_v1_documents_still_parse():
    rep = _sample_report()
    doc = rep.to_dict()
    v1 = {k: v for k, v in doc.items() if k != "rules"}
    v1["version"] = 1
    back = Report.from_dict(v1)
    assert [f.location for f in back] == [f.location for f in rep]
    with pytest.raises(ValueError):
        Report.from_dict(dict(doc, version=3))


def test_severity_ordering_is_stable():
    assert [severity_rank(s) for s in ("error", "warning", "info")] == \
        [0, 1, 2]
    assert severity_rank("someday-new") == 3
    ordered = _sample_report().ordered()
    assert [f.severity for f in ordered] == [
        "error", "error", "warning", "info"]
    # Equal-severity findings keep their discovery order.
    assert [f.rule for f in ordered[:2]] == ["FLOW-BLOCK", "MC-DEADLOCK"]


def test_sarif_document_shape(tmp_path):
    rep = _sample_report()
    doc = to_sarif(rep)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.analyze"
    results = run["results"]
    assert [r["level"] for r in results] == [
        "error", "error", "warning", "note"]
    by_rule = {r["ruleId"]: r for r in results}
    # file:line findings annotate the source line under src/.
    phys = by_rule["FLOW-BLOCK"]["locations"][0]["physicalLocation"]
    assert phys["artifactLocation"]["uri"] == "src/repro/service/server.py"
    assert phys["region"]["startLine"] == 238
    # Synthetic locations stay addressable as logical locations.
    logical = by_rule["MC-DEADLOCK"]["locations"][0]["logicalLocations"]
    assert logical[0]["fullyQualifiedName"] == "mc:tiny[critical-path]"
    rules = run["tool"]["driver"]["rules"]
    assert {r["id"] for r in rules} == set(rep.rules_hit())
    for r in results:
        assert rules[r["ruleIndex"]]["id"] == r["ruleId"]
    assert run["properties"]["passes"] == {"flow": 88, "model-check": 24}
    # write_sarif emits the same document.
    path = tmp_path / "findings.sarif"
    write_sarif(rep, path)
    assert json.loads(path.read_text()) == doc
