"""Tests for the analytic makespan bounds and per-node traffic counter."""

import math

import numpy as np
import pytest

from repro.comm import cholesky_node_traffic, count_communications
from repro.config import MachineSpec, NetworkSpec, bora, laptop
from repro.distributions import BlockCyclic2D, SymmetricBlockCyclic
from repro.graph import build_cholesky_graph
from repro.runtime import cholesky_bounds, simulate


class TestNodeTraffic:
    @pytest.mark.parametrize("N", [1, 4, 12, 20])
    def test_matches_generic_counter_per_node(self, N, any_dist):
        sent, recv = cholesky_node_traffic(any_dist, N)
        g = build_cholesky_graph(N, 8, any_dist)
        cc = count_communications(g)
        tile = 8 * 8 * 8
        for n in range(any_dist.num_nodes):
            assert sent[n] * tile == cc.sent_bytes.get(n, 0)
            assert recv[n] * tile == cc.recv_bytes.get(n, 0)

    def test_sent_equals_received_total(self):
        d = SymmetricBlockCyclic(6)
        sent, recv = cholesky_node_traffic(d, 30)
        assert sent.sum() == recv.sum()

    def test_sbc_busiest_port_beats_2dbc(self):
        """The sqrt(2) volume advantage survives at the busiest port."""
        N = 120
        sbc, bc = SymmetricBlockCyclic(8), BlockCyclic2D(7, 4)
        s_sent, s_recv = cholesky_node_traffic(sbc, N)
        b_sent, b_recv = cholesky_node_traffic(bc, N)
        sbc_port = max(s_sent.max(), s_recv.max())
        bc_port = max(b_sent.max(), b_recv.max())
        assert 1.2 < bc_port / sbc_port < 1.6


class TestCholeskyBounds:
    def machine(self, P):
        return MachineSpec(nodes=P, cores=4, network=NetworkSpec(1e9, 1e-5))

    def test_simulator_respects_bound(self, any_dist):
        N, b = 12, 64
        m = laptop(nodes=any_dist.num_nodes, cores=2)
        bd = cholesky_bounds(any_dist, N, b, m)
        g = build_cholesky_graph(N, b, any_dist)
        rep = simulate(g, m)
        assert rep.makespan >= bd.makespan_lower_bound * (1 - 1e-9)
        assert rep.gflops_per_node <= bd.gflops_per_node_upper_bound * (1 + 1e-9)

    def test_single_node_has_no_port_bound(self):
        bd = cholesky_bounds(BlockCyclic2D(1, 1), 10, 64, self.machine(1))
        assert bd.port_bound == 0.0
        assert bd.binding in ("work", "spine")

    def test_binding_shifts_with_bandwidth(self):
        """Starving the network makes the port bound take over."""
        d = BlockCyclic2D(3, 3)
        slow = MachineSpec(nodes=9, cores=4, network=NetworkSpec(1e6, 1e-5))
        bd = cholesky_bounds(d, 16, 64, slow)
        assert bd.binding == "port"

    def test_spine_binds_for_tiny_parallel_matrices(self):
        """One tile per iteration chain dominates when N is small and the
        machine is huge."""
        d = BlockCyclic2D(2, 2)
        huge = MachineSpec(nodes=4, cores=64, network=NetworkSpec(1e12, 1e-3))
        bd = cholesky_bounds(d, 12, 64, huge)
        assert bd.binding == "spine"

    def test_full_scale_port_advantage(self):
        """At the paper's n=200000 the work bound dominates for both, but
        SBC's port slack is ~sqrt(2) larger — the overlap headroom behind
        the paper's large-n convergence story."""
        sbc = cholesky_bounds(SymmetricBlockCyclic(9), 400, 500, bora(36))
        bc = cholesky_bounds(BlockCyclic2D(6, 6), 400, 500, bora(36))
        assert sbc.binding == bc.binding == "work"
        assert bc.port_bound / sbc.port_bound == pytest.approx(math.sqrt(2), rel=0.12)

    def test_rejects_too_small_machine(self):
        with pytest.raises(ValueError):
            cholesky_bounds(SymmetricBlockCyclic(4), 8, 64, self.machine(2))

    def test_str_smoke(self):
        bd = cholesky_bounds(BlockCyclic2D(2, 2), 8, 64, self.machine(4))
        assert "bound" in str(bd)
